/**
 * @file
 * TaintCheck lifeguard tests: taint introduction, propagation through
 * registers and memory, clearing, and tainted-control detection.
 */

#include <gtest/gtest.h>

#include "lifeguards/taintcheck.h"

namespace lba::lifeguards {
namespace {

using lifeguard::FindingKind;
using lifeguard::NullCostSink;
using log::EventRecord;
using log::EventType;

EventRecord
inputEvent(Addr buf, std::uint64_t len)
{
    EventRecord r;
    r.type = EventType::kInput;
    r.addr = buf;
    r.aux = len;
    return r;
}

EventRecord
instr(isa::Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
      Addr addr = 0, std::uint64_t aux = 0)
{
    EventRecord r;
    r.type = log::eventTypeOf(isa::classOf(op));
    r.opcode = static_cast<std::uint8_t>(op);
    r.rd = rd;
    r.rs1 = rs1;
    r.rs2 = rs2;
    r.pc = 0x1000;
    r.addr = addr;
    r.aux = aux;
    return r;
}

class TaintCheckTest : public ::testing::Test
{
  protected:
    TaintCheck guard;
    NullCostSink sink;

    void feed(const EventRecord& r) { guard.handleEvent(r, sink); }
};

TEST_F(TaintCheckTest, InputTaintsMemory)
{
    feed(inputEvent(0x20000, 64));
    EXPECT_TRUE(guard.memTainted(0x20000, 1));
    EXPECT_TRUE(guard.memTainted(0x2003f, 1));
    EXPECT_FALSE(guard.memTainted(0x20040, 1));
}

TEST_F(TaintCheckTest, LoadTaintsRegister)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8));
    EXPECT_TRUE(guard.regTainted(0, 3));
    // Load from clean memory clears the register.
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x30000, 8));
    EXPECT_FALSE(guard.regTainted(0, 3));
}

TEST_F(TaintCheckTest, StorePropagatesRegisterToMemory)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8)); // r3 tainted
    feed(instr(isa::Opcode::kSd, 0, 6, 3, 0x30000, 8)); // store r3
    EXPECT_TRUE(guard.memTainted(0x30000, 8));
    // Storing a clean register overwrites the taint.
    feed(instr(isa::Opcode::kSd, 0, 6, 4, 0x30000, 8));
    EXPECT_FALSE(guard.memTainted(0x30000, 8));
}

TEST_F(TaintCheckTest, AluUnionsSourceTaint)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8)); // r3 tainted
    feed(instr(isa::Opcode::kAdd, 4, 3, 6));            // r4 = r3 + r6
    EXPECT_TRUE(guard.regTainted(0, 4));
    feed(instr(isa::Opcode::kAdd, 7, 6, 6)); // clean + clean
    EXPECT_FALSE(guard.regTainted(0, 7));
    // Immediate ALU does not read rs2's taint.
    feed(instr(isa::Opcode::kAddi, 8, 6, 3)); // rs2 field is noise
    EXPECT_FALSE(guard.regTainted(0, 8));
}

TEST_F(TaintCheckTest, MoveCopiesLiClears)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8));
    feed(instr(isa::Opcode::kMov, 4, 3, 0));
    EXPECT_TRUE(guard.regTainted(0, 4));
    feed(instr(isa::Opcode::kLi, 4, 0, 0));
    EXPECT_FALSE(guard.regTainted(0, 4));
    // lih preserves existing taint (it mixes into rd).
    feed(instr(isa::Opcode::kMov, 4, 3, 0));
    feed(instr(isa::Opcode::kLih, 4, 0, 0));
    EXPECT_TRUE(guard.regTainted(0, 4));
}

TEST_F(TaintCheckTest, DetectsTaintedIndirectJump)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8));
    feed(instr(isa::Opcode::kJr, 0, 3, 0, 0xdead, 1));
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kTaintedJump);
}

TEST_F(TaintCheckTest, DetectsTaintedIndirectCallAndReturn)
{
    feed(inputEvent(0x20000, 16));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8));
    feed(instr(isa::Opcode::kCallr, 0, 3, 0, 0xbeef, 1));
    EXPECT_EQ(guard.countFindings(FindingKind::kTaintedJump), 1u);
    // Tainted LR then ret.
    feed(instr(isa::Opcode::kLd, isa::kRegLr, 5, 0, 0x20008, 8));
    EventRecord ret = instr(isa::Opcode::kRet, 0, 0, 0, 0xf00d, 1);
    ret.pc = 0x2000; // distinct pc (dedupe is per pc)
    feed(ret);
    EXPECT_EQ(guard.countFindings(FindingKind::kTaintedJump), 2u);
}

TEST_F(TaintCheckTest, CleanIndirectJumpIsFine)
{
    feed(instr(isa::Opcode::kJr, 0, 3, 0, 0x1000, 1));
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(TaintCheckTest, TaintFlowsThroughMemoryChain)
{
    // input -> r1 -> mem A -> r2 -> alu r3 -> mem B -> r4 -> jr
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 1, 9, 0, 0x20000, 8));
    feed(instr(isa::Opcode::kSd, 0, 9, 1, 0x30000, 8));
    feed(instr(isa::Opcode::kLd, 2, 9, 0, 0x30000, 8));
    feed(instr(isa::Opcode::kXor, 3, 2, 2));
    feed(instr(isa::Opcode::kSd, 0, 9, 3, 0x40000, 8));
    feed(instr(isa::Opcode::kLd, 4, 9, 0, 0x40000, 8));
    EXPECT_TRUE(guard.regTainted(0, 4));
    feed(instr(isa::Opcode::kJr, 0, 4, 0, 0x666, 1));
    EXPECT_EQ(guard.countFindings(FindingKind::kTaintedJump), 1u);
}

TEST_F(TaintCheckTest, AllocationClearsStaleTaint)
{
    feed(inputEvent(0x10000000, 32)); // taint a heap area
    EXPECT_TRUE(guard.memTainted(0x10000000, 1));
    EventRecord alloc;
    alloc.type = EventType::kAlloc;
    alloc.addr = 0x10000000;
    alloc.aux = 64;
    feed(alloc);
    EXPECT_FALSE(guard.memTainted(0x10000000, 32));
}

TEST_F(TaintCheckTest, PartialByteGranularity)
{
    feed(inputEvent(0x20003, 2)); // bytes 3 and 4 only
    EXPECT_FALSE(guard.memTainted(0x20000, 1));
    EXPECT_TRUE(guard.memTainted(0x20003, 1));
    EXPECT_TRUE(guard.memTainted(0x20004, 1));
    EXPECT_FALSE(guard.memTainted(0x20005, 1));
    // A byte load of the clean byte stays clean; of a dirty byte taints.
    feed(instr(isa::Opcode::kLb, 1, 9, 0, 0x20000, 1));
    EXPECT_FALSE(guard.regTainted(0, 1));
    feed(instr(isa::Opcode::kLb, 1, 9, 0, 0x20004, 1));
    EXPECT_TRUE(guard.regTainted(0, 1));
}

TEST_F(TaintCheckTest, PerThreadRegisterTaint)
{
    feed(inputEvent(0x20000, 8));
    EventRecord ld = instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8);
    ld.tid = 1;
    feed(ld);
    EXPECT_TRUE(guard.regTainted(1, 3));
    EXPECT_FALSE(guard.regTainted(0, 3));
}

TEST_F(TaintCheckTest, RegisterZeroNeverTainted)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 0, 5, 0, 0x20000, 8)); // load to r0
    EXPECT_FALSE(guard.regTainted(0, 0));
}

TEST_F(TaintCheckTest, DedupePerPc)
{
    feed(inputEvent(0x20000, 8));
    feed(instr(isa::Opcode::kLd, 3, 5, 0, 0x20000, 8));
    feed(instr(isa::Opcode::kJr, 0, 3, 0, 0x1, 1));
    feed(instr(isa::Opcode::kJr, 0, 3, 0, 0x2, 1)); // same pc 0x1000
    EXPECT_EQ(guard.findings().size(), 1u);
}

} // namespace
} // namespace lba::lifeguards
