/**
 * @file
 * Tenant churn tests: arrival (TenantConfig::arrival_round) and
 * departure (TenantConfig::detach_after_instructions) in the shared
 * lifeguard pool.
 *
 * The central proof obligations:
 *  - Determinism: the same tenant population and churn schedule yields
 *    identical per-tenant statistics on every run — the round counter
 *    advances with executed slices, never wall time.
 *  - Departure is completion: a tenant detached after N instructions
 *    leaves every surviving tenant's cycles exactly as if the departed
 *    tenant had ended naturally at the same retirement (same program
 *    under process.max_instructions = N) — the detach clock observes
 *    the same retirement stream the platform does.
 *  - Arrival faces admission: a late arrival goes through the same
 *    fits()/queue/reject decision as a boot-time tenant, and an
 *    all-late population fast-forwards the idle pool to the first
 *    arrival round.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguards/boundscheck.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::sched {
namespace {

core::LifeguardFactory
boundscheck()
{
    return [] { return std::make_unique<lifeguards::BoundsCheck>(); };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs)
{
    return workload::generate(*workload::findProfile(profile), {},
                              instrs);
}

void
expectTenantStatsEqual(const TenantStats& a, const TenantStats& b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.was_queued, b.was_queued);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.detached, b.detached);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.unmonitored_cycles, b.unmonitored_cycles);
    EXPECT_DOUBLE_EQ(a.slowdown, b.slowdown);
    EXPECT_EQ(a.lba.app_instructions, b.lba.app_instructions);
    EXPECT_EQ(a.lba.records_logged, b.lba.records_logged);
    EXPECT_EQ(a.lba.total_cycles, b.lba.total_cycles);
    EXPECT_EQ(a.lba.app_cycles, b.lba.app_cycles);
    EXPECT_EQ(a.lba.backpressure_stall_cycles,
              b.lba.backpressure_stall_cycles);
    EXPECT_EQ(a.lba.syscall_stall_cycles, b.lba.syscall_stall_cycles);
    EXPECT_EQ(a.lba.lifeguard_busy_cycles, b.lba.lifeguard_busy_cycles);
    EXPECT_EQ(a.lba.transport_bytes, b.lba.transport_bytes);
    EXPECT_EQ(a.lba.syscall_drains, b.lba.syscall_drains);
    EXPECT_DOUBLE_EQ(a.lag_p50, b.lag_p50);
    EXPECT_DOUBLE_EQ(a.lag_p95, b.lag_p95);
    EXPECT_DOUBLE_EQ(a.lag_p99, b.lag_p99);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].kind, b.findings[i].kind);
        EXPECT_EQ(a.findings[i].pc, b.findings[i].pc);
        EXPECT_EQ(a.findings[i].addr, b.findings[i].addr);
    }
}

PoolResult
runChurnSchedule()
{
    auto serve = makeProgram("req_serve", 20000);
    PoolConfig config;
    config.lanes = 2;
    config.lba.transport_bytes_per_cycle = 2.0;
    config.slice_instructions = 4000;
    LifeguardPool pool(config, boundscheck());

    TenantConfig a;
    a.name = "boot0";
    a.program = serve.program;
    TenantConfig b = a;
    b.name = "boot1";
    b.detach_after_instructions = 9000; // mid third slice
    TenantConfig c = a;
    c.name = "late0";
    c.arrival_round = 3;
    TenantConfig d = a;
    d.name = "late1";
    d.arrival_round = 7;
    pool.addTenant(std::move(a));
    pool.addTenant(std::move(b));
    pool.addTenant(std::move(c));
    pool.addTenant(std::move(d));
    return pool.run();
}

TEST(Churn, SameScheduleSameStats)
{
    PoolResult first = runChurnSchedule();
    PoolResult second = runChurnSchedule();

    EXPECT_EQ(first.total_cycles, second.total_cycles);
    EXPECT_EQ(first.lane_steals, second.lane_steals);
    ASSERT_EQ(first.tenants.size(), second.tenants.size());
    for (std::size_t t = 0; t < first.tenants.size(); ++t) {
        SCOPED_TRACE(first.tenants[t].name);
        expectTenantStatsEqual(first.tenants[t], second.tenants[t]);
    }

    // The schedule actually exercised churn: everyone ran, and only
    // the detaching tenant detached (short of its full run).
    for (const TenantStats& tenant : first.tenants) {
        EXPECT_TRUE(tenant.admitted) << tenant.name;
        EXPECT_GT(tenant.instructions, 0u) << tenant.name;
    }
    EXPECT_FALSE(first.tenants[0].detached);
    EXPECT_TRUE(first.tenants[1].detached);
    EXPECT_EQ(first.tenants[1].instructions, 9000u);
    EXPECT_FALSE(first.tenants[2].detached);
    EXPECT_FALSE(first.tenants[3].detached);
}

TEST(Churn, DetachMatchesNaturalCompletion)
{
    // Survivors must not be able to tell a mid-slice detach from the
    // departed tenant simply ending at the same retirement.
    auto survivor = makeProgram("req_serve", 25000);
    auto departer = makeProgram("req_serve", 25000);
    const std::uint64_t kDetachAt = 9000; // not a slice multiple

    auto runPool = [&](bool via_detach) {
        PoolConfig config;
        config.lanes = 2;
        config.slice_instructions = 4000;
        LifeguardPool pool(config, boundscheck());
        TenantConfig stay;
        stay.name = "stay";
        stay.program = survivor.program;
        TenantConfig leave;
        leave.name = "leave";
        leave.program = departer.program;
        if (via_detach) {
            leave.detach_after_instructions = kDetachAt;
        } else {
            leave.process.max_instructions = kDetachAt;
        }
        pool.addTenant(std::move(stay));
        pool.addTenant(std::move(leave));
        return pool.run();
    };

    PoolResult detached = runPool(/*via_detach=*/true);
    PoolResult natural = runPool(/*via_detach=*/false);

    // The departed tenant observed exactly the same retirements...
    EXPECT_TRUE(detached.tenants[1].detached);
    EXPECT_FALSE(natural.tenants[1].detached);
    EXPECT_EQ(detached.tenants[1].instructions, kDetachAt);
    EXPECT_EQ(natural.tenants[1].instructions, kDetachAt);
    EXPECT_EQ(detached.tenants[1].total_cycles,
              natural.tenants[1].total_cycles);
    EXPECT_EQ(detached.tenants[1].lba.records_logged,
              natural.tenants[1].lba.records_logged);

    // ...so the survivor's run is bit-identical (the detach flag on
    // the departed tenant is the only per-tenant difference; its
    // slowdown denominator differs by construction — the natural run
    // declares the shorter program up front).
    expectTenantStatsEqual(detached.tenants[0], natural.tenants[0]);
    EXPECT_EQ(detached.total_cycles, natural.total_cycles);
}

TEST(Churn, LateArrivalFacesAdmissionQueue)
{
    auto gen = makeProgram("req_serve", 15000);
    PoolConfig config;
    config.lanes = 2;
    config.lba.transport_bytes_per_cycle = 2.0; // capacity 4 B/cycle
    config.admission = AdmissionMode::kQueue;
    config.slice_instructions = 4000;
    LifeguardPool pool(config, boundscheck());
    pool.addTenant({"a", gen.program, {}, 3.0});
    TenantConfig late;
    late.name = "b";
    late.program = gen.program;
    late.demand_bytes_per_cycle = 3.0; // 6 > 4: must wait
    late.arrival_round = 2;
    pool.addTenant(std::move(late));
    PoolResult result = pool.run();

    EXPECT_TRUE(result.tenants[0].admitted);
    EXPECT_FALSE(result.tenants[0].was_queued);
    EXPECT_TRUE(result.tenants[1].admitted);
    EXPECT_TRUE(result.tenants[1].was_queued);
    EXPECT_GT(result.tenants[1].instructions, 0u);
}

TEST(Churn, LateArrivalFacesAdmissionReject)
{
    auto gen = makeProgram("req_serve", 15000);
    PoolConfig config;
    config.lanes = 2;
    config.lba.transport_bytes_per_cycle = 2.0;
    config.admission = AdmissionMode::kReject;
    config.slice_instructions = 4000;
    LifeguardPool pool(config, boundscheck());
    pool.addTenant({"a", gen.program, {}, 3.0});
    TenantConfig late;
    late.name = "b";
    late.program = gen.program;
    late.demand_bytes_per_cycle = 3.0;
    late.arrival_round = 2;
    pool.addTenant(std::move(late));
    PoolResult result = pool.run();

    EXPECT_TRUE(result.tenants[0].admitted);
    EXPECT_TRUE(result.tenants[1].rejected);
    EXPECT_FALSE(result.tenants[1].admitted);
    EXPECT_EQ(result.tenants[1].instructions, 0u);
    // The boot-time tenant is unaffected by the rejected arrival.
    EXPECT_GT(result.tenants[0].instructions, 0u);
}

TEST(Churn, AllLatePopulationFastForwards)
{
    // Nothing runnable at round 0: the idle pool fast-forwards to the
    // first arrival instead of spinning or deadlocking.
    auto gen = makeProgram("req_serve", 15000);
    PoolConfig config;
    config.lanes = 2;
    config.slice_instructions = 4000;
    LifeguardPool pool(config, boundscheck());
    TenantConfig only;
    only.name = "late";
    only.program = gen.program;
    only.arrival_round = 10;
    pool.addTenant(std::move(only));
    PoolResult result = pool.run();

    ASSERT_EQ(result.tenants.size(), 1u);
    EXPECT_TRUE(result.tenants[0].admitted);
    EXPECT_FALSE(result.tenants[0].was_queued);
    EXPECT_GT(result.tenants[0].instructions, 0u);
    EXPECT_FALSE(result.tenants[0].detached);
}

} // namespace
} // namespace lba::sched
