/**
 * @file
 * Positive control for the negative-compile harness: the annotated
 * ownership patterns used throughout src/, written the *correct* way.
 * This TU must compile cleanly under -Wthread-safety -Werror; if it
 * does not, the harness (not the tree) is broken, and the violation
 * TUs' failures would prove nothing.
 */

#include "common/thread_annotations.h"
#include "core/pipeline_timer.h"
#include "log/log_buffer.h"

/** GUARDED_BY data accessed under its mutex. */
struct LbaLintCounter
{
    lba::sync::Mutex mutex;
    int value LBA_GUARDED_BY(mutex) = 0;
};

namespace {

/** A coordinator-by-construction driver: assume, then drive. */
void
coordinatorDrives(lba::core::PipelineTimer& timer,
                  const lba::sim::Retired& retired)
{
    lba::threading::assumeCoordinatorRole();
    timer.retire(retired);
    timer.sync();
    (void)timer.stats();
}

void
bumpLocked(LbaLintCounter& counter)
{
    lba::sync::MutexLock lock(counter.mutex);
    counter.value += 1;
}

/** Each SPSC side used by the thread that assumed it. */
void
producerPushes(lba::log::LogBuffer& ring, const lba::log::EventRecord& r)
{
    ring.assumeProducer();
    if (!ring.full()) (void)ring.push(r, 0);
}

void
consumerPops(lba::log::LogBuffer& ring)
{
    ring.assumeConsumer();
    lba::log::LogBuffer::Entry entry;
    while (ring.pop(&entry)) {
    }
}

} // namespace

/** Anchor so the object file is non-empty and the statics are used. */
void
lbaStaticAnalysisPositiveControl(lba::core::PipelineTimer& timer,
                                 const lba::sim::Retired& retired,
                                 lba::log::LogBuffer& ring,
                                 const lba::log::EventRecord& record,
                                 LbaLintCounter& counter)
{
    coordinatorDrives(timer, retired);
    bumpLocked(counter);
    producerPushes(ring, record);
    consumerPops(ring);
}
