/**
 * @file
 * MUST NOT COMPILE under -Wthread-safety -Werror (see CMakeLists.txt):
 * a worker-lane thread calling a coordinator-only timing-engine entry
 * point. Holding the worker role does not grant the coordinator role —
 * exactly the bug class PipelineTimer::assertCoordinator() traps at
 * runtime, rejected here at compile time instead.
 */

#include "common/thread_annotations.h"
#include "core/pipeline_timer.h"

void
workerTouchesTimer(lba::core::PipelineTimer& timer)
{
    lba::threading::assumeWorkerRole();
    timer.sync(); // error: requires ::lba::threading::coordinator_role
}
