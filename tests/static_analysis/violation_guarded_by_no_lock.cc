/**
 * @file
 * MUST NOT COMPILE under -Wthread-safety -Werror (see CMakeLists.txt):
 * writing a LBA_GUARDED_BY field without holding its mutex. The
 * classic data race the analysis exists to reject.
 */

#include "common/thread_annotations.h"

struct Counter
{
    lba::sync::Mutex mutex;
    int value LBA_GUARDED_BY(mutex) = 0;
};

void
bumpUnlocked(Counter& counter)
{
    counter.value += 1; // error: requires counter.mutex
}
