/**
 * @file
 * MUST NOT COMPILE under -Wthread-safety -Werror (see CMakeLists.txt):
 * the consumer side of an SPSC ring calling a producer-side entry
 * point. The ring is safe precisely because each side is owned by one
 * thread; a consumer that pushes would race the real producer on
 * tail_idx_ and the producer stats.
 */

#include "log/log_buffer.h"

void
consumerPushes(lba::log::LogBuffer& ring, const lba::log::EventRecord& r)
{
    ring.assumeConsumer();
    (void)ring.push(r, 0); // error: requires ring.producer_side_
}
