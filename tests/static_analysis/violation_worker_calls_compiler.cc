/**
 * @file
 * MUST NOT COMPILE under -Wthread-safety -Werror (see CMakeLists.txt):
 * a worker-lane thread invoking the lifeguard batch compiler. IR
 * lowering (lifeguard/compiler.h) is LBA_COORDINATOR_ONLY — it runs
 * once, at dispatch-engine construction, before any worker exists;
 * re-lowering from a worker would race the coordinator's drain loops
 * over the CompiledDispatch table. Holding the worker role does not
 * grant the coordinator role, so the gate must reject this at compile
 * time (tools/lba_lint.py keeps the annotation itself from being
 * dropped).
 */

#include "common/thread_annotations.h"
#include "lifeguard/compiler.h"
#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"

void
workerCompilesHandlers(lba::lifeguard::Lifeguard& lifeguard,
                       const lba::lifeguard::ir::LifeguardIR& ir)
{
    lba::threading::assumeWorkerRole();
    lba::lifeguard::compileHandlers(
        lifeguard, ir); // error: requires ::lba::threading::coordinator_role
}
