/**
 * @file
 * Tests for the text assembler and the ProgramBuilder API.
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/program_builder.h"
#include "isa/disasm.h"

namespace lba::assembler {
namespace {

using isa::Instruction;
using isa::Opcode;

TEST(Assembler, EmptySourceIsEmptyProgram)
{
    auto r = assemble("");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.program.empty());
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto r = assemble("; a comment\n   \n# another\n  nop\n");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.program.size(), 1u);
    EXPECT_EQ(r.program[0].op, Opcode::kNop);
}

TEST(Assembler, BasicInstructions)
{
    auto r = assemble(R"(
        li r1, 100
        addi r1, r1, -1
        add r3, r1, r2
        mov r4, r3
        ld r5, 8(r4)
        sd r5, 0(r4)
        syscall 1
        halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.program.size(), 8u);
    EXPECT_EQ(r.program[0].op, Opcode::kLi);
    EXPECT_EQ(r.program[0].imm, 100);
    EXPECT_EQ(r.program[1].imm, -1);
    EXPECT_EQ(r.program[4].op, Opcode::kLd);
    EXPECT_EQ(r.program[4].rs1, 4);
    EXPECT_EQ(r.program[4].imm, 8);
    EXPECT_EQ(r.program[5].op, Opcode::kSd);
    EXPECT_EQ(r.program[5].rs2, 5);
}

TEST(Assembler, RegisterAliases)
{
    auto r = assemble("mov sp, lr\nmov at, r0\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].rd, isa::kRegSp);
    EXPECT_EQ(r.program[0].rs1, isa::kRegLr);
    EXPECT_EQ(r.program[1].rd, isa::kRegAt);
}

TEST(Assembler, LabelsResolveBackward)
{
    auto r = assemble(R"(
        li r1, 10
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    // bne at index 2, loop at index 1 -> offset (1-2)*8 = -8.
    EXPECT_EQ(r.program[2].imm, -8);
}

TEST(Assembler, LabelsResolveForward)
{
    auto r = assemble(R"(
        beq r0, r0, done
        nop
        nop
    done:
        halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].imm, 24); // (3-0)*8
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    auto r = assemble("start: nop\n jmp start\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[1].imm, -8);
}

TEST(Assembler, HexImmediates)
{
    auto r = assemble("li r1, 0x10\nli r2, -0x8\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].imm, 16);
    EXPECT_EQ(r.program[1].imm, -8);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    auto r = assemble("nop\nbogus r1\n");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error_line, 2);
}

TEST(Assembler, ErrorUnknownLabel)
{
    auto r = assemble("jmp nowhere\n");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("nowhere"), std::string::npos);
}

TEST(Assembler, ErrorDuplicateLabel)
{
    auto r = assemble("a:\nnop\na:\nnop\n");
    EXPECT_FALSE(r.ok());
}

TEST(Assembler, ErrorBadOperandCount)
{
    EXPECT_FALSE(assemble("add r1, r2\n").ok());
    EXPECT_FALSE(assemble("li r1\n").ok());
    EXPECT_FALSE(assemble("halt r1\n").ok());
}

TEST(Assembler, ErrorBadRegister)
{
    EXPECT_FALSE(assemble("mov r32, r0\n").ok());
    EXPECT_FALSE(assemble("mov rx, r0\n").ok());
}

TEST(Assembler, DisassemblerOutputReassembles)
{
    auto r = assemble(R"(
        li r1, 5
        add r2, r1, r1
        ld r3, 16(r2)
        sd r3, -8(r2)
        beq r1, r2, 8
        jr r3
        callr r2
        ret
        syscall 4
        halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    std::string round;
    for (const auto& instr : r.program) {
        round += isa::disassemble(instr) + "\n";
    }
    auto r2 = assemble(round);
    ASSERT_TRUE(r2.ok()) << r2.error;
    EXPECT_EQ(r2.program, r.program);
}

TEST(ProgramBuilder, EmitsAndResolvesLabels)
{
    ProgramBuilder b;
    Label loop = b.newLabel();
    b.li(1, 3);
    b.bind(loop);
    b.alui(Opcode::kAddi, 1, 1, -1);
    b.branch(Opcode::kBne, 1, 0, loop);
    b.halt();
    std::string error;
    auto program = b.build(0x1000, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(program.size(), 4u);
    EXPECT_EQ(program[2].imm, -8);
}

TEST(ProgramBuilder, UnboundLabelFailsBuild)
{
    ProgramBuilder b;
    Label never = b.newLabel();
    b.jmp(never);
    std::string error;
    auto program = b.build(0x1000, &error);
    EXPECT_TRUE(program.empty());
    EXPECT_FALSE(error.empty());
}

TEST(ProgramBuilder, Li64SmallValueIsOneInstruction)
{
    ProgramBuilder b;
    b.li64(1, 100);
    EXPECT_EQ(b.size(), 1u);
    b.li64(2, 0xffffffff00000000ull); // needs lih
    EXPECT_EQ(b.size(), 3u);
}

TEST(ProgramBuilder, LiLabelMaterializesAbsoluteAddress)
{
    ProgramBuilder b;
    Label target = b.newLabel();
    b.liLabel(1, target);
    b.halt();
    b.bind(target);
    b.nop();
    std::string error;
    auto program = b.build(0x10000, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(program[0].imm, 0x10000 + 2 * 8);
}

} // namespace
} // namespace lba::assembler
