/**
 * @file
 * LockSet (Eraser) lifeguard tests: the state machine, lockset
 * refinement, race detection and the no-false-positive cases Eraser is
 * designed around.
 */

#include <gtest/gtest.h>

#include "lifeguards/lockset.h"

namespace lba::lifeguards {
namespace {

using lifeguard::FindingKind;
using lifeguard::NullCostSink;
using log::EventRecord;
using log::EventType;

EventRecord
accessEvent(ThreadId tid, Addr addr, bool write, Addr pc = 0x1000)
{
    EventRecord r;
    r.type = write ? EventType::kStore : EventType::kLoad;
    r.opcode = static_cast<std::uint8_t>(write ? isa::Opcode::kSd
                                               : isa::Opcode::kLd);
    r.tid = tid;
    r.pc = pc;
    r.addr = addr;
    r.aux = 8;
    return r;
}

EventRecord
lockEvent(ThreadId tid, Addr lock, bool acquire)
{
    EventRecord r;
    r.type = acquire ? EventType::kLock : EventType::kUnlock;
    r.tid = tid;
    r.addr = lock;
    r.aux = 1;
    return r;
}

constexpr Addr kData = 0x10000100;
constexpr Addr kLockA = 0x1000900;
constexpr Addr kLockB = 0x1000908;

class LockSetTest : public ::testing::Test
{
  protected:
    LockSet guard;
    NullCostSink sink;

    void feed(const EventRecord& r) { guard.handleEvent(r, sink); }
};

TEST(LocksetTable, CanonicalIdsAndIntersection)
{
    LocksetTable t(0x5000000000ull);
    std::uint32_t ab = t.idOf({kLockA, kLockB});
    std::uint32_t a = t.idOf({kLockA});
    std::uint32_t b = t.idOf({kLockB});
    EXPECT_EQ(t.idOf({kLockA, kLockB}), ab); // interned
    EXPECT_EQ(t.intersect(ab, a), a);
    EXPECT_EQ(t.intersect(a, b), LocksetTable::kEmpty);
    EXPECT_EQ(t.intersect(ab, ab), ab);
    EXPECT_EQ(t.intersect(a, LocksetTable::kEmpty),
              LocksetTable::kEmpty);
    EXPECT_EQ(t.locks(ab).size(), 2u);
}

TEST_F(LockSetTest, SingleThreadNeverReports)
{
    for (int i = 0; i < 10; ++i) {
        feed(accessEvent(0, kData, i % 2 == 0));
    }
    EXPECT_TRUE(guard.findings().empty());
    EXPECT_EQ(guard.granuleState(kData), LockSet::kExclusive);
}

TEST_F(LockSetTest, ConsistentLockingIsClean)
{
    // Both threads always hold LockA around accesses.
    for (ThreadId tid : {0, 1, 0, 1}) {
        feed(lockEvent(tid, kLockA, true));
        feed(accessEvent(tid, kData, true));
        feed(accessEvent(tid, kData, false));
        feed(lockEvent(tid, kLockA, false));
    }
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(LockSetTest, UnprotectedSharedWriteIsARace)
{
    feed(accessEvent(0, kData, true)); // Exclusive(0)
    feed(accessEvent(1, kData, true)); // SharedModified, lockset = {}
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kDataRace);
    EXPECT_EQ(guard.findings()[0].addr, kData);
}

TEST_F(LockSetTest, ReadSharingIsNotARace)
{
    feed(accessEvent(0, kData, true));  // Exclusive(0), initialized
    feed(accessEvent(1, kData, false)); // Shared (read-only sharing)
    feed(accessEvent(0, kData, false));
    feed(accessEvent(1, kData, false));
    EXPECT_TRUE(guard.findings().empty());
    EXPECT_EQ(guard.granuleState(kData), LockSet::kShared);
}

TEST_F(LockSetTest, InconsistentLocksAreARace)
{
    // Thread 0 uses LockA, thread 1 uses LockB. Eraser semantics: the
    // first sharing transition initializes C(v) = {B}; no report yet
    // (two accesses cannot prove inconsistency). The third access
    // refines C(v) = {B} n {A} = {} -> race.
    feed(lockEvent(0, kLockA, true));
    feed(accessEvent(0, kData, true));
    feed(lockEvent(0, kLockA, false));

    feed(lockEvent(1, kLockB, true));
    feed(accessEvent(1, kData, true)); // SharedModified, C = {B}
    feed(lockEvent(1, kLockB, false));
    EXPECT_EQ(guard.countFindings(FindingKind::kDataRace), 0u);

    feed(lockEvent(0, kLockA, true));
    feed(accessEvent(0, kData, true)); // C = {} -> race
    feed(lockEvent(0, kLockA, false));
    EXPECT_EQ(guard.countFindings(FindingKind::kDataRace), 1u);
}

TEST_F(LockSetTest, LocksetRefinesToCommonSubset)
{
    // Thread 0 holds {A,B}; thread 1 holds {A}: candidate refines to
    // {A}, which is non-empty -> no race.
    feed(lockEvent(0, kLockA, true));
    feed(lockEvent(0, kLockB, true));
    feed(accessEvent(0, kData, true));
    feed(lockEvent(0, kLockB, false));
    feed(lockEvent(0, kLockA, false));

    feed(lockEvent(1, kLockA, true));
    feed(accessEvent(1, kData, true));
    feed(lockEvent(1, kLockA, false));
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(LockSetTest, ExclusiveTransferDoesNotReportFirstOwner)
{
    // Classic Eraser subtlety: first thread unlocked, but state was
    // Exclusive; the report happens only once sharing with empty
    // lockset is observed on a write.
    feed(accessEvent(0, kData, true));
    feed(lockEvent(1, kLockA, true));
    feed(accessEvent(1, kData, false)); // Shared, C = {A}
    feed(lockEvent(1, kLockA, false));
    EXPECT_TRUE(guard.findings().empty());
    feed(accessEvent(0, kData, true)); // write with no locks: C = {}
    EXPECT_EQ(guard.countFindings(FindingKind::kDataRace), 1u);
}

TEST_F(LockSetTest, ThreadLocksetTracksAcquisitions)
{
    EXPECT_EQ(guard.threadLockset(0), LocksetTable::kEmpty);
    feed(lockEvent(0, kLockA, true));
    std::uint32_t a = guard.threadLockset(0);
    EXPECT_NE(a, LocksetTable::kEmpty);
    feed(lockEvent(0, kLockB, true));
    EXPECT_NE(guard.threadLockset(0), a);
    feed(lockEvent(0, kLockB, false));
    EXPECT_EQ(guard.threadLockset(0), a);
    feed(lockEvent(0, kLockA, false));
    EXPECT_EQ(guard.threadLockset(0), LocksetTable::kEmpty);
}

TEST_F(LockSetTest, FailedUnlockIsIgnored)
{
    EventRecord bad = lockEvent(0, kLockA, false);
    bad.aux = 0; // OS rejected the unlock (not the owner)
    feed(bad);
    EXPECT_EQ(guard.threadLockset(0), LocksetTable::kEmpty);
}

TEST_F(LockSetTest, DedupeOnePerGranule)
{
    feed(accessEvent(0, kData, true));
    feed(accessEvent(1, kData, true));
    feed(accessEvent(0, kData, true));
    feed(accessEvent(1, kData, true));
    EXPECT_EQ(guard.findings().size(), 1u);
    // A different granule reports separately.
    feed(accessEvent(0, kData + 64, true));
    feed(accessEvent(1, kData + 64, true));
    EXPECT_EQ(guard.findings().size(), 2u);
}

TEST_F(LockSetTest, ReallocationResetsGranuleState)
{
    // Block used (and raced on) in its first life...
    feed(accessEvent(0, kData, true));
    feed(accessEvent(1, kData, true));
    EXPECT_EQ(guard.findings().size(), 1u);
    // ...is freed and reallocated: new life starts Virgin.
    EventRecord alloc;
    alloc.type = EventType::kAlloc;
    alloc.addr = kData;
    alloc.aux = 64;
    feed(alloc);
    EXPECT_EQ(guard.granuleState(kData), LockSet::kVirgin);
    feed(accessEvent(1, kData, true));
    EXPECT_EQ(guard.granuleState(kData), LockSet::kExclusive);
    EXPECT_EQ(guard.findings().size(), 1u); // no new report
}

TEST_F(LockSetTest, RangeFilterSkipsOutsideAddresses)
{
    LockSetConfig cfg;
    cfg.check_base = 0x10000000;
    cfg.check_bytes = 0x1000;
    LockSet filtered(cfg);
    // Racy accesses outside the checked range: ignored.
    filtered.handleEvent(accessEvent(0, 0x7fff0000, true), sink);
    filtered.handleEvent(accessEvent(1, 0x7fff0000, true), sink);
    EXPECT_TRUE(filtered.findings().empty());
    // Inside the range: detected.
    filtered.handleEvent(accessEvent(0, 0x10000010, true), sink);
    filtered.handleEvent(accessEvent(1, 0x10000010, true), sink);
    EXPECT_EQ(filtered.findings().size(), 1u);
}

TEST_F(LockSetTest, SharedStateCostsMoreThanExclusive)
{
    class CountingSink : public lifeguard::CostSink
    {
      public:
        void instrs(std::uint32_t n) override { total += n; }
        void memAccess(Addr, bool) override { total += 2; }
        std::uint64_t total = 0;
    };
    CountingSink counting;
    guard.handleEvent(accessEvent(0, kData, false), counting);
    guard.handleEvent(accessEvent(0, kData, false), counting);
    std::uint64_t exclusive_cost = counting.total;

    guard.handleEvent(accessEvent(1, kData, false), counting); // Shared
    counting.total = 0;
    guard.handleEvent(accessEvent(1, kData, false), counting);
    std::uint64_t shared_cost = counting.total;
    EXPECT_GT(shared_cost, exclusive_cost / 2);
    EXPECT_GT(shared_cost, 10u);
}

} // namespace
} // namespace lba::lifeguards
