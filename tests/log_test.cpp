/**
 * @file
 * Tests for event records, the capture unit, and the log buffer —
 * including the cross-thread SPSC torture tests backing the lock-free
 * ring (run under ThreadSanitizer in CI) and the threaded-execution
 * determinism property.
 */

#include <gtest/gtest.h>

#include <thread>

#include "asm/assembler.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "log/capture.h"
#include "log/event.h"
#include "log/log_buffer.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::log {
namespace {

TEST(EventType, InstrClassMappingIsValuePreserving)
{
    EXPECT_EQ(eventTypeOf(isa::InstrClass::kLoad), EventType::kLoad);
    EXPECT_EQ(eventTypeOf(isa::InstrClass::kSyscall),
              EventType::kSyscall);
    EXPECT_EQ(eventTypeOf(sim::OsEventType::kAlloc), EventType::kAlloc);
    EXPECT_EQ(eventTypeOf(sim::OsEventType::kThreadExit),
              EventType::kThreadExit);
}

TEST(EventType, AnnotationPredicate)
{
    EXPECT_FALSE(isAnnotation(EventType::kLoad));
    EXPECT_FALSE(isAnnotation(EventType::kSyscall));
    EXPECT_TRUE(isAnnotation(EventType::kAlloc));
    EXPECT_TRUE(isAnnotation(EventType::kThreadExit));
}

TEST(EventType, NamesExist)
{
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        EXPECT_NE(eventTypeName(static_cast<EventType>(i)), nullptr);
    }
}

TEST(Capture, RecordFromMemoryRetirement)
{
    sim::Retired r;
    r.tid = 2;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kLd, 4, 5, 0, 8};
    r.mem_addr = 0x2008;
    r.mem_bytes = 8;
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.type, EventType::kLoad);
    EXPECT_EQ(rec.pc, 0x1000u);
    EXPECT_EQ(rec.tid, 2u);
    EXPECT_EQ(rec.rd, 4u);
    EXPECT_EQ(rec.rs1, 5u);
    EXPECT_EQ(rec.addr, 0x2008u);
    EXPECT_EQ(rec.aux, 8u);
}

TEST(Capture, RecordFromTakenBranch)
{
    sim::Retired r;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kBne, 0, 1, 2, 0x40};
    r.ctrl_taken = true;
    r.ctrl_target = 0x1040;
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.type, EventType::kBranch);
    EXPECT_EQ(rec.addr, 0x1040u);
    EXPECT_EQ(rec.aux, 1u);
}

TEST(Capture, RecordFromNotTakenBranch)
{
    sim::Retired r;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kBne, 0, 1, 2, 0x40};
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.addr, 0u);
    EXPECT_EQ(rec.aux, 0u);
}

TEST(Capture, RecordFromOsEvent)
{
    sim::OsEvent e{sim::OsEventType::kAlloc, 1, 0x10000000, 64};
    EventRecord rec = CaptureUnit::makeRecord(e);
    EXPECT_EQ(rec.type, EventType::kAlloc);
    EXPECT_EQ(rec.tid, 1u);
    EXPECT_EQ(rec.addr, 0x10000000u);
    EXPECT_EQ(rec.aux, 64u);
}

TEST(Capture, StreamsWholeProgramInOrder)
{
    auto r = assembler::assemble(R"(
        li r5, 0x100000
        ld r1, 0(r5)
        li r1, 16
        syscall 1
        halt
    )");
    ASSERT_TRUE(r.ok());
    std::vector<EventRecord> records;
    CaptureUnit capture(
        [&](const EventRecord& rec) { records.push_back(rec); });
    sim::Process p;
    p.load(r.program);
    p.run(&capture);

    // 5 instruction events + Alloc + ThreadExit annotations.
    ASSERT_EQ(records.size(), 7u);
    EXPECT_EQ(records[0].type, EventType::kLoadImm);
    EXPECT_EQ(records[1].type, EventType::kLoad);
    EXPECT_EQ(records[3].type, EventType::kSyscall);
    EXPECT_EQ(records[4].type, EventType::kAlloc);
    EXPECT_EQ(records[5].type, EventType::kHalt);
    EXPECT_EQ(records[6].type, EventType::kThreadExit);
    // PCs advance by 8.
    EXPECT_EQ(records[1].pc, records[0].pc + 8);
}

TEST(LogBuffer, FifoOrder)
{
    LogBuffer buf(4);
    for (int i = 0; i < 3; ++i) {
        EventRecord rec;
        rec.pc = 0x1000 + i * 8;
        EXPECT_TRUE(buf.push(rec, i * 10));
    }
    LogBuffer::Entry e;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(buf.pop(&e));
        EXPECT_EQ(e.record.pc, 0x1000u + i * 8);
        EXPECT_EQ(e.produced_at, static_cast<Cycles>(i * 10));
    }
    EXPECT_TRUE(buf.empty());
}

TEST(LogBuffer, CapacityAndFullEvents)
{
    LogBuffer buf(2);
    EventRecord rec;
    EXPECT_TRUE(buf.push(rec, 0));
    EXPECT_TRUE(buf.push(rec, 1));
    EXPECT_TRUE(buf.full());
    EXPECT_FALSE(buf.push(rec, 2));
    EXPECT_EQ(buf.stats().full_events, 1u);
    LogBuffer::Entry e;
    buf.pop(&e);
    EXPECT_TRUE(buf.push(rec, 3));
}

TEST(LogBuffer, EmptyPopFails)
{
    LogBuffer buf(2);
    LogBuffer::Entry e;
    EXPECT_FALSE(buf.pop(&e));
    EXPECT_EQ(buf.stats().empty_events, 1u);
    EXPECT_EQ(buf.front(), nullptr);
}

TEST(LogBuffer, TracksMaxOccupancy)
{
    LogBuffer buf(8);
    EventRecord rec;
    buf.push(rec, 0);
    buf.push(rec, 0);
    buf.push(rec, 0);
    buf.pop(nullptr);
    buf.push(rec, 0);
    EXPECT_EQ(buf.stats().max_occupancy, 3u);
    EXPECT_EQ(buf.stats().pushes, 4u);
    EXPECT_EQ(buf.stats().pops, 1u);
}

/** Property: random interleaving never loses or duplicates records. */
TEST(LogBuffer, RandomInterleavingPreservesStream)
{
    LogBuffer buf(16);
    std::uint64_t state = 7;
    std::uint64_t pushed = 0, popped = 0;
    std::vector<std::uint64_t> out;
    while (popped < 1000) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        bool do_push = (state & 1) && pushed < 1000;
        if (do_push) {
            EventRecord rec;
            rec.addr = pushed;
            if (buf.push(rec, pushed)) ++pushed;
        } else if (!buf.empty()) {
            LogBuffer::Entry e;
            ASSERT_TRUE(buf.pop(&e));
            out.push_back(e.record.addr);
            ++popped;
        } else if (pushed >= 1000) {
            break;
        }
    }
    // Drain.
    LogBuffer::Entry e;
    while (buf.pop(&e)) out.push_back(e.record.addr);
    ASSERT_EQ(out.size(), pushed);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i);
    }
}

TEST(LogBuffer, FrontSpanIsContiguousPrefix)
{
    LogBuffer buf(8);
    for (int i = 0; i < 5; ++i) {
        EventRecord rec;
        rec.pc = 0x1000 + i * 8;
        ASSERT_TRUE(buf.push(rec, i));
    }
    auto span = buf.frontSpan(3);
    ASSERT_EQ(span.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(span[i].record.pc, 0x1000u + i * 8);
        EXPECT_EQ(span[i].produced_at, static_cast<Cycles>(i));
    }
    // A view larger than the occupancy clips to it.
    EXPECT_EQ(buf.frontSpan(100).size(), 5u);
    // Peeking does not consume.
    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(buf.stats().pops, 0u);
}

TEST(LogBuffer, PopNRetiresOldestAndCountsPops)
{
    LogBuffer buf(8);
    EventRecord rec;
    for (int i = 0; i < 6; ++i) {
        rec.addr = static_cast<Addr>(i);
        buf.push(rec, i);
    }
    buf.popN(4);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.stats().pops, 4u);
    ASSERT_NE(buf.front(), nullptr);
    EXPECT_EQ(buf.front()->record.addr, 4u);
}

TEST(LogBuffer, FrontSpanClipsAtRingWrapThenExposesRemainder)
{
    // Fill, drain 3, refill: the queue now wraps the ring boundary.
    LogBuffer buf(4);
    EventRecord rec;
    for (int i = 0; i < 4; ++i) {
        rec.addr = static_cast<Addr>(i);
        buf.push(rec, i);
    }
    buf.popN(3);
    for (int i = 4; i < 7; ++i) {
        rec.addr = static_cast<Addr>(i);
        ASSERT_TRUE(buf.push(rec, i));
    }
    ASSERT_EQ(buf.size(), 4u);

    // First span: only the tail of the ring (entry 3) is contiguous.
    auto head = buf.frontSpan(100);
    ASSERT_EQ(head.size(), 1u);
    EXPECT_EQ(head[0].record.addr, 3u);
    buf.popN(head.size());

    // Second span: the wrapped remainder, contiguous from slot 0.
    auto tail = buf.frontSpan(100);
    ASSERT_EQ(tail.size(), 3u);
    for (std::size_t i = 0; i < tail.size(); ++i) {
        EXPECT_EQ(tail[i].record.addr, 4u + i);
    }
}

/** Property: batch pops interleaved with pushes preserve the stream. */
TEST(LogBuffer, BatchDrainPreservesStream)
{
    LogBuffer buf(16);
    std::uint64_t state = 99;
    std::uint64_t pushed = 0;
    std::vector<std::uint64_t> out;
    while (out.size() < 1000) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if ((state & 3) != 0 && pushed < 1000 && !buf.full()) {
            EventRecord rec;
            rec.addr = pushed;
            ASSERT_TRUE(buf.push(rec, pushed));
            ++pushed;
        } else if (!buf.empty()) {
            auto span = buf.frontSpan(1 + (state % 8));
            ASSERT_FALSE(span.empty());
            for (const auto& entry : span) {
                out.push_back(entry.record.addr);
            }
            buf.popN(span.size());
        } else if (pushed >= 1000) {
            break;
        }
    }
    while (!buf.empty()) {
        out.push_back(buf.front()->record.addr);
        buf.popN(1);
    }
    ASSERT_EQ(out.size(), pushed);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i);
    }
}

/**
 * SPSC torture: a real producer thread races a real consumer over a
 * small ring for millions of records, the consumer mixing pop(),
 * frontSpan()/popN() and randomized batch sizes. The sequence check
 * (addr == arrival index) proves no record is lost, duplicated,
 * reordered or torn; the TSan CI job backs the memory-order argument
 * in log_buffer.h.
 */
TEST(LogBufferSpsc, CrossThreadTorturePreservesStream)
{
    constexpr std::uint64_t kRecords = 2'000'000;
    LogBuffer buf(1024);

    std::thread producer([&buf] {
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            EventRecord rec;
            rec.addr = static_cast<Addr>(i);
            while (!buf.push(rec, static_cast<Cycles>(i))) {
                std::this_thread::yield();
            }
        }
    });

    std::uint64_t state = 42;
    std::uint64_t next = 0;
    std::uint64_t mismatches = 0;
    while (next < kRecords) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if (state & 1) {
            auto span = buf.frontSpan(1 + (state % 64));
            if (span.empty()) {
                std::this_thread::yield();
                continue;
            }
            for (const auto& entry : span) {
                if (entry.record.addr != next ||
                    entry.produced_at != next) {
                    ++mismatches;
                }
                ++next;
            }
            buf.popN(span.size());
        } else {
            LogBuffer::Entry entry;
            if (!buf.pop(&entry)) {
                std::this_thread::yield();
                continue;
            }
            if (entry.record.addr != next) ++mismatches;
            ++next;
        }
    }
    producer.join();

    EXPECT_EQ(mismatches, 0u);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.stats().pushes, kRecords);
    EXPECT_EQ(buf.stats().pops, kRecords);
}

/** Same race on a capacity-3 ring: every few records cross the wrap
 *  boundary, so the cached index arithmetic is exercised constantly
 *  and producer and consumer are almost always a slot apart. */
TEST(LogBufferSpsc, TinyCapacityWrapStress)
{
    constexpr std::uint64_t kRecords = 200'000;
    LogBuffer buf(3);

    std::thread producer([&buf] {
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            EventRecord rec;
            rec.addr = static_cast<Addr>(i);
            while (!buf.push(rec, static_cast<Cycles>(i))) {
                std::this_thread::yield();
            }
        }
    });

    std::uint64_t next = 0;
    std::uint64_t mismatches = 0;
    while (next < kRecords) {
        auto span = buf.frontSpan(2);
        if (span.empty()) {
            std::this_thread::yield();
            continue;
        }
        for (const auto& entry : span) {
            if (entry.record.addr != next) ++mismatches;
            ++next;
        }
        buf.popN(span.size());
    }
    producer.join();

    EXPECT_EQ(mismatches, 0u);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.stats().pops, kRecords);
}

/**
 * Determinism property: threaded execution must not let host thread
 * scheduling leak into results — the same program gives bit-identical
 * stats and findings on every one of 50 runs. (Each run spawns fresh
 * worker threads, so 50 runs sample 50 host schedules.)
 */
TEST(ThreadedDeterminism, FiftyRunsBitIdentical)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    auto gen = workload::generate(*workload::findProfile("bc"), bugs,
                                  5000);
    core::LbaConfig lba;
    lba.execution = core::ExecutionMode::kThreaded;
    auto factory = [] {
        return std::make_unique<lifeguards::AddrCheck>();
    };
    core::Experiment exp(gen.program);
    core::PlatformResult first = exp.runLba(factory, lba);
    EXPECT_GT(first.findings.size(), 0u);

    for (int run = 1; run < 50; ++run) {
        SCOPED_TRACE(run);
        core::PlatformResult result = exp.runLba(factory, lba);
        EXPECT_EQ(result.cycles, first.cycles);
        EXPECT_EQ(result.lba.total_cycles, first.lba.total_cycles);
        EXPECT_EQ(result.lba.app_cycles, first.lba.app_cycles);
        EXPECT_EQ(result.lba.records_logged, first.lba.records_logged);
        EXPECT_EQ(result.lba.lifeguard_busy_cycles,
                  first.lba.lifeguard_busy_cycles);
        EXPECT_EQ(result.lba.backpressure_stall_cycles,
                  first.lba.backpressure_stall_cycles);
        EXPECT_EQ(result.lba.syscall_stall_cycles,
                  first.lba.syscall_stall_cycles);
        EXPECT_EQ(result.lba.mean_consume_lag,
                  first.lba.mean_consume_lag);
        ASSERT_EQ(result.findings.size(), first.findings.size());
        for (std::size_t i = 0; i < first.findings.size(); ++i) {
            EXPECT_EQ(result.findings[i].kind, first.findings[i].kind);
            EXPECT_EQ(result.findings[i].pc, first.findings[i].pc);
            EXPECT_EQ(result.findings[i].addr, first.findings[i].addr);
        }
    }
}

TEST(EventRecord, ToStringMentionsTypeAndPc)
{
    EventRecord rec;
    rec.type = EventType::kStore;
    rec.pc = 0xabc;
    std::string s = toString(rec);
    EXPECT_NE(s.find("Store"), std::string::npos);
    EXPECT_NE(s.find("abc"), std::string::npos);
}

} // namespace
} // namespace lba::log
