/**
 * @file
 * Tests for event records, the capture unit, and the log buffer.
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "log/capture.h"
#include "log/event.h"
#include "log/log_buffer.h"
#include "sim/process.h"

namespace lba::log {
namespace {

TEST(EventType, InstrClassMappingIsValuePreserving)
{
    EXPECT_EQ(eventTypeOf(isa::InstrClass::kLoad), EventType::kLoad);
    EXPECT_EQ(eventTypeOf(isa::InstrClass::kSyscall),
              EventType::kSyscall);
    EXPECT_EQ(eventTypeOf(sim::OsEventType::kAlloc), EventType::kAlloc);
    EXPECT_EQ(eventTypeOf(sim::OsEventType::kThreadExit),
              EventType::kThreadExit);
}

TEST(EventType, AnnotationPredicate)
{
    EXPECT_FALSE(isAnnotation(EventType::kLoad));
    EXPECT_FALSE(isAnnotation(EventType::kSyscall));
    EXPECT_TRUE(isAnnotation(EventType::kAlloc));
    EXPECT_TRUE(isAnnotation(EventType::kThreadExit));
}

TEST(EventType, NamesExist)
{
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        EXPECT_NE(eventTypeName(static_cast<EventType>(i)), nullptr);
    }
}

TEST(Capture, RecordFromMemoryRetirement)
{
    sim::Retired r;
    r.tid = 2;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kLd, 4, 5, 0, 8};
    r.mem_addr = 0x2008;
    r.mem_bytes = 8;
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.type, EventType::kLoad);
    EXPECT_EQ(rec.pc, 0x1000u);
    EXPECT_EQ(rec.tid, 2u);
    EXPECT_EQ(rec.rd, 4u);
    EXPECT_EQ(rec.rs1, 5u);
    EXPECT_EQ(rec.addr, 0x2008u);
    EXPECT_EQ(rec.aux, 8u);
}

TEST(Capture, RecordFromTakenBranch)
{
    sim::Retired r;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kBne, 0, 1, 2, 0x40};
    r.ctrl_taken = true;
    r.ctrl_target = 0x1040;
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.type, EventType::kBranch);
    EXPECT_EQ(rec.addr, 0x1040u);
    EXPECT_EQ(rec.aux, 1u);
}

TEST(Capture, RecordFromNotTakenBranch)
{
    sim::Retired r;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kBne, 0, 1, 2, 0x40};
    EventRecord rec = CaptureUnit::makeRecord(r);
    EXPECT_EQ(rec.addr, 0u);
    EXPECT_EQ(rec.aux, 0u);
}

TEST(Capture, RecordFromOsEvent)
{
    sim::OsEvent e{sim::OsEventType::kAlloc, 1, 0x10000000, 64};
    EventRecord rec = CaptureUnit::makeRecord(e);
    EXPECT_EQ(rec.type, EventType::kAlloc);
    EXPECT_EQ(rec.tid, 1u);
    EXPECT_EQ(rec.addr, 0x10000000u);
    EXPECT_EQ(rec.aux, 64u);
}

TEST(Capture, StreamsWholeProgramInOrder)
{
    auto r = assembler::assemble(R"(
        li r5, 0x100000
        ld r1, 0(r5)
        li r1, 16
        syscall 1
        halt
    )");
    ASSERT_TRUE(r.ok());
    std::vector<EventRecord> records;
    CaptureUnit capture(
        [&](const EventRecord& rec) { records.push_back(rec); });
    sim::Process p;
    p.load(r.program);
    p.run(&capture);

    // 5 instruction events + Alloc + ThreadExit annotations.
    ASSERT_EQ(records.size(), 7u);
    EXPECT_EQ(records[0].type, EventType::kLoadImm);
    EXPECT_EQ(records[1].type, EventType::kLoad);
    EXPECT_EQ(records[3].type, EventType::kSyscall);
    EXPECT_EQ(records[4].type, EventType::kAlloc);
    EXPECT_EQ(records[5].type, EventType::kHalt);
    EXPECT_EQ(records[6].type, EventType::kThreadExit);
    // PCs advance by 8.
    EXPECT_EQ(records[1].pc, records[0].pc + 8);
}

TEST(LogBuffer, FifoOrder)
{
    LogBuffer buf(4);
    for (int i = 0; i < 3; ++i) {
        EventRecord rec;
        rec.pc = 0x1000 + i * 8;
        EXPECT_TRUE(buf.push(rec, i * 10));
    }
    LogBuffer::Entry e;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(buf.pop(&e));
        EXPECT_EQ(e.record.pc, 0x1000u + i * 8);
        EXPECT_EQ(e.produced_at, static_cast<Cycles>(i * 10));
    }
    EXPECT_TRUE(buf.empty());
}

TEST(LogBuffer, CapacityAndFullEvents)
{
    LogBuffer buf(2);
    EventRecord rec;
    EXPECT_TRUE(buf.push(rec, 0));
    EXPECT_TRUE(buf.push(rec, 1));
    EXPECT_TRUE(buf.full());
    EXPECT_FALSE(buf.push(rec, 2));
    EXPECT_EQ(buf.stats().full_events, 1u);
    LogBuffer::Entry e;
    buf.pop(&e);
    EXPECT_TRUE(buf.push(rec, 3));
}

TEST(LogBuffer, EmptyPopFails)
{
    LogBuffer buf(2);
    LogBuffer::Entry e;
    EXPECT_FALSE(buf.pop(&e));
    EXPECT_EQ(buf.stats().empty_events, 1u);
    EXPECT_EQ(buf.front(), nullptr);
}

TEST(LogBuffer, TracksMaxOccupancy)
{
    LogBuffer buf(8);
    EventRecord rec;
    buf.push(rec, 0);
    buf.push(rec, 0);
    buf.push(rec, 0);
    buf.pop(nullptr);
    buf.push(rec, 0);
    EXPECT_EQ(buf.stats().max_occupancy, 3u);
    EXPECT_EQ(buf.stats().pushes, 4u);
    EXPECT_EQ(buf.stats().pops, 1u);
}

/** Property: random interleaving never loses or duplicates records. */
TEST(LogBuffer, RandomInterleavingPreservesStream)
{
    LogBuffer buf(16);
    std::uint64_t state = 7;
    std::uint64_t pushed = 0, popped = 0;
    std::vector<std::uint64_t> out;
    while (popped < 1000) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        bool do_push = (state & 1) && pushed < 1000;
        if (do_push) {
            EventRecord rec;
            rec.addr = pushed;
            if (buf.push(rec, pushed)) ++pushed;
        } else if (!buf.empty()) {
            LogBuffer::Entry e;
            ASSERT_TRUE(buf.pop(&e));
            out.push_back(e.record.addr);
            ++popped;
        } else if (pushed >= 1000) {
            break;
        }
    }
    // Drain.
    LogBuffer::Entry e;
    while (buf.pop(&e)) out.push_back(e.record.addr);
    ASSERT_EQ(out.size(), pushed);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i);
    }
}

TEST(LogBuffer, FrontSpanIsContiguousPrefix)
{
    LogBuffer buf(8);
    for (int i = 0; i < 5; ++i) {
        EventRecord rec;
        rec.pc = 0x1000 + i * 8;
        ASSERT_TRUE(buf.push(rec, i));
    }
    auto span = buf.frontSpan(3);
    ASSERT_EQ(span.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(span[i].record.pc, 0x1000u + i * 8);
        EXPECT_EQ(span[i].produced_at, static_cast<Cycles>(i));
    }
    // A view larger than the occupancy clips to it.
    EXPECT_EQ(buf.frontSpan(100).size(), 5u);
    // Peeking does not consume.
    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(buf.stats().pops, 0u);
}

TEST(LogBuffer, PopNRetiresOldestAndCountsPops)
{
    LogBuffer buf(8);
    EventRecord rec;
    for (int i = 0; i < 6; ++i) {
        rec.addr = static_cast<Addr>(i);
        buf.push(rec, i);
    }
    buf.popN(4);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.stats().pops, 4u);
    ASSERT_NE(buf.front(), nullptr);
    EXPECT_EQ(buf.front()->record.addr, 4u);
}

TEST(LogBuffer, FrontSpanClipsAtRingWrapThenExposesRemainder)
{
    // Fill, drain 3, refill: the queue now wraps the ring boundary.
    LogBuffer buf(4);
    EventRecord rec;
    for (int i = 0; i < 4; ++i) {
        rec.addr = static_cast<Addr>(i);
        buf.push(rec, i);
    }
    buf.popN(3);
    for (int i = 4; i < 7; ++i) {
        rec.addr = static_cast<Addr>(i);
        ASSERT_TRUE(buf.push(rec, i));
    }
    ASSERT_EQ(buf.size(), 4u);

    // First span: only the tail of the ring (entry 3) is contiguous.
    auto head = buf.frontSpan(100);
    ASSERT_EQ(head.size(), 1u);
    EXPECT_EQ(head[0].record.addr, 3u);
    buf.popN(head.size());

    // Second span: the wrapped remainder, contiguous from slot 0.
    auto tail = buf.frontSpan(100);
    ASSERT_EQ(tail.size(), 3u);
    for (std::size_t i = 0; i < tail.size(); ++i) {
        EXPECT_EQ(tail[i].record.addr, 4u + i);
    }
}

/** Property: batch pops interleaved with pushes preserve the stream. */
TEST(LogBuffer, BatchDrainPreservesStream)
{
    LogBuffer buf(16);
    std::uint64_t state = 99;
    std::uint64_t pushed = 0;
    std::vector<std::uint64_t> out;
    while (out.size() < 1000) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if ((state & 3) != 0 && pushed < 1000 && !buf.full()) {
            EventRecord rec;
            rec.addr = pushed;
            ASSERT_TRUE(buf.push(rec, pushed));
            ++pushed;
        } else if (!buf.empty()) {
            auto span = buf.frontSpan(1 + (state % 8));
            ASSERT_FALSE(span.empty());
            for (const auto& entry : span) {
                out.push_back(entry.record.addr);
            }
            buf.popN(span.size());
        } else if (pushed >= 1000) {
            break;
        }
    }
    while (!buf.empty()) {
        out.push_back(buf.front()->record.addr);
        buf.popN(1);
    }
    ASSERT_EQ(out.size(), pushed);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i);
    }
}

TEST(EventRecord, ToStringMentionsTypeAndPc)
{
    EventRecord rec;
    rec.type = EventType::kStore;
    rec.pc = 0xabc;
    std::string s = toString(rec);
    EXPECT_NE(s.find("Store"), std::string::npos);
    EXPECT_NE(s.find("abc"), std::string::npos);
}

} // namespace
} // namespace lba::log
