/**
 * @file
 * Codec-selection differential tests: LbaConfig::codec must change
 * only the transport accounting, never the simulated execution.
 * Naming the default codec explicitly is cycle-identical to saying
 * nothing; at unlimited transport bandwidth every codec is
 * cycle-identical (bytes cross instantly regardless of how many);
 * at finite bandwidth the fatter codecs pay more transport wait —
 * which is exactly the paper's argument for compressing the log.
 */

#include <gtest/gtest.h>

#include "compress/registry.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba {
namespace {

core::LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

std::vector<isa::Instruction>
program()
{
    static const auto generated = workload::generate(
        *workload::findProfile("gzip"), {}, 40000);
    return generated.program;
}

TEST(CodecSelection, ExplicitDefaultMatchesImplicitDefault)
{
    core::Experiment exp(program());
    auto implicit = exp.runLba(addrcheck());

    core::LbaConfig config;
    config.codec = compress::kDefaultCodec;
    auto explicit_default = exp.runLba(addrcheck(), config);

    EXPECT_EQ(implicit.cycles, explicit_default.cycles);
    EXPECT_EQ(implicit.lba.total_cycles,
              explicit_default.lba.total_cycles);
    EXPECT_DOUBLE_EQ(implicit.lba.bytes_per_record,
                     explicit_default.lba.bytes_per_record);
    EXPECT_EQ(implicit.lba.codec, "predictor");
    EXPECT_EQ(explicit_default.lba.codec, "predictor");
}

TEST(CodecSelection, UnlimitedBandwidthIsCycleIdenticalAcrossCodecs)
{
    core::Experiment exp(program());
    core::LbaConfig config; // transport_bytes_per_cycle = 0: unlimited
    auto baseline = exp.runLba(addrcheck(), config);

    for (const std::string& name :
         compress::CodecRegistry::instance().names()) {
        config.codec = name;
        auto result = exp.runLba(addrcheck(), config);
        EXPECT_EQ(result.cycles, baseline.cycles) << name;
        EXPECT_EQ(result.lba.total_cycles, baseline.lba.total_cycles)
            << name;
        EXPECT_EQ(result.lba.records_logged,
                  baseline.lba.records_logged)
            << name;
        EXPECT_EQ(result.lba.codec, name);
        EXPECT_GT(result.lba.transport_bytes, 0.0) << name;
    }
}

TEST(CodecSelection, CodecsDifferOnlyInTransportBytes)
{
    core::Experiment exp(program());
    core::LbaConfig config;

    config.codec = "predictor";
    auto predictor = exp.runLba(addrcheck(), config);
    config.codec = "varint";
    auto varint = exp.runLba(addrcheck(), config);

    // Same stream, very different wire sizes: the predictor's
    // value-prediction bits against byte-aligned varint fields.
    EXPECT_LT(predictor.lba.bytes_per_record,
              varint.lba.bytes_per_record);
    EXPECT_LT(predictor.lba.transport_bytes,
              varint.lba.transport_bytes);
    EXPECT_EQ(predictor.lba.records_logged, varint.lba.records_logged);
}

TEST(CodecSelection, FiniteBandwidthMakesFatterCodecsStall)
{
    core::Experiment exp(program());
    core::LbaConfig config;
    // Tight link: the predictor's < 1 B/record fits, the ~12 B/record
    // varint stream has to wait on the transport.
    config.transport_bytes_per_cycle = 1.0;

    config.codec = "predictor";
    auto predictor = exp.runLba(addrcheck(), config);
    config.codec = "varint";
    auto varint = exp.runLba(addrcheck(), config);

    EXPECT_GT(varint.lba.transport_wait_cycles,
              predictor.lba.transport_wait_cycles);
    EXPECT_GE(varint.lba.total_cycles, predictor.lba.total_cycles);
}

TEST(CodecSelection, UnknownCodecNameTrapsAtConstruction)
{
    core::LbaConfig config;
    config.codec = "no-such-codec";
    core::Experiment exp(program());
    EXPECT_DEATH(exp.runLba(addrcheck(), config),
                 "no registered codec");
}

} // namespace
} // namespace lba
