/**
 * @file
 * Build-level smoke tests: run the lba_run and lba_trace tools
 * end-to-end on a tiny workload, once per lifeguard, and assert they
 * exit 0 — so tool-level regressions (argument parsing, report
 * printing, trace I/O) are caught by tier-1 even when the library
 * suites still pass.
 *
 * Tool binary paths are injected by CMake via LBA_RUN_PATH /
 * LBA_TRACE_PATH; without them (e.g. a non-CMake build) the suite
 * skips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef LBA_RUN_PATH
#define LBA_RUN_PATH ""
#endif
#ifndef LBA_TRACE_PATH
#define LBA_TRACE_PATH ""
#endif

/** Runs @p command, returns its exit status (-1 on spawn failure). */
int
runCommand(const std::string& command)
{
    int status = std::system(command.c_str());
#if defined(_WIN32)
    return status;
#else
    if (status == -1 || !WIFEXITED(status)) {
        return -1;
    }
    return WEXITSTATUS(status);
#endif
}

class SmokeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (std::string(LBA_RUN_PATH).empty()) {
            GTEST_SKIP() << "tool paths not configured";
        }
    }
};

TEST_F(SmokeTest, LbaRunEachLifeguardExitsZero)
{
    for (const char* lifeguard : {"addrcheck", "taintcheck", "lockset"}) {
        std::string cmd = std::string(LBA_RUN_PATH) + " gzip " + lifeguard +
                          " --instrs 20000 >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 0) << "lifeguard: " << lifeguard;
    }
}

TEST_F(SmokeTest, LbaRunBothPlatformsWithInjectedBug)
{
    std::string cmd = std::string(LBA_RUN_PATH) +
                      " gzip addrcheck --instrs 20000 --platform both"
                      " --bugs uaf >/dev/null 2>&1";
    EXPECT_EQ(runCommand(cmd), 0);
}

TEST_F(SmokeTest, LbaRunRejectsUnknownBenchmark)
{
    std::string cmd = std::string(LBA_RUN_PATH) +
                      " no-such-benchmark addrcheck >/dev/null 2>&1";
    EXPECT_NE(runCommand(cmd), 0);
}

TEST_F(SmokeTest, LbaRunContainmentReportsAndExitsZero)
{
    std::string json = ::testing::TempDir() + "smoke_containment.json";
    for (const char* policy :
         {"patch", "skip", "quarantine", "abort"}) {
        std::string cmd = std::string(LBA_RUN_PATH) +
                          " gzip addrcheck --instrs 20000 --platform lba"
                          " --bugs uaf --containment=" +
                          policy + " --json " + json +
                          " >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 0) << "policy: " << policy;
    }
    // The JSON report carries the ContainmentStats block.
    std::FILE* file = std::fopen(json.c_str(), "r");
    ASSERT_NE(file, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), file));
    std::fclose(file);
    EXPECT_NE(text.find("\"containment\""), std::string::npos);
    EXPECT_NE(text.find("\"rewinds\""), std::string::npos);
    std::remove(json.c_str());

    // Multi-tenant pool with per-tenant containment.
    std::string pool_cmd = std::string(LBA_RUN_PATH) +
                           " gzip,mcf addrcheck --instrs 15000"
                           " --tenants 2 --lanes 2 --bugs uaf"
                           " --containment patch >/dev/null 2>&1";
    EXPECT_EQ(runCommand(pool_cmd), 0);
}

TEST_F(SmokeTest, LbaRunTrailingValueFlagIsUsageErrorNotCrash)
{
    // A value flag as the last argument must print usage and exit 2 —
    // never read argv[argc].
    for (const char* flag :
         {"--instrs", "--platform", "--shards", "--tenants", "--lanes",
          "--sched", "--transport-bw", "--bugs", "--containment",
          "--checkpoint-interval", "--json"}) {
        std::string cmd = std::string(LBA_RUN_PATH) +
                          " gzip addrcheck " + flag + " >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 2) << "flag: " << flag;
    }
    // Unknown policy is rejected, not silently defaulted.
    std::string bad = std::string(LBA_RUN_PATH) +
                      " gzip addrcheck --containment=bogus"
                      " >/dev/null 2>&1";
    EXPECT_EQ(runCommand(bad), 2);
    // --checkpoint-interval without --containment is an error, not a
    // silently uncontained run.
    std::string orphan = std::string(LBA_RUN_PATH) +
                         " gzip addrcheck --checkpoint-interval 500"
                         " >/dev/null 2>&1";
    EXPECT_EQ(runCommand(orphan), 2);
    // Order-independent: interval before the policy flag still works.
    std::string ordered = std::string(LBA_RUN_PATH) +
                          " gzip addrcheck --instrs 15000"
                          " --checkpoint-interval 500"
                          " --containment patch --platform lba"
                          " >/dev/null 2>&1";
    EXPECT_EQ(runCommand(ordered), 0);
    // Containment on a DBI-only run would be silently ignored: reject.
    std::string dbi = std::string(LBA_RUN_PATH) +
                      " gzip addrcheck --platform dbi"
                      " --containment patch >/dev/null 2>&1";
    EXPECT_EQ(runCommand(dbi), 2);
}

TEST_F(SmokeTest, LbaRunDispatchTierFlagValidation)
{
    // Unknown tier names are usage errors (exit 2), in both the
    // `--flag value` and `--flag=value` spellings — never a silent
    // fall-back to the default tier.
    for (const char* spelling :
         {" --dispatch bogus", " --dispatch=bogus"}) {
        std::string cmd = std::string(LBA_RUN_PATH) + " gzip addrcheck" +
                          spelling + " >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 2) << "spelling: " << spelling;
    }
    // Every valid tier runs end-to-end, in both spellings.
    for (const char* spelling :
         {" --dispatch fused", " --dispatch=fused",
          " --dispatch batched", " --dispatch per-record"}) {
        std::string cmd = std::string(LBA_RUN_PATH) +
                          " gzip addrcheck --instrs 15000"
                          " --platform lba" +
                          spelling + " >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 0) << "spelling: " << spelling;
    }
    // The fused tier composes with threaded host execution...
    std::string threaded = std::string(LBA_RUN_PATH) +
                           " gzip addrcheck --instrs 15000"
                           " --platform lba --dispatch fused"
                           " --execution threaded >/dev/null 2>&1";
    EXPECT_EQ(runCommand(threaded), 0);
    // ...while per-record + threaded stays rejected.
    std::string per_record = std::string(LBA_RUN_PATH) +
                             " gzip addrcheck --dispatch per-record"
                             " --execution threaded >/dev/null 2>&1";
    EXPECT_EQ(runCommand(per_record), 2);
}

TEST_F(SmokeTest, LbaTraceMissingArgumentsAreUsageErrors)
{
    std::string base = std::string(LBA_TRACE_PATH);
    // Each subcommand with a missing trailing argument: usage, exit 2.
    EXPECT_EQ(runCommand(base + " gen gzip >/dev/null 2>&1"), 2);
    EXPECT_EQ(runCommand(base + " info >/dev/null 2>&1"), 2);
    EXPECT_EQ(runCommand(base + " dump >/dev/null 2>&1"), 2);
    EXPECT_EQ(runCommand(base + " >/dev/null 2>&1"), 2);
}

TEST_F(SmokeTest, LbaTraceGenInfoDumpRoundTrip)
{
    std::string trace = ::testing::TempDir() + "smoke_test.lbat";
    std::string base = std::string(LBA_TRACE_PATH);
    EXPECT_EQ(runCommand(base + " gen gzip " + trace +
                         " 20000 >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(base + " info " + trace + " >/dev/null 2>&1"), 0);
    EXPECT_EQ(runCommand(base + " dump " + trace + " 16 >/dev/null 2>&1"),
              0);
    std::remove(trace.c_str());
}

} // namespace
