/**
 * @file
 * Build-level smoke tests: run the lba_run and lba_trace tools
 * end-to-end on a tiny workload, once per lifeguard, and assert they
 * exit 0 — so tool-level regressions (argument parsing, report
 * printing, trace I/O) are caught by tier-1 even when the library
 * suites still pass.
 *
 * Tool binary paths are injected by CMake via LBA_RUN_PATH /
 * LBA_TRACE_PATH; without them (e.g. a non-CMake build) the suite
 * skips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef LBA_RUN_PATH
#define LBA_RUN_PATH ""
#endif
#ifndef LBA_TRACE_PATH
#define LBA_TRACE_PATH ""
#endif

/** Runs @p command, returns its exit status (-1 on spawn failure). */
int
runCommand(const std::string& command)
{
    int status = std::system(command.c_str());
#if defined(_WIN32)
    return status;
#else
    if (status == -1 || !WIFEXITED(status)) {
        return -1;
    }
    return WEXITSTATUS(status);
#endif
}

class SmokeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (std::string(LBA_RUN_PATH).empty()) {
            GTEST_SKIP() << "tool paths not configured";
        }
    }
};

TEST_F(SmokeTest, LbaRunEachLifeguardExitsZero)
{
    for (const char* lifeguard : {"addrcheck", "taintcheck", "lockset"}) {
        std::string cmd = std::string(LBA_RUN_PATH) + " gzip " + lifeguard +
                          " --instrs 20000 >/dev/null 2>&1";
        EXPECT_EQ(runCommand(cmd), 0) << "lifeguard: " << lifeguard;
    }
}

TEST_F(SmokeTest, LbaRunBothPlatformsWithInjectedBug)
{
    std::string cmd = std::string(LBA_RUN_PATH) +
                      " gzip addrcheck --instrs 20000 --platform both"
                      " --bugs uaf >/dev/null 2>&1";
    EXPECT_EQ(runCommand(cmd), 0);
}

TEST_F(SmokeTest, LbaRunRejectsUnknownBenchmark)
{
    std::string cmd = std::string(LBA_RUN_PATH) +
                      " no-such-benchmark addrcheck >/dev/null 2>&1";
    EXPECT_NE(runCommand(cmd), 0);
}

TEST_F(SmokeTest, LbaTraceGenInfoDumpRoundTrip)
{
    std::string trace = ::testing::TempDir() + "smoke_test.lbat";
    std::string base = std::string(LBA_TRACE_PATH);
    EXPECT_EQ(runCommand(base + " gen gzip " + trace +
                         " 20000 >/dev/null 2>&1"),
              0);
    EXPECT_EQ(runCommand(base + " info " + trace + " >/dev/null 2>&1"), 0);
    EXPECT_EQ(runCommand(base + " dump " + trace + " 16 >/dev/null 2>&1"),
              0);
    std::remove(trace.c_str());
}

} // namespace
