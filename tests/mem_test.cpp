/**
 * @file
 * Tests for sparse memory and the cache/hierarchy timing models,
 * including an LRU-correctness property check against a reference model.
 */

#include <gtest/gtest.h>

#include <list>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/memory.h"

namespace lba::mem {
namespace {

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read8(0x1234), 0u);
    EXPECT_EQ(m.read64(0xdeadbeef), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.write8(0x42, 0xab);
    EXPECT_EQ(m.read8(0x42), 0xab);
    EXPECT_EQ(m.numPages(), 1u);
}

TEST(Memory, Word64RoundTripLittleEndian)
{
    Memory m;
    m.write64(0x1000, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x1000), 0x1122334455667788ull);
    EXPECT_EQ(m.read8(0x1000), 0x88);
    EXPECT_EQ(m.read8(0x1007), 0x11);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr addr = Memory::kPageBytes - 4;
    m.write64(addr, 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.read64(addr), 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, Word32RoundTrip)
{
    Memory m;
    m.write32(0x2000, 0xcafebabe);
    EXPECT_EQ(m.read32(0x2000), 0xcafebabeu);
    EXPECT_EQ(m.readValue(0x2000, 4), 0xcafebabeull);
}

TEST(Memory, WriteBytesBulk)
{
    Memory m;
    std::uint8_t data[] = {1, 2, 3, 4, 5};
    m.writeBytes(0x3000, data, sizeof(data));
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(m.read8(0x3000 + i), i + 1);
    }
}

TEST(Cache, FirstAccessMissesThenHits)
{
    Cache c({"t", 1024, 64, 2});
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13f, false)); // same 64B line
    EXPECT_FALSE(c.access(0x140, false)); // next line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 64B lines, 2 sets -> 256B total.
    Cache c({"t", 256, 64, 2});
    // Three lines mapping to set 0: addresses 0, 128, 256.
    c.access(0, false);
    c.access(128, false);
    c.access(0, false);   // refresh 0
    c.access(256, false); // evicts 128 (LRU)
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(128));
    EXPECT_TRUE(c.probe(256));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c({"t", 256, 64, 2});
    c.access(0, true); // dirty
    c.access(128, false);
    c.access(256, false); // evicts dirty line 0
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c({"t", 1024, 64, 2});
    c.access(0x100, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.access(0x100, false)); // miss again
}

TEST(Cache, MissRatio)
{
    Cache c({"t", 1024, 64, 2});
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.25);
}

/**
 * Property: the cache agrees with a reference true-LRU model across a
 * pseudo-random access stream, for several geometries.
 */
class LruProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LruProperty, MatchesReferenceModel)
{
    auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{"t", static_cast<std::size_t>(size_kb) * 1024, 64,
                    static_cast<std::size_t>(assoc)};
    Cache cache(cfg);
    std::size_t sets = cache.numSets();

    // Reference: per-set list of line addresses, most recent first.
    std::vector<std::list<std::uint64_t>> ref(sets);

    std::uint64_t state = 99;
    for (int i = 0; i < 20000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Addr addr = (state % (1 << 22)); // 4MB address space
        std::uint64_t line = addr >> 6;
        std::size_t set = line & (sets - 1);

        auto& lru = ref[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        bool ref_hit = it != lru.end();
        if (ref_hit) lru.erase(it);
        lru.push_front(line);
        if (lru.size() > cfg.associativity) lru.pop_back();

        bool hit = cache.access(addr, false);
        ASSERT_EQ(hit, ref_hit) << "access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LruProperty,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(16, 1),
                      std::make_tuple(64, 8), std::make_tuple(4, 2)));

TEST(Hierarchy, PaperConfiguration)
{
    CacheHierarchy h(HierarchyConfig{});
    EXPECT_EQ(h.l1i(0).config().size_bytes, 16u * 1024);
    EXPECT_EQ(h.l1d(0).config().size_bytes, 16u * 1024);
    EXPECT_EQ(h.l2().config().size_bytes, 512u * 1024);
}

TEST(Hierarchy, LatenciesByLevel)
{
    HierarchyConfig cfg;
    cfg.l2_hit_cycles = 6;
    cfg.mem_cycles = 100;
    CacheHierarchy h(cfg);
    // Cold: L1 miss + L2 miss.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), 106u);
    // Warm L1.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), 0u);
    h.flushAll();
    // After flush: cold again.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), 106u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    h.dataAccess(0, 0x1000, false); // install in L1 + L2
    // Blow L1 (16KB, 4-way): touch 16KB/64 * 4 distinct lines mapping
    // everywhere.
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64) {
        h.dataAccess(0, a, false);
    }
    // 0x1000 should be out of L1 but still in 512KB L2.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), cfg.l2_hit_cycles);
}

TEST(Hierarchy, CoresHavePrivateL1s)
{
    HierarchyConfig cfg;
    cfg.num_cores = 2;
    CacheHierarchy h(cfg);
    h.dataAccess(0, 0x1000, false);
    // Core 1 misses its own L1 but hits the shared L2.
    EXPECT_EQ(h.dataAccess(1, 0x1000, false), cfg.l2_hit_cycles);
}

TEST(Hierarchy, SplitL1InstructionAndData)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    h.instrFetch(0, 0x1000);
    // A data access to the same address does not hit L1D (split caches),
    // but hits L2.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), cfg.l2_hit_cycles);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    CacheHierarchy h(HierarchyConfig{});
    h.dataAccess(0, 0x1000, false);
    h.resetStats();
    EXPECT_EQ(h.l1d(0).stats().accesses(), 0u);
    EXPECT_EQ(h.dataAccess(0, 0x1000, false), 0u); // still cached
}

} // namespace
} // namespace lba::mem
