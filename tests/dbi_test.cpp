/**
 * @file
 * Tests for the Valgrind-style DBI baseline: overhead accounting and the
 * platform-independence of findings.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "dbi/dbi_system.h"
#include "lifeguards/addrcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::dbi {
namespace {

TEST(Dbi, ChargesBaseOverheadPerInstruction)
{
    lifeguards::AddrCheck guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DbiConfig cfg;
    DbiSystem dbi(guard, hierarchy, cfg);

    sim::Retired r;
    r.pc = 0x10000;
    r.instr = {isa::Opcode::kAdd, 3, 1, 2, 0};
    dbi.onRetire(r);
    const DbiStats& s = dbi.stats();
    EXPECT_EQ(s.app_instructions, 1u);
    EXPECT_GE(s.overhead_cycles, cfg.base_overhead);
    EXPECT_GT(s.total_cycles, s.app_cycles);
}

TEST(Dbi, MemoryAndControlCostExtra)
{
    lifeguards::AddrCheck guard;
    mem::CacheHierarchy h1(mem::HierarchyConfig{});
    mem::CacheHierarchy h2(mem::HierarchyConfig{});
    DbiConfig cfg;

    DbiSystem alu_sys(guard, h1, cfg);
    sim::Retired alu;
    alu.pc = 0x10000;
    alu.instr = {isa::Opcode::kAdd, 3, 1, 2, 0};
    for (int i = 0; i < 100; ++i) alu_sys.onRetire(alu);

    lifeguards::AddrCheck guard2;
    DbiSystem mem_sys(guard2, h2, cfg);
    sim::Retired ld;
    ld.pc = 0x10000;
    ld.instr = {isa::Opcode::kLd, 3, 1, 0, 0};
    ld.mem_addr = 0x20000;
    ld.mem_bytes = 8;
    for (int i = 0; i < 100; ++i) mem_sys.onRetire(ld);

    EXPECT_GT(mem_sys.stats().total_cycles,
              alu_sys.stats().total_cycles);
}

TEST(Dbi, HandlerSharesApplicationCaches)
{
    // After a DBI run, the application core's L1D must have seen the
    // lifeguard's shadow-memory traffic (resource competition).
    lifeguards::AddrCheck guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DbiSystem dbi(guard, hierarchy, {});

    sim::OsEvent alloc{sim::OsEventType::kAlloc, 0, 0x10000000, 256};
    dbi.onOsEvent(alloc);
    EXPECT_GT(hierarchy.l1d(0).stats().accesses(), 0u);
    EXPECT_EQ(hierarchy.l1d(1).stats().accesses(), 0u);
}

TEST(Dbi, FindingsMatchLbaFindings)
{
    // The same injected bugs must be found identically on both
    // platforms: monitoring platform changes timing, not semantics.
    workload::BugInjection bugs;
    bugs.leak = true;
    bugs.double_free = true;
    auto generated =
        workload::generate(*workload::findProfile("bc"), bugs, 60000);

    core::Experiment exp(generated.program);
    auto factory = [] {
        return std::make_unique<lifeguards::AddrCheck>();
    };
    auto lba_result = exp.runLba(factory);
    auto dbi_result = exp.runDbi(factory);

    ASSERT_EQ(lba_result.findings.size(), dbi_result.findings.size());
    for (std::size_t i = 0; i < lba_result.findings.size(); ++i) {
        EXPECT_EQ(lba_result.findings[i].kind,
                  dbi_result.findings[i].kind);
        EXPECT_EQ(lba_result.findings[i].addr,
                  dbi_result.findings[i].addr);
        EXPECT_EQ(lba_result.findings[i].pc, dbi_result.findings[i].pc);
    }
}

TEST(Dbi, SlowdownExceedsLba)
{
    // The paper's core result: LBA lifeguards are 4-19x faster than
    // Valgrind lifeguards. At minimum, DBI must be slower than LBA.
    auto generated =
        workload::generate(*workload::findProfile("gzip"), {}, 100000);
    core::Experiment exp(generated.program);
    auto factory = [] {
        return std::make_unique<lifeguards::AddrCheck>();
    };
    auto lba_result = exp.runLba(factory);
    auto dbi_result = exp.runDbi(factory);
    EXPECT_GT(dbi_result.slowdown, lba_result.slowdown * 2);
}

TEST(Dbi, StatsComponentsSumToTotal)
{
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 50000);
    core::Experiment exp(generated.program);
    auto result = exp.runDbi(
        [] { return std::make_unique<lifeguards::AddrCheck>(); });
    const DbiStats& s = result.dbi;
    EXPECT_EQ(s.total_cycles,
              s.app_cycles + s.overhead_cycles + s.handler_cycles);
}

} // namespace
} // namespace lba::dbi
