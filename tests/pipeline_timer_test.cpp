/**
 * @file
 * Direct tests of the shared timing engine (core::PipelineTimer): exact
 * transport-ceiling delivery, syscall-containment drain ordering,
 * per-lane finish cost, per-lane back-pressure and buffer statistics.
 *
 * These tests drive the engine with hand-built records and a
 * fixed-cost lifeguard so every cycle count is computable by hand; the
 * serial/parallel differential tests in core_test.cpp cover the same
 * engine from the system level.
 */

#include <gtest/gtest.h>

#include "core/pipeline_timer.h"
#include "lifeguard/lifeguard.h"

namespace lba::core {
namespace {

/** Charges a fixed instruction count per record (and at finish). */
class FixedCostLifeguard : public lifeguard::Lifeguard
{
  public:
    explicit FixedCostLifeguard(std::uint32_t handler_instrs,
                                std::uint32_t finish_instrs = 0)
        : handler_instrs_(handler_instrs), finish_instrs_(finish_instrs)
    {
    }

    const char* name() const override { return "FixedCost"; }

    void
    handleEvent(const log::EventRecord&, lifeguard::CostSink& cost) override
    {
        cost.instrs(handler_instrs_);
    }

    void
    finish(lifeguard::CostSink& cost) override
    {
        cost.instrs(finish_instrs_);
    }

  private:
    std::uint32_t handler_instrs_;
    std::uint32_t finish_instrs_;
};

mem::HierarchyConfig
cores(unsigned n)
{
    mem::HierarchyConfig hc;
    hc.num_cores = n;
    return hc;
}

log::EventRecord
aluRecord(Addr pc = 0x1000)
{
    log::EventRecord record;
    record.pc = pc;
    record.type = log::EventType::kIntAlu;
    return record;
}

log::EventRecord
allocRecord(Addr base, std::uint64_t size)
{
    log::EventRecord record;
    record.type = log::EventType::kAlloc;
    record.addr = base;
    record.aux = size;
    return record;
}

TEST(PipelineTimer, FractionalTransportDeliversOnCeiling)
{
    // 3-byte raw records over a 2 B/cycle transport need 1.5 cycles
    // each. Record 1 completes at t=1.5 -> consumable at cycle 2 (not
    // at 1, as truncation allowed); record 2 completes at t=3.0 ->
    // consumable exactly at 3 (ceiling must not round exact integers up).
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.compress = false;
    config.raw_record_bytes = 3;
    config.transport_bytes_per_cycle = 2.0;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});

    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 0);

    // Waits: (2 - 0) + (3 - 0) = 5. Truncation would report 1 + 3 = 4.
    EXPECT_EQ(timer.stats().transport_wait_cycles, 5u);
    EXPECT_EQ(timer.stats().transport_bytes, 6.0);
    // start(1) = 2, start(2) = max(3, finish(1)=3) = 3.
    timer.finishAll();
    EXPECT_EQ(timer.stats().total_cycles, 4u);
    EXPECT_DOUBLE_EQ(timer.stats().mean_consume_lag, 2.5);
}

TEST(PipelineTimer, ContainmentDrainCoversSyscallAnnotations)
{
    // The drain armed by a syscall must also wait for the annotation
    // records the syscall's own OS handlers emitted after it.
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.syscall_stall = true;
    FixedCostLifeguard guard(4); // consume cost = 1 dispatch + 4
    PipelineTimer timer(hierarchy, config, {&guard});

    sim::Retired retired;
    retired.pc = 0x1000;
    timer.retire(retired);
    Cycles app_before = timer.stats().app_cycles;

    // Syscall record, then its annotation, both produced at app_before.
    timer.log(aluRecord(), 0);
    timer.noteSyscall();
    timer.log(allocRecord(0x10000000, 64), 0);
    // finish(syscall) = app_before + 5; finish(alloc) = app_before + 10.

    retired.pc = 0x1008;
    timer.retire(retired);
    // The drain stalls the app from app_before to app_before + 10 —
    // covering the annotation, not just the syscall record.
    EXPECT_EQ(timer.stats().syscall_drains, 1u);
    EXPECT_EQ(timer.stats().syscall_stall_cycles, 10u);
    (void)app_before;
}

TEST(PipelineTimer, FinishCostLandsOnEachLane)
{
    // Lane 0: two records (last_finish = 2) and a cheap final pass (3).
    // Lane 1: idle but with an expensive final pass (10). Folding a
    // single max finish cost into the global clock would report
    // max(2,0) + 10 = 12; per-lane accounting gives
    // max(2+3, 0+10) = 10.
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    FixedCostLifeguard cheap_finish(0, 3);
    FixedCostLifeguard dear_finish(0, 10);
    PipelineTimer timer(hierarchy, config, {&cheap_finish, &dear_finish});

    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 0);
    timer.finishAll();

    EXPECT_EQ(timer.stats().total_cycles, 10u);
    EXPECT_EQ(timer.laneLastFinish(0), 5u);
    EXPECT_EQ(timer.laneLastFinish(1), 10u);
    // Busy cycles include the lane's own finish pass.
    EXPECT_EQ(timer.laneBusyCycles(0), 5u);
    EXPECT_EQ(timer.laneBusyCycles(1), 10u);
    EXPECT_EQ(timer.stats().lifeguard_busy_cycles, 15u);
}

TEST(PipelineTimer, PerLaneBackpressureAndBufferStats)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.buffer_capacity = 2;
    FixedCostLifeguard guard(10); // consume cost = 11
    PipelineTimer timer(hierarchy, config, {&guard});

    timer.log(aluRecord(), 0); // finish = 11
    timer.log(aluRecord(), 0); // finish = 22
    // Third record: both slots taken; the app stalls until the first
    // record finishes at 11.
    timer.log(aluRecord(), 0);
    EXPECT_EQ(timer.stats().backpressure_stall_cycles, 11u);

    const log::LogBufferStats& bstats = timer.bufferStats(0);
    EXPECT_EQ(bstats.pushes, 3u);
    EXPECT_EQ(bstats.pops, 1u);
    EXPECT_EQ(bstats.max_occupancy, 2u);
}

TEST(PipelineTimer, BroadcastReservesASlotInEveryLane)
{
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    FixedCostLifeguard a(2), b(7);
    PipelineTimer timer(hierarchy, config, {&a, &b});

    timer.log(allocRecord(0x10000000, 64), PipelineTimer::kBroadcast);
    // One logical record, one slot (and one consumption) per lane.
    EXPECT_EQ(timer.stats().records_logged, 1u);
    EXPECT_EQ(timer.laneRecords(0), 1u);
    EXPECT_EQ(timer.laneRecords(1), 1u);
    EXPECT_EQ(timer.bufferStats(0).pushes, 1u);
    EXPECT_EQ(timer.bufferStats(1).pushes, 1u);
    // Each lane's clock advances by its own consume cost.
    EXPECT_EQ(timer.laneLastFinish(0), 3u);
    EXPECT_EQ(timer.laneLastFinish(1), 8u);
}

TEST(PipelineTimer, FilterDropsBeforeAnyAccounting)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.filter_enabled = true;
    config.filter_base = 0x10000000;
    config.filter_bytes = 4096;
    config.compress = false;
    config.raw_record_bytes = 8;
    config.transport_bytes_per_cycle = 1.0;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});

    log::EventRecord out_of_range;
    out_of_range.type = log::EventType::kLoad;
    out_of_range.addr = 0x2000; // below the filter window
    EXPECT_FALSE(timer.log(out_of_range, 0));
    EXPECT_EQ(timer.stats().records_filtered, 1u);
    EXPECT_EQ(timer.stats().records_logged, 0u);
    EXPECT_EQ(timer.stats().transport_bytes, 0.0);
    EXPECT_EQ(timer.bufferStats(0).pushes, 0u);

    log::EventRecord in_range;
    in_range.type = log::EventType::kLoad;
    in_range.addr = 0x10000010;
    EXPECT_TRUE(timer.log(in_range, 0));
    EXPECT_EQ(timer.stats().records_logged, 1u);
    EXPECT_EQ(timer.stats().transport_bytes, 8.0);
}

} // namespace
} // namespace lba::core
