/**
 * @file
 * Direct tests of the shared timing engine (core::PipelineTimer): exact
 * transport-ceiling delivery, syscall-containment drain ordering,
 * per-lane finish cost, per-lane back-pressure and buffer statistics.
 *
 * These tests drive the engine with hand-built records and a
 * fixed-cost lifeguard so every cycle count is computable by hand; the
 * serial/parallel differential tests in core_test.cpp cover the same
 * engine from the system level.
 */

#include <gtest/gtest.h>

#include <thread>

#include "core/pipeline_timer.h"
#include "lifeguard/lifeguard.h"

// Death tests fork, which ThreadSanitizer's runtime does not support
// in a multithreaded process (the threaded timer owns worker threads);
// the TSan CI job runs this suite, so compile them out under TSan.
#if defined(__SANITIZE_THREAD__)
#define LBA_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LBA_TSAN_BUILD 1
#endif
#endif

namespace lba::core {
namespace {

/** Charges a fixed instruction count per record (and at finish). */
class FixedCostLifeguard : public lifeguard::Lifeguard
{
  public:
    explicit FixedCostLifeguard(std::uint32_t handler_instrs,
                                std::uint32_t finish_instrs = 0)
        : handler_instrs_(handler_instrs), finish_instrs_(finish_instrs)
    {
    }

    const char* name() const override { return "FixedCost"; }

    void
    handleEvent(const log::EventRecord&, lifeguard::CostSink& cost) override
    {
        cost.instrs(handler_instrs_);
    }

    void
    finish(lifeguard::CostSink& cost) override
    {
        cost.instrs(finish_instrs_);
    }

  private:
    std::uint32_t handler_instrs_;
    std::uint32_t finish_instrs_;
};

mem::HierarchyConfig
cores(unsigned n)
{
    mem::HierarchyConfig hc;
    hc.num_cores = n;
    return hc;
}

log::EventRecord
aluRecord(Addr pc = 0x1000)
{
    log::EventRecord record;
    record.pc = pc;
    record.type = log::EventType::kIntAlu;
    return record;
}

log::EventRecord
allocRecord(Addr base, std::uint64_t size)
{
    log::EventRecord record;
    record.type = log::EventType::kAlloc;
    record.addr = base;
    record.aux = size;
    return record;
}

TEST(PipelineTimer, FractionalTransportDeliversOnCeiling)
{
    // 3-byte raw records over a 2 B/cycle transport need 1.5 cycles
    // each. Record 1 completes at t=1.5 -> consumable at cycle 2 (not
    // at 1, as truncation allowed); record 2 completes at t=3.0 ->
    // consumable exactly at 3 (ceiling must not round exact integers up).
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.compress = false;
    config.raw_record_bytes = 3;
    config.transport_bytes_per_cycle = 2.0;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});

    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 0);

    // Waits: (2 - 0) + (3 - 0) = 5. Truncation would report 1 + 3 = 4.
    EXPECT_EQ(timer.stats().transport_wait_cycles, 5u);
    EXPECT_EQ(timer.stats().transport_bytes, 6.0);
    // start(1) = 2, start(2) = max(3, finish(1)=3) = 3.
    timer.finishAll();
    EXPECT_EQ(timer.stats().total_cycles, 4u);
    EXPECT_DOUBLE_EQ(timer.stats().mean_consume_lag, 2.5);
}

TEST(PipelineTimer, ContainmentDrainCoversSyscallAnnotations)
{
    // The drain armed by a syscall must also wait for the annotation
    // records the syscall's own OS handlers emitted after it.
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.syscall_stall = true;
    FixedCostLifeguard guard(4); // consume cost = 1 dispatch + 4
    PipelineTimer timer(hierarchy, config, {&guard});

    sim::Retired retired;
    retired.pc = 0x1000;
    timer.retire(retired);
    Cycles app_before = timer.stats().app_cycles;

    // Syscall record, then its annotation, both produced at app_before.
    timer.log(aluRecord(), 0);
    timer.noteSyscall();
    timer.log(allocRecord(0x10000000, 64), 0);
    // finish(syscall) = app_before + 5; finish(alloc) = app_before + 10.

    retired.pc = 0x1008;
    timer.retire(retired);
    // The drain stalls the app from app_before to app_before + 10 —
    // covering the annotation, not just the syscall record.
    EXPECT_EQ(timer.stats().syscall_drains, 1u);
    EXPECT_EQ(timer.stats().syscall_stall_cycles, 10u);
    (void)app_before;
}

TEST(PipelineTimer, FinishCostLandsOnEachLane)
{
    // Lane 0: two records (last_finish = 2) and a cheap final pass (3).
    // Lane 1: idle but with an expensive final pass (10). Folding a
    // single max finish cost into the global clock would report
    // max(2,0) + 10 = 12; per-lane accounting gives
    // max(2+3, 0+10) = 10.
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    FixedCostLifeguard cheap_finish(0, 3);
    FixedCostLifeguard dear_finish(0, 10);
    PipelineTimer timer(hierarchy, config, {&cheap_finish, &dear_finish});

    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 0);
    timer.finishAll();

    EXPECT_EQ(timer.stats().total_cycles, 10u);
    EXPECT_EQ(timer.laneLastFinish(0), 5u);
    EXPECT_EQ(timer.laneLastFinish(1), 10u);
    // Busy cycles include the lane's own finish pass.
    EXPECT_EQ(timer.laneBusyCycles(0), 5u);
    EXPECT_EQ(timer.laneBusyCycles(1), 10u);
    EXPECT_EQ(timer.stats().lifeguard_busy_cycles, 15u);
}

TEST(PipelineTimer, PerLaneBackpressureAndBufferStats)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.buffer_capacity = 2;
    FixedCostLifeguard guard(10); // consume cost = 11
    PipelineTimer timer(hierarchy, config, {&guard});

    timer.log(aluRecord(), 0); // finish = 11
    timer.log(aluRecord(), 0); // finish = 22
    // Third record: both slots taken; the app stalls until the first
    // record finishes at 11.
    timer.log(aluRecord(), 0);
    EXPECT_EQ(timer.stats().backpressure_stall_cycles, 11u);

    const log::LogBufferStats& bstats = timer.bufferStats(0);
    EXPECT_EQ(bstats.pushes, 3u);
    EXPECT_EQ(bstats.pops, 1u);
    EXPECT_EQ(bstats.max_occupancy, 2u);
}

TEST(PipelineTimer, BroadcastReservesASlotInEveryLane)
{
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    FixedCostLifeguard a(2), b(7);
    PipelineTimer timer(hierarchy, config, {&a, &b});

    timer.log(allocRecord(0x10000000, 64), PipelineTimer::kBroadcast);
    // One logical record, one slot (and one consumption) per lane.
    EXPECT_EQ(timer.stats().records_logged, 1u);
    EXPECT_EQ(timer.laneRecords(0), 1u);
    EXPECT_EQ(timer.laneRecords(1), 1u);
    EXPECT_EQ(timer.bufferStats(0).pushes, 1u);
    EXPECT_EQ(timer.bufferStats(1).pushes, 1u);
    // Each lane's clock advances by its own consume cost.
    EXPECT_EQ(timer.laneLastFinish(0), 3u);
    EXPECT_EQ(timer.laneLastFinish(1), 8u);
}

TEST(PipelineTimer, FilterDropsBeforeAnyAccounting)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.filter_enabled = true;
    config.filter_base = 0x10000000;
    config.filter_bytes = 4096;
    config.compress = false;
    config.raw_record_bytes = 8;
    config.transport_bytes_per_cycle = 1.0;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});

    log::EventRecord out_of_range;
    out_of_range.type = log::EventType::kLoad;
    out_of_range.addr = 0x2000; // below the filter window
    EXPECT_FALSE(timer.log(out_of_range, 0));
    EXPECT_EQ(timer.stats().records_filtered, 1u);
    EXPECT_EQ(timer.stats().records_logged, 0u);
    EXPECT_EQ(timer.stats().transport_bytes, 0.0);
    EXPECT_EQ(timer.bufferStats(0).pushes, 0u);

    log::EventRecord in_range;
    in_range.type = log::EventType::kLoad;
    in_range.addr = 0x10000010;
    EXPECT_TRUE(timer.log(in_range, 0));
    EXPECT_EQ(timer.stats().records_logged, 1u);
    EXPECT_EQ(timer.stats().transport_bytes, 8.0);
}

TEST(PipelineTimer, MixedLaneTransportBandwidths)
{
    // Heterogeneous pool: lane 0 drains 2 B/cycle, lane 1 only 1
    // B/cycle, in one timer. 4-byte raw records: lane 0 delivers at
    // t=2 (wait 2), lane 1 at t=4 (wait 4).
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    config.compress = false;
    config.raw_record_bytes = 4;
    config.transport_bytes_per_cycle = 9.0; // overridden per lane
    FixedCostLifeguard a(0), b(0);
    std::vector<LaneLimits> limits(2);
    limits[0].transport_bytes_per_cycle = 2.0;
    limits[1].transport_bytes_per_cycle = 1.0;
    PipelineTimer timer(hierarchy, config, {&a, &b}, limits);

    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 1);

    EXPECT_EQ(timer.laneTransportWaitCycles(0), 2u);
    EXPECT_EQ(timer.laneTransportWaitCycles(1), 4u);
    EXPECT_EQ(timer.stats().transport_wait_cycles, 6u);
    // start = deliver, so per-lane lag equals the transport wait.
    EXPECT_DOUBLE_EQ(timer.laneMeanConsumeLag(0), 2.0);
    EXPECT_DOUBLE_EQ(timer.laneMeanConsumeLag(1), 4.0);
}

TEST(PipelineTimer, MixedLaneBufferCapacities)
{
    // Lane 0 holds a single record while lane 1 inherits the
    // config-wide capacity of 2: only the small lane back-pressures.
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    config.buffer_capacity = 2;
    FixedCostLifeguard a(10), b(10); // consume cost = 11
    std::vector<LaneLimits> limits(2);
    limits[0].buffer_capacity = 1;
    PipelineTimer timer(hierarchy, config, {&a, &b}, limits);

    // Lane 1 first: two records fit without stalling.
    timer.log(aluRecord(), 1);
    timer.log(aluRecord(), 1);
    EXPECT_EQ(timer.stats().backpressure_stall_cycles, 0u);

    // Lane 0: the second record must wait for the first to finish at
    // cycle 11 before its slot frees.
    timer.log(aluRecord(), 0);
    timer.log(aluRecord(), 0);
    EXPECT_EQ(timer.stats().backpressure_stall_cycles, 11u);
    EXPECT_EQ(timer.bufferStats(0).max_occupancy, 1u);
    EXPECT_EQ(timer.bufferStats(1).max_occupancy, 2u);
    // The stalled producer's clock moved to 11, so lane 0's second
    // record starts there and finishes at 22.
    EXPECT_EQ(timer.laneLastFinish(0), 22u);
}

TEST(PipelineTimer, MultiProducerSharedLaneSerializes)
{
    // Two producers (apps on cores 0 and 2) share one lane (core 1)
    // through the external-dispatch API: the lane serializes their
    // records, each producer keeps its own clock, lag and busy slice.
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    config.compress = false;
    PipelineTimer timer(hierarchy, config, 1u);
    unsigned p1 = timer.addProducer(2);
    EXPECT_EQ(p1, 1u);
    EXPECT_EQ(timer.producers(), 2u);

    // Consume costs 3 and 6; finish passes cost 1 and 2.
    FixedCostLifeguard cheap(2, 1), dear(5, 2);
    lifeguard::DispatchConfig dc{1, 1};
    lifeguard::DispatchEngine engine_a(cheap, hierarchy, dc);
    lifeguard::DispatchEngine engine_b(dear, hierarchy, dc);

    // P0 consumes [0,3); P1's record, produced at 0, queues behind it:
    // start 3, finish 9.
    timer.log(0, aluRecord(), {{0, &engine_a}});
    timer.log(1, aluRecord(), {{0, &engine_b}});
    EXPECT_EQ(timer.laneLastFinish(0), 9u);
    EXPECT_EQ(timer.laneRecords(0), 2u);

    // The final passes serialize on the shared lane too: P0's ends at
    // 9 + 1, P1's at 10 + 2.
    timer.finishShard(0, 0, engine_a);
    timer.finishShard(1, 0, engine_b);
    timer.seal();

    EXPECT_EQ(timer.producerStats(0).total_cycles, 10u);
    EXPECT_EQ(timer.producerStats(1).total_cycles, 12u);
    // P0's record never waited; P1's waited 3 cycles behind P0's.
    EXPECT_DOUBLE_EQ(timer.producerStats(0).mean_consume_lag, 0.0);
    EXPECT_DOUBLE_EQ(timer.producerStats(1).mean_consume_lag, 3.0);
    EXPECT_EQ(timer.producerStats(0).lifeguard_busy_cycles, 4u);
    EXPECT_EQ(timer.producerStats(1).lifeguard_busy_cycles, 8u);
    EXPECT_EQ(timer.producerStats(0).records_logged, 1u);
    EXPECT_EQ(timer.producerStats(1).records_logged, 1u);
    // Aggregates sum both producers; the lane's busy time is the sum
    // of both engines' work.
    EXPECT_EQ(timer.stats().records_logged, 2u);
    EXPECT_EQ(timer.stats().lifeguard_busy_cycles, 12u);
    EXPECT_EQ(timer.stats().total_cycles, 12u);
    EXPECT_DOUBLE_EQ(timer.stats().mean_consume_lag, 1.5);
}

TEST(PipelineTimer, MultiProducerIndependentDrains)
{
    // A containment drain stalls only the producer whose records are
    // outstanding: P0's syscall waits for P0's record, not P1's
    // backlog.
    mem::CacheHierarchy hierarchy(cores(3));
    LbaConfig config;
    PipelineTimer timer(hierarchy, config, 1u);
    timer.addProducer(2);

    FixedCostLifeguard cheap(2), dear(40); // costs 3 and 41
    lifeguard::DispatchConfig dc{1, 1};
    lifeguard::DispatchEngine engine_a(cheap, hierarchy, dc);
    lifeguard::DispatchEngine engine_b(dear, hierarchy, dc);

    // P0's record finishes at 3; P1's queues behind it until 44.
    timer.log(0, aluRecord(), {{0, &engine_a}});
    timer.log(1, aluRecord(), {{0, &engine_b}});

    timer.noteSyscall(0);
    sim::Retired retired;
    retired.pc = 0x1000;
    timer.retire(0, retired);
    // P0 drains to its own record's finish (3), not to P1's 44.
    EXPECT_EQ(timer.producerStats(0).syscall_stall_cycles, 3u);
    EXPECT_EQ(timer.producerStats(0).syscall_drains, 1u);
    EXPECT_EQ(timer.producerStats(1).syscall_drains, 0u);
}

#ifndef LBA_TSAN_BUILD

/**
 * Threaded-mode coordinator confinement: the runtime twin of the
 * LBA_COORDINATOR_ONLY annotations (docs/STATIC_ANALYSIS.md). A
 * foreign thread touching a mutating entry point must trap in
 * assertCoordinator() — these tests pin the trap's existence and its
 * message, which tools/lba_lint.py keeps paired with the annotations.
 */
class PipelineTimerDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The threaded timer is multithreaded before the death
        // statement runs; fork-after-spawn needs the threadsafe style
        // (re-exec) to be reliable.
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

TEST_F(PipelineTimerDeathTest, OffCoordinatorRetireTraps)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.execution = ExecutionMode::kThreaded;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});
    sim::Retired retired;
    retired.pc = 0x1000;
    EXPECT_DEATH(std::thread([&] { timer.retire(0, retired); }).join(),
                 "off the coordinating thread");
}

TEST_F(PipelineTimerDeathTest, OffCoordinatorLogTraps)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.execution = ExecutionMode::kThreaded;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});
    EXPECT_DEATH(std::thread([&] { timer.log(aluRecord(), 0); }).join(),
                 "off the coordinating thread");
}

TEST_F(PipelineTimerDeathTest, OffCoordinatorSyncTraps)
{
    mem::CacheHierarchy hierarchy(cores(2));
    LbaConfig config;
    config.execution = ExecutionMode::kThreaded;
    FixedCostLifeguard guard(0);
    PipelineTimer timer(hierarchy, config, {&guard});
    EXPECT_DEATH(std::thread([&] { timer.sync(); }).join(),
                 "off the coordinating thread");
}

#endif // LBA_TSAN_BUILD

} // namespace
} // namespace lba::core
