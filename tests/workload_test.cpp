/**
 * @file
 * Workload generator tests: programs run to completion, hit their
 * planned instruction mix, and bug injection produces the intended
 * defects at the functional level.
 */

#include <gtest/gtest.h>

#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::workload {
namespace {

TEST(Profiles, SuiteMatchesPaper)
{
    EXPECT_EQ(singleThreadedSuite().size(), 7u);
    EXPECT_EQ(multiThreadedSuite().size(), 2u);
    EXPECT_EQ(fullSuite().size(), 9u);
    EXPECT_NE(findProfile("mcf"), nullptr);
    EXPECT_NE(findProfile("zchaff"), nullptr);
    EXPECT_EQ(findProfile("doom"), nullptr);
}

TEST(Profiles, SuiteAverageMemFractionNearPaper)
{
    // Paper Section 3: 51% of instructions are memory references.
    double total = 0;
    for (const Profile& p : fullSuite()) total += p.mem_fraction;
    double avg = total / fullSuite().size();
    EXPECT_NEAR(avg, 0.51, 0.03);
}

TEST(Generator, DeterministicPrograms)
{
    const Profile* p = findProfile("gzip");
    ASSERT_NE(p, nullptr);
    auto a = generate(*p, {}, 100000);
    auto b = generate(*p, {}, 100000);
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.iterations, b.iterations);
}

std::vector<log::EventRecord>
recordStream(const std::vector<isa::Instruction>& program)
{
    sim::Process process{sim::ProcessConfig{}};
    process.load(program);
    log::RecordingObserver recorder;
    process.run(&recorder);
    return recorder.stream;
}

/**
 * Same seed + profile => identical *event stream*, not just an
 * identical program: every differential test in the tree (batched vs
 * per-record dispatch, serial vs parallel, pool vs parallel) silently
 * relies on the two runs it compares observing the exact same records
 * in the exact same order.
 */
TEST(Generator, DeterministicEventStream)
{
    for (const char* name : {"gzip", "bc", "water"}) {
        SCOPED_TRACE(name);
        const Profile* profile = findProfile(name);
        ASSERT_NE(profile, nullptr);
        auto generated = generate(*profile, {}, 30000);
        auto first = recordStream(generated.program);
        auto second = recordStream(generated.program);
        ASSERT_FALSE(first.empty());
        ASSERT_EQ(first.size(), second.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            ASSERT_EQ(first[i], second[i]) << "record " << i;
        }

        // Regenerating from the profile gives the same stream too
        // (generator and simulator both deterministic end to end).
        auto regenerated = generate(*profile, {}, 30000);
        auto third = recordStream(regenerated.program);
        ASSERT_EQ(first.size(), third.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            ASSERT_EQ(first[i], third[i]) << "record " << i;
        }
    }
}

/** Bug injection must not break stream determinism either. */
TEST(Generator, DeterministicEventStreamWithBugs)
{
    BugInjection bugs;
    bugs.use_after_free = true;
    bugs.leak = true;
    auto generated = generate(*findProfile("bc"), bugs, 30000);
    auto first = recordStream(generated.program);
    auto second = recordStream(generated.program);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i], second[i]) << "record " << i;
    }
}

TEST(Generator, DistinctBenchmarksDiffer)
{
    auto a = generate(*findProfile("bc"), {}, 100000);
    auto b = generate(*findProfile("mcf"), {}, 100000);
    EXPECT_NE(a.program, b.program);
}

/** Every benchmark must run to clean completion with the planned mix. */
class SuiteExecution : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteExecution, RunsToCompletionWithPlannedMix)
{
    const Profile* profile = findProfile(GetParam());
    ASSERT_NE(profile, nullptr);
    auto generated = generate(*profile, {}, 150000);

    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(nullptr);

    EXPECT_TRUE(result.all_exited) << GetParam();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.faulted_threads, 0u);
    EXPECT_FALSE(result.hit_instruction_limit);

    // Instruction budget: within 2x of the request (prologue-dominated
    // workloads like mcf build large rings).
    EXPECT_GT(result.instructions, 60000u) << GetParam();
    EXPECT_LT(result.instructions, 400000u) << GetParam();

    // Memory mix within tolerance of the profile.
    double mem_frac = static_cast<double>(process.memRefs()) /
                      static_cast<double>(result.instructions);
    EXPECT_NEAR(mem_frac, profile->mem_fraction, 0.10) << GetParam();

    // Thread count matches.
    EXPECT_EQ(process.numThreads(), profile->threads);

    // Everything allocated was freed (clean program).
    EXPECT_EQ(process.heap().liveBlocks(), 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteExecution,
    ::testing::Values("bc", "gnuplot", "gs", "gzip", "mcf", "tidy",
                      "w3m", "water", "zchaff"));

TEST(Generator, LeakInjectionLeavesLiveBlock)
{
    BugInjection bugs;
    bugs.leak = true;
    auto generated = generate(*findProfile("bc"), bugs, 60000);
    sim::Process process;
    process.load(generated.program);
    process.run(nullptr);
    EXPECT_EQ(process.heap().liveBlocks(), 1u);
}

TEST(Generator, DoubleFreeInjectionRejectedByHeap)
{
    BugInjection bugs;
    bugs.double_free = true;
    auto generated = generate(*findProfile("bc"), bugs, 60000);
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(nullptr);
    EXPECT_TRUE(result.all_exited);
    // The program still terminates; the double free itself returned an
    // error from the OS (detected by AddrCheck in lifeguard tests).
    EXPECT_EQ(process.heap().liveBlocks(), 0u);
}

TEST(Generator, TaintedJumpInjectionFaults)
{
    BugInjection bugs;
    bugs.tainted_jump = true;
    auto generated = generate(*findProfile("gzip"), bugs, 60000);
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(nullptr);
    // The hijacked control flow leaves the code region.
    EXPECT_EQ(result.faulted_threads, 1u);
}

TEST(Generator, MultithreadedProgramsUseLocksAndShareData)
{
    auto generated = generate(*findProfile("water"), {}, 150000);
    class LockCounter : public sim::RetireObserver
    {
      public:
        void onRetire(const sim::Retired&) override {}
        void
        onOsEvent(const sim::OsEvent& e) override
        {
            if (e.type == sim::OsEventType::kLock) ++locks;
            if (e.type == sim::OsEventType::kUnlock) ++unlocks;
            if (e.type == sim::OsEventType::kThreadSpawn) ++spawns;
        }
        int locks = 0, unlocks = 0, spawns = 0;
    };
    LockCounter counter;
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(&counter);
    EXPECT_TRUE(result.all_exited);
    EXPECT_EQ(counter.spawns, 1);
    EXPECT_GT(counter.locks, 10);
    EXPECT_EQ(counter.locks, counter.unlocks);
}

TEST(Generator, ScalesWithInstructionOverride)
{
    const Profile* p = findProfile("gnuplot");
    auto small = generate(*p, {}, 50000);
    auto large = generate(*p, {}, 200000);
    EXPECT_GT(large.iterations, small.iterations * 2);
}

TEST(Generator, PlannedMetadataIsPopulated)
{
    auto g = generate(*findProfile("gs"), {}, 100000);
    EXPECT_GT(g.planned_instructions, 0u);
    EXPECT_GT(g.planned_mem_fraction, 0.3);
    EXPECT_LT(g.planned_mem_fraction, 0.8);
    EXPECT_GT(g.iterations, 0u);
}

// --- Request-serving (server-shaped) profiles -----------------------

TEST(ServerProfiles, SuiteIsSeparateFromThePaperSuite)
{
    // The paper's 7+2 benchmark table must not grow: the server
    // profiles live in their own suite and are only reachable by name.
    EXPECT_EQ(serverSuite().size(), 2u);
    EXPECT_EQ(serverSuite()[0].name, "req_serve");
    EXPECT_EQ(serverSuite()[1].name, "req_churn");
    EXPECT_EQ(fullSuite().size(), 9u);
    ASSERT_NE(findProfile("req_serve"), nullptr);
    ASSERT_NE(findProfile("req_churn"), nullptr);
    EXPECT_GT(findProfile("req_serve")->phases, 0u);
    EXPECT_TRUE(findProfile("req_churn")->worker_churn);
    EXPECT_FALSE(findProfile("req_serve")->worker_churn);
}

TEST(ServerProfiles, DeterministicEventStream)
{
    for (const char* name : {"req_serve", "req_churn"}) {
        SCOPED_TRACE(name);
        auto generated = generate(*findProfile(name), {}, 30000);
        auto first = recordStream(generated.program);
        auto second = recordStream(generated.program);
        ASSERT_FALSE(first.empty());
        ASSERT_EQ(first.size(), second.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            ASSERT_EQ(first[i], second[i]) << "record " << i;
        }
    }
}

TEST(ServerProfiles, DeterministicEventStreamWithBugs)
{
    BugInjection bugs;
    bugs.use_after_free = true;
    bugs.leak = true;
    bugs.double_free = true;
    auto generated = generate(*findProfile("req_serve"), bugs, 30000);
    auto first = recordStream(generated.program);
    auto second = recordStream(generated.program);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i], second[i]) << "record " << i;
    }
}

TEST(ServerProfiles, RunToCleanCompletion)
{
    for (const char* name : {"req_serve", "req_churn"}) {
        SCOPED_TRACE(name);
        auto generated = generate(*findProfile(name), {}, 100000);
        sim::Process process;
        process.load(generated.program);
        sim::RunResult result = process.run(nullptr);
        EXPECT_TRUE(result.all_exited);
        EXPECT_FALSE(result.deadlocked);
        EXPECT_EQ(result.faulted_threads, 0u);
        // Every request block and the prologue buffers were freed.
        EXPECT_EQ(process.heap().liveBlocks(), 0u);
        EXPECT_GT(generated.requests, 0u);
        EXPECT_EQ(generated.requests,
                  generated.iterations *
                      findProfile(name)->phases);
    }
}

TEST(ServerProfiles, PhaseMarkersLandAtDocumentedRecordIndices)
{
    // phase_marker_records promises EXACT record-stream indices for
    // bug-free single-threaded request programs: the serving loop is
    // straight-line per request, so dynamic counts follow from static
    // ones. Each marker is the phase's kOutput record with the phase
    // ordinal (1-based) as its payload length.
    const Profile* profile = findProfile("req_serve");
    auto generated = generate(*profile, {}, 40000);
    auto stream = recordStream(generated.program);

    ASSERT_EQ(generated.phase_marker_records.size(), profile->phases);
    std::uint64_t previous = 0;
    for (unsigned p = 0; p < profile->phases; ++p) {
        SCOPED_TRACE(p);
        std::uint64_t index = generated.phase_marker_records[p];
        ASSERT_LT(index, stream.size());
        EXPECT_GT(index, previous);
        previous = index;
        EXPECT_EQ(stream[index].type, log::EventType::kOutput);
        EXPECT_EQ(stream[index].aux, p + 1u);
    }

    // The markers are the ONLY kOutput records (the profile ingests no
    // input and writes nothing else), so exactness is two-sided.
    std::size_t outputs = 0;
    for (const log::EventRecord& record : stream) {
        if (record.type == log::EventType::kOutput) ++outputs;
    }
    EXPECT_EQ(outputs, profile->phases);
}

TEST(ServerProfiles, BugsAndChurnForfeitExactMarkers)
{
    BugInjection bugs;
    bugs.leak = true;
    auto buggy = generate(*findProfile("req_serve"), bugs, 40000);
    EXPECT_TRUE(buggy.phase_marker_records.empty());
    auto churn = generate(*findProfile("req_churn"), {}, 40000);
    EXPECT_TRUE(churn.phase_marker_records.empty());
}

TEST(ServerProfiles, HotColdSplitMatchesHotFraction)
{
    // Dynamic property: of the accesses into the two prologue buffers
    // (hot first, cold second — the first two kAlloc records), the hot
    // share matches the profile's hot_fraction.
    const Profile* profile = findProfile("req_serve");
    auto generated = generate(*profile, {}, 40000);
    auto stream = recordStream(generated.program);

    ASSERT_GT(generated.hot_touches, generated.cold_touches);
    Addr hot_base = 0, cold_base = 0;
    std::uint64_t hot_bytes = 0, cold_bytes = 0;
    for (const log::EventRecord& record : stream) {
        if (record.type != log::EventType::kAlloc) continue;
        if (hot_bytes == 0) {
            hot_base = record.addr;
            hot_bytes = record.aux;
        } else if (cold_bytes == 0) {
            cold_base = record.addr;
            cold_bytes = record.aux;
            break;
        }
    }
    ASSERT_GT(hot_bytes, 0u);
    ASSERT_GT(cold_bytes, hot_bytes); // cold is the big buffer

    std::uint64_t hot_accesses = 0, cold_accesses = 0;
    for (const log::EventRecord& record : stream) {
        if (record.type != log::EventType::kLoad &&
            record.type != log::EventType::kStore) {
            continue;
        }
        if (record.addr >= hot_base &&
            record.addr < hot_base + hot_bytes) {
            ++hot_accesses;
        } else if (record.addr >= cold_base &&
                   record.addr < cold_base + cold_bytes) {
            ++cold_accesses;
        }
    }
    ASSERT_GT(hot_accesses + cold_accesses, 1000u);
    double hot_share =
        static_cast<double>(hot_accesses) /
        static_cast<double>(hot_accesses + cold_accesses);
    EXPECT_NEAR(hot_share, profile->hot_fraction, 0.05);
}

TEST(ServerProfiles, ChurnSpawnsOneWorkerPerPhase)
{
    auto generated = generate(*findProfile("req_churn"), {}, 40000);
    class SpawnCounter : public sim::RetireObserver
    {
      public:
        void onRetire(const sim::Retired&) override {}
        void
        onOsEvent(const sim::OsEvent& e) override
        {
            if (e.type == sim::OsEventType::kThreadSpawn) ++spawns;
        }
        int spawns = 0;
    };
    SpawnCounter counter;
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(&counter);
    EXPECT_TRUE(result.all_exited);
    EXPECT_EQ(counter.spawns,
              static_cast<int>(findProfile("req_churn")->phases));
}

} // namespace
} // namespace lba::workload
