/**
 * @file
 * Unit and property tests for the ISA: opcode metadata, encode/decode
 * round trips, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/isa.h"

namespace lba::isa {
namespace {

TEST(OpcodeTable, EveryOpcodeHasAMnemonic)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::kNumOpcodes);
         ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_NE(mnemonic(op), nullptr);
        EXPECT_GT(std::string(mnemonic(op)).size(), 0u);
    }
}

TEST(OpcodeTable, StableEncodingValues)
{
    // The numeric opcode values are part of the on-disk/record format;
    // pin a few so accidental reordering is caught.
    EXPECT_EQ(static_cast<unsigned>(Opcode::kNop), 0u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kHalt), 1u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kLi), 2u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kAdd), 5u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kLb), 25u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kSd), 30u);
    EXPECT_EQ(static_cast<unsigned>(Opcode::kSyscall), 42u);
}

TEST(OpcodeTable, MemoryClassification)
{
    EXPECT_TRUE(isLoad(Opcode::kLb));
    EXPECT_TRUE(isLoad(Opcode::kLw));
    EXPECT_TRUE(isLoad(Opcode::kLd));
    EXPECT_TRUE(isStore(Opcode::kSb));
    EXPECT_TRUE(isStore(Opcode::kSw));
    EXPECT_TRUE(isStore(Opcode::kSd));
    EXPECT_FALSE(isLoad(Opcode::kAdd));
    EXPECT_FALSE(isStore(Opcode::kAdd));
    EXPECT_TRUE(isMemRef(Opcode::kLd));
    EXPECT_TRUE(isMemRef(Opcode::kSb));
    EXPECT_FALSE(isMemRef(Opcode::kJmp));
}

TEST(OpcodeTable, AccessWidths)
{
    EXPECT_EQ(memAccessBytes(Opcode::kLb), 1u);
    EXPECT_EQ(memAccessBytes(Opcode::kLw), 4u);
    EXPECT_EQ(memAccessBytes(Opcode::kLd), 8u);
    EXPECT_EQ(memAccessBytes(Opcode::kSb), 1u);
    EXPECT_EQ(memAccessBytes(Opcode::kSw), 4u);
    EXPECT_EQ(memAccessBytes(Opcode::kSd), 8u);
    EXPECT_EQ(memAccessBytes(Opcode::kAdd), 0u);
}

TEST(OpcodeTable, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::kBeq));
    EXPECT_TRUE(isControl(Opcode::kJmp));
    EXPECT_TRUE(isControl(Opcode::kJr));
    EXPECT_TRUE(isControl(Opcode::kCall));
    EXPECT_TRUE(isControl(Opcode::kCallr));
    EXPECT_TRUE(isControl(Opcode::kRet));
    EXPECT_FALSE(isControl(Opcode::kAdd));
    EXPECT_FALSE(isControl(Opcode::kSyscall));
}

TEST(OpcodeTable, OperandUsage)
{
    EXPECT_TRUE(writesRd(Opcode::kLi));
    EXPECT_FALSE(readsRs1(Opcode::kLi));
    EXPECT_TRUE(readsRs1(Opcode::kAdd));
    EXPECT_TRUE(readsRs2(Opcode::kAdd));
    EXPECT_TRUE(readsRs1(Opcode::kAddi));
    EXPECT_FALSE(readsRs2(Opcode::kAddi));
    EXPECT_TRUE(readsRs2(Opcode::kSd)); // store value
    EXPECT_FALSE(writesRd(Opcode::kSd));
    EXPECT_TRUE(readsRs1(Opcode::kJr));
}

TEST(OpcodeTable, ClassNames)
{
    EXPECT_STREQ(className(InstrClass::kLoad), "Load");
    EXPECT_STREQ(className(InstrClass::kIndirectJump), "IndirectJump");
    EXPECT_STREQ(className(classOf(Opcode::kCallr)), "IndirectCall");
}

TEST(Encoding, RoundTripSimple)
{
    Instruction instr{Opcode::kAdd, 3, 1, 2, 0};
    auto decoded = decode(encode(instr));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, instr);
}

TEST(Encoding, RoundTripNegativeImmediate)
{
    Instruction instr{Opcode::kAddi, 5, 5, 0, -12345};
    auto decoded = decode(encode(instr));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, -12345);
}

TEST(Encoding, RejectsInvalidOpcode)
{
    std::uint64_t word = 0xff; // opcode byte 255
    EXPECT_FALSE(decode(word).has_value());
}

TEST(Encoding, RejectsOutOfRangeRegister)
{
    Instruction instr{Opcode::kAdd, 3, 1, 2, 0};
    std::uint64_t word = encode(instr);
    word |= 0x40ull << 8; // rd = 64+3
    EXPECT_FALSE(decode(word).has_value());
}

TEST(Encoding, ProgramRoundTrip)
{
    std::vector<Instruction> program = {
        {Opcode::kLi, 1, 0, 0, 7},
        {Opcode::kAddi, 1, 1, 0, -1},
        {Opcode::kBne, 0, 1, 0, -8},
        {Opcode::kHalt, 0, 0, 0, 0},
    };
    auto image = encodeProgram(program);
    EXPECT_EQ(image.size(), program.size() * kInstrBytes);
    auto decoded = decodeProgram(image);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, program);
}

TEST(Encoding, ProgramRejectsTruncatedImage)
{
    std::vector<std::uint8_t> image(12, 0); // not a multiple of 8
    EXPECT_FALSE(decodeProgram(image).has_value());
}

/** Property sweep: encode/decode round-trips over all opcodes. */
class EncodingRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingRoundTrip, AllFieldCombinations)
{
    auto op = static_cast<Opcode>(GetParam());
    // Deterministic pseudo-random field sweep per opcode.
    std::uint64_t state = 0x1234 + GetParam();
    for (int i = 0; i < 200; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Instruction instr;
        instr.op = op;
        instr.rd = static_cast<RegIndex>(state % kNumRegs);
        instr.rs1 = static_cast<RegIndex>((state >> 8) % kNumRegs);
        instr.rs2 = static_cast<RegIndex>((state >> 16) % kNumRegs);
        instr.imm = static_cast<std::int32_t>(state >> 24);
        auto decoded = decode(encode(instr));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, instr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingRoundTrip,
    ::testing::Range(0u, static_cast<unsigned>(Opcode::kNumOpcodes)));

TEST(Disasm, FormatsCommonInstructions)
{
    EXPECT_EQ(disassemble({Opcode::kAdd, 3, 1, 2, 0}), "add r3, r1, r2");
    EXPECT_EQ(disassemble({Opcode::kLi, 1, 0, 0, 42}), "li r1, 42");
    EXPECT_EQ(disassemble({Opcode::kLd, 4, 5, 0, 8}), "ld r4, 8(r5)");
    EXPECT_EQ(disassemble({Opcode::kSd, 0, 5, 4, 16}), "sd r4, 16(r5)");
    EXPECT_EQ(disassemble({Opcode::kBeq, 0, 1, 2, -8}),
              "beq r1, r2, -8");
    EXPECT_EQ(disassemble({Opcode::kRet, 0, 0, 0, 0}), "ret");
    EXPECT_EQ(disassemble({Opcode::kSyscall, 0, 0, 0, 3}), "syscall 3");
}

TEST(Disasm, AnnotatesTargets)
{
    std::string s = disassembleAt({Opcode::kJmp, 0, 0, 0, 16}, 0x1000);
    EXPECT_NE(s.find("0x1010"), std::string::npos);
}

} // namespace
} // namespace lba::isa
