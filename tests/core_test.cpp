/**
 * @file
 * Tests for the LBA system: decoupled timing, back-pressure, syscall
 * containment, filtering, and the parallel-lifeguard extension.
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "core/lba_system.h"
#include "core/parallel.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::core {
namespace {

using assembler::assemble;

std::vector<isa::Instruction>
program(const std::string& source)
{
    auto r = assemble(source);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

TEST(LbaSystem, UnmonitoredBaselineIsCheapest)
{
    auto prog = program(R"(
        li r5, 0x100000
        li r1, 1000
    loop:
        ld r2, 0(r5)
        sd r2, 8(r5)
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    Experiment exp(prog);
    auto base = exp.unmonitored();
    auto lba = exp.runLba(addrcheck());
    EXPECT_GT(base.cycles, 0u);
    EXPECT_GT(lba.cycles, base.cycles);
    EXPECT_GT(lba.slowdown, 1.0);
}

TEST(LbaSystem, EveryRetirementIsLogged)
{
    auto prog = program("li r1, 5\nadd r2, r1, r1\nhalt\n");
    Experiment exp(prog);
    auto lba = exp.runLba(addrcheck());
    // 3 instruction records + ThreadExit annotation.
    EXPECT_EQ(lba.lba.records_logged, 4u);
    EXPECT_EQ(lba.lba.app_instructions, 3u);
}

TEST(LbaSystem, CompressionAccountingActive)
{
    auto generated =
        workload::generate(*workload::findProfile("gzip"), {}, 50000);
    Experiment exp(generated.program);
    auto lba = exp.runLba(addrcheck());
    EXPECT_GT(lba.lba.bytes_per_record, 0.0);
    EXPECT_LT(lba.lba.bytes_per_record, 1.0); // the paper's claim
}

TEST(LbaSystem, TinyBufferCausesBackpressure)
{
    auto generated =
        workload::generate(*workload::findProfile("mcf"), {}, 50000);
    Experiment exp(generated.program);

    LbaConfig tiny = exp.config().lba;
    tiny.buffer_capacity = 8;
    auto constrained = exp.runLba(addrcheck(), tiny);

    LbaConfig big = exp.config().lba;
    big.buffer_capacity = 1 << 20;
    auto decoupled = exp.runLba(addrcheck(), big);

    EXPECT_GT(constrained.lba.backpressure_stall_cycles, 0u);
    // More decoupling can only help (or tie).
    EXPECT_LE(decoupled.cycles, constrained.cycles);
}

TEST(LbaSystem, SyscallContainmentDrainsLog)
{
    auto prog = program(R"(
        li r5, 0x100000
        li r3, 200
    loop:
        sd r3, 0(r5)
        addi r3, r3, -1
        bne r3, r0, loop
        li r1, 64
        syscall 1
        halt
    )");
    Experiment exp(prog);

    LbaConfig stall = exp.config().lba;
    stall.syscall_stall = true;
    auto with = exp.runLba(addrcheck(), stall);

    LbaConfig nostall = exp.config().lba;
    nostall.syscall_stall = false;
    auto without = exp.runLba(addrcheck(), nostall);

    EXPECT_EQ(with.lba.syscall_drains, 1u);
    EXPECT_EQ(without.lba.syscall_drains, 0u);
    EXPECT_GE(with.lba.syscall_stall_cycles, 0u);
    // Containment can only slow the application side down.
    EXPECT_GE(with.cycles, without.cycles);
}

TEST(LbaSystem, FilteringDropsOutOfRangeRecords)
{
    auto prog = program(R"(
        li r5, 0x100000      ; global (outside heap)
        li r3, 100
    loop:
        ld r2, 0(r5)
        addi r3, r3, -1
        bne r3, r0, loop
        halt
    )");
    Experiment exp(prog);
    LbaConfig filt = exp.config().lba;
    filt.filter_enabled = true;
    filt.filter_base = 0x10000000; // heap only
    filt.filter_bytes = 64ull << 20;
    auto filtered = exp.runLba(addrcheck(), filt);
    EXPECT_EQ(filtered.lba.records_filtered, 100u);
    auto plain = exp.runLba(addrcheck());
    EXPECT_EQ(plain.lba.records_filtered, 0u);
    EXPECT_LT(filtered.lba.records_logged, plain.lba.records_logged);
}

TEST(LbaSystem, FilteringPreservesAddrCheckFindings)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    bugs.leak = true;
    auto generated =
        workload::generate(*workload::findProfile("tidy"), bugs, 60000);
    Experiment exp(generated.program);

    LbaConfig filt = exp.config().lba;
    filt.filter_enabled = true;
    filt.filter_base = 0x10000000;
    filt.filter_bytes = 64ull << 20;
    auto filtered = exp.runLba(addrcheck(), filt);
    auto plain = exp.runLba(addrcheck());
    ASSERT_EQ(filtered.findings.size(), plain.findings.size());
    for (std::size_t i = 0; i < filtered.findings.size(); ++i) {
        EXPECT_EQ(filtered.findings[i].kind, plain.findings[i].kind);
    }
    // And filtering reduces lifeguard-side work.
    EXPECT_LE(filtered.lba.lifeguard_busy_cycles,
              plain.lba.lifeguard_busy_cycles);
}

TEST(LbaSystem, DeterministicAcrossRuns)
{
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 40000);
    Experiment exp1(generated.program);
    Experiment exp2(generated.program);
    auto a = exp1.runLba(addrcheck());
    auto b = exp2.runLba(addrcheck());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.lba.records_logged, b.lba.records_logged);
    EXPECT_EQ(a.lba.bytes_per_record, b.lba.bytes_per_record);
}

TEST(LbaSystem, LifeguardLagIsObservable)
{
    auto generated =
        workload::generate(*workload::findProfile("gs"), {}, 40000);
    Experiment exp(generated.program);
    auto lba = exp.runLba(addrcheck());
    // The lifeguard runs behind the application (decoupled cores).
    EXPECT_GT(lba.lba.mean_consume_lag, 0.0);
    EXPECT_GT(lba.lba.lifeguard_busy_cycles, 0u);
}

TEST(ParallelLba, ShardingPreservesAddrCheckFindings)
{
    workload::BugInjection bugs;
    bugs.leak = true;
    bugs.double_free = true;
    auto generated =
        workload::generate(*workload::findProfile("tidy"), bugs, 60000);
    Experiment exp(generated.program);

    auto single = exp.runLba(addrcheck());
    auto sharded = exp.runParallelLba(addrcheck(), 4);

    // Same finding kinds/addresses (order may differ across shards).
    auto key = [](const lifeguard::Finding& f) {
        return std::make_tuple(static_cast<int>(f.kind), f.addr, f.pc);
    };
    std::vector<std::tuple<int, Addr, Addr>> a, b;
    for (const auto& f : single.findings) a.push_back(key(f));
    for (const auto& f : sharded.findings) b.push_back(key(f));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(ParallelLba, MoreShardsReduceLifeguardBottleneck)
{
    auto generated =
        workload::generate(*workload::findProfile("mcf"), {}, 80000);
    Experiment exp(generated.program);
    auto one = exp.runParallelLba(addrcheck(), 1);
    auto four = exp.runParallelLba(addrcheck(), 4);
    EXPECT_LT(four.cycles, one.cycles);
    EXPECT_EQ(four.parallel.shard_busy_cycles.size(), 4u);
}

/**
 * The refactor's proof obligation: a shards=1 parallel run is the
 * serial system, cycle for cycle — both are the same PipelineTimer
 * instantiation, so every stat must match exactly.
 */
void
expectSingleShardMatchesSerial(Experiment& exp,
                               const LifeguardFactory& factory,
                               const LbaConfig& config)
{
    auto serial = exp.runLba(factory, config);
    auto par =
        exp.runParallelLba(factory, ParallelLbaConfig(config, 1));

    EXPECT_EQ(serial.lba.total_cycles, par.parallel.total_cycles);
    EXPECT_EQ(serial.lba.app_cycles, par.parallel.app_cycles);
    EXPECT_EQ(serial.lba.backpressure_stall_cycles,
              par.parallel.backpressure_stall_cycles);
    EXPECT_EQ(serial.lba.syscall_stall_cycles,
              par.parallel.syscall_stall_cycles);
    EXPECT_EQ(serial.lba.syscall_drains, par.parallel.syscall_drains);
    EXPECT_EQ(serial.lba.records_logged, par.parallel.records_logged);
    EXPECT_EQ(serial.lba.records_filtered,
              par.parallel.records_filtered);
    EXPECT_EQ(serial.lba.lifeguard_busy_cycles,
              par.parallel.lifeguard_busy_cycles);
    EXPECT_EQ(serial.lba.transport_wait_cycles,
              par.parallel.transport_wait_cycles);
    EXPECT_EQ(serial.lba.transport_bytes, par.parallel.transport_bytes);
    EXPECT_EQ(serial.lba.bytes_per_record,
              par.parallel.bytes_per_record);
    EXPECT_EQ(serial.lba.mean_consume_lag,
              par.parallel.mean_consume_lag);
    ASSERT_EQ(par.parallel.shard_busy_cycles.size(), 1u);
    EXPECT_EQ(serial.lba.lifeguard_busy_cycles,
              par.parallel.shard_busy_cycles[0]);
    EXPECT_EQ(serial.lba.records_logged,
              par.parallel.shard_records[0]);
    EXPECT_EQ(serial.lba.transport_wait_cycles,
              par.parallel.shard_transport_wait_cycles[0]);

    ASSERT_EQ(serial.findings.size(), par.findings.size());
    for (std::size_t i = 0; i < serial.findings.size(); ++i) {
        EXPECT_EQ(serial.findings[i].kind, par.findings[i].kind);
        EXPECT_EQ(serial.findings[i].addr, par.findings[i].addr);
    }
}

TEST(ParallelLba, SingleShardMatchesSerialDefaultConfig)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    bugs.leak = true;
    auto generated =
        workload::generate(*workload::findProfile("bc"), bugs, 40000);
    Experiment exp(generated.program);
    expectSingleShardMatchesSerial(exp, addrcheck(), exp.config().lba);
}

TEST(ParallelLba, SingleShardMatchesSerialConstrainedConfig)
{
    // Filtering + fractional transport bandwidth + tiny buffer: every
    // engine feature the old hand-copied parallel path was missing.
    auto generated =
        workload::generate(*workload::findProfile("mcf"), {}, 40000);
    Experiment exp(generated.program);
    LbaConfig config = exp.config().lba;
    config.buffer_capacity = 64;
    config.filter_enabled = true;
    config.filter_base = 0x10000000;
    config.filter_bytes = 64ull << 20;
    config.transport_bytes_per_cycle = 0.75;
    expectSingleShardMatchesSerial(exp, addrcheck(), config);
}

TEST(ParallelLba, SingleShardMatchesSerialLockSetUncompressed)
{
    auto generated =
        workload::generate(*workload::findProfile("water"), {}, 40000);
    Experiment exp(generated.program);
    LbaConfig config = exp.config().lba;
    config.compress = false;
    config.transport_bytes_per_cycle = 6.0;
    expectSingleShardMatchesSerial(
        exp, [] { return std::make_unique<lifeguards::LockSet>(); },
        config);
}

TEST(LbaSystem, BandwidthLimitedTransportThrottles)
{
    auto generated =
        workload::generate(*workload::findProfile("gzip"), {}, 40000);
    Experiment exp(generated.program);

    // Uncompressed 24-byte records over a 0.5 B/cycle transport: the
    // transport is the bottleneck (48 cycles/record >> handler cost).
    LbaConfig raw = exp.config().lba;
    raw.compress = false;
    raw.transport_bytes_per_cycle = 0.5;
    auto throttled = exp.runLba(addrcheck(), raw);

    LbaConfig compressed = exp.config().lba;
    compressed.compress = true;
    compressed.transport_bytes_per_cycle = 0.5;
    auto fine = exp.runLba(addrcheck(), compressed);

    EXPECT_GT(throttled.cycles, fine.cycles * 3);
    EXPECT_GT(throttled.lba.transport_wait_cycles, 0u);
    // Compressed records are ~30x smaller on the wire.
    EXPECT_LT(fine.lba.transport_bytes,
              throttled.lba.transport_bytes / 10);
}

TEST(LbaSystem, UnlimitedBandwidthMatchesDefault)
{
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 30000);
    Experiment exp(generated.program);
    auto plain = exp.runLba(addrcheck());
    LbaConfig wide = exp.config().lba;
    wide.transport_bytes_per_cycle = 1e9;
    auto unconstrained = exp.runLba(addrcheck(), wide);
    // Ceiling delivery: any finite bandwidth quantizes each record to
    // the next cycle boundary, so a huge-but-finite transport is never
    // faster than unlimited — and within a whisker of it.
    EXPECT_GE(unconstrained.cycles, plain.cycles);
    EXPECT_NEAR(static_cast<double>(unconstrained.cycles) /
                    static_cast<double>(plain.cycles),
                1.0, 0.01);
}

TEST(LbaSystem, FractionalBandwidthUsesCeilingDelivery)
{
    // 3 uncompressed 8-byte records over a 3 B/cycle transport: each
    // record needs 8/3 = 2.67 cycles on the wire. With ceiling
    // semantics a record is only consumable at the first cycle boundary
    // at or after its last byte arrives, so the cumulative delivery
    // points are ceil(2.67)=3, ceil(5.33)=6, ceil(8)=8 — truncation
    // would deliver at 2, 5, 8 and let records 1 and 2 be consumed
    // before their final byte crossed the transport.
    auto prog = program("li r1, 1\nli r2, 2\nhalt\n");
    Experiment exp(prog);
    LbaConfig frac = exp.config().lba;
    frac.compress = false;
    frac.raw_record_bytes = 8;
    frac.transport_bytes_per_cycle = 3.0;
    auto run = exp.runLba(addrcheck(), frac);
    // 3 instruction records + ThreadExit annotation = 4 records of
    // 8 bytes each; production finishes long before the wire does, so
    // every delivery waits on the transport.
    ASSERT_EQ(run.lba.records_logged, 4u);
    EXPECT_EQ(run.lba.transport_bytes, 32.0);
    // The run is deterministic, so pin the exact values that separate
    // the two semantics: ceiling delivery waits 24 cycles total (mean
    // lag 6.0); the old truncating delivery waited only 20 (lag 5.0),
    // consuming records before their final byte had crossed the wire.
    EXPECT_EQ(run.lba.transport_wait_cycles, 24u);
    EXPECT_DOUBLE_EQ(run.lba.mean_consume_lag, 6.0);
}

TEST(LbaSystem, TransportBytesMatchCompressorOutput)
{
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 30000);
    Experiment exp(generated.program);
    auto result = exp.runLba(addrcheck());
    double expected = result.lba.bytes_per_record *
                      static_cast<double>(result.lba.records_logged);
    EXPECT_NEAR(result.lba.transport_bytes, expected,
                expected * 0.01 + 1.0);
}

TEST(Experiment, UnmonitoredIsCached)
{
    auto prog = program("li r1, 1\nhalt\n");
    Experiment exp(prog);
    const PlatformResult& a = exp.unmonitored();
    const PlatformResult& b = exp.unmonitored();
    EXPECT_EQ(&a, &b);
}

} // namespace
} // namespace lba::core
