/**
 * @file
 * AddrCheck lifeguard tests: detection of unallocated accesses, double
 * frees and leaks; absence of false positives on clean event streams.
 */

#include <gtest/gtest.h>

#include "lifeguards/addrcheck.h"

namespace lba::lifeguards {
namespace {

using lifeguard::FindingKind;
using lifeguard::NullCostSink;
using log::EventRecord;
using log::EventType;

constexpr Addr kHeap = 0x10000000;

EventRecord
allocEvent(Addr base, std::uint64_t size)
{
    EventRecord r;
    r.type = EventType::kAlloc;
    r.addr = base;
    r.aux = size;
    return r;
}

EventRecord
freeEvent(Addr base)
{
    EventRecord r;
    r.type = EventType::kFree;
    r.addr = base;
    r.aux = 1;
    return r;
}

EventRecord
access(Addr addr, bool write, unsigned bytes = 8, Addr pc = 0x1000)
{
    EventRecord r;
    r.type = write ? EventType::kStore : EventType::kLoad;
    r.opcode = static_cast<std::uint8_t>(write ? isa::Opcode::kSd
                                               : isa::Opcode::kLd);
    r.pc = pc;
    r.addr = addr;
    r.aux = bytes;
    return r;
}

class AddrCheckTest : public ::testing::Test
{
  protected:
    AddrCheck guard;
    NullCostSink sink;

    void feed(const EventRecord& r) { guard.handleEvent(r, sink); }
};

TEST_F(AddrCheckTest, CleanAllocAccessFreeHasNoFindings)
{
    feed(allocEvent(kHeap, 64));
    feed(access(kHeap, false));
    feed(access(kHeap + 56, true));
    feed(freeEvent(kHeap));
    guard.finish(sink);
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(AddrCheckTest, DetectsAccessToNeverAllocatedHeap)
{
    feed(access(kHeap + 0x100, false, 8, 0x1040));
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kUnallocatedAccess);
    EXPECT_EQ(guard.findings()[0].pc, 0x1040u);
    EXPECT_EQ(guard.findings()[0].addr, kHeap + 0x100);
}

TEST_F(AddrCheckTest, DetectsUseAfterFree)
{
    feed(allocEvent(kHeap, 64));
    feed(access(kHeap + 8, false));
    feed(freeEvent(kHeap));
    EXPECT_TRUE(guard.findings().empty());
    feed(access(kHeap + 8, false));
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kUnallocatedAccess);
}

TEST_F(AddrCheckTest, IgnoresNonHeapAccesses)
{
    feed(access(0x1000, false));     // code
    feed(access(0x7ffe0000, true));  // stack
    feed(access(0x1000000, false));  // globals
    guard.finish(sink);
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(AddrCheckTest, DetectsDoubleFree)
{
    feed(allocEvent(kHeap, 64));
    feed(freeEvent(kHeap));
    feed(freeEvent(kHeap));
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kDoubleFree);
}

TEST_F(AddrCheckTest, DetectsWildFree)
{
    feed(freeEvent(kHeap + 0x500));
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kDoubleFree);
}

TEST_F(AddrCheckTest, DetectsLeakAtFinish)
{
    feed(allocEvent(kHeap, 64));
    feed(allocEvent(kHeap + 0x100, 32));
    feed(freeEvent(kHeap));
    guard.finish(sink);
    ASSERT_EQ(guard.findings().size(), 1u);
    EXPECT_EQ(guard.findings()[0].kind, FindingKind::kMemoryLeak);
    EXPECT_EQ(guard.findings()[0].addr, kHeap + 0x100);
}

TEST_F(AddrCheckTest, ReallocatedMemoryIsValidAgain)
{
    feed(allocEvent(kHeap, 64));
    feed(freeEvent(kHeap));
    feed(allocEvent(kHeap, 64)); // allocator reuses the address
    feed(access(kHeap + 16, true));
    EXPECT_TRUE(guard.findings().empty());
}

TEST_F(AddrCheckTest, PartialBlockBoundaryIsExact)
{
    feed(allocEvent(kHeap, 16));
    feed(access(kHeap + 8, false, 8)); // last valid granule
    EXPECT_TRUE(guard.findings().empty());
    feed(access(kHeap + 16, false, 8)); // one past the end
    EXPECT_EQ(guard.findings().size(), 1u);
}

TEST_F(AddrCheckTest, StraddlingAccessChecksBothGranules)
{
    feed(allocEvent(kHeap, 8));
    // 4-byte access starting at offset 6 spills into the next granule.
    feed(access(kHeap + 6, false, 4));
    EXPECT_EQ(guard.findings().size(), 1u);
}

TEST_F(AddrCheckTest, DedupeSuppressesRepeats)
{
    feed(access(kHeap + 0x40, false));
    feed(access(kHeap + 0x40, false));
    feed(access(kHeap + 0x44, true));
    EXPECT_EQ(guard.findings().size(), 1u);
}

TEST_F(AddrCheckTest, DedupeDisabledReportsEach)
{
    AddrCheckConfig cfg;
    cfg.dedupe_reports = false;
    AddrCheck loud(cfg);
    loud.handleEvent(access(kHeap + 0x40, false), sink);
    loud.handleEvent(access(kHeap + 0x40, false), sink);
    EXPECT_EQ(loud.findings().size(), 2u);
}

TEST_F(AddrCheckTest, FailedAllocationIsIgnored)
{
    feed(allocEvent(0, 0)); // SYS_ALLOC returned null
    guard.finish(sink);
    EXPECT_TRUE(guard.findings().empty());
    EXPECT_EQ(guard.liveBytes(), 0u);
}

TEST_F(AddrCheckTest, LiveBytesTracksAllocations)
{
    feed(allocEvent(kHeap, 64));
    feed(allocEvent(kHeap + 0x100, 32));
    EXPECT_EQ(guard.liveBytes(), 96u);
    feed(freeEvent(kHeap));
    EXPECT_EQ(guard.liveBytes(), 32u);
}

TEST_F(AddrCheckTest, CostModelChargesMoreForHeapAccesses)
{
    /** Sink that counts charged instructions and accesses. */
    class CountingSink : public lifeguard::CostSink
    {
      public:
        void instrs(std::uint32_t n) override { total += n; }
        void memAccess(Addr, bool) override { ++accesses; }
        std::uint64_t total = 0;
        std::uint64_t accesses = 0;
    };
    CountingSink counting;
    guard.handleEvent(allocEvent(kHeap, 512), counting);
    std::uint64_t alloc_cost = counting.total;
    EXPECT_GT(alloc_cost, 0u);
    EXPECT_EQ(counting.accesses, 8u); // 512 B = 8 shadow-word stores

    counting.total = 0;
    counting.accesses = 0;
    guard.handleEvent(access(kHeap, false), counting);
    std::uint64_t heap_access_cost = counting.total;
    EXPECT_EQ(counting.accesses, 1u);

    counting.total = 0;
    counting.accesses = 0;
    guard.handleEvent(access(0x5000, false), counting);
    EXPECT_LT(counting.total, heap_access_cost);
    EXPECT_EQ(counting.accesses, 0u);
}

} // namespace
} // namespace lba::lifeguards
