/**
 * @file
 * Differential proof of threaded execution: for the same program and
 * configuration, `execution = kThreaded` (lifeguard handlers on one
 * host worker thread per lane, costs recorded and replayed at the
 * flush barriers — core/threaded_executor.h) must be cycle-identical —
 * every stat, every finding — to `execution = kSerial` (the
 * reference), across the serial system, the parallel system with
 * shards in {1, 2, 4}, a one-tenant pool, and a containment run that
 * actually rewinds. This is the oracle that makes real multicore
 * execution safe: simulated timing stays authoritative and
 * deterministic no matter how the host schedules the workers, and any
 * drift is a test failure here, not a silent fork. The TSan CI job
 * runs this same suite to back the memory-order arguments
 * (docs/ARCHITECTURE.md "Threaded execution").
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::core {
namespace {

LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs,
            bool with_bugs = false)
{
    workload::BugInjection bugs;
    if (with_bugs) {
        bugs.use_after_free = true;
        bugs.leak = true;
    }
    return workload::generate(*workload::findProfile(profile), bugs,
                              instrs);
}

void
expectStatsEqual(const LbaRunStats& threaded, const LbaRunStats& serial)
{
    EXPECT_EQ(threaded.app_instructions, serial.app_instructions);
    EXPECT_EQ(threaded.records_logged, serial.records_logged);
    EXPECT_EQ(threaded.records_filtered, serial.records_filtered);
    EXPECT_EQ(threaded.total_cycles, serial.total_cycles);
    EXPECT_EQ(threaded.app_cycles, serial.app_cycles);
    EXPECT_EQ(threaded.backpressure_stall_cycles,
              serial.backpressure_stall_cycles);
    EXPECT_EQ(threaded.syscall_stall_cycles,
              serial.syscall_stall_cycles);
    EXPECT_EQ(threaded.lifeguard_busy_cycles,
              serial.lifeguard_busy_cycles);
    EXPECT_EQ(threaded.bytes_per_record, serial.bytes_per_record);
    EXPECT_EQ(threaded.mean_consume_lag, serial.mean_consume_lag);
    EXPECT_EQ(threaded.syscall_drains, serial.syscall_drains);
    EXPECT_EQ(threaded.transport_bytes, serial.transport_bytes);
    EXPECT_EQ(threaded.transport_wait_cycles,
              serial.transport_wait_cycles);
    EXPECT_EQ(threaded.containment_cycles, serial.containment_cycles);
}

void
expectFindingsEqual(const std::vector<lifeguard::Finding>& threaded,
                    const std::vector<lifeguard::Finding>& serial)
{
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t i = 0; i < threaded.size(); ++i) {
        EXPECT_EQ(threaded[i].kind, serial[i].kind);
        EXPECT_EQ(threaded[i].pc, serial[i].pc);
        EXPECT_EQ(threaded[i].addr, serial[i].addr);
        EXPECT_EQ(threaded[i].tid, serial[i].tid);
        EXPECT_EQ(threaded[i].message, serial[i].message);
    }
}

/** Serial LBA platform: threaded vs serial host execution. */
void
expectSerialIdentical(const workload::GeneratedProgram& gen,
                      const LifeguardFactory& factory, LbaConfig lba)
{
    Experiment exp(gen.program);
    lba.execution = ExecutionMode::kThreaded;
    PlatformResult threaded = exp.runLba(factory, lba);
    lba.execution = ExecutionMode::kSerial;
    PlatformResult serial = exp.runLba(factory, lba);

    EXPECT_EQ(threaded.cycles, serial.cycles);
    expectStatsEqual(threaded.lba, serial.lba);
    expectFindingsEqual(threaded.findings, serial.findings);
}

TEST(ThreadedExecution, SerialAddrCheckDefaultConfig)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    expectSerialIdentical(gen, addrcheck(), LbaConfig{});
}

TEST(ThreadedExecution, SerialAddrCheckConstrainedConfig)
{
    // Tiny buffer + fractional transport + filtering: back-pressure
    // flushes, transport ceilings and the filter all active, so the
    // cross-thread barrier fires at every kind of flush boundary.
    auto gen = makeProgram("mcf", 40000);
    LbaConfig lba;
    lba.buffer_capacity = 64;
    lba.filter_enabled = true;
    lba.filter_base = 0x10000000;
    lba.filter_bytes = 64ull << 20;
    lba.transport_bytes_per_cycle = 0.75;
    expectSerialIdentical(gen, addrcheck(), lba);
}

TEST(ThreadedExecution, SerialTaintCheck)
{
    workload::BugInjection bugs;
    bugs.tainted_jump = true;
    auto gen = workload::generate(*workload::findProfile("gzip"), bugs,
                                  40000);
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::TaintCheck>(); },
        LbaConfig{});
}

TEST(ThreadedExecution, SerialLockSetUncompressed)
{
    auto gen = makeProgram("water", 40000);
    LbaConfig lba;
    lba.compress = false;
    lba.transport_bytes_per_cycle = 6.0;
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::LockSet>(); },
        lba);
}

TEST(ThreadedExecution, ParallelShards124)
{
    // Multi-lane: shards > 1 means several worker threads genuinely
    // execute handlers concurrently (the broadcast annotation records
    // fan out to every lane), yet every per-shard stat must match.
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    for (unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(shards);
        ParallelLbaConfig config(LbaConfig{}, shards);
        config.execution = ExecutionMode::kThreaded;
        PlatformResult threaded =
            exp.runParallelLba(addrcheck(), config);
        config.execution = ExecutionMode::kSerial;
        PlatformResult serial = exp.runParallelLba(addrcheck(), config);

        EXPECT_EQ(threaded.cycles, serial.cycles);
        expectStatsEqual(threaded.parallel, serial.parallel);
        expectFindingsEqual(threaded.findings, serial.findings);
        for (unsigned s = 0; s < shards; ++s) {
            SCOPED_TRACE(s);
            EXPECT_EQ(threaded.parallel.shard_busy_cycles[s],
                      serial.parallel.shard_busy_cycles[s]);
            EXPECT_EQ(threaded.parallel.shard_records[s],
                      serial.parallel.shard_records[s]);
            EXPECT_EQ(threaded.parallel.shard_consume_lag[s],
                      serial.parallel.shard_consume_lag[s]);
            EXPECT_EQ(threaded.parallel.shard_transport_bytes[s],
                      serial.parallel.shard_transport_bytes[s]);
            EXPECT_EQ(threaded.parallel.shard_transport_wait_cycles[s],
                      serial.parallel.shard_transport_wait_cycles[s]);
            EXPECT_EQ(threaded.parallel.shard_max_occupancy[s],
                      serial.parallel.shard_max_occupancy[s]);
        }
    }
}

TEST(ThreadedExecution, OneTenantPool)
{
    // External-dispatch mode: the pool's tenant shard engines pin to
    // workers lazily, at the first flush that carries them.
    auto gen = makeProgram("gzip", 40000);
    sched::PoolConfig config;
    config.lanes = 2;
    config.lba.buffer_capacity = 256;
    config.lba.transport_bytes_per_cycle = 1.5;

    config.lba.execution = ExecutionMode::kThreaded;
    sched::LifeguardPool threaded_pool(config, addrcheck());
    threaded_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult threaded = threaded_pool.run();

    config.lba.execution = ExecutionMode::kSerial;
    sched::LifeguardPool serial_pool(config, addrcheck());
    serial_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult serial = serial_pool.run();

    EXPECT_EQ(threaded.total_cycles, serial.total_cycles);
    expectStatsEqual(threaded.aggregate, serial.aggregate);
    ASSERT_EQ(threaded.tenants.size(), 1u);
    ASSERT_EQ(serial.tenants.size(), 1u);
    EXPECT_EQ(threaded.tenants[0].total_cycles,
              serial.tenants[0].total_cycles);
    EXPECT_EQ(threaded.tenants[0].lag_p95, serial.tenants[0].lag_p95);
    expectStatsEqual(threaded.tenants[0].lba, serial.tenants[0].lba);
    expectFindingsEqual(threaded.tenants[0].findings,
                        serial.tenants[0].findings);
}

TEST(ThreadedExecution, ContainmentRewindsIdentically)
{
    // Detection latency must not depend on host threading: a
    // use-after-free caught under containment rewinds at the same
    // retirement, the same distance, for the same total cost — the
    // mid-run findings checks synchronize at the flush barrier.
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    replay::ContainmentConfig containment;
    containment.enabled = true;
    containment.policy = replay::RepairPolicy::kQuarantine;

    LbaConfig lba;
    lba.execution = ExecutionMode::kThreaded;
    PlatformResult threaded = exp.runLba(addrcheck(), lba, containment);
    lba.execution = ExecutionMode::kSerial;
    PlatformResult serial = exp.runLba(addrcheck(), lba, containment);

    ASSERT_TRUE(threaded.containment_enabled);
    EXPECT_GE(threaded.containment.rewinds, 1u);
    EXPECT_EQ(threaded.cycles, serial.cycles);
    EXPECT_EQ(threaded.containment.rewinds, serial.containment.rewinds);
    EXPECT_EQ(threaded.containment.rewound_instructions,
              serial.containment.rewound_instructions);
    EXPECT_EQ(threaded.containment.max_rewind_distance,
              serial.containment.max_rewind_distance);
    EXPECT_EQ(threaded.containment.rewind_cycles,
              serial.containment.rewind_cycles);
    expectStatsEqual(threaded.lba, serial.lba);
    expectFindingsEqual(threaded.findings, serial.findings);
}

TEST(ThreadedExecution, ThreadedPathActuallyBatches)
{
    // Sanity: threaded mode flows through consumeBatchDeferred, which
    // counts batches exactly like consumeBatch — so batches > 0 proves
    // records really crossed the worker threads, and equality with the
    // serial count proves the run partitioning is identical.
    auto gen = makeProgram("gzip", 20000);

    auto run = [&](ExecutionMode execution) {
        LbaConfig lba;
        lba.execution = execution;
        mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
        lifeguards::AddrCheck guard;
        LbaSystem system(guard, hierarchy, lba);
        sim::Process process{sim::ProcessConfig{}};
        process.load(gen.program);
        process.run(&system);
        system.finish();
        return system.dispatchStats().batches;
    };

    auto threaded = run(ExecutionMode::kThreaded);
    EXPECT_GT(threaded, 0u);
    EXPECT_EQ(threaded, run(ExecutionMode::kSerial));
}

} // namespace
} // namespace lba::core
