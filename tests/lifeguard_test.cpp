/**
 * @file
 * Tests for the lifeguard framework: findings, shadow memory, and the
 * dispatch engine's cost accounting.
 */

#include <gtest/gtest.h>

#include "lifeguard/compiler.h"
#include "lifeguard/dispatch.h"
#include "lifeguard/finding.h"
#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguard {
namespace {

TEST(Finding, NamesAndFormatting)
{
    Finding f{FindingKind::kDoubleFree, 0x1000, 0x2000, 1, "oops"};
    std::string s = toString(f);
    EXPECT_NE(s.find("DoubleFree"), std::string::npos);
    EXPECT_NE(s.find("oops"), std::string::npos);
    EXPECT_NE(s.find("0x1000"), std::string::npos);
}

TEST(ShadowMemory, EntriesStartZero)
{
    ShadowMemory<std::uint8_t, 8> shadow;
    EXPECT_EQ(shadow.find(0x1234), nullptr);
    EXPECT_EQ(shadow.entry(0x1234), 0u);
    EXPECT_NE(shadow.find(0x1234), nullptr);
}

TEST(ShadowMemory, GranuleSharing)
{
    ShadowMemory<std::uint8_t, 8> shadow;
    shadow.entry(0x1000) = 0xff;
    // Same 8-byte granule.
    EXPECT_EQ(shadow.entry(0x1007), 0xff);
    // Next granule is fresh.
    EXPECT_EQ(shadow.entry(0x1008), 0u);
}

TEST(ShadowMemory, ShadowAddressesAreDenseAndDisjoint)
{
    ShadowMemory<std::uint8_t, 8> a(kShadowBase);
    ShadowMemory<std::uint32_t, 8> b(kShadowBase + 0x100000000ull);
    EXPECT_EQ(a.shadowAddr(0x1008) - a.shadowAddr(0x1000), 1u);
    EXPECT_EQ(b.shadowAddr(0x1008) - b.shadowAddr(0x1000), 4u);
    EXPECT_NE(a.shadowAddr(0), b.shadowAddr(0));
}

TEST(ShadowMemory, LargeStructEntries)
{
    struct Granule
    {
        std::uint8_t state;
        std::uint16_t owner;
        std::uint32_t lockset;
    };
    ShadowMemory<Granule, 8> shadow;
    shadow.entry(0x2000).state = 3;
    shadow.entry(0x2000).lockset = 99;
    EXPECT_EQ(shadow.find(0x2004)->state, 3u);
    EXPECT_EQ(shadow.find(0x2004)->lockset, 99u);
}

/** A lifeguard with a deterministic per-event cost, for dispatch tests. */
class FixedCostLifeguard : public Lifeguard
{
  public:
    const char* name() const override { return "FixedCost"; }

    void
    handleEvent(const log::EventRecord& record, CostSink& cost) override
    {
        ++events;
        cost.instrs(5);
        if (record.type == log::EventType::kLoad) {
            cost.memAccess(0x4000000000ull + record.addr / 8, false);
        }
    }

    void finish(CostSink& cost) override { cost.instrs(100); }

    int events = 0;
};

TEST(Dispatch, ChargesDispatchPlusHandler)
{
    FixedCostLifeguard guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DispatchEngine engine(guard, hierarchy, {1, 1});

    log::EventRecord alu;
    alu.type = log::EventType::kIntAlu;
    // dispatch(1) + instrs(5) = 6.
    EXPECT_EQ(engine.consume(alu), 6u);
    EXPECT_EQ(guard.events, 1);
}

TEST(Dispatch, MetadataAccessGoesThroughCaches)
{
    FixedCostLifeguard guard;
    mem::HierarchyConfig hc;
    mem::CacheHierarchy hierarchy(hc);
    DispatchEngine engine(guard, hierarchy, {1, 1});

    log::EventRecord load;
    load.type = log::EventType::kLoad;
    load.addr = 0x20000;
    // First touch: dispatch(1) + instrs(5) + mem(1 + L2miss 106) = 113.
    Cycles cold = engine.consume(load);
    EXPECT_EQ(cold, 1 + 5 + 1 + hc.l2_hit_cycles + hc.mem_cycles);
    // Second touch: shadow line now in the lifeguard core's L1.
    Cycles warm = engine.consume(load);
    EXPECT_EQ(warm, 1 + 5 + 1);
}

TEST(Dispatch, StatsBrokenDownByType)
{
    FixedCostLifeguard guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DispatchEngine engine(guard, hierarchy, {1, 1});

    log::EventRecord alu;
    alu.type = log::EventType::kIntAlu;
    log::EventRecord store;
    store.type = log::EventType::kStore;
    engine.consume(alu);
    engine.consume(alu);
    engine.consume(store);
    const DispatchStats& s = engine.stats();
    EXPECT_EQ(s.records, 3u);
    EXPECT_EQ(
        s.records_by_type[static_cast<int>(log::EventType::kIntAlu)],
        2u);
    EXPECT_EQ(
        s.records_by_type[static_cast<int>(log::EventType::kStore)], 1u);
    EXPECT_GT(s.total_cycles, 0u);
}

TEST(Dispatch, FinishRunsLifeguardHook)
{
    FixedCostLifeguard guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DispatchEngine engine(guard, hierarchy, {1, 1});
    EXPECT_EQ(engine.finish(), 100u);
}

TEST(Dispatch, LifeguardCoreIsConfigurable)
{
    FixedCostLifeguard guard;
    mem::HierarchyConfig hc;
    hc.num_cores = 4;
    mem::CacheHierarchy hierarchy(hc);
    DispatchEngine engine(guard, hierarchy, {1, 3});

    log::EventRecord load;
    load.type = log::EventType::kLoad;
    load.addr = 0x20000;
    engine.consume(load);
    // The metadata access must have hit core 3's L1D, not core 1's.
    EXPECT_EQ(hierarchy.l1d(3).stats().accesses(), 1u);
    EXPECT_EQ(hierarchy.l1d(1).stats().accesses(), 0u);
}

/** A table-style lifeguard: handlers registered, no override. */
class TableLifeguard : public Lifeguard
{
  public:
    TableLifeguard()
    {
        onEvent<&TableLifeguard::onAlu>(log::EventType::kIntAlu);
        onEvent<&TableLifeguard::onLoad>(log::EventType::kLoad);
    }

    const char* name() const override { return "Table"; }

    void
    onAlu(const log::EventRecord&, CostSink& cost)
    {
        ++alu_events;
        cost.instrs(3);
    }

    void
    onLoad(const log::EventRecord& record, CostSink& cost)
    {
        ++load_events;
        cost.instrs(7);
        cost.memAccess(0x4000000000ull + record.addr / 8, false);
    }

    int alu_events = 0;
    int load_events = 0;
};

TEST(HandlerTable, RegistrationPopulatesTable)
{
    TableLifeguard guard;
    EXPECT_TRUE(guard.usesHandlerTable());
    const auto& table = guard.handlers();
    EXPECT_NE(table[static_cast<std::size_t>(log::EventType::kIntAlu)],
              nullptr);
    EXPECT_NE(table[static_cast<std::size_t>(log::EventType::kLoad)],
              nullptr);
    EXPECT_EQ(table[static_cast<std::size_t>(log::EventType::kStore)],
              nullptr);

    FixedCostLifeguard legacy;
    EXPECT_FALSE(legacy.usesHandlerTable());
}

TEST(HandlerTable, BaseShimDispatchesThroughTable)
{
    // handleEvent() on a table lifeguard reaches the registered
    // handler — so direct callers (tests, the DBI platform) and the
    // dispatch engine see the same behaviour.
    TableLifeguard guard;
    NullCostSink sink;
    log::EventRecord alu;
    alu.type = log::EventType::kIntAlu;
    guard.handleEvent(alu, sink);
    EXPECT_EQ(guard.alu_events, 1);

    // Unregistered type: no-op, no crash.
    log::EventRecord store;
    store.type = log::EventType::kStore;
    guard.handleEvent(store, sink);
    EXPECT_EQ(guard.alu_events, 1);
    EXPECT_EQ(guard.load_events, 0);
}

TEST(HandlerTable, TableAndVirtualPathsChargeIdenticalCycles)
{
    log::EventRecord alu;
    alu.type = log::EventType::kIntAlu;
    log::EventRecord load;
    load.type = log::EventType::kLoad;
    load.addr = 0x20000;
    log::EventRecord store; // unregistered
    store.type = log::EventType::kStore;

    auto run = [&](bool table_path) {
        TableLifeguard guard;
        mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
        DispatchEngine engine(guard, hierarchy, {1, 1});
        Cycles total = 0;
        for (const auto* rec : {&alu, &load, &store, &load, &alu}) {
            total += table_path ? engine.consumeTable(*rec)
                                : engine.consume(*rec);
        }
        return total;
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(HandlerTable, ConsumeBatchMatchesPerRecordConsume)
{
    std::vector<log::EventRecord> records;
    for (int i = 0; i < 64; ++i) {
        log::EventRecord rec;
        rec.type = (i % 3 == 0) ? log::EventType::kLoad
                                : log::EventType::kIntAlu;
        rec.addr = 0x20000 + static_cast<Addr>(i) * 64;
        records.push_back(rec);
    }

    TableLifeguard batched_guard;
    mem::CacheHierarchy batched_hierarchy(mem::HierarchyConfig{});
    DispatchEngine batched(batched_guard, batched_hierarchy, {1, 1});
    std::vector<Cycles> costs(records.size());
    Cycles total = batched.consumeBatch(records.data(), records.size(),
                                        costs.data());

    TableLifeguard record_guard;
    mem::CacheHierarchy record_hierarchy(mem::HierarchyConfig{});
    DispatchEngine per_record(record_guard, record_hierarchy, {1, 1});
    Cycles expected = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        Cycles c = per_record.consume(records[i]);
        EXPECT_EQ(costs[i], c) << i;
        expected += c;
    }
    EXPECT_EQ(total, expected);
    EXPECT_EQ(batched.stats().records, per_record.stats().records);
    EXPECT_EQ(batched.stats().total_cycles,
              per_record.stats().total_cycles);
    EXPECT_EQ(batched.stats().batches, 1u);
    EXPECT_EQ(per_record.stats().batches, 0u);
    EXPECT_EQ(batched_guard.load_events, record_guard.load_events);
    EXPECT_EQ(batched_guard.alu_events, record_guard.alu_events);
}

TEST(HandlerTable, LogBufferSpanDrain)
{
    // The frontSpan/consumeBatch/popN drain loop — the shape the
    // micro_dispatch bench and the timing engine use.
    log::LogBuffer buffer(32);
    for (int i = 0; i < 20; ++i) {
        log::EventRecord rec;
        rec.type = log::EventType::kIntAlu;
        buffer.push(rec, static_cast<Cycles>(i));
    }
    TableLifeguard guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DispatchEngine engine(guard, hierarchy, {1, 1});
    while (!buffer.empty()) {
        auto span = buffer.frontSpan(8);
        engine.consumeBatch(span);
        buffer.popN(span.size());
    }
    EXPECT_EQ(guard.alu_events, 20);
    EXPECT_EQ(engine.stats().records, 20u);
    // dispatch(1) + instrs(3) per record.
    EXPECT_EQ(engine.stats().total_cycles, 20u * 4u);
}

TEST(HandlerTable, LegacyLifeguardFallsBackToVirtualDispatch)
{
    // A lifeguard that never registered handlers must still work
    // through the batched path (resolved to the virtual fallback).
    FixedCostLifeguard guard;
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    DispatchEngine engine(guard, hierarchy, {1, 1});
    log::EventRecord alu;
    alu.type = log::EventType::kIntAlu;
    std::vector<log::EventRecord> records(5, alu);
    Cycles total =
        engine.consumeBatch(records.data(), records.size(), nullptr);
    EXPECT_EQ(guard.events, 5);
    EXPECT_EQ(total, 5u * 6u); // dispatch(1) + instrs(5)
}

TEST(Lifeguard, FindingAccumulation)
{
    class Reporter : public Lifeguard
    {
      public:
        const char* name() const override { return "R"; }
        void
        handleEvent(const log::EventRecord&, CostSink&) override
        {
            report({FindingKind::kOther, 0, 0, 0, "x"});
        }
    };
    Reporter r;
    NullCostSink sink;
    log::EventRecord rec;
    r.handleEvent(rec, sink);
    r.handleEvent(rec, sink);
    EXPECT_EQ(r.findings().size(), 2u);
    EXPECT_EQ(r.countFindings(FindingKind::kOther), 2u);
    EXPECT_EQ(r.countFindings(FindingKind::kDataRace), 0u);
}

/**
 * Mixed-coverage IR lifeguard: a pure-charge handler (lowers to
 * kConst), a kernel handler (lowers to kProgram) and everything else
 * unregistered (kSkip) — one guard exercising all three compiler
 * classifications at once, the shape BoundsCheck and MemLeak have.
 */
class MixedIrLifeguard : public Lifeguard
{
  public:
    MixedIrLifeguard()
    {
        onEvent<&MixedIrLifeguard::onAlu>(log::EventType::kIntAlu);
        onEvent<&MixedIrLifeguard::onLoad>(log::EventType::kLoad);
        ir_.define(log::EventType::kIntAlu).charge(3);
        ir_.define(log::EventType::kLoad)
            .charge(1)
            .kernel([](Lifeguard& self, const log::EventRecord& r,
                       auto& cost) {
                static_cast<MixedIrLifeguard&>(self).loadBody(r, cost);
            });
    }

    const char* name() const override { return "MixedIr"; }

    const ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    void
    onAlu(const log::EventRecord&, CostSink& cost)
    {
        cost.instrs(3);
    }

    void
    onLoad(const log::EventRecord& record, CostSink& cost)
    {
        cost.instrs(1);
        loadBody(record, cost);
    }

    template <typename Cost>
    void
    loadBody(const log::EventRecord& record, Cost& cost)
    {
        cost.instrs(2);
        cost.memAccess(kShadowBase + record.addr / 8, false);
        ++loads;
    }

    int loads = 0;

  private:
    ir::LifeguardIR ir_;
};

TEST(Compiler, MixedCoverageClassification)
{
    MixedIrLifeguard guard;
    CompiledDispatch compiled =
        compileHandlers(guard, *guard.handlerIR());

    auto handler = [&](log::EventType type) -> const CompiledHandler& {
        return compiled.handlers[static_cast<std::size_t>(type)];
    };
    EXPECT_EQ(handler(log::EventType::kIntAlu).kind,
              CompiledHandler::Kind::kConst);
    EXPECT_EQ(handler(log::EventType::kIntAlu).const_cycles, 3u);
    EXPECT_EQ(handler(log::EventType::kLoad).kind,
              CompiledHandler::Kind::kProgram);
    ASSERT_NE(handler(log::EventType::kLoad).program, nullptr);
    EXPECT_EQ(handler(log::EventType::kStore).kind,
              CompiledHandler::Kind::kSkip);
    EXPECT_EQ(handler(log::EventType::kSyscall).kind,
              CompiledHandler::Kind::kSkip);
    // One kProgram entry is enough to forfeit the bulk fast path.
    EXPECT_FALSE(compiled.all_const);
}

TEST(Compiler, MixedCoverageFusedMatchesBatched)
{
    // The mixed guard compiles — and drains cycle-identically through
    // the fused tier (kConst run + kProgram run + kSkip run in one
    // batch).
    std::vector<log::EventRecord> records(48);
    for (std::size_t i = 0; i < records.size(); ++i) {
        records[i].type = (i % 3 == 0) ? log::EventType::kIntAlu
                          : (i % 3 == 1)
                              ? log::EventType::kLoad
                              : log::EventType::kStore;
        records[i].addr = 0x10000000 + i * 8;
    }

    mem::CacheHierarchy fused_hierarchy(mem::HierarchyConfig{});
    MixedIrLifeguard fused_guard;
    DispatchEngine fused(fused_guard, fused_hierarchy);
    EXPECT_TRUE(fused.fusedTierCompiled());
    std::vector<Cycles> fused_costs(records.size());
    fused.assumeFunctionalOwner();
    Cycles fused_total = fused.consumeBatchFused(
        records.data(), records.size(), fused_costs.data());

    mem::CacheHierarchy batched_hierarchy(mem::HierarchyConfig{});
    MixedIrLifeguard batched_guard;
    DispatchEngine batched(batched_guard, batched_hierarchy);
    std::vector<Cycles> batched_costs(records.size());
    batched.assumeFunctionalOwner();
    Cycles batched_total = batched.consumeBatch(
        records.data(), records.size(), batched_costs.data());

    EXPECT_EQ(fused_total, batched_total);
    EXPECT_EQ(fused_costs, batched_costs);
    EXPECT_EQ(fused_guard.loads, batched_guard.loads);
}

/** Table registrations and IR descriptions must cover the same types:
 *  either direction of drift is a construction-time panic, not a
 *  silently diverging fused tier. */
class RegisteredWithoutIr : public Lifeguard
{
  public:
    RegisteredWithoutIr()
    {
        onEvent<&RegisteredWithoutIr::onAny>(log::EventType::kIntAlu);
        onEvent<&RegisteredWithoutIr::onAny>(log::EventType::kLoad);
        ir_.define(log::EventType::kIntAlu).charge(1);
        // kLoad registered above but deliberately not described.
    }
    const char* name() const override { return "NoIr"; }
    const ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }
    void onAny(const log::EventRecord&, CostSink& cost)
    {
        cost.instrs(1);
    }

  private:
    ir::LifeguardIR ir_;
};

class IrWithoutRegistration : public Lifeguard
{
  public:
    IrWithoutRegistration()
    {
        onEvent<&IrWithoutRegistration::onAny>(log::EventType::kIntAlu);
        ir_.define(log::EventType::kIntAlu).charge(1);
        // Described below, never registered above.
        ir_.define(log::EventType::kStore).charge(2);
    }
    const char* name() const override { return "NoReg"; }
    const ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }
    void onAny(const log::EventRecord&, CostSink& cost)
    {
        cost.instrs(1);
    }

  private:
    ir::LifeguardIR ir_;
};

TEST(CompilerDeathTest, RegisteredHandlerWithoutIrDescriptionPanics)
{
    RegisteredWithoutIr guard;
    EXPECT_DEATH(compileHandlers(guard, *guard.handlerIR()),
                 "registered handler without an IR description");
}

TEST(CompilerDeathTest, IrDescriptionForUnregisteredTypePanics)
{
    IrWithoutRegistration guard;
    EXPECT_DEATH(compileHandlers(guard, *guard.handlerIR()),
                 "IR description for an unregistered event type");
}

} // namespace
} // namespace lba::lifeguard
