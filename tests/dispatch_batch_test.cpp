/**
 * @file
 * Differential proof of the batched handler-table dispatch path: for
 * the same program and configuration, `dispatch_tier = kBatched` (the
 * default: records drained in batches through the per-event-type
 * handler tables) must be cycle-identical — every stat, every finding
 * — to `dispatch_tier = kPerRecord` (the retained per-record virtual
 * path), across the serial system, the parallel system with shards in
 * {1, 2, 4}, a one-tenant pool, and a containment run that actually
 * rewinds. This is the invariant that makes the fast path safe: any
 * model drift between the two dispatch implementations is a test
 * failure here, not a silent fork.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::core {
namespace {

LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs,
            bool with_bugs = false)
{
    workload::BugInjection bugs;
    if (with_bugs) {
        bugs.use_after_free = true;
        bugs.leak = true;
    }
    return workload::generate(*workload::findProfile(profile), bugs,
                              instrs);
}

void
expectStatsEqual(const LbaRunStats& batched, const LbaRunStats& record)
{
    EXPECT_EQ(batched.app_instructions, record.app_instructions);
    EXPECT_EQ(batched.records_logged, record.records_logged);
    EXPECT_EQ(batched.records_filtered, record.records_filtered);
    EXPECT_EQ(batched.total_cycles, record.total_cycles);
    EXPECT_EQ(batched.app_cycles, record.app_cycles);
    EXPECT_EQ(batched.backpressure_stall_cycles,
              record.backpressure_stall_cycles);
    EXPECT_EQ(batched.syscall_stall_cycles, record.syscall_stall_cycles);
    EXPECT_EQ(batched.lifeguard_busy_cycles,
              record.lifeguard_busy_cycles);
    EXPECT_EQ(batched.bytes_per_record, record.bytes_per_record);
    EXPECT_EQ(batched.mean_consume_lag, record.mean_consume_lag);
    EXPECT_EQ(batched.syscall_drains, record.syscall_drains);
    EXPECT_EQ(batched.transport_bytes, record.transport_bytes);
    EXPECT_EQ(batched.transport_wait_cycles,
              record.transport_wait_cycles);
    EXPECT_EQ(batched.containment_cycles, record.containment_cycles);
}

void
expectFindingsEqual(const std::vector<lifeguard::Finding>& batched,
                    const std::vector<lifeguard::Finding>& record)
{
    ASSERT_EQ(batched.size(), record.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].kind, record[i].kind);
        EXPECT_EQ(batched[i].pc, record[i].pc);
        EXPECT_EQ(batched[i].addr, record[i].addr);
        EXPECT_EQ(batched[i].tid, record[i].tid);
        EXPECT_EQ(batched[i].message, record[i].message);
    }
}

/** Serial LBA: batched vs per-record on the same configuration. */
void
expectSerialIdentical(const workload::GeneratedProgram& gen,
                      const LifeguardFactory& factory, LbaConfig lba)
{
    Experiment exp(gen.program);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(factory, lba);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(factory, lba);

    EXPECT_EQ(batched.cycles, record.cycles);
    expectStatsEqual(batched.lba, record.lba);
    expectFindingsEqual(batched.findings, record.findings);
}

TEST(DispatchBatch, SerialAddrCheckDefaultConfig)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    expectSerialIdentical(gen, addrcheck(), LbaConfig{});
}

TEST(DispatchBatch, SerialAddrCheckConstrainedConfig)
{
    // Tiny buffer + fractional transport + filtering: back-pressure
    // flushes, transport ceilings and the filter all active, so the
    // deferred queue hits every flush boundary.
    auto gen = makeProgram("mcf", 40000);
    LbaConfig lba;
    lba.buffer_capacity = 64;
    lba.filter_enabled = true;
    lba.filter_base = 0x10000000;
    lba.filter_bytes = 64ull << 20;
    lba.transport_bytes_per_cycle = 0.75;
    expectSerialIdentical(gen, addrcheck(), lba);
}

TEST(DispatchBatch, SerialTaintCheck)
{
    workload::BugInjection bugs;
    bugs.tainted_jump = true;
    auto gen = workload::generate(*workload::findProfile("gzip"), bugs,
                                  40000);
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::TaintCheck>(); },
        LbaConfig{});
}

TEST(DispatchBatch, SerialLockSetUncompressed)
{
    auto gen = makeProgram("water", 40000);
    LbaConfig lba;
    lba.compress = false;
    lba.transport_bytes_per_cycle = 6.0;
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::LockSet>(); },
        lba);
}

TEST(DispatchBatch, ParallelShards124)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    for (unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(shards);
        ParallelLbaConfig config(LbaConfig{}, shards);
        config.dispatch_tier = DispatchTier::kBatched;
        PlatformResult batched = exp.runParallelLba(addrcheck(), config);
        config.dispatch_tier = DispatchTier::kPerRecord;
        PlatformResult record = exp.runParallelLba(addrcheck(), config);

        EXPECT_EQ(batched.cycles, record.cycles);
        expectStatsEqual(batched.parallel, record.parallel);
        expectFindingsEqual(batched.findings, record.findings);
        for (unsigned s = 0; s < shards; ++s) {
            SCOPED_TRACE(s);
            EXPECT_EQ(batched.parallel.shard_busy_cycles[s],
                      record.parallel.shard_busy_cycles[s]);
            EXPECT_EQ(batched.parallel.shard_records[s],
                      record.parallel.shard_records[s]);
            EXPECT_EQ(batched.parallel.shard_consume_lag[s],
                      record.parallel.shard_consume_lag[s]);
            EXPECT_EQ(batched.parallel.shard_transport_bytes[s],
                      record.parallel.shard_transport_bytes[s]);
            EXPECT_EQ(batched.parallel.shard_transport_wait_cycles[s],
                      record.parallel.shard_transport_wait_cycles[s]);
            EXPECT_EQ(batched.parallel.shard_max_occupancy[s],
                      record.parallel.shard_max_occupancy[s]);
        }
    }
}

TEST(DispatchBatch, OneTenantPool)
{
    auto gen = makeProgram("gzip", 40000);
    sched::PoolConfig config;
    config.lanes = 2;
    config.lba.buffer_capacity = 256;
    config.lba.transport_bytes_per_cycle = 1.5;

    config.lba.dispatch_tier = DispatchTier::kBatched;
    sched::LifeguardPool batched_pool(config, addrcheck());
    batched_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult batched = batched_pool.run();

    config.lba.dispatch_tier = DispatchTier::kPerRecord;
    sched::LifeguardPool record_pool(config, addrcheck());
    record_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult record = record_pool.run();

    EXPECT_EQ(batched.total_cycles, record.total_cycles);
    expectStatsEqual(batched.aggregate, record.aggregate);
    ASSERT_EQ(batched.tenants.size(), 1u);
    ASSERT_EQ(record.tenants.size(), 1u);
    EXPECT_EQ(batched.tenants[0].total_cycles,
              record.tenants[0].total_cycles);
    EXPECT_EQ(batched.tenants[0].lag_p95, record.tenants[0].lag_p95);
    expectStatsEqual(batched.tenants[0].lba, record.tenants[0].lba);
    expectFindingsEqual(batched.tenants[0].findings,
                        record.tenants[0].findings);
}

TEST(DispatchBatch, ContainmentRewindsIdentically)
{
    // Detection latency must not depend on the dispatch mode: a
    // use-after-free caught under containment rewinds at the same
    // retirement, the same distance, for the same total cost.
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    replay::ContainmentConfig containment;
    containment.enabled = true;
    containment.policy = replay::RepairPolicy::kQuarantine;

    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(addrcheck(), lba, containment);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(addrcheck(), lba, containment);

    ASSERT_TRUE(batched.containment_enabled);
    EXPECT_GE(batched.containment.rewinds, 1u);
    EXPECT_EQ(batched.cycles, record.cycles);
    EXPECT_EQ(batched.containment.rewinds, record.containment.rewinds);
    EXPECT_EQ(batched.containment.rewound_instructions,
              record.containment.rewound_instructions);
    EXPECT_EQ(batched.containment.max_rewind_distance,
              record.containment.max_rewind_distance);
    EXPECT_EQ(batched.containment.rewind_cycles,
              record.containment.rewind_cycles);
    expectStatsEqual(batched.lba, record.lba);
    expectFindingsEqual(batched.findings, record.findings);
}

TEST(DispatchBatch, BatchedPathActuallyBatches)
{
    // Sanity: the default path goes through consumeBatch (batches > 0)
    // and the per-record path never does — so the differentials above
    // really compare the two implementations.
    auto gen = makeProgram("gzip", 20000);

    auto run = [&](DispatchTier tier) {
        LbaConfig lba;
        lba.dispatch_tier = tier;
        mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
        lifeguards::AddrCheck guard;
        LbaSystem system(guard, hierarchy, lba);
        sim::Process process{sim::ProcessConfig{}};
        process.load(gen.program);
        process.run(&system);
        system.finish();
        return system.dispatchStats().batches;
    };

    EXPECT_GT(run(DispatchTier::kBatched), 0u);
    EXPECT_EQ(run(DispatchTier::kPerRecord), 0u);
}

} // namespace
} // namespace lba::core
