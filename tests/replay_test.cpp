/**
 * @file
 * Tests for the checkpoint/rewind extension: exact state restoration,
 * syscall-boundary checkpoints, stop/resume, patching, and the full
 * detect-rewind-repair-resume loop.
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "core/lba_system.h"
#include "isa/encoding.h"
#include "lifeguards/addrcheck.h"
#include "replay/checkpoint.h"
#include "sim/process.h"

namespace lba::replay {
namespace {

using assembler::assemble;

std::vector<isa::Instruction>
program(const std::string& source)
{
    auto r = assemble(source);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

TEST(Checkpointer, RewindRestoresMemoryAndRegisters)
{
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        li r1, 11
        sd r1, 0(r5)
        syscall 9           ; yield: checkpoint boundary after this
        li r1, 22           ; --- window to be rewound ---
        sd r1, 0(r5)
        sd r1, 8(r5)
        li r2, 99
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    sim::RunResult result = p.run(&cp);
    EXPECT_TRUE(result.all_exited);

    // State at the end of the run.
    EXPECT_EQ(p.memory().read64(0x100000), 22u);
    EXPECT_EQ(p.memory().read64(0x100008), 22u);
    EXPECT_EQ(p.thread(0).reg(2), 99u);

    cp.rewind();
    // Back to just after the yield: the window's stores are undone,
    // registers are back to the checkpoint values.
    EXPECT_EQ(p.memory().read64(0x100000), 11u);
    EXPECT_EQ(p.memory().read64(0x100008), 0u);
    EXPECT_EQ(p.thread(0).reg(1), 11u);
    EXPECT_EQ(p.thread(0).reg(2), 0u);
    EXPECT_EQ(cp.stats().rewinds, 1u);
}

TEST(Checkpointer, RerunAfterRewindIsDeterministic)
{
    const char* src = R"(
        li r5, 0x100000
        syscall 9
        li r1, 7
        muli r1, r1, 6
        sd r1, 0(r5)
        halt
    )";
    sim::Process p;
    p.load(program(src));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    Word final_r1 = p.thread(0).reg(1);
    EXPECT_EQ(p.memory().read64(0x100000), 42u);

    cp.rewind();
    // Resume from the checkpoint: the same instructions re-execute and
    // produce the same state (thread state Done again too).
    sim::RunResult again = p.run(&cp);
    EXPECT_TRUE(again.all_exited);
    EXPECT_EQ(p.thread(0).reg(1), final_r1);
    EXPECT_EQ(p.memory().read64(0x100000), 42u);
}

TEST(Checkpointer, CheckpointsFollowSyscalls)
{
    sim::Process p;
    p.load(program(R"(
        li r1, 64
        syscall 1
        li r2, 1
        li r1, 16
        syscall 1
        li r2, 2
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    // Initial + one after each syscall (taken at the next retirement).
    EXPECT_EQ(cp.stats().checkpoints, 3u);
}

TEST(Checkpointer, UndoLogCountsStores)
{
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        sd r5, 0(r5)
        sw r5, 8(r5)
        sb r5, 12(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    EXPECT_EQ(cp.stats().undo_entries, 3u);
}

TEST(Checkpointer, PartialWidthUndoIsExact)
{
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        li r1, -1
        sd r1, 0(r5)        ; memory = ff..ff
        syscall 9           ; checkpoint
        li r2, 0
        sb r2, 3(r5)        ; clobber one byte
        sw r2, 4(r5)        ; clobber four bytes
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    EXPECT_NE(p.memory().read64(0x100000), ~0ull);
    cp.rewind();
    EXPECT_EQ(p.memory().read64(0x100000), ~0ull);
}

TEST(Checkpointer, HighWaterAccountedByRewind)
{
    // The window that a rewind() ends — not a checkpoint — must still
    // contribute to max_window_entries (regression: it used to be
    // sampled only inside takeCheckpoint()).
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        syscall 9           ; checkpoint; window starts empty
        sd r5, 0(r5)
        sd r5, 8(r5)
        sd r5, 16(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    EXPECT_EQ(cp.stats().max_window_entries, 0u);
    cp.rewind();
    EXPECT_EQ(cp.stats().max_window_entries, 3u);
}

TEST(Checkpointer, HighWaterAccountedByFinalize)
{
    // Same scenario ended by end-of-run: finalize() (and the
    // destructor) must fold the last window in.
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        syscall 9
        sd r5, 0(r5)
        sd r5, 8(r5)
        sd r5, 16(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    EXPECT_EQ(cp.stats().max_window_entries, 0u);
    cp.finalize();
    EXPECT_EQ(cp.stats().max_window_entries, 3u);
    // Idempotent: a second finalize changes nothing.
    cp.finalize();
    EXPECT_EQ(cp.stats().max_window_entries, 3u);
}

TEST(Checkpointer, HighWaterKeepsLargestWindow)
{
    // Two stores before the syscall checkpoint, three after: the
    // checkpoint samples 2, finalize samples 3, max is 3.
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        sd r5, 0(r5)
        sd r5, 8(r5)
        syscall 9
        sd r5, 16(r5)
        sd r5, 24(r5)
        sd r5, 32(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    cp.finalize();
    EXPECT_EQ(cp.stats().max_window_entries, 3u);
    EXPECT_EQ(cp.stats().undo_entries, 5u);
}

TEST(Checkpointer, UndoLogIsExposedForCostModelling)
{
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        syscall 9
        sd r5, 0(r5)
        sw r5, 8(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    ASSERT_EQ(cp.undoLog().size(), 2u);
    EXPECT_EQ(cp.undoLog()[0].addr, 0x100000u);
    EXPECT_EQ(cp.undoLog()[0].bytes, 8u);
    EXPECT_EQ(cp.undoLog()[1].addr, 0x100008u);
    EXPECT_EQ(cp.undoLog()[1].bytes, 4u);
}

TEST(Checkpointer, ManualCheckpointNarrowsWindow)
{
    sim::Process p;
    p.load(program(R"(
        li r5, 0x100000
        li r1, 1
        sd r1, 0(r5)
        li r1, 2
        sd r1, 0(r5)
        halt
    )"));
    Checkpointer cp(p);
    p.setStoreInterceptor(&cp);
    p.run(&cp);
    cp.takeCheckpoint(); // end-of-run state becomes the baseline
    cp.rewind();
    EXPECT_EQ(p.memory().read64(0x100000), 2u); // nothing undone
}

TEST(Process, StopRequestSuspendsAndResumes)
{
    /** Observer that stops after the Nth retirement. */
    class Stopper : public sim::RetireObserver
    {
      public:
        Stopper(sim::Process& p, int stop_after)
            : process_(p), remaining_(stop_after)
        {
        }
        void
        onRetire(const sim::Retired&) override
        {
            if (--remaining_ == 0) process_.requestStop();
        }
        void onOsEvent(const sim::OsEvent&) override {}

      private:
        sim::Process& process_;
        int remaining_;
    };

    sim::Process p;
    p.load(program(R"(
        li r1, 100
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )"));
    Stopper stopper(p, 10);
    sim::RunResult first = p.run(&stopper);
    EXPECT_TRUE(first.stopped);
    EXPECT_FALSE(first.all_exited);
    EXPECT_EQ(first.instructions, 10u);

    sim::RunResult second = p.run(nullptr);
    EXPECT_FALSE(second.stopped);
    EXPECT_TRUE(second.all_exited);
}

TEST(Process, PatchInstructionRewritesCodeAndImage)
{
    sim::Process p;
    p.load(program("li r1, 1\nli r2, 2\nhalt\n"));
    // Patch the second li into li r2, 77.
    EXPECT_TRUE(p.patchInstruction(
        sim::kCodeBase + 8, {isa::Opcode::kLi, 2, 0, 0, 77}));
    // Outside the code region: rejected.
    EXPECT_FALSE(p.patchInstruction(0x500, {isa::Opcode::kNop, 0, 0, 0,
                                            0}));
    EXPECT_FALSE(p.patchInstruction(sim::kCodeBase + 4,
                                    {isa::Opcode::kNop, 0, 0, 0, 0}));
    p.run(nullptr);
    EXPECT_EQ(p.thread(0).reg(2), 77u);
    // The in-memory code image was updated too.
    auto decoded = isa::decode(p.memory().read64(sim::kCodeBase + 8));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, 77);
}

TEST(Integration, DetectRewindRepairResume)
{
    // The rewind_repair example's scenario, asserted end to end.
    sim::Process p;
    p.load(program(R"(
        li r10, 3
    serve:
        li r1, 64
        syscall 1
        mov r9, r1
        sd r10, 0(r9)
        mov r1, r9
        syscall 2
        ld r2, 0(r9)        ; use after free
        addi r10, r10, -1
        bne r10, r0, serve
        halt
    )"));
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    lifeguards::AddrCheck guard;
    core::LbaSystem system(guard, hierarchy, {});

    class StopOnFinding : public sim::RetireObserver
    {
      public:
        StopOnFinding(sim::Process& p, core::LbaSystem& s,
                      lifeguard::Lifeguard& g)
            : process_(p), system_(s), guard_(g)
        {
        }
        void
        onRetire(const sim::Retired& r) override
        {
            system_.onRetire(r);
            // Sync batch-deferred dispatch before polling findings so
            // the stop fires at the same retirement as per-record.
            system_.timer().sync();
            if (guard_.findings().size() > seen_) {
                seen_ = guard_.findings().size();
                process_.requestStop();
            }
        }
        void onOsEvent(const sim::OsEvent& e) override
        {
            system_.onOsEvent(e);
        }

      private:
        sim::Process& process_;
        core::LbaSystem& system_;
        lifeguard::Lifeguard& guard_;
        std::size_t seen_ = 0;
    };
    StopOnFinding stopper(p, system, guard);
    Checkpointer cp(p, &stopper);
    p.setStoreInterceptor(&cp);

    sim::RunResult r1 = p.run(&cp);
    ASSERT_TRUE(r1.stopped);
    ASSERT_EQ(guard.findings().size(), 1u);
    Addr bug_pc = guard.findings()[0].pc;

    cp.rewind();
    ASSERT_TRUE(
        p.patchInstruction(bug_pc, {isa::Opcode::kNop, 0, 0, 0, 0}));

    sim::RunResult r2 = p.run(&cp);
    system.finish();
    EXPECT_TRUE(r2.all_exited);
    EXPECT_EQ(guard.findings().size(), 1u); // no recurrence
    EXPECT_EQ(cp.stats().rewinds, 1u);
}

} // namespace
} // namespace lba::replay
