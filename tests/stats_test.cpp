/**
 * @file
 * Unit tests for the stats library: counters, summaries, histograms and
 * table formatting.
 */

#include <gtest/gtest.h>

#include "stats/counter.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace lba::stats {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Summary, EmptySummaryIsAllZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMinMaxMean)
{
    Summary s;
    s.record(2.0);
    s.record(4.0);
    s.record(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, NegativeSamples)
{
    Summary s;
    s.record(-5.0);
    s.record(5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StatSet, CreatesCountersOnDemand)
{
    StatSet set;
    set.counter("a").add(3);
    set.counter("a").add(4);
    set.counter("b").add(1);
    EXPECT_EQ(set.counters().size(), 2u);
    EXPECT_EQ(set.counter("a").value(), 7u);
    set.reset();
    EXPECT_EQ(set.counter("a").value(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);
    h.record(0);
    h.record(9);
    h.record(10);
    h.record(39);
    h.record(40);  // overflow
    h.record(400); // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h(10, 1);
    h.record(1);
    h.record(2);
    h.record(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, PercentileUpperBound)
{
    Histogram h(10, 10);
    for (int i = 0; i < 90; ++i) h.record(5);   // bucket 0
    for (int i = 0; i < 10; ++i) h.record(95);  // bucket 9
    EXPECT_EQ(h.percentileUpperBound(0.5), 10u);
    EXPECT_EQ(h.percentileUpperBound(0.99), 100u);
}

TEST(Histogram, PercentileUpperBoundUsesCeilingRank)
{
    // Regression: the target rank used to be a truncating cast, so a
    // fraction whose product lands just below an integer returned one
    // bucket too low. One sample in [0,10), one in [10,20): the 75th
    // percentile needs rank ceil(1.5) = 2, i.e. the second bucket.
    Histogram h(10, 10);
    h.record(5);
    h.record(15);
    EXPECT_EQ(h.percentileUpperBound(0.75), 20u);
    EXPECT_EQ(h.percentileUpperBound(0.5), 10u);
}

TEST(Histogram, PercentileUpperBoundFractionZero)
{
    // fraction 0.0 must resolve to the first non-empty bucket, not
    // match an empty leading bucket (target rank is at least 1).
    Histogram h(10, 10);
    h.record(25); // bucket 2 only
    EXPECT_EQ(h.percentileUpperBound(0.0), 30u);
}

TEST(Histogram, PercentileUpperBoundFractionOne)
{
    Histogram h(10, 10);
    h.record(5);
    h.record(95);
    EXPECT_EQ(h.percentileUpperBound(1.0), 100u);
    // With overflow, fraction 1.0 lands past the last edge.
    h.record(1000);
    EXPECT_EQ(h.percentileUpperBound(1.0), 110u);
}

TEST(Histogram, PercentileUpperBoundSingleSample)
{
    Histogram h(8, 4);
    h.record(13); // bucket 3: [12,16)
    for (double f : {0.0, 0.25, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(h.percentileUpperBound(f), 16u) << "fraction " << f;
    }
}

TEST(Histogram, PercentileUpperBoundEmptyIsZero)
{
    Histogram h(4, 10);
    EXPECT_EQ(h.percentileUpperBound(0.5), 0u);
}

TEST(Histogram, PercentileInterpolatesWithinBucket)
{
    // 100 samples in bucket [0,10): the quantile is interpolated
    // linearly through the bucket.
    Histogram h(10, 10);
    for (int i = 0; i < 100; ++i) h.record(3);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
    EXPECT_DOUBLE_EQ(h.p95(), 9.5);
    EXPECT_DOUBLE_EQ(h.p99(), 9.9);
}

TEST(Histogram, PercentileAcrossBuckets)
{
    // 90 samples in [0,10), 10 in [90,100): the tail quantiles land in
    // the far bucket at its interpolated offset.
    Histogram h(10, 10);
    for (int i = 0; i < 90; ++i) h.record(5);
    for (int i = 0; i < 10; ++i) h.record(95);
    EXPECT_NEAR(h.percentile(0.5), 50.0 / 9.0, 1e-9);
    EXPECT_DOUBLE_EQ(h.p95(), 95.0);
    EXPECT_DOUBLE_EQ(h.p99(), 99.0);
    // Percentiles are monotone in the queried fraction.
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, PercentileOverflowSaturatesPastLastEdge)
{
    // Half the samples blow past the last bucket: tail quantiles
    // saturate inside one virtual bucket after the last edge instead
    // of extrapolating to the (unknown) true values.
    Histogram h(4, 10);
    for (int i = 0; i < 50; ++i) h.record(5);
    for (int i = 0; i < 50; ++i) h.record(1000);
    EXPECT_DOUBLE_EQ(h.p50(), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), (4.0 + 49.0 / 50.0) * 10.0);
    EXPECT_LE(h.percentile(1.0), 50.0);
}

TEST(Histogram, PercentileOfEmptyHistogramIsZero)
{
    Histogram h(4, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"with\"quote", "x"});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Format, DoubleAndSlowdown)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatSlowdown(12.34), "12.3x");
}

} // namespace
} // namespace lba::stats
