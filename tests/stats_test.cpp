/**
 * @file
 * Unit tests for the stats library: counters, summaries, histograms and
 * table formatting.
 */

#include <gtest/gtest.h>

#include "stats/counter.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace lba::stats {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Summary, EmptySummaryIsAllZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMinMaxMean)
{
    Summary s;
    s.record(2.0);
    s.record(4.0);
    s.record(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, NegativeSamples)
{
    Summary s;
    s.record(-5.0);
    s.record(5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StatSet, CreatesCountersOnDemand)
{
    StatSet set;
    set.counter("a").add(3);
    set.counter("a").add(4);
    set.counter("b").add(1);
    EXPECT_EQ(set.counters().size(), 2u);
    EXPECT_EQ(set.counter("a").value(), 7u);
    set.reset();
    EXPECT_EQ(set.counter("a").value(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);
    h.record(0);
    h.record(9);
    h.record(10);
    h.record(39);
    h.record(40);  // overflow
    h.record(400); // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h(10, 1);
    h.record(1);
    h.record(2);
    h.record(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, PercentileUpperBound)
{
    Histogram h(10, 10);
    for (int i = 0; i < 90; ++i) h.record(5);   // bucket 0
    for (int i = 0; i < 10; ++i) h.record(95);  // bucket 9
    EXPECT_EQ(h.percentileUpperBound(0.5), 10u);
    EXPECT_EQ(h.percentileUpperBound(0.99), 100u);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"with\"quote", "x"});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Format, DoubleAndSlowdown)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatSlowdown(12.34), "12.3x");
}

} // namespace
} // namespace lba::stats
