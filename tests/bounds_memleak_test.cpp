/**
 * @file
 * Differential proof for the two MTE-cost-profile lifeguards:
 * BoundsCheck (constant-cost tag probes) and MemLeak (long-lived
 * shadow state plus decay sweeps) must be cycle-identical — every
 * stat, every finding — across the three dispatch tiers (per-record,
 * batched, fused), across serial vs threaded host execution, across
 * the parallel system with shards in {1, 2, 4}, on a one-tenant pool,
 * and under a containment run that actually rewinds. Mirrors
 * tests/dispatch_fused_test.cpp for the new guards, on the
 * server-shaped workloads they were built for (workload::serverSuite)
 * as well as the classic suite.
 *
 * Functional coverage rides along: BoundsCheck flags use-after-free
 * reads as tag mismatches, MemLeak flags untouched blocks as leak
 * suspects during sweeps and unfreed blocks as definite leaks at
 * finish, and containment routes leak-kind findings to quarantine
 * instead of patching the allocation site.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguard/dispatch.h"
#include "lifeguards/boundscheck.h"
#include "lifeguards/memleak.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::core {
namespace {

LifeguardFactory
boundscheck()
{
    return [] { return std::make_unique<lifeguards::BoundsCheck>(); };
}

/** MemLeak tightened so suspects fire within a small test budget. */
LifeguardFactory
memleak()
{
    return [] {
        lifeguards::MemLeakConfig config;
        config.sweep_period = 16;
        config.stale_epochs = 32;
        return std::make_unique<lifeguards::MemLeak>(config);
    };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs,
            bool with_bugs = false)
{
    workload::BugInjection bugs;
    if (with_bugs) {
        bugs.use_after_free = true;
        bugs.leak = true;
    }
    return workload::generate(*workload::findProfile(profile), bugs,
                              instrs);
}

void
expectStatsEqual(const LbaRunStats& fused, const LbaRunStats& other)
{
    EXPECT_EQ(fused.app_instructions, other.app_instructions);
    EXPECT_EQ(fused.records_logged, other.records_logged);
    EXPECT_EQ(fused.records_filtered, other.records_filtered);
    EXPECT_EQ(fused.total_cycles, other.total_cycles);
    EXPECT_EQ(fused.app_cycles, other.app_cycles);
    EXPECT_EQ(fused.backpressure_stall_cycles,
              other.backpressure_stall_cycles);
    EXPECT_EQ(fused.syscall_stall_cycles, other.syscall_stall_cycles);
    EXPECT_EQ(fused.lifeguard_busy_cycles, other.lifeguard_busy_cycles);
    EXPECT_EQ(fused.bytes_per_record, other.bytes_per_record);
    EXPECT_EQ(fused.mean_consume_lag, other.mean_consume_lag);
    EXPECT_EQ(fused.syscall_drains, other.syscall_drains);
    EXPECT_EQ(fused.transport_bytes, other.transport_bytes);
    EXPECT_EQ(fused.transport_wait_cycles, other.transport_wait_cycles);
    EXPECT_EQ(fused.containment_cycles, other.containment_cycles);
}

void
expectFindingsEqual(const std::vector<lifeguard::Finding>& fused,
                    const std::vector<lifeguard::Finding>& other)
{
    ASSERT_EQ(fused.size(), other.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
        EXPECT_EQ(fused[i].kind, other[i].kind);
        EXPECT_EQ(fused[i].pc, other[i].pc);
        EXPECT_EQ(fused[i].addr, other[i].addr);
        EXPECT_EQ(fused[i].tid, other[i].tid);
        EXPECT_EQ(fused[i].message, other[i].message);
    }
}

/** Serial LBA: fused vs batched vs per-record on the same config. */
void
expectSerialIdentical(const workload::GeneratedProgram& gen,
                      const LifeguardFactory& factory, LbaConfig lba)
{
    Experiment exp(gen.program);
    lba.dispatch_tier = DispatchTier::kFused;
    PlatformResult fused = exp.runLba(factory, lba);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(factory, lba);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(factory, lba);

    EXPECT_EQ(fused.cycles, batched.cycles);
    EXPECT_EQ(fused.cycles, record.cycles);
    expectStatsEqual(fused.lba, batched.lba);
    expectStatsEqual(fused.lba, record.lba);
    expectFindingsEqual(fused.findings, batched.findings);
    expectFindingsEqual(fused.findings, record.findings);
}

TEST(BoundsMemLeak, SerialBoundsOnRequestServing)
{
    auto gen = makeProgram("req_serve", 40000, /*with_bugs=*/true);
    expectSerialIdentical(gen, boundscheck(), LbaConfig{});
}

TEST(BoundsMemLeak, SerialBoundsConstrainedConfig)
{
    // Tiny buffer + fractional transport + filtering: every flush
    // boundary active, so the fused drain alternates the rangeExit op
    // and the tag-probe kernel across run breaks.
    auto gen = makeProgram("tidy", 40000);
    LbaConfig lba;
    lba.buffer_capacity = 64;
    lba.filter_enabled = true;
    lba.filter_base = 0x10000000;
    lba.filter_bytes = 64ull << 20;
    lba.transport_bytes_per_cycle = 0.75;
    expectSerialIdentical(gen, boundscheck(), lba);
}

TEST(BoundsMemLeak, SerialMemLeakOnRequestServing)
{
    auto gen = makeProgram("req_serve", 40000, /*with_bugs=*/true);
    expectSerialIdentical(gen, memleak(), LbaConfig{});
}

TEST(BoundsMemLeak, SerialMemLeakUncompressed)
{
    auto gen = makeProgram("req_churn", 40000, /*with_bugs=*/true);
    LbaConfig lba;
    lba.compress = false;
    lba.transport_bytes_per_cycle = 6.0;
    expectSerialIdentical(gen, memleak(), lba);
}

class BoundsMemLeakParallel
    : public ::testing::TestWithParam<const char*>
{
  protected:
    LifeguardFactory
    factory() const
    {
        return std::string(GetParam()) == "bounds" ? boundscheck()
                                                   : memleak();
    }
};

TEST_P(BoundsMemLeakParallel, Shards124FusedMatchesBatched)
{
    auto gen = makeProgram("req_serve", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    for (unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(shards);
        ParallelLbaConfig config(LbaConfig{}, shards);
        config.dispatch_tier = DispatchTier::kFused;
        PlatformResult fused = exp.runParallelLba(factory(), config);
        config.dispatch_tier = DispatchTier::kBatched;
        PlatformResult batched = exp.runParallelLba(factory(), config);

        EXPECT_EQ(fused.cycles, batched.cycles);
        expectStatsEqual(fused.parallel, batched.parallel);
        expectFindingsEqual(fused.findings, batched.findings);
        for (unsigned s = 0; s < shards; ++s) {
            SCOPED_TRACE(s);
            EXPECT_EQ(fused.parallel.shard_busy_cycles[s],
                      batched.parallel.shard_busy_cycles[s]);
            EXPECT_EQ(fused.parallel.shard_records[s],
                      batched.parallel.shard_records[s]);
            EXPECT_EQ(fused.parallel.shard_consume_lag[s],
                      batched.parallel.shard_consume_lag[s]);
            EXPECT_EQ(fused.parallel.shard_transport_bytes[s],
                      batched.parallel.shard_transport_bytes[s]);
            EXPECT_EQ(fused.parallel.shard_transport_wait_cycles[s],
                      batched.parallel.shard_transport_wait_cycles[s]);
            EXPECT_EQ(fused.parallel.shard_max_occupancy[s],
                      batched.parallel.shard_max_occupancy[s]);
        }
    }
}

TEST_P(BoundsMemLeakParallel, OneTenantPoolFusedMatchesBatched)
{
    auto gen = makeProgram("req_serve", 40000);
    sched::PoolConfig config;
    config.lanes = 2;
    config.lba.buffer_capacity = 256;
    config.lba.transport_bytes_per_cycle = 1.5;

    config.lba.dispatch_tier = DispatchTier::kFused;
    sched::LifeguardPool fused_pool(config, factory());
    fused_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult fused = fused_pool.run();

    config.lba.dispatch_tier = DispatchTier::kBatched;
    sched::LifeguardPool batched_pool(config, factory());
    batched_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult batched = batched_pool.run();

    EXPECT_EQ(fused.total_cycles, batched.total_cycles);
    expectStatsEqual(fused.aggregate, batched.aggregate);
    ASSERT_EQ(fused.tenants.size(), 1u);
    ASSERT_EQ(batched.tenants.size(), 1u);
    EXPECT_EQ(fused.tenants[0].total_cycles,
              batched.tenants[0].total_cycles);
    EXPECT_EQ(fused.tenants[0].lag_p95, batched.tenants[0].lag_p95);
    expectStatsEqual(fused.tenants[0].lba, batched.tenants[0].lba);
    expectFindingsEqual(fused.tenants[0].findings,
                        batched.tenants[0].findings);
}

TEST_P(BoundsMemLeakParallel, ThreadedExecutionIdentical)
{
    auto gen = makeProgram("req_serve", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kFused;
    lba.execution = ExecutionMode::kThreaded;
    PlatformResult threaded = exp.runLba(factory(), lba);
    lba.execution = ExecutionMode::kSerial;
    PlatformResult serial = exp.runLba(factory(), lba);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(factory(), lba);

    EXPECT_EQ(threaded.cycles, serial.cycles);
    EXPECT_EQ(threaded.cycles, record.cycles);
    expectStatsEqual(threaded.lba, serial.lba);
    expectStatsEqual(threaded.lba, record.lba);
    expectFindingsEqual(threaded.findings, serial.findings);
    expectFindingsEqual(threaded.findings, record.findings);
}

INSTANTIATE_TEST_SUITE_P(BothGuards, BoundsMemLeakParallel,
                         ::testing::Values("bounds", "memleak"));

TEST(BoundsMemLeak, BoundsContainmentRewindsIdentically)
{
    // A use-after-free read probes a retagged (tag 0) granule: the
    // mistag rewinds at the same retirement, the same distance, for
    // the same total cost on both batching tiers. (Only the UAF bug:
    // the leak injection skips every 64th free, which would leave the
    // 128th request's "freed" block live and mask the mistag.)
    workload::BugInjection uaf;
    uaf.use_after_free = true;
    auto gen = workload::generate(*workload::findProfile("req_serve"),
                                  uaf, 40000);
    Experiment exp(gen.program);
    replay::ContainmentConfig containment;
    containment.enabled = true;
    containment.policy = replay::RepairPolicy::kQuarantine;

    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kFused;
    PlatformResult fused = exp.runLba(boundscheck(), lba, containment);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched =
        exp.runLba(boundscheck(), lba, containment);

    ASSERT_TRUE(fused.containment_enabled);
    EXPECT_GE(fused.containment.rewinds, 1u);
    EXPECT_EQ(fused.cycles, batched.cycles);
    EXPECT_EQ(fused.containment.rewinds, batched.containment.rewinds);
    EXPECT_EQ(fused.containment.rewound_instructions,
              batched.containment.rewound_instructions);
    EXPECT_EQ(fused.containment.max_rewind_distance,
              batched.containment.max_rewind_distance);
    EXPECT_EQ(fused.containment.rewind_cycles,
              batched.containment.rewind_cycles);
    expectStatsEqual(fused.lba, batched.lba);
    expectFindingsEqual(fused.findings, batched.findings);
}

TEST(BoundsMemLeak, ContainmentRoutesLeakFindingsToQuarantine)
{
    // A leak suspect's pc is the allocation site: patching (or
    // nopping) it would disable the allocator, so the kPatch policy
    // must fall through to quarantine for leak-kind findings — and
    // identically on both tiers.
    auto gen = makeProgram("req_serve", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    replay::ContainmentConfig containment;
    containment.enabled = true;
    containment.policy = replay::RepairPolicy::kPatch;

    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kFused;
    PlatformResult fused = exp.runLba(memleak(), lba, containment);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(memleak(), lba, containment);

    ASSERT_TRUE(fused.containment_enabled);
    EXPECT_GE(fused.containment.rewinds, 1u);
    EXPECT_EQ(fused.containment.repairs.patched, 0u);
    EXPECT_GE(fused.containment.repairs.quarantined, 1u);
    EXPECT_EQ(fused.cycles, batched.cycles);
    EXPECT_EQ(fused.containment.rewinds, batched.containment.rewinds);
    EXPECT_EQ(fused.containment.repairs.quarantined,
              batched.containment.repairs.quarantined);
    expectStatsEqual(fused.lba, batched.lba);
    expectFindingsEqual(fused.findings, batched.findings);
}

TEST(BoundsMemLeak, BoundsDetectsUseAfterFreeCleanRunSilent)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    auto buggy = workload::generate(*workload::findProfile("req_serve"),
                                    bugs, 40000);
    Experiment buggy_exp(buggy.program);
    PlatformResult found = buggy_exp.runLba(boundscheck());
    std::size_t mistags = 0;
    for (const lifeguard::Finding& f : found.findings) {
        if (f.kind == lifeguard::FindingKind::kTagMismatch) ++mistags;
    }
    EXPECT_GE(mistags, 1u);

    auto clean = makeProgram("req_serve", 40000);
    Experiment clean_exp(clean.program);
    PlatformResult silent = clean_exp.runLba(boundscheck());
    EXPECT_TRUE(silent.findings.empty());
}

TEST(BoundsMemLeak, MemLeakFlagsStaleAndUnfreedBlocks)
{
    // The leak injection skips frees: those blocks go cold, so the
    // decay sweep flags them as suspects mid-run and finish() reports
    // them as definite leaks.
    workload::BugInjection bugs;
    bugs.leak = true;
    auto gen = workload::generate(*workload::findProfile("req_serve"),
                                  bugs, 60000);
    Experiment exp(gen.program);
    PlatformResult result = exp.runLba(memleak());
    std::size_t suspects = 0;
    std::size_t leaks = 0;
    for (const lifeguard::Finding& f : result.findings) {
        if (f.kind == lifeguard::FindingKind::kLeakSuspect) ++suspects;
        if (f.kind == lifeguard::FindingKind::kMemoryLeak) ++leaks;
    }
    EXPECT_GE(suspects, 1u);
    EXPECT_GE(leaks, 1u);
}

TEST(BoundsMemLeak, BothGuardsCompileForTheFusedTier)
{
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    lifeguards::BoundsCheck bounds;
    lifeguard::DispatchEngine bounds_engine(bounds, hierarchy);
    EXPECT_TRUE(bounds_engine.fusedTierCompiled());

    lifeguards::MemLeak leak;
    lifeguard::DispatchEngine leak_engine(leak, hierarchy);
    EXPECT_TRUE(leak_engine.fusedTierCompiled());
}

} // namespace
} // namespace lba::core
