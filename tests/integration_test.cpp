/**
 * @file
 * End-to-end integration tests: whole-pipeline runs on benchmark
 * workloads with injected defects, asserting detection, no false
 * positives, and the paper's qualitative performance shape.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba {
namespace {

using core::Experiment;
using core::LifeguardFactory;
using lifeguard::FindingKind;

LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

LifeguardFactory
taintcheck()
{
    return [] { return std::make_unique<lifeguards::TaintCheck>(); };
}

LifeguardFactory
lockset()
{
    return [] { return std::make_unique<lifeguards::LockSet>(); };
}

TEST(Integration, CleanBenchmarksProduceNoFindings)
{
    for (const char* name : {"bc", "gzip"}) {
        auto generated =
            workload::generate(*workload::findProfile(name), {}, 60000);
        Experiment exp(generated.program);
        EXPECT_TRUE(exp.runLba(addrcheck()).findings.empty()) << name;
        EXPECT_TRUE(exp.runLba(taintcheck()).findings.empty()) << name;
    }
}

TEST(Integration, CleanMultithreadedRunHasNoRaces)
{
    auto generated =
        workload::generate(*workload::findProfile("water"), {}, 80000);
    Experiment exp(generated.program);
    auto result = exp.runLba(lockset());
    EXPECT_TRUE(result.findings.empty());
}

TEST(Integration, AddrCheckFindsInjectedHeapBugs)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    bugs.double_free = true;
    bugs.leak = true;
    auto generated =
        workload::generate(*workload::findProfile("tidy"), bugs, 60000);
    Experiment exp(generated.program);
    auto result = exp.runLba(addrcheck());
    EXPECT_GE(result.findings.size(), 3u);
    std::size_t uaf = 0, dfree = 0, leak = 0;
    for (const auto& f : result.findings) {
        if (f.kind == FindingKind::kUnallocatedAccess) ++uaf;
        if (f.kind == FindingKind::kDoubleFree) ++dfree;
        if (f.kind == FindingKind::kMemoryLeak) ++leak;
    }
    EXPECT_GE(uaf, 1u);
    EXPECT_GE(dfree, 1u);
    EXPECT_EQ(leak, 1u);
}

TEST(Integration, TaintCheckFindsInjectedExploit)
{
    workload::BugInjection bugs;
    bugs.tainted_jump = true;
    auto generated =
        workload::generate(*workload::findProfile("gzip"), bugs, 60000);
    Experiment exp(generated.program);
    auto result = exp.runLba(taintcheck());
    EXPECT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].kind, FindingKind::kTaintedJump);
}

TEST(Integration, LockSetFindsInjectedRace)
{
    workload::BugInjection bugs;
    bugs.race = true;
    auto generated =
        workload::generate(*workload::findProfile("water"), bugs, 80000);
    Experiment exp(generated.program);
    auto result = exp.runLba(lockset());
    ASSERT_GE(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].kind, FindingKind::kDataRace);
}

TEST(Integration, LbaBeatsValgrindOnEveryLifeguard)
{
    // Paper Section 3: "Compared to Valgrind lifeguards, LBA lifeguards
    // are 4-19X faster."
    auto st = workload::generate(*workload::findProfile("gs"), {}, 60000);
    Experiment exp(st.program);
    for (auto& factory : {addrcheck(), taintcheck()}) {
        auto lba = exp.runLba(factory);
        auto dbi = exp.runDbi(factory);
        double speedup = dbi.slowdown / lba.slowdown;
        EXPECT_GT(speedup, 2.0);
        EXPECT_LT(speedup, 40.0);
    }
    auto mt =
        workload::generate(*workload::findProfile("zchaff"), {}, 80000);
    Experiment mt_exp(mt.program);
    auto lba = mt_exp.runLba(lockset());
    auto dbi = mt_exp.runDbi(lockset());
    EXPECT_GT(dbi.slowdown / lba.slowdown, 2.0);
}

TEST(Integration, LockSetIsTheMostExpensiveLifeguard)
{
    // Paper averages: AddrCheck 3.9X, TaintCheck 4.8X, LockSet 9.7X.
    auto mt =
        workload::generate(*workload::findProfile("water"), {}, 80000);
    Experiment exp(mt.program);
    auto ac = exp.runLba(addrcheck());
    auto ls = exp.runLba(lockset());
    EXPECT_GT(ls.slowdown, ac.slowdown);
}

TEST(Integration, FindingsAgreeAcrossAllPlatforms)
{
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    bugs.leak = true;
    auto generated =
        workload::generate(*workload::findProfile("w3m"), bugs, 60000);
    Experiment exp(generated.program);
    auto lba = exp.runLba(addrcheck());
    auto dbi = exp.runDbi(addrcheck());
    auto par = exp.runParallelLba(addrcheck(), 2);

    auto kinds = [](const std::vector<lifeguard::Finding>& fs) {
        std::vector<int> v;
        for (const auto& f : fs) v.push_back(static_cast<int>(f.kind));
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(kinds(lba.findings), kinds(dbi.findings));
    EXPECT_EQ(kinds(lba.findings), kinds(par.findings));
}

TEST(Integration, SlowdownShapeMatchesPaperOnSample)
{
    // Coarse shape check on one benchmark (full sweep in the benches):
    // LBA slowdown in a plausible band, Valgrind an order of magnitude.
    auto generated =
        workload::generate(*workload::findProfile("gnuplot"), {}, 80000);
    Experiment exp(generated.program);
    auto lba = exp.runLba(addrcheck());
    auto dbi = exp.runDbi(addrcheck());
    EXPECT_GT(lba.slowdown, 1.5);
    EXPECT_LT(lba.slowdown, 12.0);
    EXPECT_GT(dbi.slowdown, 8.0);
    EXPECT_LT(dbi.slowdown, 100.0);
}

} // namespace
} // namespace lba
