/**
 * @file
 * Tests for the containment subsystem (src/replay/containment.h): the
 * detect -> drain -> rewind -> repair loop wired into the unified
 * timing platform.
 *
 * Two proof obligations:
 *  1. Differential: containment enabled with zero findings is
 *     cycle-identical to the baseline — for the serial system, the
 *     parallel system at shards in {1,2,4}, and one tenant on an
 *     M-lane pool (the no-findings path makes no timer calls at all).
 *  2. An injected finding rewinds exactly as far as the program ran
 *     past the last checkpoint, repairs under every policy, and the
 *     repaired run completes (the rewind_repair example's scenario,
 *     asserted end to end through the platform API).
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::replay {
namespace {

using assembler::assemble;

std::vector<isa::Instruction>
program(const std::string& source)
{
    auto r = assemble(source);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

core::LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

ContainmentConfig
containment(RepairPolicy policy,
            std::uint64_t checkpoint_interval = 0)
{
    ContainmentConfig config;
    config.enabled = true;
    config.policy = policy;
    config.checkpoint_interval = checkpoint_interval;
    return config;
}

/**
 * The rewind_repair example's service loop: @p tail instructions of
 * padding separate the free from the stale read, pinning the expected
 * rewind distance to tail + 1 (the read retires last in the window).
 */
std::vector<isa::Instruction>
uafServiceLoop(unsigned iterations, unsigned tail_padding)
{
    std::string source = "        li r10, " +
                         std::to_string(iterations) + "\n";
    source += R"(serve:
        li r1, 64
        syscall 1           ; buf = alloc(64)
        mov r9, r1
        sd r10, 0(r9)       ; use the buffer
        mov r1, r9
        syscall 2           ; free(buf)
)";
    for (unsigned i = 0; i < tail_padding; ++i) {
        source += "        addi r8, r8, 1\n";
    }
    source += R"(        ld r2, 0(r9)        ; BUG: stale read after free
        addi r10, r10, -1
        bne r10, r0, serve
        halt
)";
    return program(source);
}

/** Every aggregate stat of two LBA runs must match exactly. */
void
expectStatsIdentical(const core::LbaRunStats& a,
                     const core::LbaRunStats& b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.app_cycles, b.app_cycles);
    EXPECT_EQ(a.app_instructions, b.app_instructions);
    EXPECT_EQ(a.records_logged, b.records_logged);
    EXPECT_EQ(a.records_filtered, b.records_filtered);
    EXPECT_EQ(a.backpressure_stall_cycles, b.backpressure_stall_cycles);
    EXPECT_EQ(a.syscall_stall_cycles, b.syscall_stall_cycles);
    EXPECT_EQ(a.syscall_drains, b.syscall_drains);
    EXPECT_EQ(a.lifeguard_busy_cycles, b.lifeguard_busy_cycles);
    EXPECT_EQ(a.transport_wait_cycles, b.transport_wait_cycles);
    EXPECT_EQ(a.transport_bytes, b.transport_bytes);
    EXPECT_EQ(a.bytes_per_record, b.bytes_per_record);
    EXPECT_EQ(a.mean_consume_lag, b.mean_consume_lag);
    EXPECT_EQ(a.containment_cycles, b.containment_cycles);
}

TEST(ContainmentDifferential, ZeroFindingsSerialMatchesBaseline)
{
    auto generated =
        workload::generate(*workload::findProfile("gzip"), {}, 40000);
    core::Experiment exp(generated.program);
    core::LbaConfig lba = exp.config().lba;
    lba.buffer_capacity = 256; // keep back-pressure in play

    auto baseline = exp.runLba(addrcheck(), lba, {});
    auto contained =
        exp.runLba(addrcheck(), lba, containment(RepairPolicy::kPatch));

    ASSERT_TRUE(baseline.findings.empty());
    ASSERT_TRUE(contained.containment_enabled);
    EXPECT_EQ(contained.containment.rewinds, 0u);
    EXPECT_EQ(contained.lba.containment_cycles, 0u);
    EXPECT_EQ(baseline.cycles, contained.cycles);
    expectStatsIdentical(baseline.lba, contained.lba);
}

TEST(ContainmentDifferential, ZeroFindingsParallelMatchesBaseline)
{
    auto generated =
        workload::generate(*workload::findProfile("mcf"), {}, 40000);
    core::Experiment exp(generated.program);
    for (unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(shards);
        core::ParallelLbaConfig config(exp.config().lba, shards);
        auto baseline = exp.runParallelLba(addrcheck(), config, {});
        auto contained = exp.runParallelLba(
            addrcheck(), config, containment(RepairPolicy::kSkip));

        ASSERT_TRUE(baseline.findings.empty());
        EXPECT_EQ(contained.containment.rewinds, 0u);
        EXPECT_EQ(baseline.cycles, contained.cycles);
        expectStatsIdentical(baseline.parallel, contained.parallel);
        for (unsigned s = 0; s < shards; ++s) {
            EXPECT_EQ(baseline.parallel.shard_busy_cycles[s],
                      contained.parallel.shard_busy_cycles[s]);
            EXPECT_EQ(baseline.parallel.shard_records[s],
                      contained.parallel.shard_records[s]);
        }
    }
}

TEST(ContainmentDifferential, ZeroFindingsOneTenantPoolMatchesParallel)
{
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 40000);
    core::Experiment exp(generated.program);
    for (unsigned lanes : {1u, 2u, 4u}) {
        SCOPED_TRACE(lanes);
        auto par = exp.runParallelLba(
            addrcheck(),
            core::ParallelLbaConfig(exp.config().lba, lanes), {});

        sched::PoolConfig pool_config;
        pool_config.lanes = lanes;
        pool_config.containment = containment(RepairPolicy::kPatch);
        sched::LifeguardPool pool(pool_config, addrcheck());
        pool.addTenant({"solo", generated.program, {}, 0.0});
        sched::PoolResult result = pool.run();

        ASSERT_EQ(result.tenants.size(), 1u);
        const sched::TenantStats& tenant = result.tenants[0];
        ASSERT_TRUE(tenant.containment_enabled);
        EXPECT_EQ(tenant.containment.rewinds, 0u);
        EXPECT_FALSE(tenant.aborted);
        EXPECT_EQ(tenant.total_cycles, par.parallel.total_cycles);
        expectStatsIdentical(tenant.lba, par.parallel);
    }
}

TEST(ContainmentRepair, PatchRewindsExactDistanceAndCompletes)
{
    // Checkpoint lands right after the free syscall; the stale read
    // retires 3 instructions later (2 padding addis + the ld), so the
    // rewind must cover exactly those 3 instructions.
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kPatch);
    core::Experiment exp(uafServiceLoop(5, 2), config);
    auto result = exp.runLba(addrcheck());

    ASSERT_TRUE(result.containment_enabled);
    EXPECT_FALSE(result.aborted);
    EXPECT_TRUE(result.run.all_exited);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.rewound_instructions, 3u);
    EXPECT_EQ(result.containment.max_rewind_distance, 3u);
    EXPECT_EQ(result.containment.repairs.patched, 1u);
    // The patched load never faults again: one finding total.
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].kind,
              lifeguard::FindingKind::kUnallocatedAccess);
    // The rewind charge is visible on the application clock.
    EXPECT_GE(result.lba.containment_cycles,
              config.containment.rewind_flush_cycles);
    EXPECT_EQ(result.containment.rewind_cycles,
              result.lba.containment_cycles);
}

TEST(ContainmentRepair, SkipPolicyNopsTheInstructionAndCompletes)
{
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kSkip);
    core::Experiment exp(uafServiceLoop(4, 0), config);
    auto result = exp.runLba(addrcheck());

    EXPECT_TRUE(result.run.all_exited);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.rewound_instructions, 1u);
    EXPECT_EQ(result.containment.repairs.skipped, 1u);
    EXPECT_EQ(result.findings.size(), 1u);
}

TEST(ContainmentRepair, QuarantinePolicyResumesWithoutPatching)
{
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kQuarantine);
    core::Experiment exp(uafServiceLoop(4, 0), config);
    auto result = exp.runLba(addrcheck());

    // The code is untouched; the quarantined address silences further
    // reports and the (still buggy) service loop runs to completion.
    EXPECT_TRUE(result.run.all_exited);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.repairs.quarantined, 1u);
    EXPECT_EQ(result.containment.repairs.patched, 0u);
}

TEST(ContainmentRepair, AbortPolicyTerminatesAtTheRewindPoint)
{
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kAbort);
    core::Experiment exp(uafServiceLoop(4, 0), config);
    auto result = exp.runLba(addrcheck());

    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.run.all_exited);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.repairs.aborted, 1u);
    EXPECT_EQ(result.findings.size(), 1u);
}

TEST(ContainmentRepair, RewindReplaysUndoLogThroughAppCaches)
{
    // Stores between the checkpoint and the detection point populate
    // the undo log; the rewind must charge more than the bare flush.
    const char* source = R"(
        li r10, 2
    serve:
        li r1, 64
        syscall 1
        mov r9, r1
        mov r1, r9
        syscall 2           ; checkpoint right after this
        li r5, 0x100000
        sd r10, 0(r5)       ; undo-logged store in the window
        sd r10, 8(r5)       ; undo-logged store in the window
        ld r2, 0(r9)        ; BUG: stale read, distance 4
        addi r10, r10, -1
        bne r10, r0, serve
        halt
    )";
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kPatch);
    core::Experiment exp(program(source), config);
    auto result = exp.runLba(addrcheck());

    EXPECT_TRUE(result.run.all_exited);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.rewound_instructions, 4u);
    EXPECT_GT(result.containment.max_window_entries, 0u);
    EXPECT_GT(result.containment.rewind_cycles,
              config.containment.rewind_flush_cycles);
}

TEST(ContainmentRepair, ParallelShardsContainTheSameBug)
{
    // The same scenario through the multi-lane platform: any shard's
    // finding triggers the coordinated drain + rewind.
    core::ExperimentConfig config;
    config.containment = containment(RepairPolicy::kPatch);
    core::Experiment exp(uafServiceLoop(5, 2), config);
    auto result = exp.runParallelLba(addrcheck(), 2);

    EXPECT_TRUE(result.run.all_exited);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.containment.rewinds, 1u);
    EXPECT_EQ(result.containment.rewound_instructions, 3u);
    EXPECT_EQ(result.containment.repairs.patched, 1u);
    ASSERT_EQ(result.findings.size(), 1u);
}

TEST(ContainmentRepair, IntervalCheckpointsBoundRewindDistance)
{
    // A long syscall-free stretch before the bug: with syscall-only
    // checkpoints the rewind spans the whole stretch; a tight interval
    // bounds it (at the cost of checkpoint drains).
    std::string source = R"(
        li r1, 64
        syscall 1
        mov r9, r1
        mov r1, r9
        syscall 2           ; last syscall checkpoint
)";
    for (int i = 0; i < 200; ++i) source += "        addi r8, r8, 1\n";
    source += R"(        ld r2, 0(r9)        ; BUG, distance 201
        halt
    )";
    auto prog = program(source);

    core::ExperimentConfig loose;
    loose.containment = containment(RepairPolicy::kPatch);
    core::Experiment exp_loose(prog, loose);
    auto far = exp_loose.runLba(addrcheck());
    EXPECT_EQ(far.containment.rewound_instructions, 201u);
    EXPECT_EQ(far.containment.interval_checkpoints, 0u);

    core::ExperimentConfig tight;
    tight.containment = containment(RepairPolicy::kPatch, 50);
    core::Experiment exp_tight(prog, tight);
    auto near = exp_tight.runLba(addrcheck());
    EXPECT_GT(near.containment.interval_checkpoints, 0u);
    EXPECT_LE(near.containment.max_rewind_distance, 50u);
    EXPECT_TRUE(near.run.all_exited);
}

TEST(ContainmentPool, RewindsOneTenantWithoutDisturbingOthers)
{
    auto clean =
        workload::generate(*workload::findProfile("gzip"), {}, 20000);

    sched::PoolConfig config;
    config.lanes = 2;
    config.containment = containment(RepairPolicy::kPatch);
    sched::LifeguardPool pool(config, addrcheck());
    pool.addTenant({"buggy", uafServiceLoop(5, 2), {}, 0.0});
    pool.addTenant({"clean", clean.program, {}, 0.0});
    sched::PoolResult result = pool.run();

    ASSERT_EQ(result.tenants.size(), 2u);
    const sched::TenantStats& buggy = result.tenants[0];
    const sched::TenantStats& other = result.tenants[1];

    EXPECT_EQ(buggy.containment.rewinds, 1u);
    EXPECT_EQ(buggy.containment.rewound_instructions, 3u);
    EXPECT_EQ(buggy.containment.repairs.patched, 1u);
    EXPECT_FALSE(buggy.aborted);
    ASSERT_EQ(buggy.findings.size(), 1u);

    // The clean tenant never rewound and completed normally.
    EXPECT_EQ(other.containment.rewinds, 0u);
    EXPECT_EQ(other.lba.containment_cycles, 0u);
    EXPECT_TRUE(other.findings.empty());
    EXPECT_GT(other.total_cycles, 0u);
}

TEST(ContainmentPool, AbortTerminatesOnlyTheBuggyTenant)
{
    auto clean =
        workload::generate(*workload::findProfile("gzip"), {}, 20000);

    sched::PoolConfig config;
    config.lanes = 2;
    config.containment = containment(RepairPolicy::kAbort);
    sched::LifeguardPool pool(config, addrcheck());
    pool.addTenant({"buggy", uafServiceLoop(5, 2), {}, 0.0});
    pool.addTenant({"clean", clean.program, {}, 0.0});
    sched::PoolResult result = pool.run();

    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_TRUE(result.tenants[0].aborted);
    EXPECT_EQ(result.tenants[0].containment.repairs.aborted, 1u);
    EXPECT_FALSE(result.tenants[1].aborted);
    EXPECT_EQ(result.tenants[1].containment.rewinds, 0u);
    EXPECT_GT(result.tenants[1].total_cycles, 0u);
}

} // namespace
} // namespace lba::replay
