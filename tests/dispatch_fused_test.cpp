/**
 * @file
 * Differential proof of the fused dispatch tier: for the same program
 * and configuration, `dispatch_tier = kFused` (record runs drained
 * through compiled handler IR — lifeguard/compiler.h) must be
 * cycle-identical — every stat, every finding — to both `kBatched`
 * (the handler-table tier) and `kPerRecord` (the retained virtual
 * baseline), across the serial system, the parallel system with shards
 * in {1, 2, 4}, a one-tenant pool, a containment run that actually
 * rewinds, and threaded host execution. This is the invariant that
 * makes the fastest tier safe: any model drift between the compiled
 * loops and the handler bodies is a test failure here, not a silent
 * fork.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguard/dispatch.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "sched/pool.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::core {
namespace {

LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs,
            bool with_bugs = false)
{
    workload::BugInjection bugs;
    if (with_bugs) {
        bugs.use_after_free = true;
        bugs.leak = true;
    }
    return workload::generate(*workload::findProfile(profile), bugs,
                              instrs);
}

void
expectStatsEqual(const LbaRunStats& fused, const LbaRunStats& other)
{
    EXPECT_EQ(fused.app_instructions, other.app_instructions);
    EXPECT_EQ(fused.records_logged, other.records_logged);
    EXPECT_EQ(fused.records_filtered, other.records_filtered);
    EXPECT_EQ(fused.total_cycles, other.total_cycles);
    EXPECT_EQ(fused.app_cycles, other.app_cycles);
    EXPECT_EQ(fused.backpressure_stall_cycles,
              other.backpressure_stall_cycles);
    EXPECT_EQ(fused.syscall_stall_cycles, other.syscall_stall_cycles);
    EXPECT_EQ(fused.lifeguard_busy_cycles, other.lifeguard_busy_cycles);
    EXPECT_EQ(fused.bytes_per_record, other.bytes_per_record);
    EXPECT_EQ(fused.mean_consume_lag, other.mean_consume_lag);
    EXPECT_EQ(fused.syscall_drains, other.syscall_drains);
    EXPECT_EQ(fused.transport_bytes, other.transport_bytes);
    EXPECT_EQ(fused.transport_wait_cycles, other.transport_wait_cycles);
    EXPECT_EQ(fused.containment_cycles, other.containment_cycles);
}

void
expectFindingsEqual(const std::vector<lifeguard::Finding>& fused,
                    const std::vector<lifeguard::Finding>& other)
{
    ASSERT_EQ(fused.size(), other.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
        EXPECT_EQ(fused[i].kind, other[i].kind);
        EXPECT_EQ(fused[i].pc, other[i].pc);
        EXPECT_EQ(fused[i].addr, other[i].addr);
        EXPECT_EQ(fused[i].tid, other[i].tid);
        EXPECT_EQ(fused[i].message, other[i].message);
    }
}

/** Serial LBA: fused vs batched vs per-record on the same config. */
void
expectSerialIdentical(const workload::GeneratedProgram& gen,
                      const LifeguardFactory& factory, LbaConfig lba)
{
    Experiment exp(gen.program);
    lba.dispatch_tier = DispatchTier::kFused;
    PlatformResult fused = exp.runLba(factory, lba);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(factory, lba);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(factory, lba);

    EXPECT_EQ(fused.cycles, batched.cycles);
    EXPECT_EQ(fused.cycles, record.cycles);
    expectStatsEqual(fused.lba, batched.lba);
    expectStatsEqual(fused.lba, record.lba);
    expectFindingsEqual(fused.findings, batched.findings);
    expectFindingsEqual(fused.findings, record.findings);
}

TEST(DispatchFused, SerialAddrCheckDefaultConfig)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    expectSerialIdentical(gen, addrcheck(), LbaConfig{});
}

TEST(DispatchFused, SerialAddrCheckConstrainedConfig)
{
    // Tiny buffer + fractional transport + filtering: back-pressure
    // flushes, transport ceilings and the filter all active, so the
    // fused drain sees every flush boundary — including mid-batch run
    // breaks where the rangeExit op and the heap kernel alternate.
    auto gen = makeProgram("mcf", 40000);
    LbaConfig lba;
    lba.buffer_capacity = 64;
    lba.filter_enabled = true;
    lba.filter_base = 0x10000000;
    lba.filter_bytes = 64ull << 20;
    lba.transport_bytes_per_cycle = 0.75;
    expectSerialIdentical(gen, addrcheck(), lba);
}

TEST(DispatchFused, SerialTaintCheck)
{
    workload::BugInjection bugs;
    bugs.tainted_jump = true;
    auto gen = workload::generate(*workload::findProfile("gzip"), bugs,
                                  40000);
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::TaintCheck>(); },
        LbaConfig{});
}

TEST(DispatchFused, SerialLockSetUncompressed)
{
    auto gen = makeProgram("water", 40000);
    LbaConfig lba;
    lba.compress = false;
    lba.transport_bytes_per_cycle = 6.0;
    expectSerialIdentical(
        gen, [] { return std::make_unique<lifeguards::LockSet>(); },
        lba);
}

TEST(DispatchFused, ParallelShards124)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    for (unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(shards);
        ParallelLbaConfig config(LbaConfig{}, shards);
        config.dispatch_tier = DispatchTier::kFused;
        PlatformResult fused = exp.runParallelLba(addrcheck(), config);
        config.dispatch_tier = DispatchTier::kBatched;
        PlatformResult batched = exp.runParallelLba(addrcheck(), config);

        EXPECT_EQ(fused.cycles, batched.cycles);
        expectStatsEqual(fused.parallel, batched.parallel);
        expectFindingsEqual(fused.findings, batched.findings);
        for (unsigned s = 0; s < shards; ++s) {
            SCOPED_TRACE(s);
            EXPECT_EQ(fused.parallel.shard_busy_cycles[s],
                      batched.parallel.shard_busy_cycles[s]);
            EXPECT_EQ(fused.parallel.shard_records[s],
                      batched.parallel.shard_records[s]);
            EXPECT_EQ(fused.parallel.shard_consume_lag[s],
                      batched.parallel.shard_consume_lag[s]);
            EXPECT_EQ(fused.parallel.shard_transport_bytes[s],
                      batched.parallel.shard_transport_bytes[s]);
            EXPECT_EQ(fused.parallel.shard_transport_wait_cycles[s],
                      batched.parallel.shard_transport_wait_cycles[s]);
            EXPECT_EQ(fused.parallel.shard_max_occupancy[s],
                      batched.parallel.shard_max_occupancy[s]);
        }
    }
}

TEST(DispatchFused, OneTenantPool)
{
    auto gen = makeProgram("gzip", 40000);
    sched::PoolConfig config;
    config.lanes = 2;
    config.lba.buffer_capacity = 256;
    config.lba.transport_bytes_per_cycle = 1.5;

    config.lba.dispatch_tier = DispatchTier::kFused;
    sched::LifeguardPool fused_pool(config, addrcheck());
    fused_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult fused = fused_pool.run();

    config.lba.dispatch_tier = DispatchTier::kBatched;
    sched::LifeguardPool batched_pool(config, addrcheck());
    batched_pool.addTenant({"solo", gen.program, {}, 0.0});
    sched::PoolResult batched = batched_pool.run();

    EXPECT_EQ(fused.total_cycles, batched.total_cycles);
    expectStatsEqual(fused.aggregate, batched.aggregate);
    ASSERT_EQ(fused.tenants.size(), 1u);
    ASSERT_EQ(batched.tenants.size(), 1u);
    EXPECT_EQ(fused.tenants[0].total_cycles,
              batched.tenants[0].total_cycles);
    EXPECT_EQ(fused.tenants[0].lag_p95, batched.tenants[0].lag_p95);
    expectStatsEqual(fused.tenants[0].lba, batched.tenants[0].lba);
    expectFindingsEqual(fused.tenants[0].findings,
                        batched.tenants[0].findings);
}

TEST(DispatchFused, ContainmentRewindsIdentically)
{
    // Detection latency must not depend on the dispatch tier: a
    // use-after-free caught under containment rewinds at the same
    // retirement, the same distance, for the same total cost.
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    replay::ContainmentConfig containment;
    containment.enabled = true;
    containment.policy = replay::RepairPolicy::kQuarantine;

    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kFused;
    PlatformResult fused = exp.runLba(addrcheck(), lba, containment);
    lba.dispatch_tier = DispatchTier::kBatched;
    PlatformResult batched = exp.runLba(addrcheck(), lba, containment);

    ASSERT_TRUE(fused.containment_enabled);
    EXPECT_GE(fused.containment.rewinds, 1u);
    EXPECT_EQ(fused.cycles, batched.cycles);
    EXPECT_EQ(fused.containment.rewinds, batched.containment.rewinds);
    EXPECT_EQ(fused.containment.rewound_instructions,
              batched.containment.rewound_instructions);
    EXPECT_EQ(fused.containment.max_rewind_distance,
              batched.containment.max_rewind_distance);
    EXPECT_EQ(fused.containment.rewind_cycles,
              batched.containment.rewind_cycles);
    expectStatsEqual(fused.lba, batched.lba);
    expectFindingsEqual(fused.findings, batched.findings);
}

TEST(DispatchFused, ThreadedExecutionIdentical)
{
    // The deferred-execute variant: fused drains on worker threads
    // (consumeBatchFusedDeferred) must replay to the same cycles as
    // serial fused — and as the serial per-record reference.
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    Experiment exp(gen.program);
    LbaConfig lba;
    lba.dispatch_tier = DispatchTier::kFused;
    lba.execution = ExecutionMode::kThreaded;
    PlatformResult threaded = exp.runLba(addrcheck(), lba);
    lba.execution = ExecutionMode::kSerial;
    PlatformResult serial = exp.runLba(addrcheck(), lba);
    lba.dispatch_tier = DispatchTier::kPerRecord;
    PlatformResult record = exp.runLba(addrcheck(), lba);

    EXPECT_EQ(threaded.cycles, serial.cycles);
    EXPECT_EQ(threaded.cycles, record.cycles);
    expectStatsEqual(threaded.lba, serial.lba);
    expectStatsEqual(threaded.lba, record.lba);
    expectFindingsEqual(threaded.findings, serial.findings);
    expectFindingsEqual(threaded.findings, record.findings);
}

/** Table-style lifeguard without an IR description (fallback check). */
class TableOnlyCounter : public lifeguard::Lifeguard
{
  public:
    TableOnlyCounter()
    {
        onEvent<&TableOnlyCounter::onLoad>(log::EventType::kLoad);
    }

    const char* name() const override { return "TableOnlyCounter"; }

    void
    onLoad(const log::EventRecord&, lifeguard::CostSink& cost)
    {
        cost.instrs(3);
        ++loads_;
    }

    std::uint64_t loads() const { return loads_; }

  private:
    std::uint64_t loads_ = 0;
};

TEST(DispatchFused, FusedPathActuallyFuses)
{
    // Sanity for the differentials above: the IR-described lifeguards
    // really compile (fused runs exercise the compiled loops, not the
    // table fallback), and the fused tier counts its batches.
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    lifeguards::AddrCheck guard;
    lifeguard::DispatchEngine engine(guard, hierarchy);
    EXPECT_TRUE(engine.fusedTierCompiled());

    std::vector<log::EventRecord> records(64);
    for (std::size_t i = 0; i < records.size(); ++i) {
        records[i].type = log::EventType::kLoad;
        records[i].addr = 0x10000000 + i * 8;
    }
    engine.assumeFunctionalOwner();
    Cycles total =
        engine.consumeBatchFused(records.data(), records.size());
    EXPECT_GT(total, 0u);
    EXPECT_EQ(engine.stats().records, records.size());
    EXPECT_EQ(engine.stats().batches, 1u);
}

TEST(DispatchFused, LegacyLifeguardFallsBackToBatched)
{
    // A lifeguard without an IR description stays on the batched tier
    // transparently: consumeBatchFused == consumeBatch, byte for byte.
    std::vector<log::EventRecord> records(32);
    for (std::size_t i = 0; i < records.size(); ++i) {
        records[i].type = (i % 2 == 0) ? log::EventType::kLoad
                                       : log::EventType::kStore;
        records[i].addr = 0x1000 + i * 8;
    }

    // Separate hierarchies: each drain starts from cold caches.
    mem::CacheHierarchy fused_hierarchy(mem::HierarchyConfig{});
    TableOnlyCounter fused_guard;
    lifeguard::DispatchEngine fused(fused_guard, fused_hierarchy);
    EXPECT_FALSE(fused.fusedTierCompiled());
    std::vector<Cycles> fused_costs(records.size());
    fused.assumeFunctionalOwner();
    Cycles fused_total = fused.consumeBatchFused(
        records.data(), records.size(), fused_costs.data());

    mem::CacheHierarchy batched_hierarchy(mem::HierarchyConfig{});
    TableOnlyCounter batched_guard;
    lifeguard::DispatchEngine batched(batched_guard, batched_hierarchy);
    std::vector<Cycles> batched_costs(records.size());
    batched.assumeFunctionalOwner();
    Cycles batched_total = batched.consumeBatch(
        records.data(), records.size(), batched_costs.data());

    EXPECT_EQ(fused_total, batched_total);
    EXPECT_EQ(fused_costs, batched_costs);
    EXPECT_EQ(fused_guard.loads(), batched_guard.loads());
    EXPECT_EQ(fused.stats().batches, batched.stats().batches);
}

} // namespace
} // namespace lba::core
