/**
 * @file
 * Tests for the functional simulator: CPU semantics, heap allocator,
 * process/scheduler/syscall behaviour.
 */

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "sim/cpu.h"
#include "sim/heap.h"
#include "sim/process.h"

namespace lba::sim {
namespace {

using assembler::assemble;

/** Run source to completion and return the process for inspection. */
std::unique_ptr<Process>
runSource(const std::string& source, RunResult* out = nullptr,
          const ProcessConfig& config = {})
{
    auto r = assemble(source);
    EXPECT_TRUE(r.ok()) << r.error << " line " << r.error_line;
    auto process = std::make_unique<Process>(config);
    process->load(r.program);
    RunResult result = process->run(nullptr);
    if (out) *out = result;
    return process;
}

// ---------------------------------------------------------------- CPU --

TEST(Cpu, RegisterZeroIsHardwired)
{
    Thread t;
    t.setReg(0, 42);
    EXPECT_EQ(t.reg(0), 0u);
    t.setReg(1, 42);
    EXPECT_EQ(t.reg(1), 42u);
}

TEST(Cpu, AluSemantics)
{
    auto p = runSource(R"(
        li r1, 7
        li r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        divu r6, r1, r2
        remu r7, r1, r2
        xor r8, r1, r2
        shl r9, r1, r2
        slt r11, r2, r1
        halt
    )");
    const Thread& t = p->thread(0);
    EXPECT_EQ(t.reg(3), 10u);
    EXPECT_EQ(t.reg(4), 4u);
    EXPECT_EQ(t.reg(5), 21u);
    EXPECT_EQ(t.reg(6), 2u);
    EXPECT_EQ(t.reg(7), 1u);
    EXPECT_EQ(t.reg(8), 4u);
    EXPECT_EQ(t.reg(9), 56u);
    EXPECT_EQ(t.reg(11), 1u);
}

TEST(Cpu, DivisionByZeroIsDefined)
{
    auto p = runSource(R"(
        li r1, 9
        li r2, 0
        divu r3, r1, r2
        remu r4, r1, r2
        halt
    )");
    EXPECT_EQ(p->thread(0).reg(3), ~0ull);
    EXPECT_EQ(p->thread(0).reg(4), 9u);
}

TEST(Cpu, SignedArithmeticAndBranches)
{
    auto p = runSource(R"(
        li r1, -5
        li r2, 3
        blt r1, r2, neg_ok
        li r10, 0
        halt
    neg_ok:
        li r10, 1
        sra r3, r1, r2
        halt
    )");
    EXPECT_EQ(p->thread(0).reg(10), 1u);
    EXPECT_EQ(static_cast<std::int64_t>(p->thread(0).reg(3)), -1);
}

TEST(Cpu, Li64ViaLih)
{
    auto p = runSource(R"(
        li r1, 0
        lih r1, 1
        halt
    )");
    EXPECT_EQ(p->thread(0).reg(1), 1ull << 32);
}

TEST(Cpu, LoadStoreWidths)
{
    auto p = runSource(R"(
        li r5, 0x100000
        li r1, -1
        sd r1, 0(r5)
        lb r2, 0(r5)
        lw r3, 0(r5)
        ld r4, 0(r5)
        halt
    )");
    EXPECT_EQ(p->thread(0).reg(2), 0xffull);        // zero-extended
    EXPECT_EQ(p->thread(0).reg(3), 0xffffffffull);
    EXPECT_EQ(p->thread(0).reg(4), ~0ull);
}

TEST(Cpu, CallAndReturn)
{
    auto p = runSource(R"(
        li r1, 0
        call fn
        addi r1, r1, 100
        halt
    fn:
        addi r1, r1, 1
        ret
    )");
    EXPECT_EQ(p->thread(0).reg(1), 101u);
}

TEST(Cpu, IndirectCallThroughRegister)
{
    auto p = runSource(R"(
        li r2, 0
        li r1, 0x10028
        callr r1
        halt
        nop
    target:
        li r2, 77
        ret
    )");
    // target is at instruction index 5 -> 0x10000 + 5*8 = 0x10028.
    EXPECT_EQ(p->thread(0).reg(2), 77u);
}

TEST(Cpu, RetiredObservationForMemoryOps)
{
    mem::Memory m;
    Thread t;
    t.setReg(2, 0x2000);
    t.setReg(3, 0xabcd);
    Retired r = execute(t, m, {isa::Opcode::kSd, 0, 2, 3, 8});
    EXPECT_EQ(r.mem_addr, 0x2008u);
    EXPECT_EQ(r.mem_bytes, 8u);
    EXPECT_TRUE(r.mem_is_write);
    EXPECT_EQ(m.read64(0x2008), 0xabcdu);

    Retired r2 = execute(t, m, {isa::Opcode::kLd, 4, 2, 0, 8});
    EXPECT_EQ(r2.mem_addr, 0x2008u);
    EXPECT_FALSE(r2.mem_is_write);
    EXPECT_EQ(t.reg(4), 0xabcdu);
}

TEST(Cpu, RetiredObservationForBranches)
{
    mem::Memory m;
    Thread t;
    t.pc = 0x100;
    Retired taken = execute(t, m, {isa::Opcode::kBeq, 0, 0, 0, 0x40});
    EXPECT_TRUE(taken.ctrl_taken);
    EXPECT_EQ(taken.ctrl_target, 0x140u);
    EXPECT_EQ(t.pc, 0x140u);

    t.setReg(1, 1);
    Retired nottaken =
        execute(t, m, {isa::Opcode::kBeq, 0, 1, 0, 0x40});
    EXPECT_FALSE(nottaken.ctrl_taken);
    EXPECT_EQ(t.pc, 0x148u);
}

// --------------------------------------------------------------- Heap --

TEST(Heap, AllocFreeRoundTrip)
{
    Heap h(0x1000, 0x10000);
    Addr a = h.alloc(100);
    ASSERT_NE(a, 0u);
    EXPECT_TRUE(h.isLiveBlock(a));
    EXPECT_EQ(h.blockSize(a), 112u); // rounded to 16
    EXPECT_TRUE(h.free(a));
    EXPECT_FALSE(h.isLiveBlock(a));
}

TEST(Heap, DoubleFreeRejected)
{
    Heap h(0x1000, 0x10000);
    Addr a = h.alloc(32);
    EXPECT_TRUE(h.free(a));
    EXPECT_FALSE(h.free(a));
    EXPECT_FALSE(h.free(0x1008)); // wild free
}

TEST(Heap, ExhaustionReturnsZero)
{
    Heap h(0x1000, 256);
    Addr a = h.alloc(128);
    Addr b = h.alloc(128);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_EQ(h.alloc(16), 0u);
    h.free(a);
    EXPECT_NE(h.alloc(64), 0u);
}

TEST(Heap, CoalescingAllowsBigRealloc)
{
    Heap h(0x1000, 1024);
    Addr a = h.alloc(256);
    Addr b = h.alloc(256);
    Addr c = h.alloc(256);
    ASSERT_NE(c, 0u);
    h.free(b);
    h.free(a); // coalesces with b's region
    Addr big = h.alloc(512);
    EXPECT_NE(big, 0u);
}

TEST(Heap, LiveBytesTracking)
{
    Heap h(0x1000, 4096);
    EXPECT_EQ(h.liveBytes(), 0u);
    Addr a = h.alloc(16);
    Addr b = h.alloc(16);
    EXPECT_EQ(h.liveBytes(), 32u);
    h.free(a);
    EXPECT_EQ(h.liveBytes(), 16u);
    h.free(b);
    EXPECT_EQ(h.liveBlocks(), 0u);
}

TEST(Heap, DistinctBlocksDoNotOverlap)
{
    Heap h(0x1000, 1 << 20);
    std::vector<Addr> blocks;
    for (int i = 0; i < 100; ++i) {
        Addr a = h.alloc(48);
        ASSERT_NE(a, 0u);
        for (Addr other : blocks) {
            EXPECT_TRUE(a + 48 <= other || other + 48 <= a);
        }
        blocks.push_back(a);
    }
}

// ------------------------------------------------------------ Process --

TEST(Process, RunsToCompletion)
{
    RunResult result;
    runSource("li r1, 1\nhalt\n", &result);
    EXPECT_TRUE(result.all_exited);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.instructions, 2u);
}

TEST(Process, CountsInstructionClasses)
{
    auto p = runSource(R"(
        li r5, 0x100000
        ld r1, 0(r5)
        sd r1, 8(r5)
        add r2, r1, r1
        halt
    )");
    const auto& counts = p->classCounts();
    EXPECT_EQ(counts[static_cast<int>(isa::InstrClass::kLoad)], 1u);
    EXPECT_EQ(counts[static_cast<int>(isa::InstrClass::kStore)], 1u);
    EXPECT_EQ(p->memRefs(), 2u);
}

TEST(Process, AllocSyscallReturnsHeapPointer)
{
    auto p = runSource(R"(
        li r1, 64
        syscall 1
        mov r20, r1
        halt
    )");
    Addr ptr = p->thread(0).reg(20);
    EXPECT_GE(ptr, kHeapBase);
    EXPECT_TRUE(p->heap().isLiveBlock(ptr));
}

TEST(Process, FreeSyscallReportsBadFree)
{
    auto p = runSource(R"(
        li r1, 64
        syscall 1
        mov r20, r1
        syscall 2       ; valid free (r1 still holds ptr? no: r1 = ptr)
        mov r21, r1     ; 1 = ok
        mov r1, r20
        syscall 2       ; double free
        mov r22, r1     ; 0 = bad
        halt
    )");
    EXPECT_EQ(p->thread(0).reg(21), 1u);
    EXPECT_EQ(p->thread(0).reg(22), 0u);
}

TEST(Process, ReadFillsDeterministicInput)
{
    ProcessConfig cfg;
    cfg.input_seed = 42;
    auto p1 = runSource(R"(
        li r1, 0x100000
        li r2, 16
        syscall 3
        li r5, 0x100000
        ld r20, 0(r5)
        halt
    )", nullptr, cfg);
    auto p2 = runSource(R"(
        li r1, 0x100000
        li r2, 16
        syscall 3
        li r5, 0x100000
        ld r20, 0(r5)
        halt
    )", nullptr, cfg);
    EXPECT_NE(p1->thread(0).reg(20), 0u);
    EXPECT_EQ(p1->thread(0).reg(20), p2->thread(0).reg(20));
}

TEST(Process, SpawnAndJoin)
{
    RunResult result;
    auto p = runSource(R"(
        li r1, 0x10040      ; worker entry (instr index 8)
        li r2, 123
        syscall 7           ; spawn
        mov r20, r1         ; child tid
        mov r1, r20
        syscall 8           ; join
        li r21, 1
        halt
    worker:
        li r5, 0x200000
        sd r1, 0(r5)        ; store arg
        syscall 0           ; exit
    )", &result);
    EXPECT_TRUE(result.all_exited);
    EXPECT_EQ(p->numThreads(), 2u);
    EXPECT_EQ(p->thread(0).reg(20), 1u); // child tid
    EXPECT_EQ(p->thread(0).reg(21), 1u); // reached after join
    EXPECT_EQ(p->memory().read64(0x200000), 123u);
}

TEST(Process, LockMutualExclusionAndHandoff)
{
    // Main holds the lock; worker blocks on it; main increments a
    // shared counter then unlocks; worker must observe the increment.
    RunResult result;
    auto p = runSource(R"(
        li r9, 0x300000     ; lock address
        mov r1, r9
        syscall 5           ; lock (main acquires)
        li r1, 0x10078      ; worker entry (instr index 15)
        li r2, 0
        syscall 7           ; spawn
        syscall 9           ; yield (let the worker block on the lock)
        li r5, 0x200000
        li r6, 7
        sd r6, 0(r5)        ; write shared value while holding the lock
        mov r1, r9
        syscall 6           ; unlock -> hands off to worker
        li r1, 1
        syscall 8           ; join worker
        halt
    worker:
        li r9, 0x300000
        mov r1, r9
        syscall 5           ; blocks until main unlocks
        li r5, 0x200000
        ld r20, 0(r5)
        mov r1, r9
        syscall 6
        syscall 0
    )", &result);
    EXPECT_TRUE(result.all_exited);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(p->thread(1).reg(20), 7u);
}

TEST(Process, DeadlockDetected)
{
    RunResult result;
    runSource(R"(
        li r1, 0x300000
        syscall 5           ; acquire
        li r1, 2            ; clobbered below
        li r1, 0x10040      ; worker entry (index 8)
        li r2, 0
        syscall 7
        syscall 8           ; join worker, but worker waits on our lock
        halt
    worker:
        li r1, 0x300000
        syscall 5           ; blocks forever (main never unlocks)
        syscall 0
    )", &result);
    // Main blocks joining (r1 = worker tid 1? r1 was clobbered...)
    // Regardless of join target, worker never acquires: deadlock or
    // instruction-limit; the run must not report clean exit.
    EXPECT_FALSE(result.all_exited);
}

TEST(Process, FaultOnWildJump)
{
    RunResult result;
    runSource(R"(
        li r1, 0x7f000000
        jr r1
        halt
    )", &result);
    EXPECT_EQ(result.faulted_threads, 1u);
    EXPECT_TRUE(result.all_exited); // faulted thread is accounted done
}

TEST(Process, InstructionLimitStopsRunaway)
{
    ProcessConfig cfg;
    cfg.max_instructions = 1000;
    RunResult result;
    runSource("loop: jmp loop\n", &result, cfg);
    EXPECT_TRUE(result.hit_instruction_limit);
    EXPECT_EQ(result.instructions, 1000u);
}

/** Observer order: OS events follow the syscall retirement. */
class OrderObserver : public RetireObserver
{
  public:
    void
    onRetire(const Retired& retired) override
    {
        if (retired.is_syscall) log.push_back('s');
        else log.push_back('i');
    }
    void onOsEvent(const OsEvent& event) override
    {
        log.push_back(event.type == OsEventType::kAlloc ? 'A' : 'o');
    }
    std::string log;
};

TEST(Process, ObserverSeesSyscallThenAnnotation)
{
    auto r = assemble("li r1, 64\nsyscall 1\nhalt\n");
    ASSERT_TRUE(r.ok());
    Process p;
    p.load(r.program);
    OrderObserver obs;
    p.run(&obs);
    EXPECT_EQ(obs.log, "isAio"); // li, syscall, Alloc, halt, ThreadExit
}

TEST(Process, DeterministicReplay)
{
    const char* src = R"(
        li r9, 0
        li r10, 50
    loop:
        li r1, 32
        syscall 1
        mov r2, r1
        sd r10, 0(r2)
        mov r1, r2
        syscall 2
        addi r10, r10, -1
        bne r10, r0, loop
        halt
    )";
    RunResult a, b;
    auto pa = runSource(src, &a);
    auto pb = runSource(src, &b);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(pa->memRefs(), pb->memRefs());
}

} // namespace
} // namespace lba::sim
