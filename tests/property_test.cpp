/**
 * @file
 * Cross-module property tests: seeded fuzz sweeps of the compressor
 * round-trip, disassembler/assembler round-trip on random programs,
 * heap allocator invariants under random workloads, and bug-injection
 * matrix coverage of the whole pipeline.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "asm/assembler.h"
#include "compress/compressor.h"
#include "core/runner.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "log/capture.h"
#include "sim/heap.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba {
namespace {

/** Deterministic fuzz RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}
    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }
    std::uint64_t bounded(std::uint64_t b) { return b ? next() % b : 0; }

  private:
    std::uint64_t state_;
};

// ------------------------------------------------ compressor fuzzing --

/** Fuzzed record streams mixing realistic and adversarial patterns. */
class CompressorFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CompressorFuzz, RoundTripIsExact)
{
    Rng rng(GetParam());
    std::vector<log::EventRecord> trace;
    Addr loop_pc = 0x10000;
    Addr stream_addr = 0x20000000;
    for (int i = 0; i < 3000; ++i) {
        log::EventRecord r;
        r.tid = static_cast<ThreadId>(rng.bounded(3));
        switch (rng.bounded(6)) {
          case 0: // loopy load (predictable)
            r.pc = loop_pc + rng.bounded(4) * 8;
            r.type = log::EventType::kLoad;
            r.opcode = static_cast<std::uint8_t>(isa::Opcode::kLd);
            r.rd = static_cast<std::uint8_t>(rng.bounded(32));
            r.rs1 = static_cast<std::uint8_t>(rng.bounded(32));
            r.addr = stream_addr += 16;
            r.aux = 8;
            break;
          case 1: // wild store (adversarial address)
            r.pc = rng.bounded(1 << 20) * 8;
            r.type = log::EventType::kStore;
            r.opcode = static_cast<std::uint8_t>(isa::Opcode::kSb);
            r.rs1 = static_cast<std::uint8_t>(rng.bounded(32));
            r.rs2 = static_cast<std::uint8_t>(rng.bounded(32));
            r.addr = rng.next();
            r.aux = 1;
            break;
          case 2: // branch with varying taken-ness
            r.pc = loop_pc + 64;
            r.type = log::EventType::kBranch;
            r.opcode = static_cast<std::uint8_t>(isa::Opcode::kBne);
            if (rng.bounded(2)) {
                r.addr = loop_pc;
                r.aux = 1;
            }
            break;
          case 3: // return to varying sites
            r.pc = loop_pc + 128;
            r.type = log::EventType::kReturn;
            r.opcode = static_cast<std::uint8_t>(isa::Opcode::kRet);
            r.addr = 0x30000 + rng.bounded(8) * 0x40;
            r.aux = 1;
            break;
          case 4: // annotation with random payload
            r.type = static_cast<log::EventType>(
                static_cast<unsigned>(log::EventType::kAlloc) +
                rng.bounded(8));
            r.addr = rng.next();
            r.aux = rng.next() & 0xffff;
            break;
          default: // plain ALU
            r.pc = loop_pc + rng.bounded(16) * 8;
            r.type = log::EventType::kIntAlu;
            r.opcode = static_cast<std::uint8_t>(isa::Opcode::kAdd);
            r.rd = static_cast<std::uint8_t>(rng.bounded(32));
            r.rs1 = static_cast<std::uint8_t>(rng.bounded(32));
            r.rs2 = static_cast<std::uint8_t>(rng.bounded(32));
            break;
        }
        trace.push_back(r);
    }

    compress::LogCompressor c;
    for (const auto& r : trace) c.append(r);
    compress::LogDecompressor d(c.bytes());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(d.next(), trace[i]) << "record " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------- disasm/asm round-trip fuzzing --

class DisasmRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DisasmRoundTrip, RandomProgramSurvivesTextRoundTrip)
{
    Rng rng(GetParam() * 977 + 3);
    std::vector<isa::Instruction> program;
    for (int i = 0; i < 300; ++i) {
        isa::Instruction instr;
        instr.op = static_cast<isa::Opcode>(rng.bounded(
            static_cast<unsigned>(isa::Opcode::kNumOpcodes)));
        instr.rd = static_cast<RegIndex>(rng.bounded(isa::kNumRegs));
        instr.rs1 = static_cast<RegIndex>(rng.bounded(isa::kNumRegs));
        instr.rs2 = static_cast<RegIndex>(rng.bounded(isa::kNumRegs));
        instr.imm = static_cast<std::int32_t>(rng.next());
        // Canonicalize fields the text form does not carry (unused
        // operands are zero in assembled output).
        if (!isa::readsRs1(instr.op)) instr.rs1 = 0;
        if (!isa::readsRs2(instr.op)) instr.rs2 = 0;
        if (!isa::writesRd(instr.op)) instr.rd = 0;
        switch (isa::classOf(instr.op)) {
          case isa::InstrClass::kNop:
          case isa::InstrClass::kHalt:
          case isa::InstrClass::kReturn:
          case isa::InstrClass::kMove:
            instr.imm = 0;
            break;
          case isa::InstrClass::kIndirectJump:
          case isa::InstrClass::kIndirectCall:
            instr.imm = 0;
            break;
          case isa::InstrClass::kIntAlu:
            if (isa::readsRs2(instr.op)) instr.imm = 0;
            break;
          case isa::InstrClass::kSyscall:
            instr.imm = static_cast<std::int32_t>(rng.bounded(10));
            break;
          default:
            break;
        }
        program.push_back(instr);
    }

    std::string text;
    for (const auto& instr : program) {
        text += isa::disassemble(instr) + "\n";
    }
    auto result = assembler::assemble(text);
    ASSERT_TRUE(result.ok()) << result.error << "\n" << text;
    ASSERT_EQ(result.program.size(), program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        EXPECT_EQ(result.program[i], program[i])
            << i << ": " << isa::disassemble(program[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 6));

// --------------------------------------------- heap allocator fuzzing --

class HeapFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeapFuzz, NoOverlapNoLossUnderRandomWorkload)
{
    Rng rng(GetParam() * 31 + 7);
    sim::Heap heap(0x10000, 1 << 20);
    std::map<Addr, std::uint64_t> live; // base -> size
    std::uint64_t expected_bytes = 0;

    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.bounded(100) < 60) {
            std::uint64_t size = rng.bounded(512) + 1;
            Addr a = heap.alloc(size);
            if (a == 0) continue; // exhausted: fine
            std::uint64_t rounded = (size + 15) & ~15ull;
            // In-range and aligned.
            ASSERT_GE(a, 0x10000u);
            ASSERT_LE(a + rounded, 0x10000u + (1 << 20));
            ASSERT_EQ(a % 16, 0u);
            // No overlap with any live block.
            auto next = live.lower_bound(a);
            if (next != live.end()) {
                ASSERT_LE(a + rounded, next->first);
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, a);
            }
            live[a] = rounded;
            expected_bytes += rounded;
        } else {
            auto it = live.begin();
            std::advance(it, rng.bounded(live.size()));
            ASSERT_TRUE(heap.free(it->first));
            ASSERT_FALSE(heap.free(it->first)); // double free rejected
            expected_bytes -= it->second;
            live.erase(it);
        }
        ASSERT_EQ(heap.liveBytes(), expected_bytes);
        ASSERT_EQ(heap.liveBlocks(), live.size());
    }
    // Free everything; the arena must coalesce back to one max block.
    for (const auto& [base, size] : live) {
        ASSERT_TRUE(heap.free(base));
    }
    Addr whole = heap.alloc((1 << 20) - 16);
    EXPECT_NE(whole, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------ bug-injection matrix -----

struct BugCase
{
    const char* benchmark;
    workload::BugInjection bugs;
    lifeguard::FindingKind expected;
};

class BugMatrix : public ::testing::TestWithParam<int>
{
  public:
    static std::vector<BugCase>
    cases()
    {
        workload::BugInjection uaf;
        uaf.use_after_free = true;
        workload::BugInjection dfree;
        dfree.double_free = true;
        workload::BugInjection leak;
        leak.leak = true;
        workload::BugInjection jump;
        jump.tainted_jump = true;
        workload::BugInjection race;
        race.race = true;
        return {
            {"bc", uaf, lifeguard::FindingKind::kUnallocatedAccess},
            {"gs", uaf, lifeguard::FindingKind::kUnallocatedAccess},
            {"tidy", dfree, lifeguard::FindingKind::kDoubleFree},
            {"w3m", dfree, lifeguard::FindingKind::kDoubleFree},
            {"gnuplot", leak, lifeguard::FindingKind::kMemoryLeak},
            {"mcf", leak, lifeguard::FindingKind::kMemoryLeak},
            {"gzip", jump, lifeguard::FindingKind::kTaintedJump},
            {"w3m", jump, lifeguard::FindingKind::kTaintedJump},
            {"water", race, lifeguard::FindingKind::kDataRace},
            {"zchaff", race, lifeguard::FindingKind::kDataRace},
        };
    }
};

TEST_P(BugMatrix, RightLifeguardCatchesRightBug)
{
    const BugCase bug_case = cases()[GetParam()];
    auto generated = workload::generate(
        *workload::findProfile(bug_case.benchmark), bug_case.bugs,
        60000);
    core::Experiment exp(generated.program);

    core::LifeguardFactory factory;
    switch (bug_case.expected) {
      case lifeguard::FindingKind::kTaintedJump:
        factory = [] {
            return std::make_unique<lifeguards::TaintCheck>();
        };
        break;
      case lifeguard::FindingKind::kDataRace:
        factory = [] {
            return std::make_unique<lifeguards::LockSet>();
        };
        break;
      default:
        factory = [] {
            return std::make_unique<lifeguards::AddrCheck>();
        };
        break;
    }
    auto result = exp.runLba(factory);
    std::size_t hits = 0;
    for (const auto& f : result.findings) {
        if (f.kind == bug_case.expected) ++hits;
    }
    EXPECT_GE(hits, 1u)
        << bug_case.benchmark << " expected "
        << lifeguard::findingKindName(bug_case.expected);
}

INSTANTIATE_TEST_SUITE_P(Cases, BugMatrix,
                         ::testing::Range(0, 10));

// ------------------------------------- process determinism property --

class ProcessDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProcessDeterminism, IdenticalEventStreamsAcrossRuns)
{
    auto generated = workload::generate(
        *workload::findProfile(GetParam()), {}, 40000);

    auto digest = [&]() {
        std::uint64_t hash = 1469598103934665603ull;
        log::CaptureUnit capture([&](const log::EventRecord& r) {
            auto mix = [&](std::uint64_t v) {
                hash ^= v;
                hash *= 1099511628211ull;
            };
            mix(r.pc);
            mix(static_cast<std::uint64_t>(r.type));
            mix(r.addr);
            mix(r.aux);
            mix(r.tid);
        });
        sim::Process p;
        p.load(generated.program);
        p.run(&capture);
        return hash;
    };
    EXPECT_EQ(digest(), digest());
}

INSTANTIATE_TEST_SUITE_P(Suite, ProcessDeterminism,
                         ::testing::Values("bc", "mcf", "water",
                                           "zchaff"));

} // namespace
} // namespace lba
