/**
 * @file
 * Trace file I/O tests: round trips through disk (per codec), header
 * inspection, and a hand-written corpus of truncated/corrupt/
 * adversarial files that must all decode to typed errors — never UB,
 * never an abort, never an unbounded allocation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "compress/registry.h"
#include "compress/trace_file.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::compress {
namespace {

/** Temp file path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const char* name)
        : path_(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::vector<log::EventRecord>
sampleTrace(std::size_t n)
{
    std::vector<log::EventRecord> trace;
    for (std::size_t i = 0; i < n; ++i) {
        log::EventRecord r;
        r.pc = 0x10000 + (i % 16) * 8;
        r.type = log::EventType::kLoad;
        r.opcode = static_cast<std::uint8_t>(isa::Opcode::kLd);
        r.rd = 1;
        r.rs1 = 2;
        r.addr = 0x20000 + i * 8;
        r.aux = 8;
        trace.push_back(r);
    }
    return trace;
}

std::string
readFileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** A syntactically valid v2 header with the given fields. */
std::string
v2Header(std::uint64_t records, std::uint64_t payload_bytes,
         const std::string& codec)
{
    std::string h = "LBATRACE";
    h.push_back(2);
    h.append(3, '\0');
    for (int i = 0; i < 8; ++i) {
        h.push_back(static_cast<char>(records >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) {
        h.push_back(static_cast<char>(payload_bytes >> (8 * i)));
    }
    h.push_back(static_cast<char>(codec.size()));
    h += codec;
    return h;
}

TEST(TraceFile, RoundTripThroughDisk)
{
    TempFile file("roundtrip.lbat");
    auto trace = sampleTrace(500);
    DecodeError error;
    ASSERT_TRUE(writeTrace(file.path(), trace, kDefaultCodec, &error))
        << error.toString();

    auto loaded = readTrace(file.path(), &error);
    ASSERT_TRUE(loaded.has_value()) << error.toString();
    ASSERT_EQ(loaded->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ((*loaded)[i], trace[i]) << i;
    }
}

TEST(TraceFile, RoundTripsWithEveryRegisteredCodec)
{
    auto trace = sampleTrace(300);
    for (const std::string& name : CodecRegistry::instance().names()) {
        TempFile file("roundtrip_codec.lbat");
        DecodeError error;
        ASSERT_TRUE(writeTrace(file.path(), trace, name, &error))
            << name << ": " << error.toString();
        auto info = readTraceInfo(file.path());
        ASSERT_TRUE(info.has_value()) << name;
        EXPECT_EQ(info->codec, name);
        EXPECT_EQ(info->version, 2u);
        auto loaded = readTrace(file.path(), &error);
        ASSERT_TRUE(loaded.has_value())
            << name << ": " << error.toString();
        EXPECT_EQ(*loaded, trace) << name;
    }
}

TEST(TraceFile, WriteRejectsUnknownCodec)
{
    TempFile file("nocodec.lbat");
    DecodeError error;
    EXPECT_FALSE(
        writeTrace(file.path(), sampleTrace(5), "no-such", &error));
    EXPECT_EQ(error.kind, DecodeErrorKind::kUnsupported);
}

TEST(TraceFile, InfoReportsSizes)
{
    TempFile file("info.lbat");
    auto trace = sampleTrace(1000);
    ASSERT_TRUE(writeTrace(file.path(), trace));
    auto info = readTraceInfo(file.path());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->records, 1000u);
    EXPECT_GT(info->payload_bytes, 0u);
    EXPECT_LT(info->bytesPerRecord(), 2.0);
    EXPECT_EQ(info->codec, "predictor");
}

TEST(TraceFile, EmptyTraceIsValid)
{
    TempFile file("empty.lbat");
    ASSERT_TRUE(writeTrace(file.path(), {}));
    auto loaded = readTrace(file.path());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->empty());
}

TEST(TraceFile, ReadsVersion1Files)
{
    // v1 layout: fixed 28-byte header, predictor payload at byte 28.
    TempFile file("v1.lbat");
    auto trace = sampleTrace(50);
    ASSERT_TRUE(writeTrace(file.path(), trace, "predictor"));
    std::string bytes = readFileBytes(file.path());
    std::string v1 = bytes.substr(0, 8);
    v1.push_back(1);
    v1.append(3, '\0');
    v1 += bytes.substr(12, 16);           // counts, unchanged
    v1 += bytes.substr(28 + 1 + 9);       // skip len byte + "predictor"
    writeFileBytes(file.path(), v1);

    auto info = readTraceInfo(file.path());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, 1u);
    EXPECT_EQ(info->codec, "predictor");
    auto loaded = readTrace(file.path());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, trace);
}

TEST(TraceFile, MissingFileFails)
{
    DecodeError error;
    EXPECT_FALSE(readTrace("/nonexistent/nowhere.lbat", &error)
                     .has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kIo);
}

// --- Corrupt corpus ------------------------------------------------
// Every entry is a hand-built malformed file; the contract under test
// is "typed error out, nothing worse".

TEST(TraceFile, RejectsBadMagic)
{
    TempFile file("bad.lbat");
    writeFileBytes(file.path(), "NOTATRACEFILE___________________");
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kMalformed);
    EXPECT_NE(error.message.find("not an LBA trace"),
              std::string::npos);
}

TEST(TraceFile, RejectsTruncatedHeader)
{
    TempFile file("short.lbat");
    writeFileBytes(file.path(), "LBAT");
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kTruncated);
}

TEST(TraceFile, RejectsUnsupportedVersion)
{
    TempFile file("badver.lbat");
    std::string h = v2Header(0, 0, "predictor");
    h[8] = 9;
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kUnsupported);
}

TEST(TraceFile, RejectsTruncatedPayload)
{
    TempFile file("trunc.lbat");
    auto trace = sampleTrace(200);
    ASSERT_TRUE(writeTrace(file.path(), trace));
    // Chop the payload in half.
    std::string bytes = readFileBytes(file.path());
    writeFileBytes(file.path(),
                   bytes.substr(0, 38 + (bytes.size() - 38) / 2));
    DecodeError error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kTruncated);
    EXPECT_NE(error.message.find("truncated"), std::string::npos);
}

TEST(TraceFile, RejectsZeroLengthCodecName)
{
    TempFile file("zerocodec.lbat");
    std::string h = v2Header(0, 0, "");
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kMalformed);
}

TEST(TraceFile, RejectsOversizedCodecNameLength)
{
    TempFile file("longcodec.lbat");
    std::string h = v2Header(0, 0, "x");
    h[28] = static_cast<char>(200); // length byte > kMaxCodecNameBytes
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kMalformed);
}

TEST(TraceFile, RejectsTruncatedCodecName)
{
    TempFile file("cutcodec.lbat");
    std::string h = v2Header(0, 0, "predictor");
    writeFileBytes(file.path(), h.substr(0, 31)); // mid-name cut
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kTruncated);
}

TEST(TraceFile, RejectsNonPrintableCodecName)
{
    TempFile file("bincodec.lbat");
    std::string h = v2Header(0, 0, std::string("pre\x01ictor", 9));
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kMalformed);
}

TEST(TraceFile, RejectsUnknownCodecName)
{
    TempFile file("unkcodec.lbat");
    writeFileBytes(file.path(), v2Header(0, 0, "mystery"));
    DecodeError error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kUnsupported);
}

TEST(TraceFile, RejectsPayloadLengthPastEndOfFile)
{
    // Header promises 2^40 payload bytes; the file holds four. The
    // reader must refuse before allocating anything of that order.
    TempFile file("bigpayload.lbat");
    std::string h = v2Header(1, 1ull << 40, "predictor");
    h += "ABCD";
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kTruncated);
}

TEST(TraceFile, RejectsTrailingBytesAfterPayload)
{
    TempFile file("trailing.lbat");
    auto trace = sampleTrace(10);
    ASSERT_TRUE(writeTrace(file.path(), trace));
    writeFileBytes(file.path(), readFileBytes(file.path()) + "junk");
    DecodeError error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kMalformed);
}

TEST(TraceFile, RejectsAllocationBombRecordCount)
{
    // A tiny payload claiming ~2^60 records: the count guard must
    // trip; reserve() must never see the huge number.
    TempFile file("bomb.lbat");
    std::string h = v2Header(1ull << 60, 4, "predictor");
    h += std::string(4, '\0');
    writeFileBytes(file.path(), h);
    DecodeError error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kLimitExceeded);
}

TEST(TraceFile, RejectsRecordCountPastPayloadContents)
{
    // Valid payload of 10 records, header claims 11: typed truncation.
    TempFile file("overcount.lbat");
    auto trace = sampleTrace(10);
    ASSERT_TRUE(writeTrace(file.path(), trace));
    std::string bytes = readFileBytes(file.path());
    bytes[12] = 11;
    writeFileBytes(file.path(), bytes);
    DecodeError error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_EQ(error.kind, DecodeErrorKind::kTruncated);
}

TEST(TraceFile, GarbagePayloadYieldsTypedError)
{
    // 64 bytes of adversarial non-record payload under each codec.
    for (const std::string& name : CodecRegistry::instance().names()) {
        TempFile file("garbage.lbat");
        std::string payload;
        for (int i = 0; i < 64; ++i) {
            payload.push_back(static_cast<char>(0xff - i * 7));
        }
        std::string h = v2Header(40, payload.size(), name);
        writeFileBytes(file.path(), h + payload);
        DecodeError error;
        EXPECT_FALSE(readTrace(file.path(), &error).has_value())
            << name;
        EXPECT_NE(error.kind, DecodeErrorKind::kNone) << name;
    }
}

TEST(TraceFile, BenchmarkTraceRoundTrips)
{
    TempFile file("bench.lbat");
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 30000);
    std::vector<log::EventRecord> trace;
    log::CaptureUnit capture(
        [&](const log::EventRecord& r) { trace.push_back(r); });
    sim::Process process;
    process.load(generated.program);
    process.run(&capture);

    ASSERT_TRUE(writeTrace(file.path(), trace));
    auto info = readTraceInfo(file.path());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->records, trace.size());

    auto loaded = readTrace(file.path());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, trace);
}

} // namespace
} // namespace lba::compress
