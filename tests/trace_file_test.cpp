/**
 * @file
 * Trace file I/O tests: round trips through disk, header inspection,
 * and error handling for malformed files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "compress/trace_file.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::compress {
namespace {

/** Temp file path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const char* name)
        : path_(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::vector<log::EventRecord>
sampleTrace(std::size_t n)
{
    std::vector<log::EventRecord> trace;
    for (std::size_t i = 0; i < n; ++i) {
        log::EventRecord r;
        r.pc = 0x10000 + (i % 16) * 8;
        r.type = log::EventType::kLoad;
        r.opcode = static_cast<std::uint8_t>(isa::Opcode::kLd);
        r.rd = 1;
        r.rs1 = 2;
        r.addr = 0x20000 + i * 8;
        r.aux = 8;
        trace.push_back(r);
    }
    return trace;
}

TEST(TraceFile, RoundTripThroughDisk)
{
    TempFile file("roundtrip.lbat");
    auto trace = sampleTrace(500);
    std::string error;
    ASSERT_TRUE(writeTrace(file.path(), trace, &error)) << error;

    auto loaded = readTrace(file.path(), &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ASSERT_EQ(loaded->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ((*loaded)[i], trace[i]) << i;
    }
}

TEST(TraceFile, InfoReportsSizes)
{
    TempFile file("info.lbat");
    auto trace = sampleTrace(1000);
    ASSERT_TRUE(writeTrace(file.path(), trace, nullptr));
    auto info = readTraceInfo(file.path());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->records, 1000u);
    EXPECT_GT(info->payload_bytes, 0u);
    EXPECT_LT(info->bytesPerRecord(), 2.0);
}

TEST(TraceFile, EmptyTraceIsValid)
{
    TempFile file("empty.lbat");
    ASSERT_TRUE(writeTrace(file.path(), {}, nullptr));
    auto loaded = readTrace(file.path());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->empty());
}

TEST(TraceFile, MissingFileFails)
{
    std::string error;
    EXPECT_FALSE(readTrace("/nonexistent/nowhere.lbat", &error)
                     .has_value());
    EXPECT_FALSE(error.empty());
}

TEST(TraceFile, RejectsBadMagic)
{
    TempFile file("bad.lbat");
    std::ofstream out(file.path(), std::ios::binary);
    out << "NOTATRACEFILE___________________";
    out.close();
    std::string error;
    EXPECT_FALSE(readTraceInfo(file.path(), &error).has_value());
    EXPECT_NE(error.find("not an LBA trace"), std::string::npos);
}

TEST(TraceFile, RejectsTruncatedHeader)
{
    TempFile file("short.lbat");
    std::ofstream out(file.path(), std::ios::binary);
    out << "LBAT";
    out.close();
    EXPECT_FALSE(readTraceInfo(file.path()).has_value());
}

TEST(TraceFile, RejectsTruncatedPayload)
{
    TempFile file("trunc.lbat");
    auto trace = sampleTrace(200);
    ASSERT_TRUE(writeTrace(file.path(), trace, nullptr));
    // Chop the payload in half.
    std::ifstream in(file.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(28 + (bytes.size() - 28) / 2));
    out.close();
    std::string error;
    EXPECT_FALSE(readTrace(file.path(), &error).has_value());
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(TraceFile, BenchmarkTraceRoundTrips)
{
    TempFile file("bench.lbat");
    auto generated =
        workload::generate(*workload::findProfile("bc"), {}, 30000);
    std::vector<log::EventRecord> trace;
    log::CaptureUnit capture(
        [&](const log::EventRecord& r) { trace.push_back(r); });
    sim::Process process;
    process.load(generated.program);
    process.run(&capture);

    ASSERT_TRUE(writeTrace(file.path(), trace, nullptr));
    auto info = readTraceInfo(file.path());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->records, trace.size());

    auto loaded = readTrace(file.path());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, trace);
}

} // namespace
} // namespace lba::compress
