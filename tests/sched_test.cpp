/**
 * @file
 * Multi-tenant lifeguard pool tests.
 *
 * The central proof obligation: ONE tenant scheduled on an M-lane pool
 * is cycle-identical to ParallelLbaSystem with M shards, for every
 * policy — the pool is the same PipelineTimer recurrence, so every stat
 * must match exactly (extending the shards=1 serial/parallel
 * equivalence from tests/core_test.cpp one level up).
 *
 * The behavioural tests cover admission control (queue and reject),
 * lane sharing across tenants, the lag policy's stealing, and
 * determinism of the sliced driver.
 */

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "sched/pool.h"
#include "sched/scheduler.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::sched {
namespace {

core::LifeguardFactory
addrcheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

workload::GeneratedProgram
makeProgram(const char* profile, std::uint64_t instrs,
            bool with_bugs = false)
{
    workload::BugInjection bugs;
    if (with_bugs) {
        bugs.use_after_free = true;
        bugs.leak = true;
    }
    return workload::generate(*workload::findProfile(profile), bugs,
                              instrs);
}

/**
 * One tenant on an M-lane pool under @p policy must be cycle-identical
 * to ParallelLbaSystem with M shards.
 */
void
expectSingleTenantMatchesParallel(const workload::GeneratedProgram& gen,
                                  unsigned lanes, Policy policy,
                                  const core::LbaConfig& lba)
{
    core::ExperimentConfig exp_config;
    exp_config.lba = lba;
    core::Experiment exp(gen.program, exp_config);
    auto par = exp.runParallelLba(
        addrcheck(), core::ParallelLbaConfig(lba, lanes));

    PoolConfig pool_config;
    pool_config.lba = lba;
    pool_config.lanes = lanes;
    pool_config.policy = policy;
    LifeguardPool pool(pool_config, addrcheck());
    pool.addTenant({"solo", gen.program, {}, 0.0});
    PoolResult result = pool.run();

    ASSERT_EQ(result.tenants.size(), 1u);
    const TenantStats& tenant = result.tenants[0];
    EXPECT_TRUE(tenant.admitted);
    EXPECT_FALSE(tenant.was_queued);

    const core::ParallelLbaStats& ps = par.parallel;
    EXPECT_EQ(tenant.total_cycles, ps.total_cycles);
    EXPECT_EQ(result.total_cycles, ps.total_cycles);
    EXPECT_EQ(tenant.lba.app_cycles, ps.app_cycles);
    EXPECT_EQ(tenant.lba.app_instructions, ps.app_instructions);
    EXPECT_EQ(tenant.lba.records_logged, ps.records_logged);
    EXPECT_EQ(tenant.lba.records_filtered, ps.records_filtered);
    EXPECT_EQ(tenant.lba.backpressure_stall_cycles,
              ps.backpressure_stall_cycles);
    EXPECT_EQ(tenant.lba.syscall_stall_cycles, ps.syscall_stall_cycles);
    EXPECT_EQ(tenant.lba.syscall_drains, ps.syscall_drains);
    EXPECT_EQ(tenant.lba.lifeguard_busy_cycles,
              ps.lifeguard_busy_cycles);
    EXPECT_EQ(tenant.lba.transport_wait_cycles,
              ps.transport_wait_cycles);
    EXPECT_EQ(tenant.lba.transport_bytes, ps.transport_bytes);
    EXPECT_EQ(tenant.lba.bytes_per_record, ps.bytes_per_record);
    EXPECT_EQ(tenant.lba.mean_consume_lag, ps.mean_consume_lag);

    // Unmonitored baseline and slowdown must agree with the runner's.
    EXPECT_EQ(tenant.unmonitored_cycles, exp.unmonitored().cycles);
    EXPECT_DOUBLE_EQ(tenant.slowdown, par.slowdown);

    // Same findings in the same order (same dedupe over the same
    // per-shard lifeguard states).
    ASSERT_EQ(tenant.findings.size(), par.findings.size());
    for (std::size_t i = 0; i < tenant.findings.size(); ++i) {
        EXPECT_EQ(tenant.findings[i].kind, par.findings[i].kind);
        EXPECT_EQ(tenant.findings[i].addr, par.findings[i].addr);
        EXPECT_EQ(tenant.findings[i].pc, par.findings[i].pc);
    }
}

TEST(SchedDifferential, SingleTenantMatchesParallelStaticPolicy)
{
    auto gen = makeProgram("bc", 40000, /*with_bugs=*/true);
    core::LbaConfig lba;
    for (unsigned lanes : {1u, 2u, 4u}) {
        SCOPED_TRACE(lanes);
        expectSingleTenantMatchesParallel(gen, lanes, Policy::kStatic,
                                          lba);
    }
}

TEST(SchedDifferential, SingleTenantMatchesParallelRoundRobinPolicy)
{
    auto gen = makeProgram("mcf", 40000);
    core::LbaConfig lba;
    for (unsigned lanes : {1u, 2u, 4u}) {
        SCOPED_TRACE(lanes);
        expectSingleTenantMatchesParallel(gen, lanes,
                                          Policy::kRoundRobin, lba);
    }
}

TEST(SchedDifferential, SingleTenantMatchesParallelLagPolicyConstrained)
{
    // Tiny buffers + fractional bandwidth: back-pressure, transport
    // waits and containment drains all active, under the dynamic
    // policy (which must never rebalance a lone tenant).
    auto gen = makeProgram("gzip", 40000);
    core::LbaConfig lba;
    lba.buffer_capacity = 64;
    lba.transport_bytes_per_cycle = 0.75;
    for (unsigned lanes : {1u, 2u, 4u}) {
        SCOPED_TRACE(lanes);
        expectSingleTenantMatchesParallel(gen, lanes, Policy::kLagAware,
                                          lba);
    }
}

TEST(SchedPool, TwoTenantsShareLanesAndBothComplete)
{
    auto a = makeProgram("gzip", 30000);
    auto b = makeProgram("mcf", 30000);

    PoolConfig config;
    config.lanes = 2;
    config.policy = Policy::kRoundRobin;
    config.slice_instructions = 5000;
    LifeguardPool pool(config, addrcheck());
    pool.addTenant({"gzip", a.program, {}, 0.0});
    pool.addTenant({"mcf", b.program, {}, 0.0});
    PoolResult result = pool.run();

    ASSERT_EQ(result.tenants.size(), 2u);
    for (const TenantStats& tenant : result.tenants) {
        EXPECT_TRUE(tenant.admitted);
        EXPECT_GT(tenant.instructions, 0u);
        EXPECT_GT(tenant.total_cycles, 0u);
        EXPECT_GT(tenant.slowdown, 1.0);
        EXPECT_GT(tenant.lba.records_logged, 0u);
    }
    // Both lanes consumed records, and the pool's aggregate equals the
    // per-tenant sum.
    EXPECT_GT(result.lane_records[0], 0u);
    EXPECT_GT(result.lane_records[1], 0u);
    EXPECT_EQ(result.aggregate.records_logged,
              result.tenants[0].lba.records_logged +
                  result.tenants[1].lba.records_logged);
    EXPECT_EQ(result.aggregate.app_instructions,
              result.tenants[0].lba.app_instructions +
                  result.tenants[1].lba.app_instructions);
    // Make-span covers the slower tenant.
    EXPECT_EQ(result.total_cycles,
              std::max(result.tenants[0].total_cycles,
                       result.tenants[1].total_cycles));
}

TEST(SchedPool, SlicedDriverIsDeterministic)
{
    auto a = makeProgram("gzip", 20000);
    auto b = makeProgram("bc", 20000);

    auto once = [&] {
        PoolConfig config;
        config.lanes = 2;
        config.policy = Policy::kLagAware;
        config.slice_instructions = 3000;
        LifeguardPool pool(config, addrcheck());
        pool.addTenant({"gzip", a.program, {}, 0.0});
        pool.addTenant({"bc", b.program, {}, 0.0});
        return pool.run();
    };
    PoolResult first = once();
    PoolResult second = once();
    ASSERT_EQ(first.tenants.size(), second.tenants.size());
    for (std::size_t i = 0; i < first.tenants.size(); ++i) {
        EXPECT_EQ(first.tenants[i].total_cycles,
                  second.tenants[i].total_cycles);
        EXPECT_EQ(first.tenants[i].lba.records_logged,
                  second.tenants[i].lba.records_logged);
        EXPECT_EQ(first.tenants[i].lag_p95, second.tenants[i].lag_p95);
    }
    EXPECT_EQ(first.total_cycles, second.total_cycles);
    EXPECT_EQ(first.lane_steals, second.lane_steals);
}

TEST(SchedPool, AdmissionQueuesWhenDemandExceedsBandwidth)
{
    auto gen = makeProgram("gzip", 15000);

    PoolConfig config;
    config.lanes = 2;
    config.lba.transport_bytes_per_cycle = 2.0; // capacity 4 B/cycle
    config.admission = AdmissionMode::kQueue;
    config.slice_instructions = 4000;
    LifeguardPool pool(config, addrcheck());
    pool.addTenant({"a", gen.program, {}, 3.0});
    pool.addTenant({"b", gen.program, {}, 3.0}); // 6 > 4: must wait
    PoolResult result = pool.run();

    EXPECT_TRUE(result.tenants[0].admitted);
    EXPECT_FALSE(result.tenants[0].was_queued);
    EXPECT_TRUE(result.tenants[1].admitted);
    EXPECT_TRUE(result.tenants[1].was_queued);
    // The queued tenant still ran to completion after the first
    // finished.
    EXPECT_GT(result.tenants[1].instructions, 0u);
    EXPECT_EQ(result.capacity_bytes_per_cycle, 4.0);
}

TEST(SchedPool, AdmissionRejectsWhenConfigured)
{
    auto gen = makeProgram("gzip", 15000);

    PoolConfig config;
    config.lanes = 2;
    config.lba.transport_bytes_per_cycle = 2.0;
    config.admission = AdmissionMode::kReject;
    LifeguardPool pool(config, addrcheck());
    pool.addTenant({"a", gen.program, {}, 3.0});
    pool.addTenant({"b", gen.program, {}, 3.0});
    PoolResult result = pool.run();

    EXPECT_TRUE(result.tenants[0].admitted);
    EXPECT_TRUE(result.tenants[1].rejected);
    EXPECT_FALSE(result.tenants[1].admitted);
    EXPECT_EQ(result.tenants[1].instructions, 0u);
    EXPECT_EQ(result.tenants[1].total_cycles, 0u);
    // The admitted tenant is unaffected by the rejected one.
    EXPECT_GT(result.tenants[0].instructions, 0u);
}

TEST(SchedPool, LagPolicyStealsLanesUnderImbalance)
{
    // An allocation-heavy tenant (expensive AddrCheck handlers) against
    // a light one on a 4-lane pool: the static partition gives each 2
    // lanes; the lag policy should steal for the loaded tenant.
    auto heavy = makeProgram("bc", 60000);
    auto light = makeProgram("gzip", 20000);

    auto runWith = [&](Policy policy) {
        PoolConfig config;
        config.lanes = 4;
        config.policy = policy;
        config.slice_instructions = 2000;
        LifeguardPool pool(config, addrcheck());
        pool.addTenant({"heavy", heavy.program, {}, 0.0});
        pool.addTenant({"light", light.program, {}, 0.0});
        return pool.run();
    };

    PoolResult lag = runWith(Policy::kLagAware);
    // The policy observed the imbalance and reassigned at least one
    // lane (exact counts are workload-dependent but the mechanism must
    // fire on a 3x instruction-count imbalance with heavy handlers).
    EXPECT_GT(lag.lane_steals, 0u);
    EXPECT_EQ(lag.policy, "lag");
    for (const TenantStats& tenant : lag.tenants) {
        EXPECT_TRUE(tenant.admitted);
        EXPECT_GT(tenant.instructions, 0u);
    }
}

TEST(SchedPool, TenantStatsReportLagPercentiles)
{
    auto gen = makeProgram("mcf", 20000);
    PoolConfig config;
    config.lanes = 1;
    // Throttle the transport so consume lag is nonzero and spread.
    config.lba.transport_bytes_per_cycle = 0.5;
    LifeguardPool pool(config, addrcheck());
    pool.addTenant({"solo", gen.program, {}, 0.0});
    PoolResult result = pool.run();

    const TenantStats& tenant = result.tenants[0];
    EXPECT_GT(tenant.lag_p50, 0.0);
    EXPECT_LE(tenant.lag_p50, tenant.lag_p95);
    EXPECT_LE(tenant.lag_p95, tenant.lag_p99);
}

TEST(SchedScheduler, PoliciesGiveLoneTenantTheWholePool)
{
    for (Policy policy :
         {Policy::kStatic, Policy::kRoundRobin, Policy::kLagAware}) {
        auto scheduler = makeScheduler(policy, 4);
        scheduler->rebalance({0});
        for (unsigned shard = 0; shard < 4; ++shard) {
            EXPECT_EQ(scheduler->laneFor(0, shard), shard)
                << toString(policy);
        }
    }
}

TEST(SchedScheduler, StaticPartitionIsolatesTenants)
{
    StaticPartitionScheduler scheduler(4);
    scheduler.rebalance({0, 1});
    EXPECT_EQ(scheduler.laneSet(0), (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(scheduler.laneSet(1), (std::vector<unsigned>{2, 3}));
    // More tenants than lanes: shared singleton lanes.
    StaticPartitionScheduler tight(2);
    tight.rebalance({0, 1, 2});
    EXPECT_EQ(tight.laneSet(0).size(), 1u);
    EXPECT_EQ(tight.laneSet(2).size(), 1u);
}

TEST(SchedScheduler, RoundRobinRotatesPerTenant)
{
    RoundRobinScheduler scheduler(4);
    scheduler.rebalance({0, 1});
    // Tenant 1's shard 0 lands on lane 1, not lane 0: equally-hot
    // shards of co-resident tenants spread across lanes.
    EXPECT_EQ(scheduler.laneFor(0, 0), 0u);
    EXPECT_EQ(scheduler.laneFor(1, 0), 1u);
    EXPECT_EQ(scheduler.laneFor(1, 3), 0u);
}

TEST(SchedScheduler, LagAwareStealsFromSmallestBacklog)
{
    LagAwareScheduler scheduler(4);
    scheduler.rebalance({0, 1});
    // Tenant 0 lags 10x worse than tenant 1: steal one of 1's lanes.
    scheduler.onEpoch({0, 1}, {50.0, 5.0});
    EXPECT_EQ(scheduler.steals(), 1u);
    EXPECT_EQ(scheduler.laneSet(0).size(), 3u);
    EXPECT_EQ(scheduler.laneSet(1).size(), 1u);
    // Never the donor's last lane.
    scheduler.onEpoch({0, 1}, {50.0, 5.0});
    EXPECT_EQ(scheduler.steals(), 1u);
    EXPECT_EQ(scheduler.laneSet(1).size(), 1u);
}

TEST(SchedScheduler, PolicyNamesRoundTrip)
{
    Policy policy = Policy::kStatic;
    EXPECT_TRUE(parsePolicy("rr", &policy));
    EXPECT_EQ(policy, Policy::kRoundRobin);
    EXPECT_TRUE(parsePolicy("lag", &policy));
    EXPECT_EQ(policy, Policy::kLagAware);
    EXPECT_TRUE(parsePolicy("static", &policy));
    EXPECT_EQ(policy, Policy::kStatic);
    EXPECT_FALSE(parsePolicy("fifo", &policy));
}

} // namespace
} // namespace lba::sched
