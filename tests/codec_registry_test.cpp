/**
 * @file
 * Codec registry and streaming-codec contract tests: registry
 * contents and lookup, plus the roundtrip property every registered
 * codec owes the transport — byte-exact decode of whatever it
 * encoded, under adversarial chunking, on empty / single-record /
 * randomized / dictionary-wrapping streams — and typed (never
 * crashing) failure on truncated or garbage input. Codecs registered
 * in the future inherit every property test here automatically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "compress/record_gen.h"
#include "compress/registry.h"

namespace lba::compress {
namespace {

std::vector<const CodecInfo*>
allCodecs()
{
    std::vector<const CodecInfo*> infos;
    auto& registry = CodecRegistry::instance();
    for (const auto& name : registry.names())
        infos.push_back(registry.find(name));
    return infos;
}

/** Records shaped for @p info (canonical when the codec demands it). */
std::vector<log::EventRecord>
recordsFor(const CodecInfo* info, std::size_t count,
           std::uint64_t seed, bool arbitrary = true)
{
    RecordGen gen(seed);
    const bool canonical_only =
        (info->caps & kCapCanonicalStreamsOnly) != 0;
    std::vector<log::EventRecord> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!arbitrary || canonical_only) {
            records.push_back(canonical_only && arbitrary
                                  ? canonicalize(gen.nextArbitrary())
                                  : gen.next());
        } else {
            records.push_back(gen.nextArbitrary());
        }
    }
    return records;
}

/** Encode with interleaved small pulls; return the full payload. */
std::vector<std::uint8_t>
encodeChunked(const CodecInfo* info,
              const std::vector<log::EventRecord>& records,
              std::size_t pull_bytes)
{
    auto encoder = info->makeEncoder();
    std::vector<std::uint8_t> payload;
    std::uint8_t sink[256];
    std::uint64_t bits_before = 0;
    for (const auto& record : records) {
        encoder->append(record);
        EXPECT_GT(encoder->bitsWritten(), bits_before) << info->name;
        bits_before = encoder->bitsWritten();
        while (std::size_t n = encoder->pull(
                   sink, std::min(pull_bytes, sizeof sink)))
            payload.insert(payload.end(), sink, sink + n);
    }
    encoder->finishStream();
    while (std::size_t n =
               encoder->pull(sink, std::min(pull_bytes, sizeof sink)))
        payload.insert(payload.end(), sink, sink + n);
    EXPECT_EQ(encoder->records(), records.size()) << info->name;
    EXPECT_EQ(encoder->pullableBytes(), 0u) << info->name;
    EXPECT_EQ(payload.size(), (encoder->bitsWritten() + 7) / 8)
        << info->name;
    return payload;
}

/** Decode with @p chunk-byte pushes; expects a clean kEnd. */
std::vector<log::EventRecord>
decodeChunked(const CodecInfo* info,
              const std::vector<std::uint8_t>& payload,
              std::size_t chunk)
{
    auto decoder = info->makeDecoder();
    std::vector<log::EventRecord> records;
    log::EventRecord record;
    std::size_t pos = 0;
    while (true) {
        DecodeStatus status = decoder->next(&record);
        if (status == DecodeStatus::kOk) {
            records.push_back(record);
            continue;
        }
        if (status == DecodeStatus::kNeedMore) {
            if (pos < payload.size()) {
                std::size_t n = std::min(chunk, payload.size() - pos);
                decoder->push(payload.data() + pos, n);
                pos += n;
            } else {
                decoder->finishInput();
            }
            continue;
        }
        EXPECT_EQ(status, DecodeStatus::kEnd)
            << info->name << ": " << decoder->error().toString();
        break;
    }
    EXPECT_EQ(decoder->records(), records.size()) << info->name;
    return records;
}

TEST(CodecRegistry, RegistersTheExpectedCodecs)
{
    auto& registry = CodecRegistry::instance();
    auto names = registry.names();
    ASSERT_GE(names.size(), 3u);
    EXPECT_NE(std::find(names.begin(), names.end(), "predictor"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "varint"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "dict"),
              names.end());
}

TEST(CodecRegistry, DefaultCodecIsRegisteredAndPredictive)
{
    const CodecInfo* info =
        CodecRegistry::instance().find(kDefaultCodec);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->name, "predictor");
    EXPECT_TRUE(info->caps & kCapPredictive);
    EXPECT_TRUE(info->caps & kCapBitPacked);
    EXPECT_TRUE(info->caps & kCapCanonicalStreamsOnly);
}

TEST(CodecRegistry, CapabilityFlagsMatchCodecShape)
{
    auto& registry = CodecRegistry::instance();
    EXPECT_TRUE(registry.find("varint")->caps & kCapByteAligned);
    EXPECT_TRUE(registry.find("dict")->caps & kCapByteAligned);
    EXPECT_TRUE(registry.find("dict")->caps & kCapDictionary);
    for (const CodecInfo* info : allCodecs()) {
        EXPECT_FALSE(info->description.empty()) << info->name;
        EXPECT_LE(info->name.size(), kMaxCodecNameBytes);
    }
}

TEST(CodecRegistry, UnknownCodecLookupReturnsNull)
{
    EXPECT_EQ(CodecRegistry::instance().find("zstd"), nullptr);
    EXPECT_EQ(CodecRegistry::instance().find(""), nullptr);
}

TEST(CodecRegistry, FactoriesProduceFreshInstances)
{
    for (const CodecInfo* info : allCodecs()) {
        auto a = info->makeEncoder();
        auto b = info->makeEncoder();
        RecordGen gen(1);
        a->append(canonicalize(gen.next()));
        EXPECT_EQ(b->records(), 0u) << info->name;
        EXPECT_EQ(b->bitsWritten(), 0u) << info->name;
    }
}

TEST(CodecProperty, EmptyStreamRoundTrips)
{
    for (const CodecInfo* info : allCodecs()) {
        auto payload = encodeChunked(info, {}, 256);
        EXPECT_TRUE(decodeChunked(info, payload, 1).empty())
            << info->name;
    }
}

TEST(CodecProperty, SingleRecordRoundTrips)
{
    for (const CodecInfo* info : allCodecs()) {
        auto records = recordsFor(info, 1, 0x5eed);
        auto payload = encodeChunked(info, records, 256);
        EXPECT_EQ(decodeChunked(info, payload, 1), records)
            << info->name;
    }
}

TEST(CodecProperty, RandomizedStreamsRoundTripByteExact)
{
    for (const CodecInfo* info : allCodecs()) {
        for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
            auto records = recordsFor(info, 500, seed);
            auto payload = encodeChunked(info, records, 7);
            EXPECT_EQ(decodeChunked(info, payload, 3), records)
                << info->name << " seed " << seed;
        }
    }
}

TEST(CodecProperty, WorkloadShapedStreamsRoundTrip)
{
    // Capture-shaped records (what the pipeline actually produces) —
    // valid input for every codec including the predictor.
    for (const CodecInfo* info : allCodecs()) {
        auto records =
            recordsFor(info, 2000, 0xcafe, /*arbitrary=*/false);
        auto payload = encodeChunked(info, records, 64);
        EXPECT_EQ(decodeChunked(info, payload, 16), records)
            << info->name;
    }
}

TEST(CodecProperty, DictionaryWrapLengthStreamsRoundTrip)
{
    // More distinct keys than the dict codec has slots (4096), so its
    // FIFO wraps and evicts mid-stream; harmless extra coverage for
    // the others. Random 64-bit pcs make keys distinct with
    // overwhelming probability.
    for (const CodecInfo* info : allCodecs()) {
        auto records = recordsFor(info, 6000, 0xd1c7);
        auto payload = encodeChunked(info, records, 512);
        EXPECT_EQ(decodeChunked(info, payload, 64), records)
            << info->name;
    }
}

TEST(CodecProperty, OneBytePushesMatchBulkPush)
{
    for (const CodecInfo* info : allCodecs()) {
        auto records = recordsFor(info, 64, 0xab);
        auto payload = encodeChunked(info, records, 1);
        EXPECT_EQ(decodeChunked(info, payload, 1), records)
            << info->name;
        EXPECT_EQ(decodeChunked(info, payload, payload.size() + 1),
                  records)
            << info->name;
    }
}

TEST(CodecProperty, TruncatedStreamsFailTyped)
{
    for (const CodecInfo* info : allCodecs()) {
        auto records = recordsFor(info, 100, 0x720);
        auto payload = encodeChunked(info, records, 256);
        // Cut at several depths; every cut must end in a typed error
        // or a clean early end — never a crash or a hang.
        for (std::size_t cut :
             {payload.size() / 4, payload.size() / 2,
              payload.size() - 1}) {
            auto decoder = info->makeDecoder();
            decoder->push(payload.data(), cut);
            decoder->finishInput();
            log::EventRecord record;
            std::size_t decoded = 0;
            DecodeStatus status;
            while ((status = decoder->next(&record)) ==
                   DecodeStatus::kOk)
                ++decoded;
            EXPECT_NE(status, DecodeStatus::kNeedMore) << info->name;
            EXPECT_LE(decoded, records.size()) << info->name;
            if (status == DecodeStatus::kError) {
                EXPECT_NE(decoder->error().kind,
                          DecodeErrorKind::kNone)
                    << info->name;
                // And the error sticks.
                EXPECT_EQ(decoder->next(&record),
                          DecodeStatus::kError)
                    << info->name;
            }
        }
    }
}

TEST(CodecProperty, GarbageInputFailsTypedNotFatally)
{
    for (const CodecInfo* info : allCodecs()) {
        RecordGen noise(0xbad);
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<std::uint8_t> garbage(
                64 + (noise.nextU64() % 256));
            for (auto& b : garbage)
                b = static_cast<std::uint8_t>(noise.nextU64());
            auto decoder = info->makeDecoder();
            decoder->push(garbage.data(), garbage.size());
            decoder->finishInput();
            log::EventRecord record;
            DecodeStatus status;
            std::size_t guard = 0;
            while ((status = decoder->next(&record)) ==
                       DecodeStatus::kOk &&
                   ++guard < garbage.size() * 8) {
            }
            EXPECT_TRUE(status == DecodeStatus::kEnd ||
                        status == DecodeStatus::kError)
                << info->name;
        }
    }
}

} // namespace
} // namespace lba::compress
