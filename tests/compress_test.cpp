/**
 * @file
 * Tests for the value-prediction log compressor: bitstream primitives,
 * predictor behaviour, exact round-trips on synthetic and benchmark
 * traces, and the paper's < 1 byte/instruction target.
 */

#include <gtest/gtest.h>

#include "compress/bitstream.h"
#include "compress/compressor.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::compress {
namespace {

using log::EventRecord;
using log::EventType;

TEST(BitStream, SingleBitsRoundTrip)
{
    BitWriter w;
    w.writeBit(true);
    w.writeBit(false);
    w.writeBit(true);
    BitReader r(w.bytes());
    EXPECT_TRUE(r.readBit());
    EXPECT_FALSE(r.readBit());
    EXPECT_TRUE(r.readBit());
}

TEST(BitStream, MultiBitFieldsRoundTrip)
{
    BitWriter w;
    w.writeBits(0x2b, 6);
    w.writeBits(0x12345, 20);
    w.writeBits(~0ull, 64);
    BitReader r(w.bytes());
    EXPECT_EQ(r.readBits(6), 0x2bu);
    EXPECT_EQ(r.readBits(20), 0x12345u);
    EXPECT_EQ(r.readBits(64), ~0ull);
}

TEST(BitStream, VarintRoundTrip)
{
    BitWriter w;
    std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                         ~0ull, 0x123456789abcdefull};
    for (auto v : values) w.writeVarint(v);
    BitReader r(w.bytes());
    for (auto v : values) EXPECT_EQ(r.readVarint(), v);
}

TEST(BitStream, BitCountIsExact)
{
    BitWriter w;
    EXPECT_EQ(w.bitCount(), 0u);
    w.writeBits(0, 3);
    EXPECT_EQ(w.bitCount(), 3u);
    w.writeBits(0, 8);
    EXPECT_EQ(w.bitCount(), 11u);
}

TEST(ZigZag, RoundTripsSignedValues)
{
    for (std::int64_t v :
         {0ll, 1ll, -1ll, 63ll, -64ll, 1ll << 40, -(1ll << 40)}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes.
    EXPECT_LT(zigzagEncode(-1), 3u);
    EXPECT_LT(zigzagEncode(1), 3u);
}

TEST(PcPredictor, SequentialAndContextHits)
{
    PcPredictor p;
    EXPECT_EQ(p.predict(0, 0x1000), PcPredictor::Source::kMiss);
    p.update(0, 0x1000);
    EXPECT_EQ(p.predict(0, 0x1008), PcPredictor::Source::kSequential);
    p.update(0, 0x1008);
    // Taken branch 0x1008 -> 0x2000: first time a miss...
    EXPECT_EQ(p.predict(0, 0x2000), PcPredictor::Source::kMiss);
    p.update(0, 0x2000);
    p.update(0, 0x1008); // revisit the branch
    // ...then a context hit.
    EXPECT_EQ(p.predict(0, 0x2000), PcPredictor::Source::kContext);
}

TEST(PcPredictor, PerThreadContexts)
{
    PcPredictor p;
    p.update(0, 0x1000);
    p.update(1, 0x5000);
    EXPECT_EQ(p.predict(0, 0x1008), PcPredictor::Source::kSequential);
    EXPECT_EQ(p.predict(1, 0x5008), PcPredictor::Source::kSequential);
}

TEST(StridePredictor, DetectsStride)
{
    StridePredictor p;
    EXPECT_EQ(p.predict(0x100, 0x2000), StridePredictor::Source::kMiss);
    p.update(0x100, 0x2000);
    p.update(0x100, 0x2008);
    EXPECT_EQ(p.predict(0x100, 0x2010), StridePredictor::Source::kStride);
    EXPECT_EQ(p.predict(0x100, 0x2008), StridePredictor::Source::kLast);
}

TEST(StaticPredictor, HitsAfterFirstVisit)
{
    StaticPredictor p;
    EXPECT_EQ(p.predict(0x1000), nullptr);
    p.update(0x1000, {5, 1, 2, 3});
    const StaticInfo* info = p.predict(0x1000);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->opcode, 5u);
}

/** Build a record for a load instruction. */
EventRecord
loadRecord(Addr pc, Addr addr, ThreadId tid = 0)
{
    EventRecord r;
    r.pc = pc;
    r.tid = tid;
    r.type = EventType::kLoad;
    r.opcode = static_cast<std::uint8_t>(isa::Opcode::kLd);
    r.rd = 1;
    r.rs1 = 2;
    r.addr = addr;
    r.aux = 8;
    return r;
}

TEST(Compressor, RoundTripHandMadeTrace)
{
    std::vector<EventRecord> trace;
    for (int i = 0; i < 100; ++i) {
        trace.push_back(loadRecord(0x1000 + (i % 10) * 8,
                                   0x20000 + i * 16));
    }
    EventRecord alloc;
    alloc.type = EventType::kAlloc;
    alloc.addr = 0x10000000;
    alloc.aux = 64;
    trace.push_back(alloc);

    LogCompressor c;
    for (const auto& r : trace) c.append(r);
    LogDecompressor d(c.bytes());
    for (const auto& r : trace) {
        EXPECT_EQ(d.next(), r);
    }
}

TEST(Compressor, SteadyStateLoopIsSubByte)
{
    // A tight loop with strided accesses: the ideal case. After warmup,
    // records should cost only a few bits each.
    LogCompressor c;
    for (int iter = 0; iter < 1000; ++iter) {
        for (int k = 0; k < 4; ++k) {
            c.append(loadRecord(0x1000 + k * 8,
                                0x20000 + iter * 32 + k * 8));
        }
    }
    EXPECT_LT(c.bytesPerRecord(), 0.7);
}

TEST(Compressor, RandomRecordsStillRoundTrip)
{
    // Adversarial: nothing predicts. Round-trip must still be exact.
    std::uint64_t state = 0xfeed;
    auto rnd = [&]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    std::vector<EventRecord> trace;
    for (int i = 0; i < 500; ++i) {
        EventRecord r;
        if (rnd() % 4 == 0) {
            r.type = static_cast<EventType>(
                static_cast<unsigned>(EventType::kAlloc) + rnd() % 8);
            r.addr = rnd();
            r.aux = rnd();
            r.tid = static_cast<ThreadId>(rnd() % 4);
        } else {
            r = loadRecord((rnd() % 4096) * 8, rnd(),
                           static_cast<ThreadId>(rnd() % 4));
            if (rnd() % 2) {
                r.type = EventType::kStore;
                r.opcode =
                    static_cast<std::uint8_t>(isa::Opcode::kSd);
            }
        }
        trace.push_back(r);
    }
    LogCompressor c;
    for (const auto& r : trace) c.append(r);
    LogDecompressor d(c.bytes());
    for (const auto& r : trace) {
        EXPECT_EQ(d.next(), r);
    }
}

TEST(Compressor, ControlTransferRecordsRoundTrip)
{
    std::vector<EventRecord> trace;
    for (int i = 0; i < 50; ++i) {
        EventRecord br;
        br.pc = 0x1100;
        br.type = EventType::kBranch;
        br.opcode = static_cast<std::uint8_t>(isa::Opcode::kBne);
        br.rs1 = 1;
        br.rs2 = 2;
        if (i % 3 != 0) { // taken 2/3 of the time
            br.addr = 0x1000;
            br.aux = 1;
        }
        trace.push_back(br);
        EventRecord ret;
        ret.pc = 0x1200;
        ret.type = EventType::kReturn;
        ret.opcode = static_cast<std::uint8_t>(isa::Opcode::kRet);
        ret.addr = 0x3000 + (i % 4) * 0x100; // varying return sites
        ret.aux = 1;
        trace.push_back(ret);
    }
    LogCompressor c;
    for (const auto& r : trace) c.append(r);
    LogDecompressor d(c.bytes());
    for (const auto& r : trace) {
        EXPECT_EQ(d.next(), r);
    }
}

/**
 * The headline compression claim (paper Section 2): less than one byte
 * per instruction on every benchmark trace.
 */
class BenchmarkCompression
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkCompression, UnderOneBytePerRecordAndExact)
{
    const workload::Profile* profile =
        workload::findProfile(GetParam());
    ASSERT_NE(profile, nullptr);
    // Compression is steady-state behaviour: predictor warmup must be
    // amortized, so this test uses the default benchmark scale (the
    // paper's claim is for full ~209M-instruction runs).
    auto generated = workload::generate(*profile, {}, 250000);

    std::vector<EventRecord> trace;
    log::CaptureUnit capture(
        [&](const EventRecord& r) { trace.push_back(r); });
    sim::Process p;
    p.load(generated.program);
    p.run(&capture);
    ASSERT_GT(trace.size(), 100000u);

    LogCompressor c;
    for (const auto& r : trace) c.append(r);
    EXPECT_LT(c.bytesPerRecord(), 1.0)
        << GetParam() << ": " << c.bytesPerRecord() << " B/record";

    LogDecompressor d(c.bytes());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(d.next(), trace[i]) << "record " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkCompression,
    ::testing::Values("bc", "gnuplot", "gs", "gzip", "mcf", "tidy",
                      "w3m", "water", "zchaff"));

TEST(Compressor, FieldBitsSumToTotal)
{
    LogCompressor c;
    for (int i = 0; i < 200; ++i) {
        c.append(loadRecord(0x1000 + (i % 7) * 8, 0x40000 + i * 8));
    }
    const FieldBits& f = c.fieldBits();
    EXPECT_EQ(f.kind + f.tid + f.pc + f.stat + f.addr + f.ctrl +
                  f.annotation,
              c.bits());
}

} // namespace
} // namespace lba::compress
