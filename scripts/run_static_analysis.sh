#!/usr/bin/env bash
# The static concurrency-analysis gate, runnable locally and in CI
# (the static-analysis job). Three layers, strongest first:
#
#   1. clang build of src/ with Thread Safety Analysis as errors
#      (-Wthread-safety -Wthread-safety-beta; see
#      common/thread_annotations.h). Configuring with clang also runs
#      the negative-compile harness (tests/static_analysis/), which
#      FATAL_ERRORs if the gate stopped rejecting any violation class.
#   2. tools/lba_lint.py over the compilation database: explicit
#      memory_order on every atomic op, no raw std::thread outside the
#      executor, annotation/assert parity for PipelineTimer.
#   3. clang-tidy (curated .clang-tidy; concurrency-* as errors) over
#      every src/ translation unit — skipped with a notice when
#      clang-tidy is not installed, hard-required in CI.
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#   CXX_CLANG=clang++-18  override the clang to use
#   LBA_REQUIRE_TIDY=1    fail (rather than skip) without clang-tidy
#
# All three layers are gates: any failure fails the script.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build-static-analysis"}"
clangxx="${CXX_CLANG:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
    echo "error: $clangxx not found; install clang or set CXX_CLANG" >&2
    exit 1
fi

echo "== [1/3] clang TSA build of src/ ($clangxx) =="
cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="$clangxx" \
    -DLBA_BUILD_BENCH=OFF -DLBA_BUILD_EXAMPLES=OFF \
    -DLBA_FETCH_BENCHMARK=OFF
cmake --build "$build" -j --target lba

echo "== [2/3] tools/lba_lint.py =="
python3 "$repo/tools/lba_lint.py" -p "$build" --repo "$repo"

echo "== [3/3] clang-tidy =="
tidy=""
for candidate in "${CLANG_TIDY:-}" clang-tidy; do
    if [ -n "$candidate" ] && command -v "$candidate" >/dev/null 2>&1; then
        tidy="$candidate"
        break
    fi
done
if [ -z "$tidy" ]; then
    if [ "${LBA_REQUIRE_TIDY:-0}" = "1" ]; then
        echo "error: clang-tidy not found (LBA_REQUIRE_TIDY=1)" >&2
        exit 1
    fi
    echo "clang-tidy not found; skipping layer 3 (CI runs it)"
    exit 0
fi
# Only src/ TUs: the gate is about the runtime, and the database also
# contains test/bench entries when configured with defaults.
mapfile -t tus < <(python3 - "$build/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    if "/src/" in entry["file"]:
        print(entry["file"])
EOF
)
"$tidy" -p "$build" --quiet "${tus[@]}"

echo "static analysis: all gates passed"
