#!/usr/bin/env sh
# Run the full paper-reproduction benchmark suite and save each bench's
# output under <build-dir>/bench-results/.
#
# Usage: scripts/run_all_benches.sh [build-dir]
# Scale with LBA_BENCH_INSTRS (dynamic instructions per benchmark;
# default 250k — see docs/BENCHMARKS.md). With LBA_BENCH_SMOKE=1 a
# missed claim check is reported but does not fail the run (small
# instruction budgets legitimately miss paper targets before
# predictors and caches warm up) — CI uses this to keep the
# BENCH_results.json trajectory accumulating on every push.
# LBA_BENCH_CLAIMS_FATAL=1 overrides that forgiveness: a missed claim
# fails the run even in smoke mode — for claims that hold at any
# instruction budget (host-side speedup ratios like micro_dispatch's
# dispatch-tier rows, which compare code paths on the same input).
set -eu

build_dir="${1:-build}"
if [ ! -d "$build_dir" ]; then
    echo "error: build dir '$build_dir' not found (run cmake first)" >&2
    exit 1
fi

out_dir="$build_dir/bench-results"
mkdir -p "$out_dir"
# Drop stale machine-readable results so BENCH_results.json only ever
# reflects this run (a bench removed or skipped since the last run
# must not leak its old numbers into the merge below).
rm -f "$out_dir"/*.json

# Discover the suite from bench/*.cc so a new bench is picked up
# automatically; bench_common is the shared library, micro_compressor
# is google-benchmark based and handled separately below.
script_dir="$(dirname "$0")"
benches=""
for src in "$script_dir/../bench/"*.cc; do
    name="$(basename "$src" .cc)"
    case "$name" in
    bench_common | micro_compressor) ;;
    *) benches="$benches $name" ;;
    esac
done

# Claim-checking benches (e.g. compression_ratio) exit non-zero when a
# paper target is missed — record that and keep going rather than
# aborting the suite. Targets can be missed at very small
# LBA_BENCH_INSTRS budgets before predictors/caches warm up.
failed=""
crashed=""
for bench in $benches; do
    if [ ! -x "$build_dir/$bench" ]; then
        echo "skip  $bench (not built)"
        continue
    fi
    echo "run   $bench"
    # --json is ignored by benches without machine-readable output.
    status=0
    "$build_dir/$bench" --json "$out_dir/$bench.json" \
        >"$out_dir/$bench.txt" || status=$?
    if [ "$status" -ge 126 ]; then
        # Signal death / exec failure, not a claim-check miss: never
        # forgiven, and the possibly-truncated JSON must not poison
        # the merge below.
        echo "CRASH $bench (exit $status; see $out_dir/$bench.txt)"
        rm -f "$out_dir/$bench.json"
        crashed="$crashed $bench"
    elif [ "$status" -ne 0 ]; then
        echo "FAIL  $bench (claim check missed; see $out_dir/$bench.txt)"
        failed="$failed $bench"
    fi
done

# google-benchmark based; present only when the library was found.
# Same crash classification as the discovered benches: a signal death
# must not abort the script (set -e) before the merge below.
if [ -x "$build_dir/micro_compressor" ]; then
    echo "run   micro_compressor"
    status=0
    "$build_dir/micro_compressor" \
        --benchmark_out="$out_dir/micro_compressor.json" \
        --benchmark_out_format=json \
        >"$out_dir/micro_compressor.txt" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "CRASH micro_compressor (exit $status)"
        rm -f "$out_dir/micro_compressor.json"
        crashed="$crashed micro_compressor"
    fi
fi

# Collect every machine-readable result into one document so the perf
# trajectory can be tracked commit over commit.
results="$build_dir/BENCH_results.json"
{
    printf '{"suite":"lba","results":['
    first=1
    for f in "$out_dir"/*.json; do
        [ -e "$f" ] || continue
        [ "$first" -eq 1 ] || printf ','
        first=0
        cat "$f"
    done
    printf ']}\n'
} >"$results"
echo "combined JSON in $results"

echo "results in $out_dir/"
if [ -n "$crashed" ]; then
    echo "benches crashed:$crashed" >&2
    exit 1
fi
if [ -n "$failed" ]; then
    echo "claim checks missed:$failed" >&2
    if [ "${LBA_BENCH_CLAIMS_FATAL:-}" = 1 ]; then
        echo "claims-fatal mode: failing the run" >&2
        exit 1
    fi
    if [ "${LBA_BENCH_SMOKE:-}" = 1 ]; then
        echo "smoke mode: not failing the run" >&2
        exit 0
    fi
    exit 1
fi
