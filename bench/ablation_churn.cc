/**
 * @file
 * Ablation ABL-CHURN: tenant arrival and departure in the shared
 * lifeguard pool (src/sched/). A deployed LBA chip does not get its
 * tenant population at boot: applications attach and detach while the
 * pool is running. This ablation sweeps lanes x policy over a fixed
 * churn schedule — two tenants present from the start, two arriving at
 * later driver rounds, one detaching partway through its run — and
 * reports make-span, per-tenant slowdown spread, tail consume lag and
 * lane steals, so the cost of rebalancing around churn is visible next
 * to ablation_sched's static-population numbers.
 *
 * The schedule is expressed entirely through TenantConfig
 * (arrival_round / detach_after_instructions), so every configuration
 * is deterministic: the same table on every run
 * (tests/churn_test.cpp asserts the underlying determinism).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "sched/pool.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("ablation_churn",
                             bench::jsonOutPath(argc, argv));
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: tenant arrival/departure churn "
                "(shared BoundsCheck pool, req_serve tenants)\n\n");
    stats::Table table({"lanes", "policy", "makespan", "mean slowdown",
                        "worst slowdown", "p95 lag", "steals",
                        "detached", "queued"});

    const workload::Profile* profile =
        workload::findProfile("req_serve");
    std::uint64_t share =
        std::max<std::uint64_t>(instrs / 4, 5000);

    for (unsigned lanes : {1u, 2u, 4u}) {
        for (sched::Policy policy :
             {sched::Policy::kStatic, sched::Policy::kRoundRobin,
              sched::Policy::kLagAware}) {
            sched::PoolConfig config;
            config.lanes = lanes;
            config.policy = policy;
            // Finite transport so admission/queueing is a real
            // decision when the late arrivals show up.
            config.lba.transport_bytes_per_cycle = 2.0;
            config.slice_instructions = 5000;
            sched::LifeguardPool pool(config,
                                      bench::makeBoundsCheck());

            // The churn schedule: t0/t1 boot-time, t1 detaches after
            // half its share, t2 arrives once slicing is underway,
            // t3 arrives later still.
            struct Slot
            {
                const char* name;
                std::uint64_t arrival_round;
                std::uint64_t detach_after;
            };
            const Slot slots[] = {
                {"serve0", 0, 0},
                {"serve1", 0, share / 2},
                {"serve2", 4, 0},
                {"serve3", 8, 0},
            };
            for (unsigned t = 0; t < 4; ++t) {
                auto generated =
                    workload::generate(*profile, {}, share);
                sched::TenantConfig tenant;
                tenant.name = slots[t].name;
                tenant.program = generated.program;
                tenant.process.input_seed = 0x5eed0000 + t;
                tenant.arrival_round = slots[t].arrival_round;
                tenant.detach_after_instructions =
                    slots[t].detach_after;
                pool.addTenant(std::move(tenant));
            }
            sched::PoolResult result = pool.run();

            double sum = 0.0;
            double worst = 0.0;
            double p95 = 0.0;
            unsigned detached = 0;
            unsigned queued = 0;
            for (const sched::TenantStats& t : result.tenants) {
                sum += t.slowdown;
                worst = std::max(worst, t.slowdown);
                p95 = std::max(p95, t.lag_p95);
                if (t.detached) ++detached;
                if (t.was_queued) ++queued;
            }
            table.addRow(
                {std::to_string(lanes), result.policy,
                 std::to_string(result.total_cycles),
                 stats::formatSlowdown(sum / 4.0),
                 stats::formatSlowdown(worst),
                 stats::formatDouble(p95, 1),
                 std::to_string(result.lane_steals),
                 std::to_string(detached),
                 std::to_string(queued)});
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("schedule: serve0/serve1 at round 0, serve1 detaches "
                "at %llu instrs, serve2 arrives round 4, serve3 round "
                "8; makespan = latest tenant completion (cycles).\n",
                static_cast<unsigned long long>(share / 2));
    report.addTable("lanes x policy under churn", table);
    return 0;
}
