/**
 * @file
 * Figure-2-style panel for the MTE-cost-profile lifeguards on the
 * server-shaped workloads: AddrCheck (byte-granular validity shadow),
 * BoundsCheck (MTE-style 4-bit tag per 16B granule, constant-cost
 * probe) and MemLeak (allocation-site staleness tracking) on the
 * request-serving profiles (workload::serverSuite()).
 *
 * Claim check (exit 1 on miss): BoundsCheck's LBA overhead is lower
 * than AddrCheck's on every request-serving benchmark. The tag probe
 * is 5 handler instructions + one 1-byte shadow read regardless of
 * access width, against AddrCheck's 8 + per-byte straddle handling,
 * and the alloc-path shadow colouring is per-16B-granule instead of
 * per-byte — the constant-cost check has to win on an allocation-heavy
 * serving loop, at any instruction budget.
 */

#include <cstdio>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("fig_mte",
                             bench::jsonOutPath(argc, argv));
    std::uint64_t instrs = bench::benchInstructions();

    struct Panel
    {
        const char* name;
        core::LifeguardFactory factory;
        std::vector<bench::SuiteRow> rows;
    };
    Panel panels[] = {
        {"AddrCheck", bench::makeAddrCheck(), {}},
        {"BoundsCheck", bench::makeBoundsCheck(), {}},
        {"MemLeak", bench::makeMemLeak(), {}},
    };
    for (Panel& panel : panels) {
        panel.rows = bench::runSuite(workload::serverSuite(),
                                     panel.factory, instrs);
        stats::Table table = bench::printFigurePanel(
            std::string("MTE panel: ") + panel.name +
                " on request-serving workloads",
            panel.name, panel.rows);
        report.addTable(panel.name, table);
    }

    // The claim table: per-benchmark LBA overheads side by side.
    stats::Table claim({"benchmark", "AddrCheck (l)", "BoundsCheck (l)",
                        "MemLeak (l)", "bounds < addrcheck"});
    bool met = true;
    for (std::size_t i = 0; i < panels[0].rows.size(); ++i) {
        double addr = panels[0].rows[i].lba_slowdown;
        double bounds = panels[1].rows[i].lba_slowdown;
        double leak = panels[2].rows[i].lba_slowdown;
        bool ok = bounds < addr;
        met = met && ok;
        claim.addRow({panels[0].rows[i].benchmark,
                      stats::formatSlowdown(addr),
                      stats::formatSlowdown(bounds),
                      stats::formatSlowdown(leak),
                      ok ? "yes" : "NO"});
    }
    std::printf("%s\n", claim.toString().c_str());
    report.addTable("MTE vs AddrCheck overhead", claim);

    std::printf("claim: BoundsCheck overhead < AddrCheck overhead on "
                "request-serving workloads -> %s\n",
                met ? "MET" : "MISSED");
    return met ? 0 : 1;
}
