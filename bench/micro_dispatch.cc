/**
 * @file
 * Microbenchmark MICRO-DISPATCH: host-side record-dispatch throughput
 * of the lifeguard core across the three dispatch tiers — per-record
 * virtual, batched handler table, and fused compiled-IR loops.
 *
 * The simulated cost of a record is identical on every tier (the
 * cycle-identity invariant, tests/dispatch_batch_test.cpp and
 * tests/dispatch_fused_test.cpp); what this bench measures is how fast
 * the *host* pushes records through the dispatch engine — the hot loop
 * every experiment, tenant and ablation in this tree funnels through.
 * The per-record tier pops the log buffer one entry at a time and
 * dispatches through the virtual handleEvent(); the batched tier
 * drains contiguous spans (LogBuffer::frontSpan / popN) through the
 * per-event-type handler table (DispatchEngine::consumeBatch); the
 * fused tier drains the same spans through loops compiled from the
 * lifeguard's handler IR (DispatchEngine::consumeBatchFused) — no
 * per-record indirect call at all. This is the software analogue of
 * the paper's `nlba` argument: dispatch overhead per event is what
 * software-only monitors pay and LBA's handler-table jump eliminates.
 *
 * Rows: a *dispatch-skeleton* lifeguard (trivial handlers, so the
 * dispatch machinery itself is what is timed) plus the three real
 * lifeguards (end-to-end numbers, diluted by handler simulation work —
 * shadow lookups and cache timing are identical on both paths).
 *
 * Threaded scaling (`--threads N[,N...]`, default 1,2,4): the same
 * chunked produce/drain loop sharded round-robin across N host worker
 * threads, each hosting one lane — its own SPSC log ring and dispatch
 * engine, the per-lane layout threaded execution runs
 * (core/threaded_executor.h). Reported as aggregate host records/sec
 * per thread count, with the scaling factor over 1 thread.
 *
 * Claim checks (exit code 1 on a miss): batched dispatch must be
 * >= 1.3x the per-record records/sec on the dispatch-skeleton row,
 * fused must be >= 2.0x batched on the same row (the skeleton's IR is
 * pure constant charges, so the fused drain is the bulk loop — the
 * machinery the tier exists for), and 4 worker threads must scale the
 * skeleton drain >= 1.5x over 1 thread (skipped, not failed, on hosts
 * with fewer than 4 hardware threads — there is nothing to scale
 * onto). The lifeguard rows are reported for the perf trajectory.
 * Results land in BENCH_results.json via --json
 * (scripts/run_all_benches.sh); see docs/BENCHMARKS.md for the row
 * schema.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "lifeguard/dispatch.h"
#include "log/capture.h"

namespace {

using namespace lba;

std::vector<log::EventRecord>
captureStream(const char* profile, std::uint64_t instrs)
{
    auto generated =
        workload::generate(*workload::findProfile(profile), {}, instrs);
    sim::Process process{sim::ProcessConfig{}};
    process.load(generated.program);
    log::RecordingObserver recorder;
    process.run(&recorder);
    return recorder.stream;
}

/**
 * The dispatch-skeleton lifeguard: handlers cheap enough that the
 * timed loop is the dispatch machinery, not the checking work. Memory
 * events charge one handler instruction; everything else is
 * unregistered (dispatch cost only) — the shape of a filtering or
 * sampling lifeguard.
 */
class DispatchSkeleton : public lifeguard::Lifeguard
{
  public:
    DispatchSkeleton()
    {
        onEvent<&DispatchSkeleton::onAccess>(log::EventType::kLoad);
        onEvent<&DispatchSkeleton::onAccess>(log::EventType::kStore);
        // IR mirror: a constant 1-instruction charge, no state — the
        // compiler classifies both programs kConst, so the fused drain
        // is the bulk constant-cost loop.
        ir_.define(log::EventType::kLoad).charge(1);
        ir_.define(log::EventType::kStore).charge(1);
    }

    const char* name() const override { return "DispatchSkeleton"; }

    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

  private:
    void
    onAccess(const log::EventRecord&, lifeguard::CostSink& cost)
    {
        cost.instrs(1);
    }

    lifeguard::ir::LifeguardIR ir_;
};

constexpr std::size_t kChunk = 1024;

/** Which dispatch tier the drain loop exercises. */
enum class Mode
{
    kPerRecord,
    kBatched,
    kFused,
};

/**
 * Drain @p passes copies of @p stream through a fresh engine.
 * @return Host seconds spent in the drain loop.
 */
double
drain(const std::vector<log::EventRecord>& stream,
      const core::LifeguardFactory& factory, unsigned passes, Mode mode)
{
    auto guard = factory();
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    lifeguard::DispatchEngine engine(*guard, hierarchy, {1, 1});
    log::LogBuffer buffer(kChunk);

    // The chunk fill is identical on both paths (the application side
    // pushes records either way), so only the consumer's drain loop is
    // timed — that is the code the dispatch redesign changes.
    double seconds = 0.0;
    for (unsigned pass = 0; pass < passes; ++pass) {
        std::size_t i = 0;
        while (i < stream.size()) {
            std::size_t n = std::min(kChunk, stream.size() - i);
            for (std::size_t k = 0; k < n; ++k) {
                buffer.push(stream[i + k], 0);
            }
            auto start = std::chrono::steady_clock::now();
            if (mode == Mode::kFused) {
                while (!buffer.empty()) {
                    auto span = buffer.frontSpan(kChunk);
                    engine.consumeBatchFused(span);
                    buffer.popN(span.size());
                }
            } else if (mode == Mode::kBatched) {
                while (!buffer.empty()) {
                    auto span = buffer.frontSpan(kChunk);
                    engine.consumeBatch(span);
                    buffer.popN(span.size());
                }
            } else {
                log::LogBuffer::Entry entry;
                while (buffer.pop(&entry)) {
                    engine.consume(entry.record);
                }
            }
            auto end = std::chrono::steady_clock::now();
            seconds +=
                std::chrono::duration<double>(end - start).count();
            i += n;
        }
    }
    return seconds;
}

/** Repeat until the slower path has run at least ~0.2 s. */
double
recordsPerSecond(const std::vector<log::EventRecord>& stream,
                 const core::LifeguardFactory& factory, Mode mode)
{
    drain(stream, factory, 1, mode); // warm the host caches/JIT-ish
    unsigned passes = 1;
    double seconds = 0.0;
    for (;;) {
        seconds = drain(stream, factory, passes, mode);
        if (seconds >= 0.2 || passes >= 1u << 14) break;
        passes *= 4;
    }
    return static_cast<double>(stream.size()) * passes / seconds;
}

/**
 * One lane per worker thread: shard @p stream round-robin, then run
 * the chunked produce/drain loop on every shard concurrently — each
 * thread owns one SPSC ring and one engine, the threaded-execution
 * lane layout. Whole-loop wall time (the producer side is the same
 * work at every thread count, so scaling is honest).
 * @return Aggregate host records/sec.
 */
double
threadedRate(const std::vector<log::EventRecord>& stream,
             unsigned nthreads, unsigned passes)
{
    std::vector<std::vector<log::EventRecord>> shards(nthreads);
    for (auto& shard : shards) {
        shard.reserve(stream.size() / nthreads + 1);
    }
    for (std::size_t i = 0; i < stream.size(); ++i) {
        shards[i % nthreads].push_back(stream[i]);
    }

    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
        workers.emplace_back([&shards, t, passes] {
            const std::vector<log::EventRecord>& shard = shards[t];
            DispatchSkeleton guard;
            mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
            lifeguard::DispatchEngine engine(guard, hierarchy, {1, 1});
            log::LogBuffer buffer(kChunk);
            for (unsigned pass = 0; pass < passes; ++pass) {
                std::size_t i = 0;
                while (i < shard.size()) {
                    std::size_t n =
                        std::min(kChunk, shard.size() - i);
                    for (std::size_t k = 0; k < n; ++k) {
                        buffer.push(shard[i + k], 0);
                    }
                    while (!buffer.empty()) {
                        auto span = buffer.frontSpan(kChunk);
                        engine.consumeBatch(span);
                        buffer.popN(span.size());
                    }
                    i += n;
                }
            }
        });
    }
    for (std::thread& worker : workers) worker.join();
    auto end = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(end - start).count();
    return static_cast<double>(stream.size()) * passes / seconds;
}

/** `--threads N[,N...]` (default 1,2,4). */
std::vector<unsigned>
threadCounts(int argc, char** argv)
{
    std::vector<unsigned> counts;
    const char* list = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) list = argv[i + 1];
    }
    if (!list) return {1, 2, 4};
    while (*list) {
        char* end = nullptr;
        unsigned long v = std::strtoul(list, &end, 10);
        if (end == list) break;
        if (v > 0) counts.push_back(static_cast<unsigned>(v));
        list = (*end == ',') ? end + 1 : end;
    }
    if (counts.empty()) counts = {1, 2, 4};
    if (counts.front() != 1) counts.insert(counts.begin(), 1);
    return counts;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::JsonReport report("micro_dispatch",
                             bench::jsonOutPath(argc, argv));
    std::uint64_t instrs = bench::benchInstructions(60000);

    struct Row
    {
        const char* lifeguard;
        const char* profile;
        core::LifeguardFactory factory;
    };
    const Row rows[] = {
        {"dispatch-skeleton", "gzip",
         [] { return std::make_unique<DispatchSkeleton>(); }},
        {"AddrCheck", "gzip", bench::makeAddrCheck()},
        {"TaintCheck", "gzip", bench::makeTaintCheck()},
        {"LockSet", "water", bench::makeLockSet()},
    };

    std::printf("Micro: host dispatch throughput across the three "
                "dispatch tiers\n");
    std::printf("(simulated cycles are identical on every tier; this "
                "is host records/sec)\n\n");
    stats::Table table({"lifeguard", "records", "per-record rec/s",
                        "batched rec/s", "fused rec/s", "batched/per",
                        "fused/batched"});

    double skeleton_speedup = 0.0;
    double skeleton_fused_speedup = 0.0;
    for (const Row& row : rows) {
        auto stream = captureStream(row.profile, instrs);
        double per_record =
            recordsPerSecond(stream, row.factory, Mode::kPerRecord);
        double batched =
            recordsPerSecond(stream, row.factory, Mode::kBatched);
        double fused =
            recordsPerSecond(stream, row.factory, Mode::kFused);
        double speedup = batched / per_record;
        double fused_speedup = fused / batched;
        if (std::string_view(row.lifeguard) == "dispatch-skeleton") {
            skeleton_speedup = speedup;
            skeleton_fused_speedup = fused_speedup;
        }
        table.addRow({row.lifeguard, std::to_string(stream.size()),
                      stats::formatDouble(per_record / 1e6, 2) + "M",
                      stats::formatDouble(batched / 1e6, 2) + "M",
                      stats::formatDouble(fused / 1e6, 2) + "M",
                      stats::formatDouble(speedup, 2) + "x",
                      stats::formatDouble(fused_speedup, 2) + "x"});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("dispatch-skeleton speedup: batched %.2fx over "
                "per-record (target >= 1.30x), fused %.2fx over "
                "batched (target >= 2.00x)\n",
                skeleton_speedup, skeleton_fused_speedup);
    report.addTable("dispatch_throughput", table);

    // Threaded scaling: one lane (ring + engine) per worker thread,
    // dispatch-skeleton stream, aggregate host records/sec.
    std::vector<unsigned> counts = threadCounts(argc, argv);
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("threads x lanes scaling, dispatch skeleton "
                "(%u hardware threads)\n\n",
                hw);
    stats::Table scaling({"threads", "records/s", "scaling"});
    auto stream = captureStream("gzip", instrs);
    threadedRate(stream, 1, 1); // warm the host caches
    unsigned passes = 1;
    double base_rate = 0.0;
    for (;;) {
        base_rate = threadedRate(stream, 1, passes);
        double seconds =
            static_cast<double>(stream.size()) * passes / base_rate;
        if (seconds >= 0.2 || passes >= 1u << 14) break;
        passes *= 4;
    }
    double scaling_at_4 = 0.0;
    for (unsigned n : counts) {
        double rate = n == 1 ? base_rate
                             : threadedRate(stream, n, passes);
        double factor = rate / base_rate;
        if (n == 4) scaling_at_4 = factor;
        scaling.addRow({std::to_string(n),
                        stats::formatDouble(rate / 1e6, 2) + "M",
                        stats::formatDouble(factor, 2) + "x"});
    }
    std::printf("%s\n", scaling.toString().c_str());
    report.addTable("threaded_scaling", scaling);

    stats::Table claim({"claim", "measured", "target", "ok"});
    bool ok = skeleton_speedup >= 1.3;
    claim.addRow({"batched dispatch speedup (skeleton)",
                  stats::formatDouble(skeleton_speedup, 2) + "x",
                  ">= 1.30x", ok ? "yes" : "NO"});
    bool fused_ok = skeleton_fused_speedup >= 2.0;
    claim.addRow({"fused over batched (skeleton)",
                  stats::formatDouble(skeleton_fused_speedup, 2) + "x",
                  ">= 2.00x", fused_ok ? "yes" : "NO"});
    // The scaling claim needs 4 hardware threads to be meaningful; on
    // smaller hosts it is reported as skipped, not failed.
    bool scaling_measured = scaling_at_4 > 0.0 && hw >= 4;
    bool scaling_ok = !scaling_measured || scaling_at_4 >= 1.5;
    claim.addRow({"threaded drain scaling (4 lanes, skeleton)",
                  scaling_at_4 > 0.0
                      ? stats::formatDouble(scaling_at_4, 2) + "x"
                      : "n/a",
                  ">= 1.50x",
                  scaling_measured ? (scaling_ok ? "yes" : "NO")
                                   : "skipped"});
    report.addTable("claims", claim);
    if (!ok) {
        std::fprintf(stderr,
                     "claim missed: batched dispatch %.2fx < 1.3x\n",
                     skeleton_speedup);
        return 1;
    }
    if (!fused_ok) {
        std::fprintf(stderr,
                     "claim missed: fused dispatch %.2fx < 2.0x over "
                     "batched\n",
                     skeleton_fused_speedup);
        return 1;
    }
    if (!scaling_ok) {
        std::fprintf(stderr,
                     "claim missed: 4-lane threaded drain %.2fx < "
                     "1.5x over 1 thread\n",
                     scaling_at_4);
        return 1;
    }
    return 0;
}
