/**
 * @file
 * Microbenchmark MICRO-DISPATCH: host-side record-dispatch throughput
 * of the lifeguard core, batched handler-table dispatch vs the
 * retained per-record virtual path.
 *
 * The simulated cost of a record is identical on both paths (the
 * cycle-identity invariant, tests/dispatch_batch_test.cpp); what this
 * bench measures is how fast the *host* pushes records through the
 * dispatch engine — the hot loop every experiment, tenant and ablation
 * in this tree funnels through. The per-record path pops the log
 * buffer one entry at a time and dispatches through the virtual
 * handleEvent(); the batched path drains contiguous spans
 * (LogBuffer::frontSpan / popN) through the per-event-type handler
 * table (DispatchEngine::consumeBatch). This is the software analogue
 * of the paper's `nlba` argument: dispatch overhead per event is what
 * software-only monitors pay and LBA's handler-table jump eliminates.
 *
 * Rows: a *dispatch-skeleton* lifeguard (trivial handlers, so the
 * dispatch machinery itself is what is timed) plus the three real
 * lifeguards (end-to-end numbers, diluted by handler simulation work —
 * shadow lookups and cache timing are identical on both paths).
 *
 * Claim check: batched dispatch must be >= 1.3x the per-record
 * records/sec on the dispatch-skeleton row (exit code 1 otherwise);
 * the lifeguard rows are reported for the perf trajectory. Results
 * land in BENCH_results.json via --json (scripts/run_all_benches.sh);
 * see docs/BENCHMARKS.md for the row schema.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "lifeguard/dispatch.h"
#include "log/capture.h"

namespace {

using namespace lba;

std::vector<log::EventRecord>
captureStream(const char* profile, std::uint64_t instrs)
{
    auto generated =
        workload::generate(*workload::findProfile(profile), {}, instrs);
    sim::Process process{sim::ProcessConfig{}};
    process.load(generated.program);
    log::RecordingObserver recorder;
    process.run(&recorder);
    return recorder.stream;
}

/**
 * The dispatch-skeleton lifeguard: handlers cheap enough that the
 * timed loop is the dispatch machinery, not the checking work. Memory
 * events charge one handler instruction; everything else is
 * unregistered (dispatch cost only) — the shape of a filtering or
 * sampling lifeguard.
 */
class DispatchSkeleton : public lifeguard::Lifeguard
{
  public:
    DispatchSkeleton()
    {
        onEvent<&DispatchSkeleton::onAccess>(log::EventType::kLoad);
        onEvent<&DispatchSkeleton::onAccess>(log::EventType::kStore);
    }

    const char* name() const override { return "DispatchSkeleton"; }

  private:
    void
    onAccess(const log::EventRecord&, lifeguard::CostSink& cost)
    {
        cost.instrs(1);
    }
};

constexpr std::size_t kChunk = 1024;

/**
 * Drain @p passes copies of @p stream through a fresh engine.
 * @return Host seconds spent in the drain loop.
 */
double
drain(const std::vector<log::EventRecord>& stream,
      const core::LifeguardFactory& factory, unsigned passes,
      bool batched)
{
    auto guard = factory();
    mem::CacheHierarchy hierarchy(mem::HierarchyConfig{});
    lifeguard::DispatchEngine engine(*guard, hierarchy, {1, 1});
    log::LogBuffer buffer(kChunk);

    // The chunk fill is identical on both paths (the application side
    // pushes records either way), so only the consumer's drain loop is
    // timed — that is the code the dispatch redesign changes.
    double seconds = 0.0;
    for (unsigned pass = 0; pass < passes; ++pass) {
        std::size_t i = 0;
        while (i < stream.size()) {
            std::size_t n = std::min(kChunk, stream.size() - i);
            for (std::size_t k = 0; k < n; ++k) {
                buffer.push(stream[i + k], 0);
            }
            auto start = std::chrono::steady_clock::now();
            if (batched) {
                while (!buffer.empty()) {
                    auto span = buffer.frontSpan(kChunk);
                    engine.consumeBatch(span);
                    buffer.popN(span.size());
                }
            } else {
                log::LogBuffer::Entry entry;
                while (buffer.pop(&entry)) {
                    engine.consume(entry.record);
                }
            }
            auto end = std::chrono::steady_clock::now();
            seconds +=
                std::chrono::duration<double>(end - start).count();
            i += n;
        }
    }
    return seconds;
}

/** Repeat until the slower path has run at least ~0.2 s. */
double
recordsPerSecond(const std::vector<log::EventRecord>& stream,
                 const core::LifeguardFactory& factory, bool batched)
{
    drain(stream, factory, 1, batched); // warm the host caches/JIT-ish
    unsigned passes = 1;
    double seconds = 0.0;
    for (;;) {
        seconds = drain(stream, factory, passes, batched);
        if (seconds >= 0.2 || passes >= 1u << 14) break;
        passes *= 4;
    }
    return static_cast<double>(stream.size()) * passes / seconds;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::JsonReport report("micro_dispatch",
                             bench::jsonOutPath(argc, argv));
    std::uint64_t instrs = bench::benchInstructions(60000);

    struct Row
    {
        const char* lifeguard;
        const char* profile;
        core::LifeguardFactory factory;
    };
    const Row rows[] = {
        {"dispatch-skeleton", "gzip",
         [] { return std::make_unique<DispatchSkeleton>(); }},
        {"AddrCheck", "gzip", bench::makeAddrCheck()},
        {"TaintCheck", "gzip", bench::makeTaintCheck()},
        {"LockSet", "water", bench::makeLockSet()},
    };

    std::printf("Micro: host dispatch throughput, batched handler "
                "table vs per-record virtual dispatch\n");
    std::printf("(simulated cycles are identical on both paths; this "
                "is host records/sec)\n\n");
    stats::Table table({"lifeguard", "records", "per-record rec/s",
                        "batched rec/s", "speedup"});

    double skeleton_speedup = 0.0;
    for (const Row& row : rows) {
        auto stream = captureStream(row.profile, instrs);
        double per_record = recordsPerSecond(stream, row.factory, false);
        double batched = recordsPerSecond(stream, row.factory, true);
        double speedup = batched / per_record;
        if (std::string_view(row.lifeguard) == "dispatch-skeleton") {
            skeleton_speedup = speedup;
        }
        table.addRow({row.lifeguard, std::to_string(stream.size()),
                      stats::formatDouble(per_record / 1e6, 2) + "M",
                      stats::formatDouble(batched / 1e6, 2) + "M",
                      stats::formatDouble(speedup, 2) + "x"});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("dispatch-skeleton speedup: %.2fx (target >= 1.30x)\n",
                skeleton_speedup);
    report.addTable("dispatch_throughput", table);

    stats::Table claim({"claim", "measured", "target", "ok"});
    bool ok = skeleton_speedup >= 1.3;
    claim.addRow({"batched dispatch speedup (skeleton)",
                  stats::formatDouble(skeleton_speedup, 2) + "x",
                  ">= 1.30x", ok ? "yes" : "NO"});
    report.addTable("claims", claim);
    if (!ok) {
        std::fprintf(stderr,
                     "claim missed: batched dispatch %.2fx < 1.3x\n",
                     skeleton_speedup);
        return 1;
    }
    return 0;
}
