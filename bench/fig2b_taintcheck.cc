/**
 * @file
 * Reproduces Figure 2(b): execution times of TaintCheck under the DBI
 * baseline (v) and LBA (l), normalized to unmonitored execution, on the
 * seven single-threaded benchmarks.
 *
 * Paper reference point: LBA TaintCheck averages 4.8X.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("fig2b_taintcheck",
                             bench::jsonOutPath(argc, argv));
    auto rows = bench::runSuite(workload::singleThreadedSuite(),
                                bench::makeTaintCheck(),
                                bench::benchInstructions());
    stats::Table table = bench::printFigurePanel(
        "Figure 2(b): TaintCheck, LBA vs Valgrind-style DBI",
        "TaintCheck", rows);
    report.addTable("TaintCheck", table);
    return 0;
}
