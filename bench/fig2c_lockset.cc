/**
 * @file
 * Reproduces Figure 2(c): execution times of LockSet under the DBI
 * baseline (v) and LBA (l), normalized to unmonitored execution, on the
 * two multithreaded benchmarks (water, zchaff).
 *
 * Paper reference point: LBA LockSet averages 9.7X — the most expensive
 * of the three lifeguards.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("fig2c_lockset",
                             bench::jsonOutPath(argc, argv));
    auto rows = bench::runSuite(workload::multiThreadedSuite(),
                                bench::makeLockSet(),
                                bench::benchInstructions());
    stats::Table table = bench::printFigurePanel(
        "Figure 2(c): LockSet, LBA vs Valgrind-style DBI", "LockSet",
        rows);
    report.addTable("LockSet", table);
    return 0;
}
