/**
 * @file
 * MICRO-COMP: google-benchmark microbenchmarks of the log compressor —
 * compression/decompression throughput and predictor-hit behaviour on
 * characteristic record streams. Supports the Section 2 bandwidth
 * argument: the compress engine must keep up with instruction retirement.
 */

#include <benchmark/benchmark.h>

#include "compress/compressor.h"
#include "compress/registry.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

/** A strided load trace (best case for the predictors). */
std::vector<log::EventRecord>
stridedTrace(std::size_t n)
{
    std::vector<log::EventRecord> trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        log::EventRecord r;
        r.pc = 0x1000 + (i % 8) * 8;
        r.type = log::EventType::kLoad;
        r.opcode = static_cast<std::uint8_t>(isa::Opcode::kLd);
        r.rd = 1;
        r.rs1 = 2;
        r.addr = 0x100000 + i * 16;
        r.aux = 8;
        trace.push_back(r);
    }
    return trace;
}

/** A benchmark-derived trace (realistic predictor behaviour). */
const std::vector<log::EventRecord>&
benchmarkTrace()
{
    static const std::vector<log::EventRecord> trace = [] {
        auto generated = workload::generate(
            *workload::findProfile("gzip"), {}, 100000);
        std::vector<log::EventRecord> t;
        log::CaptureUnit capture(
            [&](const log::EventRecord& r) { t.push_back(r); });
        sim::Process p;
        p.load(generated.program);
        p.run(&capture);
        return t;
    }();
    return trace;
}

void
BM_CompressStrided(benchmark::State& state)
{
    auto trace = stridedTrace(4096);
    for (auto _ : state) {
        compress::LogCompressor c;
        for (const auto& r : trace) c.append(r);
        benchmark::DoNotOptimize(c.bits());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CompressStrided);

void
BM_CompressBenchmarkTrace(benchmark::State& state)
{
    const auto& trace = benchmarkTrace();
    for (auto _ : state) {
        compress::LogCompressor c;
        for (const auto& r : trace) c.append(r);
        benchmark::DoNotOptimize(c.bits());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
    // Report the headline metric alongside throughput.
    compress::LogCompressor c;
    for (const auto& r : trace) c.append(r);
    state.counters["bytes_per_record"] = c.bytesPerRecord();
}
BENCHMARK(BM_CompressBenchmarkTrace);

void
BM_DecompressBenchmarkTrace(benchmark::State& state)
{
    const auto& trace = benchmarkTrace();
    compress::LogCompressor c;
    for (const auto& r : trace) c.append(r);
    for (auto _ : state) {
        compress::LogDecompressor d(c.bytes());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            benchmark::DoNotOptimize(d.next());
        }
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_DecompressBenchmarkTrace);

void
BM_CodecEncode(benchmark::State& state, const std::string& name)
{
    const compress::CodecInfo* info =
        compress::CodecRegistry::instance().find(name);
    const auto& trace = benchmarkTrace();
    std::uint8_t sink[256];
    for (auto _ : state) {
        auto encoder = info->makeEncoder();
        for (const auto& r : trace) {
            encoder->append(r);
            // Drain as we go, like the transport does; keeps the
            // byte-aligned codecs' buffers flat.
            while (std::size_t n = encoder->pull(sink, sizeof sink))
                benchmark::DoNotOptimize(n);
        }
        encoder->finishStream();
        while (std::size_t n = encoder->pull(sink, sizeof sink))
            benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
    auto encoder = info->makeEncoder();
    for (const auto& r : trace) encoder->append(r);
    encoder->finishStream();
    state.counters["bytes_per_record"] = encoder->bytesPerRecord();
}

void
BM_CodecDecode(benchmark::State& state, const std::string& name)
{
    const compress::CodecInfo* info =
        compress::CodecRegistry::instance().find(name);
    const auto& trace = benchmarkTrace();
    auto encoder = info->makeEncoder();
    for (const auto& r : trace) encoder->append(r);
    encoder->finishStream();
    std::vector<std::uint8_t> payload(encoder->pullableBytes());
    encoder->pull(payload.data(), payload.size());
    for (auto _ : state) {
        auto decoder = info->makeDecoder();
        decoder->push(payload.data(), payload.size());
        decoder->finishInput();
        log::EventRecord record;
        while (decoder->next(&record) == compress::DecodeStatus::kOk)
            benchmark::DoNotOptimize(record);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

// Streaming encode/decode throughput for every registered codec on
// the benchmark-derived trace — registered dynamically so new codecs
// are measured the moment the registry knows them.
const int kCodecBenchesRegistered = [] {
    for (const std::string& name :
         compress::CodecRegistry::instance().names()) {
        benchmark::RegisterBenchmark(
            ("BM_CodecEncode/" + name).c_str(), BM_CodecEncode, name);
        benchmark::RegisterBenchmark(
            ("BM_CodecDecode/" + name).c_str(), BM_CodecDecode, name);
    }
    return 0;
}();

void
BM_CaptureRecordFormation(benchmark::State& state)
{
    sim::Retired r;
    r.pc = 0x1000;
    r.instr = {isa::Opcode::kLd, 1, 2, 0, 8};
    r.mem_addr = 0x20000;
    r.mem_bytes = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(log::CaptureUnit::makeRecord(r));
    }
}
BENCHMARK(BM_CaptureRecordFormation);

} // namespace

BENCHMARK_MAIN();
