/**
 * @file
 * Reproduces the Section 2 compression claim: the value-prediction-based
 * compressor achieves "less than one byte per instruction" on the event
 * log of every benchmark, with a per-field bit breakdown.
 */

#include <cstdio>

#include "bench_common.h"
#include "compress/compressor.h"
#include "log/capture.h"
#include "sim/process.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Compression (paper Section 2: < 1 byte/instruction)\n\n");
    stats::Table table({"benchmark", "records", "bytes/record",
                        "bits: pc", "static", "addr", "ctrl", "other"});

    double worst = 0.0;
    for (const workload::Profile& profile : workload::fullSuite()) {
        auto generated = workload::generate(profile, {}, instrs);
        compress::LogCompressor compressor;
        log::CaptureUnit capture([&](const log::EventRecord& r) {
            compressor.append(r);
        });
        sim::Process process;
        process.load(generated.program);
        process.run(&capture);

        double bpr = compressor.bytesPerRecord();
        worst = std::max(worst, bpr);
        const compress::FieldBits& f = compressor.fieldBits();
        auto per = [&](std::uint64_t bits) {
            return stats::formatDouble(
                static_cast<double>(bits) /
                    static_cast<double>(compressor.records()),
                3);
        };
        table.addRow({profile.name,
                      std::to_string(compressor.records()),
                      stats::formatDouble(bpr, 3), per(f.pc),
                      per(f.stat), per(f.addr), per(f.ctrl),
                      per(f.kind + f.tid + f.annotation)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("worst case: %.3f bytes/record -> target (< 1 B) %s\n",
                worst, worst < 1.0 ? "MET" : "MISSED");
    return worst < 1.0 ? 0 : 1;
}
