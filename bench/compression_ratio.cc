/**
 * @file
 * Reproduces the Section 2 compression claim — the value-prediction
 * compressor achieves "less than one byte per instruction" on every
 * benchmark's event log, with a per-field bit breakdown — and compares
 * every registered codec (compress/registry.h) on the same capture
 * stream: compressed bytes/record, ratio against the 31-byte packed
 * record encoding, and host-side encode/decode cost per record.
 *
 * JSON rows land in BENCH_results.json via --json (see
 * docs/BENCHMARKS.md for the schema); the paper claim check remains
 * on the predictor codec only — the byte-aligned codecs trade ratio
 * for generality and are not part of the Section 2 claim.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/assert.h"
#include "compress/compressor.h"
#include "compress/record_gen.h"
#include "compress/registry.h"
#include "log/capture.h"
#include "sim/process.h"

namespace {

using namespace lba;

double
nsPerRecord(std::chrono::steady_clock::duration d, std::size_t records)
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                   .count()) /
           static_cast<double>(records);
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t instrs = bench::benchInstructions();
    bench::JsonReport report("compression_ratio",
                             bench::jsonOutPath(argc, argv));

    std::printf("Compression (paper Section 2: < 1 byte/instruction)\n\n");
    stats::Table table({"benchmark", "records", "bytes/record",
                        "bits: pc", "static", "addr", "ctrl", "other"});

    // Full capture stream across the suite, reused for the codec
    // comparison below so every codec sees identical records.
    std::vector<log::EventRecord> all_records;

    double worst = 0.0;
    for (const workload::Profile& profile : workload::fullSuite()) {
        auto generated = workload::generate(profile, {}, instrs);
        compress::LogCompressor compressor;
        log::CaptureUnit capture([&](const log::EventRecord& r) {
            compressor.append(r);
            all_records.push_back(r);
        });
        sim::Process process;
        process.load(generated.program);
        process.run(&capture);

        double bpr = compressor.bytesPerRecord();
        worst = std::max(worst, bpr);
        const compress::FieldBits& f = compressor.fieldBits();
        auto per = [&](std::uint64_t bits) {
            return stats::formatDouble(
                static_cast<double>(bits) /
                    static_cast<double>(compressor.records()),
                3);
        };
        table.addRow({profile.name,
                      std::to_string(compressor.records()),
                      stats::formatDouble(bpr, 3), per(f.pc),
                      per(f.stat), per(f.addr), per(f.ctrl),
                      per(f.kind + f.tid + f.annotation)});
    }
    std::printf("%s\n", table.toString().c_str());
    report.addTable("per-benchmark predictor bits", table);

    // Codec comparison: same capture stream through every registered
    // codec, with a decode-side roundtrip check (a codec that cannot
    // reproduce the stream has no business reporting a ratio).
    stats::Table codecs({"codec", "records", "payload B",
                         "bytes/record", "ratio", "encode ns/rec",
                         "decode ns/rec"});
    const double raw_bytes =
        static_cast<double>(all_records.size()) *
        static_cast<double>(compress::kRecordStrideBytes);
    for (const std::string& name :
         compress::CodecRegistry::instance().names()) {
        const compress::CodecInfo* info =
            compress::CodecRegistry::instance().find(name);

        auto encoder = info->makeEncoder();
        auto t0 = std::chrono::steady_clock::now();
        for (const auto& record : all_records)
            encoder->append(record);
        encoder->finishStream();
        auto t1 = std::chrono::steady_clock::now();
        std::vector<std::uint8_t> payload(encoder->pullableBytes());
        LBA_ASSERT(encoder->pull(payload.data(), payload.size()) ==
                       payload.size(),
                   "encoder under-drained");

        auto decoder = info->makeDecoder();
        decoder->push(payload.data(), payload.size());
        decoder->finishInput();
        log::EventRecord record;
        std::size_t decoded = 0;
        auto t2 = std::chrono::steady_clock::now();
        while (decoder->next(&record) == compress::DecodeStatus::kOk)
            ++decoded;
        auto t3 = std::chrono::steady_clock::now();
        LBA_ASSERT(decoder->error().ok(),
                   "codec failed to decode its own stream");
        LBA_ASSERT(decoded == all_records.size(),
                   "codec dropped records in roundtrip");

        double bpr = static_cast<double>(payload.size()) /
                     static_cast<double>(all_records.size());
        codecs.addRow(
            {name, std::to_string(all_records.size()),
             std::to_string(payload.size()),
             stats::formatDouble(bpr, 3),
             stats::formatDouble(
                 raw_bytes / static_cast<double>(payload.size()), 2),
             stats::formatDouble(nsPerRecord(t1 - t0, decoded), 1),
             stats::formatDouble(nsPerRecord(t3 - t2, decoded), 1)});
    }
    std::printf("Codec comparison (same capture stream, %zu records; "
                "raw = %zu B packed records)\n\n",
                all_records.size(),
                static_cast<std::size_t>(raw_bytes));
    std::printf("%s\n", codecs.toString().c_str());
    report.addTable("per-codec ratio and host cost", codecs);

    std::printf("worst case: %.3f bytes/record -> target (< 1 B) %s\n",
                worst, worst < 1.0 ? "MET" : "MISSED");
    return worst < 1.0 ? 0 : 1;
}
