/**
 * @file
 * Ablation ABL-FILT: address-range-based record filtering, one of the
 * overhead-reduction techniques the paper's Section 3 names as ongoing
 * work. AddrCheck only cares about heap accesses, so filtering the log
 * to the heap range cuts lifeguard work without changing findings.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: address-range filtering (heap-only log), "
                "AddrCheck\n\n");
    stats::Table table({"benchmark", "plain", "filtered",
                        "records dropped", "improvement"});
    for (const char* name : {"bc", "gs", "mcf", "tidy"}) {
        auto generated =
            workload::generate(*workload::findProfile(name), {}, instrs);
        core::Experiment exp(generated.program);

        auto plain = exp.runLba(bench::makeAddrCheck());

        core::LbaConfig cfg = exp.config().lba;
        cfg.filter_enabled = true;
        cfg.filter_base = 0x10000000; // sim::kHeapBase
        cfg.filter_bytes = 64ull << 20;
        auto filtered = exp.runLba(bench::makeAddrCheck(), cfg);

        double drop =
            100.0 *
            static_cast<double>(filtered.lba.records_filtered) /
            static_cast<double>(filtered.lba.records_filtered +
                                filtered.lba.records_logged);
        table.addRow({name, stats::formatSlowdown(plain.slowdown),
                      stats::formatSlowdown(filtered.slowdown),
                      stats::formatDouble(drop, 1) + "%",
                      stats::formatDouble(
                          100.0 * (plain.slowdown - filtered.slowdown) /
                              plain.slowdown,
                          1) +
                          "%"});
    }
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
