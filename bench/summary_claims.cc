/**
 * @file
 * Reproduces the paper's aggregate quantitative claims (Section 3):
 *   - Valgrind lifeguards incur 10-85X slowdowns;
 *   - LBA lifeguards are 4-19X faster than Valgrind lifeguards;
 *   - average LBA slowdowns: 3.9X AddrCheck, 4.8X TaintCheck,
 *     9.7X LockSet.
 * Prints measured vs paper for each claim.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    auto ac = bench::runSuite(workload::singleThreadedSuite(),
                              bench::makeAddrCheck(), instrs);
    auto tc = bench::runSuite(workload::singleThreadedSuite(),
                              bench::makeTaintCheck(), instrs);
    auto ls = bench::runSuite(workload::multiThreadedSuite(),
                              bench::makeLockSet(), instrs);

    double vmin = 1e9, vmax = 0, rmin = 1e9, rmax = 0;
    auto scan = [&](const std::vector<bench::SuiteRow>& rows) {
        for (const auto& r : rows) {
            vmin = std::min(vmin, r.valgrind_slowdown);
            vmax = std::max(vmax, r.valgrind_slowdown);
            double ratio = r.valgrind_slowdown / r.lba_slowdown;
            rmin = std::min(rmin, ratio);
            rmax = std::max(rmax, ratio);
        }
    };
    scan(ac);
    scan(tc);
    scan(ls);

    auto avg = [](const std::vector<bench::SuiteRow>& rows) {
        double s = 0;
        for (const auto& r : rows) s += r.lba_slowdown;
        return s / rows.size();
    };

    std::printf("Aggregate claims (paper Section 3)\n\n");
    stats::Table table({"claim", "paper", "measured"});
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f-%.0fx", vmin, vmax);
    table.addRow({"Valgrind lifeguard slowdown range", "10-85x", buf});
    std::snprintf(buf, sizeof(buf), "%.1f-%.1fx", rmin, rmax);
    table.addRow({"LBA speedup over Valgrind", "4-19x", buf});
    table.addRow({"LBA AddrCheck average slowdown", "3.9x",
                  stats::formatSlowdown(avg(ac))});
    table.addRow({"LBA TaintCheck average slowdown", "4.8x",
                  stats::formatSlowdown(avg(tc))});
    table.addRow({"LBA LockSet average slowdown", "9.7x",
                  stats::formatSlowdown(avg(ls))});
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
