/**
 * @file
 * Reproduces the Section 3 workload characterization: "On average, a
 * benchmark executes 209 million x86 instructions, of which 51% are
 * memory references." Instruction counts are scaled down (~100x by
 * default); the memory-reference mix is the reproduction target.
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/process.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Workload characterization (paper Section 3)\n\n");
    stats::Table table({"benchmark", "threads", "instructions",
                        "mem refs", "mem %", "branches %", "allocs"});

    double mem_sum = 0.0;
    std::uint64_t instr_sum = 0;
    class AllocCounter : public sim::RetireObserver
    {
      public:
        void onRetire(const sim::Retired&) override {}
        void
        onOsEvent(const sim::OsEvent& e) override
        {
            if (e.type == sim::OsEventType::kAlloc) ++allocs;
        }
        std::uint64_t allocs = 0;
    };

    for (const workload::Profile& profile : workload::fullSuite()) {
        auto generated = workload::generate(profile, {}, instrs);
        sim::Process process;
        process.load(generated.program);
        AllocCounter counter;
        sim::RunResult result = process.run(&counter);

        double mem_frac =
            static_cast<double>(process.memRefs()) /
            static_cast<double>(result.instructions);
        double branch_frac =
            static_cast<double>(
                process.classCounts()[static_cast<int>(
                    isa::InstrClass::kBranch)]) /
            static_cast<double>(result.instructions);
        mem_sum += mem_frac;
        instr_sum += result.instructions;

        table.addRow({profile.name, std::to_string(profile.threads),
                      std::to_string(result.instructions),
                      std::to_string(process.memRefs()),
                      stats::formatDouble(mem_frac * 100, 1),
                      stats::formatDouble(branch_frac * 100, 1),
                      std::to_string(counter.allocs)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("suite average: %llu instructions/benchmark, "
                "%.1f%% memory references (paper: 209M scaled, 51%%)\n",
                static_cast<unsigned long long>(instr_sum /
                                                workload::fullSuite()
                                                    .size()),
                100.0 * mem_sum / workload::fullSuite().size());
    return 0;
}
