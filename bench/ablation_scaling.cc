/**
 * @file
 * Ablation ABL-SCALE: methodology check for the scaled-down runs. The
 * paper ran ~209M instructions per benchmark; this reproduction defaults
 * to ~250k. Slowdowns are per-instruction *rates*, so they must be
 * stable across run lengths once caches warm up — this bench sweeps the
 * instruction budget and prints the slowdowns at each scale.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;

    std::printf("Ablation: run-length scaling of slowdowns "
                "(AddrCheck)\n\n");
    for (const char* name : {"gzip", "gs"}) {
        stats::Table table({"instructions", "unmonitored CPI",
                            "LBA slowdown", "DBI slowdown"});
        for (std::uint64_t scale :
             {100'000ull, 250'000ull, 500'000ull, 1'000'000ull}) {
            auto generated = workload::generate(
                *workload::findProfile(name), {}, scale);
            core::Experiment exp(generated.program);
            auto lba = exp.runLba(bench::makeAddrCheck());
            auto dbi = exp.runDbi(bench::makeAddrCheck());
            double cpi =
                static_cast<double>(exp.unmonitored().cycles) /
                static_cast<double>(exp.unmonitored().instructions);
            table.addRow({std::to_string(exp.unmonitored().instructions),
                          stats::formatDouble(cpi, 2),
                          stats::formatSlowdown(lba.slowdown),
                          stats::formatSlowdown(dbi.slowdown)});
        }
        std::printf("benchmark: %s\n%s\n", name,
                    table.toString().c_str());
    }
    return 0;
}
