/**
 * @file
 * Ablation ABL-CONTAIN: the cost of being able to rewind. The paper's
 * Section 1 extension — "rewind the monitored program and possibly
 * perform on-the-fly bug repair" — turns detection latency into a
 * rollback distance: the further the application runs ahead of the
 * lifeguard, the more work a rewind replays. This bench sweeps
 *
 *   checkpoint interval x log-buffer size x repair policy
 *
 * on a use-after-free-injected workload under AddrCheck and reports the
 * rewind distance and the containment overhead. Expected shape:
 *  - interval 0 (syscall-boundary checkpoints only) adds zero overhead
 *    when nothing rewinds, but rewind distance is bounded only by the
 *    syscall density;
 *  - shorter intervals bound the rewind distance at the price of a
 *    containment drain per checkpoint;
 *  - bigger buffers decouple further (lower slowdown) but let the app
 *    run further ahead, which shows up as detection-time drain cost.
 */

#include <cstdio>

#include "bench_common.h"
#include "replay/containment.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions(100'000);
    bench::JsonReport report("ablation_containment",
                             bench::jsonOutPath(argc, argv));

    std::printf("Ablation: containment interval x buffer x policy, "
                "AddrCheck on gzip + injected UAF\n\n");
    workload::BugInjection bugs;
    bugs.use_after_free = true;
    auto generated =
        workload::generate(*workload::findProfile("gzip"), bugs, instrs);
    core::Experiment exp(generated.program);

    // Containment off: the baseline every sweep point is charged
    // against (identical program, identical platform knobs).
    stats::Table table({"policy", "ckpt interval", "buffer", "slowdown",
                        "overhead", "rewinds", "max rewind (instrs)",
                        "containment cycles"});
    for (std::size_t buffer : {std::size_t{4096}, std::size_t{65536}}) {
        core::LbaConfig lba = exp.config().lba;
        lba.buffer_capacity = buffer;
        auto baseline =
            exp.runLba(bench::makeAddrCheck(), lba, {});

        for (std::uint64_t interval : {0ull, 2000ull, 10000ull}) {
            for (replay::RepairPolicy policy :
                 {replay::RepairPolicy::kPatch,
                  replay::RepairPolicy::kSkip,
                  replay::RepairPolicy::kQuarantine}) {
                replay::ContainmentConfig cc;
                cc.enabled = true;
                cc.policy = policy;
                cc.checkpoint_interval = interval;
                auto run = exp.runLba(bench::makeAddrCheck(), lba, cc);

                double overhead =
                    static_cast<double>(run.cycles) /
                        static_cast<double>(baseline.cycles) -
                    1.0;
                table.addRow(
                    {replay::repairPolicyName(policy),
                     interval ? std::to_string(interval) : "syscall",
                     std::to_string(buffer),
                     stats::formatSlowdown(run.slowdown),
                     stats::formatDouble(100.0 * overhead, 2) + "%",
                     std::to_string(run.containment.rewinds),
                     std::to_string(
                         run.containment.max_rewind_distance),
                     std::to_string(static_cast<unsigned long long>(
                         run.containment.rewind_cycles +
                         run.containment.checkpoint_stall_cycles))});
            }
        }
    }
    std::printf("%s\n", table.toString().c_str());
    report.addTable("containment sweep", table);

    std::printf("overhead = cycles vs the same configuration with "
                "containment off;\nwith interval 'syscall' and no "
                "findings the two are cycle-identical.\n");
    return 0;
}
