#pragma once
/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every bench prints the rows of one table/figure from the paper
 * (docs/BENCHMARKS.md maps artifact -> binary). Scale via LBA_BENCH_INSTRS
 * (dynamic instructions per benchmark; default 250k, the paper ran
 * ~209M — slowdowns are per-instruction rates, so the shape is
 * scale-invariant, which ablation_scaling verifies).
 */

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/boundscheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/memleak.h"
#include "lifeguards/taintcheck.h"
#include "stats/table.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace lba::bench {

/** Instruction budget per benchmark, from LBA_BENCH_INSTRS. */
inline std::uint64_t
benchInstructions(std::uint64_t fallback = 250'000)
{
    const char* env = std::getenv("LBA_BENCH_INSTRS");
    if (!env) return fallback;
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    return (end && *end == '\0' && v > 0) ? v : fallback;
}

/** Named lifeguard factories. */
inline core::LifeguardFactory
makeAddrCheck()
{
    return [] { return std::make_unique<lifeguards::AddrCheck>(); };
}

inline core::LifeguardFactory
makeTaintCheck()
{
    return [] { return std::make_unique<lifeguards::TaintCheck>(); };
}

inline core::LifeguardFactory
makeLockSet()
{
    return [] { return std::make_unique<lifeguards::LockSet>(); };
}

inline core::LifeguardFactory
makeBoundsCheck()
{
    return [] { return std::make_unique<lifeguards::BoundsCheck>(); };
}

inline core::LifeguardFactory
makeMemLeak()
{
    return [] { return std::make_unique<lifeguards::MemLeak>(); };
}

/** One benchmark's platform comparison. */
struct SuiteRow
{
    std::string benchmark;
    std::uint64_t instructions = 0;
    double valgrind_slowdown = 0.0;
    double lba_slowdown = 0.0;
};

/** Run {unmonitored, DBI, LBA} for each profile under one lifeguard. */
std::vector<SuiteRow> runSuite(
    const std::vector<workload::Profile>& profiles,
    const core::LifeguardFactory& factory, std::uint64_t instructions);

/**
 * Print a Figure-2-style panel.
 * @return The panel's table (for JSON emission via JsonReport).
 */
stats::Table printFigurePanel(const std::string& title,
                              const std::string& lifeguard_name,
                              const std::vector<SuiteRow>& rows);

/** Path passed via `--json PATH` (empty when the flag is absent). */
std::string jsonOutPath(int argc, char** argv);

/**
 * Machine-readable bench output: collects named tables and writes one
 * JSON document `{"bench": name, "tables": [{"title", "rows"}]}` to
 * the `--json` path at destruction. Disabled (no-op) when the path is
 * empty, so benches can use it unconditionally:
 *
 * @code
 *   int main(int argc, char** argv) {
 *       bench::JsonReport report("fig2a_addrcheck",
 *                                bench::jsonOutPath(argc, argv));
 *       ...
 *       report.addTable("AddrCheck", table);
 *   }
 * @endcode
 *
 * scripts/run_all_benches.sh passes `--json` to every bench and merges
 * the documents into BENCH_results.json.
 */
class JsonReport
{
  public:
    JsonReport(std::string bench_name, std::string path);
    ~JsonReport();

    JsonReport(const JsonReport&) = delete;
    JsonReport& operator=(const JsonReport&) = delete;

    bool enabled() const { return !path_.empty(); }

    /** Record one result table under @p title. */
    void addTable(const std::string& title, const stats::Table& table);

  private:
    std::string bench_name_;
    std::string path_;
    std::vector<std::pair<std::string, std::string>> tables_;
};

} // namespace lba::bench
