/**
 * @file
 * Ablation ABL-BUF: log-buffer capacity sweep. The paper argues that
 * decoupling the cores (coordinating only through the buffer)
 * "significantly improves performance"; this bench quantifies how
 * back-pressure stalls shrink as the buffer grows.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: log-buffer capacity (decoupling degree), "
                "AddrCheck\n\n");
    for (const char* name : {"gzip", "mcf"}) {
        auto generated =
            workload::generate(*workload::findProfile(name), {}, instrs);
        core::Experiment exp(generated.program);

        stats::Table table({"buffer (records)", "slowdown",
                            "backpressure stalls (cycles)",
                            "mean lifeguard lag"});
        for (std::size_t capacity :
             {std::size_t{16}, std::size_t{256}, std::size_t{4096},
              std::size_t{65536}, std::size_t{1048576}}) {
            core::LbaConfig cfg = exp.config().lba;
            cfg.buffer_capacity = capacity;
            auto result = exp.runLba(bench::makeAddrCheck(), cfg);
            table.addRow(
                {std::to_string(capacity),
                 stats::formatSlowdown(result.slowdown),
                 std::to_string(result.lba.backpressure_stall_cycles),
                 stats::formatDouble(result.lba.mean_consume_lag, 1)});
        }
        std::printf("benchmark: %s\n%s\n", name,
                    table.toString().c_str());
    }
    return 0;
}
