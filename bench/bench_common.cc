/**
 * @file
 * Shared bench helpers.
 */

#include "bench_common.h"

#include <cstdio>

#include "stats/json.h"

namespace lba::bench {

std::vector<SuiteRow>
runSuite(const std::vector<workload::Profile>& profiles,
         const core::LifeguardFactory& factory,
         std::uint64_t instructions)
{
    std::vector<SuiteRow> rows;
    for (const workload::Profile& profile : profiles) {
        auto generated = workload::generate(profile, {}, instructions);
        core::Experiment exp(generated.program);
        auto dbi = exp.runDbi(factory);
        auto lba = exp.runLba(factory);
        SuiteRow row;
        row.benchmark = profile.name;
        row.instructions = exp.unmonitored().instructions;
        row.valgrind_slowdown = dbi.slowdown;
        row.lba_slowdown = lba.slowdown;
        rows.push_back(row);
    }
    return rows;
}

stats::Table
printFigurePanel(const std::string& title,
                 const std::string& lifeguard_name,
                 const std::vector<SuiteRow>& rows)
{
    std::printf("%s\n", title.c_str());
    std::printf("normalized execution time (1.0 = unmonitored), "
                "v = Valgrind-style DBI, l = LBA\n\n");
    stats::Table table(
        {"benchmark", "instrs", lifeguard_name + " (v)",
         lifeguard_name + " (l)", "LBA speedup"});
    double vsum = 0, lsum = 0;
    for (const SuiteRow& row : rows) {
        table.addRow({row.benchmark, std::to_string(row.instructions),
                      stats::formatSlowdown(row.valgrind_slowdown),
                      stats::formatSlowdown(row.lba_slowdown),
                      stats::formatSlowdown(row.valgrind_slowdown /
                                            row.lba_slowdown)});
        vsum += row.valgrind_slowdown;
        lsum += row.lba_slowdown;
    }
    table.addRow({"(average)", "",
                  stats::formatSlowdown(vsum / rows.size()),
                  stats::formatSlowdown(lsum / rows.size()),
                  stats::formatSlowdown(vsum / lsum)});
    std::printf("%s\n", table.toString().c_str());
    return table;
}

std::string
jsonOutPath(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return "";
}

JsonReport::JsonReport(std::string bench_name, std::string path)
    : bench_name_(std::move(bench_name)), path_(std::move(path))
{
}

void
JsonReport::addTable(const std::string& title, const stats::Table& table)
{
    if (!enabled()) return;
    tables_.emplace_back(title, table.toJson());
}

JsonReport::~JsonReport()
{
    if (!enabled()) return;
    stats::JsonWriter json;
    json.beginObject();
    json.field("bench", bench_name_);
    json.key("tables");
    json.beginArray();
    for (const auto& [title, rows] : tables_) {
        json.beginObject();
        json.field("title", title);
        json.key("rows");
        // Splice the pre-rendered row array in verbatim.
        json.raw(rows);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (!file) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path_.c_str());
        return;
    }
    std::fprintf(file, "%s\n", json.str().c_str());
    std::fclose(file);
}

} // namespace lba::bench
