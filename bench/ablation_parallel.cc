/**
 * @file
 * Ablation ABL-PAR: parallelizing lifeguards across cores (paper
 * Section 1: "the lifeguard functionality can be split across multiple
 * cores"; Section 3 lists it as an overhead-reduction direction).
 * Address-sharded AddrCheck and LockSet; TaintCheck is excluded because
 * its register state serializes the stream (see core/parallel.h).
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: parallel lifeguard cores (log sharded by "
                "address)\n\n");
    struct Case
    {
        const char* benchmark;
        const char* lifeguard;
        core::LifeguardFactory factory;
    };
    std::vector<Case> cases = {
        {"mcf", "AddrCheck", bench::makeAddrCheck()},
        {"zchaff", "LockSet", bench::makeLockSet()},
    };

    for (const Case& c : cases) {
        auto generated = workload::generate(
            *workload::findProfile(c.benchmark), {}, instrs);
        core::Experiment exp(generated.program);
        stats::Table table({"lifeguard cores", "slowdown",
                            "speedup vs 1 core", "B/record",
                            "per-shard occupancy"});
        double base = 0;
        for (unsigned shards : {1u, 2u, 4u}) {
            auto result =
                exp.runParallelLba(c.factory, shards);
            if (shards == 1) base = result.slowdown;
            // Occupancy: the fraction of the run each shard's core
            // spent consuming records (unified-engine per-lane stats).
            std::string occupancy;
            for (unsigned s = 0; s < shards; ++s) {
                if (s) occupancy += "/";
                occupancy += stats::formatDouble(
                    100.0 *
                        static_cast<double>(
                            result.parallel.shard_busy_cycles[s]) /
                        static_cast<double>(
                            result.parallel.total_cycles),
                    0);
                occupancy += "%";
            }
            table.addRow({std::to_string(shards),
                          stats::formatSlowdown(result.slowdown),
                          stats::formatDouble(base / result.slowdown,
                                              2),
                          stats::formatDouble(
                              result.parallel.bytes_per_record, 3),
                          occupancy});
        }
        std::printf("%s on %s\n%s\n", c.lifeguard, c.benchmark,
                    table.toString().c_str());
    }
    return 0;
}
