/**
 * @file
 * Ablation ABL-SCHED: multi-tenant lifeguard scheduling — N monitored
 * applications sharing an M-lane lifeguard pool (src/sched/). Sweeps
 * tenants x lanes x policy and reports per-configuration make-span,
 * mean per-tenant slowdown, tail consume lag and lane steals, so the
 * isolation-vs-sharing trade-off of each policy is visible in one
 * table.
 *
 * The paper dedicates lifeguard cores to one application; a deployed
 * chip monitors many at once, which is exactly the case this ablation
 * quantifies. The tenants=1 rows are cycle-identical to
 * ablation_parallel's shards rows by the pool's differential invariant.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "sched/pool.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("ablation_sched",
                             bench::jsonOutPath(argc, argv));
    std::uint64_t instrs = bench::benchInstructions();

    // A mixed tenant population: allocation-heavy (bc), cache-hostile
    // (mcf), streaming (gzip) and markup-churn (tidy) applications.
    const char* population[] = {"gzip", "mcf", "bc", "tidy"};

    std::printf("Ablation: multi-tenant lifeguard scheduling "
                "(shared %s pool)\n\n",
                "AddrCheck");
    stats::Table table({"tenants", "lanes", "policy", "makespan",
                        "mean slowdown", "worst slowdown", "p95 lag",
                        "steals"});

    for (unsigned tenants : {1u, 2u, 4u}) {
        for (unsigned lanes : {1u, 2u, 4u}) {
            for (sched::Policy policy :
                 {sched::Policy::kStatic, sched::Policy::kRoundRobin,
                  sched::Policy::kLagAware}) {
                sched::PoolConfig config;
                config.lanes = lanes;
                config.policy = policy;
                // A finite transport makes pool bandwidth (and thus
                // admission and lag) a real resource.
                config.lba.transport_bytes_per_cycle = 2.0;
                config.slice_instructions = 5000;
                sched::LifeguardPool pool(config,
                                          bench::makeAddrCheck());
                // Constant total work: each tenant runs its share.
                std::uint64_t share = std::max<std::uint64_t>(
                    instrs / tenants, 5000);
                for (unsigned t = 0; t < tenants; ++t) {
                    const char* name = population[t % 4];
                    auto generated = workload::generate(
                        *workload::findProfile(name), {}, share);
                    sched::TenantConfig tenant;
                    tenant.name = name;
                    tenant.program = generated.program;
                    tenant.process.input_seed = 0x1234abcd + t;
                    pool.addTenant(std::move(tenant));
                }
                sched::PoolResult result = pool.run();

                double sum = 0.0;
                double worst = 0.0;
                double p95 = 0.0;
                for (const sched::TenantStats& t : result.tenants) {
                    sum += t.slowdown;
                    worst = std::max(worst, t.slowdown);
                    p95 = std::max(p95, t.lag_p95);
                }
                table.addRow(
                    {std::to_string(tenants), std::to_string(lanes),
                     result.policy,
                     std::to_string(result.total_cycles),
                     stats::formatSlowdown(
                         sum / static_cast<double>(tenants)),
                     stats::formatSlowdown(worst),
                     stats::formatDouble(p95, 1),
                     std::to_string(result.lane_steals)});
            }
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("makespan = latest tenant completion (cycles); lag "
                "percentiles are per-record consume lag.\n");
    report.addTable("tenants x lanes x policy", table);
    return 0;
}
