/**
 * @file
 * Ablation ABL-STALL: cost of syscall containment (paper Section 2: the
 * OS stalls each syscall until the lifeguard drains the log, preventing
 * error propagation beyond the process container). Compares syscall-heavy
 * and syscall-light workloads with containment on/off.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: syscall-containment stall, AddrCheck\n");
    std::printf("(tidy/bc are syscall-heavy via allocation churn; mcf "
                "is syscall-light)\n\n");
    stats::Table table({"benchmark", "syscall drains", "no-stall",
                        "with stall", "containment cost"});
    for (const char* name : {"tidy", "bc", "gzip", "mcf"}) {
        auto generated =
            workload::generate(*workload::findProfile(name), {}, instrs);
        core::Experiment exp(generated.program);

        core::LbaConfig off = exp.config().lba;
        off.syscall_stall = false;
        auto without = exp.runLba(bench::makeAddrCheck(), off);

        core::LbaConfig on = exp.config().lba;
        on.syscall_stall = true;
        auto with = exp.runLba(bench::makeAddrCheck(), on);

        table.addRow(
            {name, std::to_string(with.lba.syscall_drains),
             stats::formatSlowdown(without.slowdown),
             stats::formatSlowdown(with.slowdown),
             stats::formatDouble(100.0 *
                                     (with.slowdown - without.slowdown) /
                                     without.slowdown,
                                 2) +
                 "%"});
    }
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
