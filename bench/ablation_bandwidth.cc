/**
 * @file
 * Ablation ABL-BW: why compress the log at all? Paper Section 2: the
 * hardware compresses each record "to reduce the bandwidth pressure and
 * buffer requirements on the log transport medium (the cache hierarchy
 * in our design)". This bench sweeps the transport bandwidth with
 * compression on (measured ~0.5-1 B/record) and off (24 B/record): at
 * cache-hierarchy-realistic bandwidths the uncompressed log throttles
 * the whole system, while the compressed log is never the bottleneck.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace lba;
    std::uint64_t instrs = bench::benchInstructions();

    std::printf("Ablation: log-transport bandwidth x compression, "
                "AddrCheck on gzip\n\n");
    auto generated =
        workload::generate(*workload::findProfile("gzip"), {}, instrs);
    core::Experiment exp(generated.program);

    stats::Table table({"transport (B/cycle)", "compressed",
                        "uncompressed (24 B/rec)",
                        "compressed, 2 shards"});
    for (double bw : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        core::LbaConfig on = exp.config().lba;
        on.compress = true;
        on.transport_bytes_per_cycle = bw;
        auto with = exp.runLba(bench::makeAddrCheck(), on);

        core::LbaConfig off = exp.config().lba;
        off.compress = false;
        off.transport_bytes_per_cycle = bw;
        auto without = exp.runLba(bench::makeAddrCheck(), off);

        // Same knob through the unified engine's parallel face: each
        // shard gets its own bw-limited transport link.
        auto split = exp.runParallelLba(
            bench::makeAddrCheck(), core::ParallelLbaConfig(on, 2));

        table.addRow({stats::formatDouble(bw, 1),
                      stats::formatSlowdown(with.slowdown),
                      stats::formatSlowdown(without.slowdown),
                      stats::formatSlowdown(split.slowdown)});
    }
    core::LbaConfig unlimited = exp.config().lba;
    auto free_bw = exp.runLba(bench::makeAddrCheck(), unlimited);
    auto free_split = exp.runParallelLba(bench::makeAddrCheck(), 2);
    table.addRow({"unlimited", stats::formatSlowdown(free_bw.slowdown),
                  stats::formatSlowdown(free_bw.slowdown),
                  stats::formatSlowdown(free_split.slowdown)});
    std::printf("%s\n", table.toString().c_str());
    std::printf("compressed log: %.3f bytes/record\n",
                free_bw.lba.bytes_per_record);
    return 0;
}
