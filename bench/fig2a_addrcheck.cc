/**
 * @file
 * Reproduces Figure 2(a): execution times of AddrCheck under a
 * Valgrind-style DBI baseline (v) and under LBA (l), normalized to
 * unmonitored execution, on the seven single-threaded benchmarks.
 *
 * Paper reference points: Valgrind lifeguards fall in the 10-85X band;
 * LBA AddrCheck averages 3.9X; LBA is 4-19X faster than Valgrind.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace lba;
    bench::JsonReport report("fig2a_addrcheck",
                             bench::jsonOutPath(argc, argv));
    auto rows = bench::runSuite(workload::singleThreadedSuite(),
                                bench::makeAddrCheck(),
                                bench::benchInstructions());
    stats::Table table = bench::printFigurePanel(
        "Figure 2(a): AddrCheck, LBA vs Valgrind-style DBI",
        "AddrCheck", rows);
    report.addTable("AddrCheck", table);
    return 0;
}
