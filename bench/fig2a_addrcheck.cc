/**
 * @file
 * Reproduces Figure 2(a): execution times of AddrCheck under a
 * Valgrind-style DBI baseline (v) and under LBA (l), normalized to
 * unmonitored execution, on the seven single-threaded benchmarks.
 *
 * Paper reference points: Valgrind lifeguards fall in the 10-85X band;
 * LBA AddrCheck averages 3.9X; LBA is 4-19X faster than Valgrind.
 */

#include "bench_common.h"

int
main()
{
    using namespace lba;
    auto rows = bench::runSuite(workload::singleThreadedSuite(),
                                bench::makeAddrCheck(),
                                bench::benchInstructions());
    bench::printFigurePanel(
        "Figure 2(a): AddrCheck, LBA vs Valgrind-style DBI",
        "AddrCheck", rows);
    return 0;
}
