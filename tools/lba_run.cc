/**
 * @file
 * lba_run — run a benchmark under a chosen lifeguard on each platform
 * and print the full report: the command-line face of the library.
 *
 * Usage:
 *   lba_run <benchmark> <addrcheck|taintcheck|lockset|bounds|memleak>
 *           [--instrs N] [--platform lba|dbi|both] [--shards N]
 *           [--transport-bw BYTES_PER_CYCLE] [--codec NAME]
 *           [--bugs uaf,double-free,leak,tainted-jump,race]
 *           [--tenants N] [--lanes M] [--sched static|rr|lag]
 *           [--containment abort|skip|patch|quarantine]
 *           [--checkpoint-interval N] [--json PATH]
 *           [--dispatch batched|per-record|fused]
 *           [--execution serial|threaded]
 *
 * With --tenants N the benchmark argument may be a comma-separated
 * list of profiles; the N tenants cycle through it and share an M-lane
 * lifeguard pool under the chosen scheduling policy (src/sched/).
 * --containment enables rewind-and-repair containment under the chosen
 * repair policy (src/replay/containment.h); the `--containment=policy`
 * spelling is accepted too. --dispatch selects the lifeguard-core
 * dispatch tier: `batched` (the default) drains records in batches
 * through the per-event-type handler tables, `fused` drains the same
 * batches through compiled handler IR (specialized loops, no per-record
 * table lookup), `per-record` is the retained virtual-dispatch
 * baseline; all three are cycle-identical by construction
 * (docs/ARCHITECTURE.md). --execution selects the host execution mode:
 * `threaded` runs lifeguard handlers on one worker thread per lane
 * while every simulated cycle count stays bit-identical to `serial`
 * (docs/ARCHITECTURE.md "Threaded execution"); it requires a batching
 * dispatch tier. --codec selects the registered log codec the
 * transport accounting runs (`predictor` is the default; see
 * `lba_trace codecs` for the registry). --json writes a
 * machine-readable copy of the report to PATH.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compress/registry.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/boundscheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/memleak.h"
#include "lifeguards/taintcheck.h"
#include "replay/containment.h"
#include "sched/pool.h"
#include "stats/json.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: lba_run <benchmark[,benchmark...]> "
        "<addrcheck|taintcheck|lockset|bounds|memleak>\n"
        "               [--instrs N] [--platform lba|dbi|both]\n"
        "               [--shards N] [--transport-bw BYTES_PER_CYCLE]\n"
        "               [--codec NAME]\n"
        "               [--bugs uaf,double-free,leak,tainted-jump,race]\n"
        "               [--tenants N] [--lanes M] "
        "[--sched static|rr|lag]\n"
        "               [--containment abort|skip|patch|quarantine]\n"
        "               [--checkpoint-interval N] [--json PATH]\n"
        "               [--dispatch batched|per-record|fused]\n"
        "               [--execution serial|threaded]\n");
    return 2;
}

void
printContainment(const replay::ContainmentStats& stats, bool aborted)
{
    std::printf("    containment: %llu checkpoints, %llu rewinds "
                "(max distance %llu instrs), %llu cycles charged%s\n",
                static_cast<unsigned long long>(stats.checkpoints),
                static_cast<unsigned long long>(stats.rewinds),
                static_cast<unsigned long long>(
                    stats.max_rewind_distance),
                static_cast<unsigned long long>(
                    stats.rewind_cycles + stats.checkpoint_stall_cycles),
                aborted ? " [aborted]" : "");
    std::printf("    repairs: %llu patched, %llu skipped, "
                "%llu quarantined, %llu aborted, %llu suppressed\n",
                static_cast<unsigned long long>(stats.repairs.patched),
                static_cast<unsigned long long>(stats.repairs.skipped),
                static_cast<unsigned long long>(
                    stats.repairs.quarantined),
                static_cast<unsigned long long>(stats.repairs.aborted),
                static_cast<unsigned long long>(
                    stats.repairs.suppressed));
}

void
appendContainmentJson(stats::JsonWriter& json, replay::RepairPolicy policy,
                      const replay::ContainmentStats& stats, bool aborted)
{
    json.key("containment");
    json.beginObject();
    json.field("policy", replay::repairPolicyName(policy));
    json.field("aborted", aborted);
    json.field("checkpoints", stats.checkpoints);
    json.field("syscall_checkpoints", stats.syscall_checkpoints);
    json.field("interval_checkpoints", stats.interval_checkpoints);
    json.field("undo_entries", stats.undo_entries);
    json.field("max_window_entries", stats.max_window_entries);
    json.field("rewinds", stats.rewinds);
    json.field("rewound_instructions", stats.rewound_instructions);
    json.field("max_rewind_distance", stats.max_rewind_distance);
    json.field("rewind_distance_p50",
               stats.rewind_distance.percentileUpperBound(0.50));
    json.field("rewind_distance_p95",
               stats.rewind_distance.percentileUpperBound(0.95));
    json.field("rewind_cycles",
               static_cast<std::uint64_t>(stats.rewind_cycles));
    json.field("checkpoint_stall_cycles",
               static_cast<std::uint64_t>(stats.checkpoint_stall_cycles));
    json.key("repairs");
    json.beginObject();
    json.field("patched", stats.repairs.patched);
    json.field("skipped", stats.repairs.skipped);
    json.field("quarantined", stats.repairs.quarantined);
    json.field("aborted", stats.repairs.aborted);
    json.field("suppressed", stats.repairs.suppressed);
    json.endObject();
    json.endObject();
}

void
printResult(const core::PlatformResult& result)
{
    std::printf("%-12s %12llu cycles   %6.2fx slowdown",
                result.platform.c_str(),
                static_cast<unsigned long long>(result.cycles),
                result.slowdown);
    if (result.platform == "lba") {
        std::printf("   (%.3f B/record via %s, %llu drains)",
                    result.lba.bytes_per_record,
                    result.lba.codec.c_str(),
                    static_cast<unsigned long long>(
                        result.lba.syscall_drains));
    }
    if (result.platform == "lba-parallel") {
        std::printf("   (%.3f B/record via %s, %llu drains)",
                    result.parallel.bytes_per_record,
                    result.parallel.codec.c_str(),
                    static_cast<unsigned long long>(
                        result.parallel.syscall_drains));
    }
    std::printf("\n");
    if (result.containment_enabled) {
        printContainment(result.containment, result.aborted);
    }
    if (result.platform == "lba-parallel") {
        for (std::size_t s = 0;
             s < result.parallel.shard_busy_cycles.size(); ++s) {
            std::printf(
                "    shard %zu: %llu records, %llu busy cycles "
                "(%.0f%% occupancy), lag %.1f\n",
                s,
                static_cast<unsigned long long>(
                    result.parallel.shard_records[s]),
                static_cast<unsigned long long>(
                    result.parallel.shard_busy_cycles[s]),
                100.0 *
                    static_cast<double>(
                        result.parallel.shard_busy_cycles[s]) /
                    static_cast<double>(result.parallel.total_cycles),
                result.parallel.shard_consume_lag[s]);
        }
    }
    for (const auto& finding : result.findings) {
        std::printf("    %s\n", lifeguard::toString(finding).c_str());
    }
}

void
appendResultJson(stats::JsonWriter& json,
                 const core::PlatformResult& result,
                 replay::RepairPolicy policy)
{
    json.beginObject();
    json.field("platform", result.platform);
    json.field("instructions", result.instructions);
    json.field("cycles", static_cast<std::uint64_t>(result.cycles));
    json.field("slowdown", result.slowdown);
    json.field("findings",
               static_cast<std::uint64_t>(result.findings.size()));
    if (result.platform == "lba") {
        json.field("bytes_per_record", result.lba.bytes_per_record);
        json.field("codec", result.lba.codec);
        json.field("transport_bytes", result.lba.transport_bytes);
        json.field("mean_consume_lag", result.lba.mean_consume_lag);
    }
    if (result.platform == "lba-parallel") {
        json.field("bytes_per_record",
                   result.parallel.bytes_per_record);
        json.field("codec", result.parallel.codec);
        json.field("transport_bytes",
                   result.parallel.transport_bytes);
        json.field("shards",
                   static_cast<std::uint64_t>(
                       result.parallel.shard_busy_cycles.size()));
    }
    if (result.containment_enabled) {
        appendContainmentJson(json, policy, result.containment,
                              result.aborted);
    }
    json.endObject();
}

/** Write @p json to @p path ("" = disabled). */
void
writeJson(const std::string& path, const stats::JsonWriter& json)
{
    if (path.empty()) return;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(file, "%s\n", json.str().c_str());
    std::fclose(file);
}

/** Split a comma-separated benchmark list. */
std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
runMultiTenant(const std::vector<std::string>& benchmarks,
               const std::string& lifeguard_name,
               const core::LifeguardFactory& factory,
               std::uint64_t instrs, unsigned tenants, unsigned lanes,
               sched::Policy policy, double transport_bw,
               const std::string& codec, core::DispatchTier dispatch_tier,
               core::ExecutionMode execution,
               const workload::BugInjection& bugs,
               const replay::ContainmentConfig& containment,
               const std::string& json_path)
{
    sched::PoolConfig config;
    config.lanes = lanes;
    config.policy = policy;
    config.lba.transport_bytes_per_cycle = transport_bw;
    config.lba.codec = codec;
    config.lba.dispatch_tier = dispatch_tier;
    config.lba.execution = execution;
    config.containment = containment;
    sched::LifeguardPool pool(config, factory);

    for (unsigned t = 0; t < tenants; ++t) {
        const std::string& name = benchmarks[t % benchmarks.size()];
        const workload::Profile* profile = workload::findProfile(name);
        if (!profile) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         name.c_str());
            return 1;
        }
        auto generated = workload::generate(*profile, bugs, instrs);
        sched::TenantConfig tenant;
        tenant.name = name + "#" + std::to_string(t);
        tenant.program = generated.program;
        // Distinct input streams so tenants are not in lockstep.
        tenant.process.input_seed = 0x1234abcd + t;
        pool.addTenant(std::move(tenant));
    }
    sched::PoolResult result = pool.run();

    std::printf("%u tenants on a %u-lane %s pool, policy %s "
                "(capacity %.1f B/cycle, %llu lane steals)\n\n",
                tenants, lanes, lifeguard_name.c_str(),
                result.policy.c_str(), result.capacity_bytes_per_cycle,
                static_cast<unsigned long long>(result.lane_steals));
    std::printf("%-12s %-8s %12s %9s %8s %8s %8s %9s\n", "tenant",
                "status", "cycles", "slowdown", "lag p50", "lag p95",
                "lag p99", "findings");
    for (const sched::TenantStats& tenant : result.tenants) {
        const char* status = tenant.rejected
                                 ? "rejected"
                                 : (tenant.was_queued ? "queued" : "ok");
        std::printf("%-12s %-8s %12llu %8.2fx %8.1f %8.1f %8.1f %9zu\n",
                    tenant.name.c_str(), status,
                    static_cast<unsigned long long>(tenant.total_cycles),
                    tenant.slowdown, tenant.lag_p50, tenant.lag_p95,
                    tenant.lag_p99, tenant.findings.size());
        if (tenant.containment_enabled &&
            (tenant.containment.rewinds > 0 || tenant.aborted)) {
            printContainment(tenant.containment, tenant.aborted);
        }
    }
    std::printf("\nmakespan %llu cycles; pool busy %llu lifeguard "
                "cycles over %u lanes\n",
                static_cast<unsigned long long>(result.total_cycles),
                static_cast<unsigned long long>(
                    result.aggregate.lifeguard_busy_cycles),
                lanes);

    stats::JsonWriter json;
    json.beginObject();
    json.field("tool", "lba_run");
    json.field("mode", "multi-tenant");
    json.field("lifeguard", lifeguard_name);
    json.field("codec", codec);
    json.field("policy", result.policy);
    json.field("lanes", static_cast<std::uint64_t>(lanes));
    json.field("capacity_bytes_per_cycle",
               result.capacity_bytes_per_cycle);
    json.field("lane_steals", result.lane_steals);
    json.field("makespan_cycles",
               static_cast<std::uint64_t>(result.total_cycles));
    json.key("tenants");
    json.beginArray();
    for (const sched::TenantStats& tenant : result.tenants) {
        json.beginObject();
        json.field("name", tenant.name);
        json.field("admitted", tenant.admitted);
        json.field("queued", tenant.was_queued);
        json.field("rejected", tenant.rejected);
        json.field("instructions", tenant.instructions);
        json.field("cycles",
                   static_cast<std::uint64_t>(tenant.total_cycles));
        json.field("slowdown", tenant.slowdown);
        json.field("lag_p50", tenant.lag_p50);
        json.field("lag_p95", tenant.lag_p95);
        json.field("lag_p99", tenant.lag_p99);
        json.field("transport_bytes", tenant.lba.transport_bytes);
        json.field("codec", tenant.lba.codec);
        json.field("findings",
                   static_cast<std::uint64_t>(tenant.findings.size()));
        if (tenant.containment_enabled) {
            appendContainmentJson(json, containment.policy,
                                  tenant.containment, tenant.aborted);
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    writeJson(json_path, json);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3) return usage();
    std::string benchmark = argv[1];
    std::string lifeguard_name = argv[2];

    std::uint64_t instrs = 250000;
    std::string platform = "both";
    unsigned shards = 0;
    unsigned tenants = 0;
    unsigned lanes = 2;
    sched::Policy policy = sched::Policy::kStatic;
    double transport_bw = 0.0;
    std::string codec = compress::kDefaultCodec;
    std::string json_path;
    workload::BugInjection bugs;
    replay::ContainmentConfig containment;
    core::DispatchTier dispatch_tier = core::DispatchTier::kBatched;
    auto parse_dispatch = [&](const std::string& value) {
        if (value == "batched") {
            dispatch_tier = core::DispatchTier::kBatched;
        } else if (value == "per-record") {
            dispatch_tier = core::DispatchTier::kPerRecord;
        } else if (value == "fused") {
            dispatch_tier = core::DispatchTier::kFused;
        } else {
            return false;
        }
        return true;
    };
    core::ExecutionMode execution = core::ExecutionMode::kSerial;
    auto parse_execution = [&](const std::string& value) {
        if (value == "serial") {
            execution = core::ExecutionMode::kSerial;
        } else if (value == "threaded") {
            execution = core::ExecutionMode::kThreaded;
        } else {
            return false;
        }
        return true;
    };
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        // The containment flags also accept the `--flag=value`
        // spelling; every other flag takes `--flag value` only.
        std::size_t eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            // Not an over-read: the value is carried in arg itself.
            std::string value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            if (arg == "--containment") {
                containment.enabled = true;
                if (!replay::parseRepairPolicy(value,
                                               &containment.policy)) {
                    return usage();
                }
                continue;
            }
            if (arg == "--checkpoint-interval") {
                containment.checkpoint_interval =
                    std::strtoull(value.c_str(), nullptr, 10);
                continue;
            }
            if (arg == "--dispatch") {
                if (!parse_dispatch(value)) return usage();
                continue;
            }
            if (arg == "--execution") {
                if (!parse_execution(value)) return usage();
                continue;
            }
            return usage();
        }
        if (arg == "--instrs" && i + 1 < argc) {
            instrs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--platform" && i + 1 < argc) {
            platform = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--tenants" && i + 1 < argc) {
            tenants = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--lanes" && i + 1 < argc) {
            lanes = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--sched" && i + 1 < argc) {
            if (!sched::parsePolicy(argv[++i], &policy)) return usage();
        } else if (arg == "--transport-bw" && i + 1 < argc) {
            transport_bw = std::strtod(argv[++i], nullptr);
        } else if (arg == "--codec" && i + 1 < argc) {
            codec = argv[++i];
        } else if (arg == "--containment" && i + 1 < argc) {
            containment.enabled = true;
            if (!replay::parseRepairPolicy(argv[++i],
                                           &containment.policy)) {
                return usage();
            }
        } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
            containment.checkpoint_interval =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--dispatch" && i + 1 < argc) {
            if (!parse_dispatch(argv[++i])) return usage();
        } else if (arg == "--execution" && i + 1 < argc) {
            if (!parse_execution(argv[++i])) return usage();
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--bugs" && i + 1 < argc) {
            std::string list = argv[++i];
            bugs.use_after_free = list.find("uaf") != std::string::npos;
            bugs.double_free =
                list.find("double-free") != std::string::npos;
            bugs.leak = list.find("leak") != std::string::npos;
            bugs.tainted_jump =
                list.find("tainted-jump") != std::string::npos;
            bugs.race = list.find("race") != std::string::npos;
        } else {
            return usage();
        }
    }
    if (execution == core::ExecutionMode::kThreaded &&
        dispatch_tier == core::DispatchTier::kPerRecord) {
        // Threaded execution's cross-thread barriers are the batching
        // tiers' flush boundaries; the per-record path has none.
        std::fprintf(stderr, "--execution threaded requires "
                             "--dispatch batched|fused\n");
        return usage();
    }
    if (containment.checkpoint_interval > 0 && !containment.enabled) {
        std::fprintf(stderr, "--checkpoint-interval requires "
                             "--containment <policy>\n");
        return usage();
    }
    if (containment.enabled && platform == "dbi" && tenants == 0) {
        // Containment is an LBA-platform feature; a DBI-only run would
        // silently ignore the flag.
        std::fprintf(stderr, "--containment requires an LBA platform "
                             "(--platform lba|both)\n");
        return usage();
    }
    if (!compress::CodecRegistry::instance().find(codec)) {
        std::fprintf(stderr, "unknown codec '%s'; registered:",
                     codec.c_str());
        for (const std::string& name :
             compress::CodecRegistry::instance().names()) {
            std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, "\n");
        return usage();
    }

    core::LifeguardFactory factory;
    if (lifeguard_name == "addrcheck") {
        factory = [] {
            return std::make_unique<lifeguards::AddrCheck>();
        };
    } else if (lifeguard_name == "taintcheck") {
        factory = [] {
            return std::make_unique<lifeguards::TaintCheck>();
        };
    } else if (lifeguard_name == "lockset") {
        factory = [] {
            return std::make_unique<lifeguards::LockSet>();
        };
    } else if (lifeguard_name == "bounds") {
        factory = [] {
            return std::make_unique<lifeguards::BoundsCheck>();
        };
    } else if (lifeguard_name == "memleak") {
        factory = [] {
            return std::make_unique<lifeguards::MemLeak>();
        };
    } else {
        return usage();
    }

    if (tenants > 0) {
        // Malformed --lanes (strtoul yields 0) is a CLI error, not a
        // library invariant violation.
        if (lanes == 0) return usage();
        auto benchmarks = splitList(benchmark);
        if (benchmarks.empty()) return usage();
        return runMultiTenant(benchmarks, lifeguard_name, factory,
                              instrs, tenants, lanes, policy,
                              transport_bw, codec, dispatch_tier,
                              execution, bugs, containment, json_path);
    }

    const workload::Profile* profile = workload::findProfile(benchmark);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    auto generated = workload::generate(*profile, bugs, instrs);
    core::ExperimentConfig config;
    // The parallel platform inherits the same knob through
    // Experiment::runParallelLba (one timing engine under both).
    config.lba.transport_bytes_per_cycle = transport_bw;
    config.lba.codec = codec;
    config.lba.dispatch_tier = dispatch_tier;
    config.lba.execution = execution;
    config.containment = containment;
    core::Experiment experiment(generated.program, config);
    const auto& base = experiment.unmonitored();
    std::printf("%s under %s (%llu instructions, CPI %.2f "
                "unmonitored)\n\n",
                benchmark.c_str(), lifeguard_name.c_str(),
                static_cast<unsigned long long>(base.instructions),
                static_cast<double>(base.cycles) /
                    static_cast<double>(base.instructions));
    std::vector<core::PlatformResult> results;
    printResult(base);
    results.push_back(base);
    if (platform == "lba" || platform == "both") {
        if (shards > 1) {
            results.push_back(
                experiment.runParallelLba(factory, shards));
        } else {
            results.push_back(experiment.runLba(factory));
        }
        printResult(results.back());
    }
    if (platform == "dbi" || platform == "both") {
        results.push_back(experiment.runDbi(factory));
        printResult(results.back());
    }

    stats::JsonWriter json;
    json.beginObject();
    json.field("tool", "lba_run");
    json.field("mode", "single");
    json.field("benchmark", benchmark);
    json.field("lifeguard", lifeguard_name);
    json.field("codec", codec);
    json.key("results");
    json.beginArray();
    for (const core::PlatformResult& result : results) {
        appendResultJson(json, result, containment.policy);
    }
    json.endArray();
    json.endObject();
    writeJson(json_path, json);
    return 0;
}
