/**
 * @file
 * lba_run — run a benchmark under a chosen lifeguard on each platform
 * and print the full report: the command-line face of the library.
 *
 * Usage:
 *   lba_run <benchmark> <addrcheck|taintcheck|lockset>
 *           [--instrs N] [--platform lba|dbi|both] [--shards N]
 *           [--transport-bw BYTES_PER_CYCLE]
 *           [--bugs uaf,double-free,leak,tainted-jump,race]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: lba_run <benchmark> <addrcheck|taintcheck|lockset>\n"
        "               [--instrs N] [--platform lba|dbi|both]\n"
        "               [--shards N] [--transport-bw BYTES_PER_CYCLE]\n"
        "               [--bugs uaf,double-free,leak,tainted-jump,race]\n");
    return 2;
}

void
printResult(const core::PlatformResult& result)
{
    std::printf("%-12s %12llu cycles   %6.2fx slowdown",
                result.platform.c_str(),
                static_cast<unsigned long long>(result.cycles),
                result.slowdown);
    if (result.platform == "lba") {
        std::printf("   (%.3f B/record, %llu drains)",
                    result.lba.bytes_per_record,
                    static_cast<unsigned long long>(
                        result.lba.syscall_drains));
    }
    if (result.platform == "lba-parallel") {
        std::printf("   (%.3f B/record, %llu drains)",
                    result.parallel.bytes_per_record,
                    static_cast<unsigned long long>(
                        result.parallel.syscall_drains));
    }
    std::printf("\n");
    if (result.platform == "lba-parallel") {
        for (std::size_t s = 0;
             s < result.parallel.shard_busy_cycles.size(); ++s) {
            std::printf(
                "    shard %zu: %llu records, %llu busy cycles "
                "(%.0f%% occupancy), lag %.1f\n",
                s,
                static_cast<unsigned long long>(
                    result.parallel.shard_records[s]),
                static_cast<unsigned long long>(
                    result.parallel.shard_busy_cycles[s]),
                100.0 *
                    static_cast<double>(
                        result.parallel.shard_busy_cycles[s]) /
                    static_cast<double>(result.parallel.total_cycles),
                result.parallel.shard_consume_lag[s]);
        }
    }
    for (const auto& finding : result.findings) {
        std::printf("    %s\n", lifeguard::toString(finding).c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3) return usage();
    std::string benchmark = argv[1];
    std::string lifeguard_name = argv[2];

    std::uint64_t instrs = 250000;
    std::string platform = "both";
    unsigned shards = 0;
    double transport_bw = 0.0;
    workload::BugInjection bugs;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--instrs" && i + 1 < argc) {
            instrs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--platform" && i + 1 < argc) {
            platform = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--transport-bw" && i + 1 < argc) {
            transport_bw = std::strtod(argv[++i], nullptr);
        } else if (arg == "--bugs" && i + 1 < argc) {
            std::string list = argv[++i];
            bugs.use_after_free = list.find("uaf") != std::string::npos;
            bugs.double_free =
                list.find("double-free") != std::string::npos;
            bugs.leak = list.find("leak") != std::string::npos;
            bugs.tainted_jump =
                list.find("tainted-jump") != std::string::npos;
            bugs.race = list.find("race") != std::string::npos;
        } else {
            return usage();
        }
    }

    const workload::Profile* profile = workload::findProfile(benchmark);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    core::LifeguardFactory factory;
    if (lifeguard_name == "addrcheck") {
        factory = [] {
            return std::make_unique<lifeguards::AddrCheck>();
        };
    } else if (lifeguard_name == "taintcheck") {
        factory = [] {
            return std::make_unique<lifeguards::TaintCheck>();
        };
    } else if (lifeguard_name == "lockset") {
        factory = [] {
            return std::make_unique<lifeguards::LockSet>();
        };
    } else {
        return usage();
    }

    auto generated = workload::generate(*profile, bugs, instrs);
    core::ExperimentConfig config;
    // The parallel platform inherits the same knob through
    // Experiment::runParallelLba (one timing engine under both).
    config.lba.transport_bytes_per_cycle = transport_bw;
    core::Experiment experiment(generated.program, config);
    const auto& base = experiment.unmonitored();
    std::printf("%s under %s (%llu instructions, CPI %.2f "
                "unmonitored)\n\n",
                benchmark.c_str(), lifeguard_name.c_str(),
                static_cast<unsigned long long>(base.instructions),
                static_cast<double>(base.cycles) /
                    static_cast<double>(base.instructions));
    printResult(base);
    if (platform == "lba" || platform == "both") {
        if (shards > 1) {
            printResult(experiment.runParallelLba(factory, shards));
        } else {
            printResult(experiment.runLba(factory));
        }
    }
    if (platform == "dbi" || platform == "both") {
        printResult(experiment.runDbi(factory));
    }
    return 0;
}
