/**
 * @file
 * lba_run — run a benchmark under a chosen lifeguard on each platform
 * and print the full report: the command-line face of the library.
 *
 * Usage:
 *   lba_run <benchmark> <addrcheck|taintcheck|lockset>
 *           [--instrs N] [--platform lba|dbi|both] [--shards N]
 *           [--bugs uaf,double-free,leak,tainted-jump,race]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/runner.h"
#include "lifeguards/addrcheck.h"
#include "lifeguards/lockset.h"
#include "lifeguards/taintcheck.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: lba_run <benchmark> <addrcheck|taintcheck|lockset>\n"
        "               [--instrs N] [--platform lba|dbi|both]\n"
        "               [--shards N]\n"
        "               [--bugs uaf,double-free,leak,tainted-jump,race]\n");
    return 2;
}

void
printResult(const core::PlatformResult& result)
{
    std::printf("%-12s %12llu cycles   %6.2fx slowdown",
                result.platform.c_str(),
                static_cast<unsigned long long>(result.cycles),
                result.slowdown);
    if (result.platform == "lba") {
        std::printf("   (%.3f B/record, %llu drains)",
                    result.lba.bytes_per_record,
                    static_cast<unsigned long long>(
                        result.lba.syscall_drains));
    }
    std::printf("\n");
    for (const auto& finding : result.findings) {
        std::printf("    %s\n", lifeguard::toString(finding).c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3) return usage();
    std::string benchmark = argv[1];
    std::string lifeguard_name = argv[2];

    std::uint64_t instrs = 250000;
    std::string platform = "both";
    unsigned shards = 0;
    workload::BugInjection bugs;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--instrs" && i + 1 < argc) {
            instrs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--platform" && i + 1 < argc) {
            platform = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--bugs" && i + 1 < argc) {
            std::string list = argv[++i];
            bugs.use_after_free = list.find("uaf") != std::string::npos;
            bugs.double_free =
                list.find("double-free") != std::string::npos;
            bugs.leak = list.find("leak") != std::string::npos;
            bugs.tainted_jump =
                list.find("tainted-jump") != std::string::npos;
            bugs.race = list.find("race") != std::string::npos;
        } else {
            return usage();
        }
    }

    const workload::Profile* profile = workload::findProfile(benchmark);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    core::LifeguardFactory factory;
    if (lifeguard_name == "addrcheck") {
        factory = [] {
            return std::make_unique<lifeguards::AddrCheck>();
        };
    } else if (lifeguard_name == "taintcheck") {
        factory = [] {
            return std::make_unique<lifeguards::TaintCheck>();
        };
    } else if (lifeguard_name == "lockset") {
        factory = [] {
            return std::make_unique<lifeguards::LockSet>();
        };
    } else {
        return usage();
    }

    auto generated = workload::generate(*profile, bugs, instrs);
    core::Experiment experiment(generated.program);
    const auto& base = experiment.unmonitored();
    std::printf("%s under %s (%llu instructions, CPI %.2f "
                "unmonitored)\n\n",
                benchmark.c_str(), lifeguard_name.c_str(),
                static_cast<unsigned long long>(base.instructions),
                static_cast<double>(base.cycles) /
                    static_cast<double>(base.instructions));
    printResult(base);
    if (platform == "lba" || platform == "both") {
        if (shards > 1) {
            printResult(experiment.runParallelLba(factory, shards));
        } else {
            printResult(experiment.runLba(factory));
        }
    }
    if (platform == "dbi" || platform == "both") {
        printResult(experiment.runDbi(factory));
    }
    return 0;
}
