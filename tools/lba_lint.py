#!/usr/bin/env python3
"""Concurrency ownership lint for the LBA runtime.

Checks the invariants that clang's Thread Safety Analysis cannot
express (see docs/STATIC_ANALYSIS.md):

  atomic-order   Every std::atomic operation in src/ must name an
                 explicit std::memory_order -- an implicit seq_cst is
                 treated as an unreviewed ordering decision. Operator
                 forms (++x, x += n, x = n) on atomics are rejected for
                 the same reason.
  raw-thread     std::thread may only be constructed/owned inside
                 core::ThreadedExecutor. Everyone else must go through
                 the executor so the worker-role discipline (one assume
                 site, publish/done barriers) cannot be bypassed.
                 std::thread::id and std::thread::hardware_concurrency
                 are metadata, not threads, and stay allowed.
  role-parity    core::PipelineTimer's static annotations and runtime
                 traps must agree: every *public* method annotated
                 LBA_COORDINATOR_ONLY must (transitively) call
                 assertCoordinator(), and every method that calls
                 assertCoordinator() directly must carry the
                 annotation. A passed runtime check is what the
                 ASSERT_CAPABILITY attribute claims statically; this
                 rule keeps the claim honest.
  fused-annotations
                 The fused dispatch tier's capability annotations must
                 not be dropped: lifeguard/compiler.h's
                 compileHandlers() stays LBA_COORDINATOR_ONLY (it runs
                 once, at engine construction, before workers exist --
                 tests/static_analysis/violation_worker_calls_compiler.cc
                 proves the TSA gate rejects a worker calling it, but
                 only while the annotation is present); dispatch.h's
                 fused drain entry points keep exactly the capability
                 sets of the batched tier they replace --
                 consumeBatchFused/fusedDrain require coordinator_role
                 + functional_side_, consumeBatchFusedDeferred requires
                 functional_side_ only (it runs on worker threads, like
                 consumeBatchDeferred).

The file list comes from compile_commands.json (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON -- the root CMakeLists does this by
default), plus every header under src/. Exit status is non-zero when
any finding is reported, so CI can use it as a hard gate.

Usage: tools/lba_lint.py [-p BUILD_DIR] [--repo REPO_ROOT]
"""

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Source scrubbing: blank out comments and string/char literals while
# preserving line structure, so regexes cannot match into prose.
# --------------------------------------------------------------------------

_SCRUB_RE = re.compile(
    r"""
      //[^\n]*                      # line comment
    | /\*.*?\*/                     # block comment
    | "(?:\\.|[^"\\\n])*"           # string literal
    | '(?:\\.|[^'\\\n])*'           # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def scrub(text):
    """Replace comment/literal contents with spaces (newlines kept)."""

    def blank(match):
        return "".join(c if c == "\n" else " " for c in match.group(0))

    return _SCRUB_RE.sub(blank, text)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------------


def source_files(repo, build_dir):
    """src/ translation units from compile_commands.json + src/ headers."""
    compdb = build_dir / "compile_commands.json"
    if not compdb.is_file():
        sys.exit(
            f"lba_lint: {compdb} not found -- configure the build first "
            "(cmake -B build -S .; CMAKE_EXPORT_COMPILE_COMMANDS is on "
            "by default)"
        )
    src_root = (repo / "src").resolve()
    files = set()
    for entry in json.loads(compdb.read_text()):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src_root in path.parents:
            files.add(path)
    if not files:
        sys.exit(f"lba_lint: no src/ entries in {compdb}")
    files.update(p.resolve() for p in src_root.rglob("*.h"))
    return sorted(files)


# --------------------------------------------------------------------------
# Rule: atomic-order
# --------------------------------------------------------------------------

_ATOMIC_DECL_RE = re.compile(r"std\s*::\s*atomic\s*<[^;{]*?>\s*(\w+)")
_ATOMIC_OP_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)


def _call_args(text, open_paren):
    """The argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def collect_atomic_names(scrubbed_by_file):
    names = set()
    for text in scrubbed_by_file.values():
        for match in _ATOMIC_DECL_RE.finditer(text):
            names.add(match.group(1))
    return names


def check_atomic_order(path, text, atomic_names, findings):
    for match in _ATOMIC_OP_RE.finditer(text):
        receiver, op = match.group(1), match.group(2)
        if receiver not in atomic_names:
            continue
        args = _call_args(text, match.end() - 1)
        if "memory_order" not in args:
            findings.append(
                Finding(
                    path,
                    line_of(text, match.start()),
                    "atomic-order",
                    f"{receiver}.{op}() without an explicit "
                    "std::memory_order (implicit seq_cst)",
                )
            )
    # Operator forms: ++x / x++ / x op= n / x = n on a known atomic.
    for name in atomic_names:
        op_re = re.compile(
            r"(\+\+|--)\s*\b%s\b(?!\s*(?:\.|->|\w))|"
            r"\b%s\s*(\+\+|--|[-+&|^]=|(?<![=!<>])=(?!=))" % (name, name)
        )
        for match in op_re.finditer(text):
            # Skip declarations / member-init lists: 'atomic<T> x{0}' is
            # matched above only for operators, and 'x(0)' init forms
            # contain no operator, so the only false positive left is a
            # same-named non-atomic local -- rename it instead.
            findings.append(
                Finding(
                    path,
                    line_of(text, match.start()),
                    "atomic-order",
                    f"operator access to atomic '{name}' (implicit "
                    "seq_cst) -- use .load/.store/.fetch_* with an "
                    "explicit std::memory_order",
                )
            )


# --------------------------------------------------------------------------
# Rule: raw-thread
# --------------------------------------------------------------------------

_THREAD_RE = re.compile(r"std\s*::\s*thread\b(\s*::\s*\w+)?")
_THREAD_ALLOWED_FILES = ("threaded_executor.h", "threaded_executor.cc")


def check_raw_thread(path, text, findings):
    if path.name in _THREAD_ALLOWED_FILES:
        return
    for match in _THREAD_RE.finditer(text):
        if match.group(1):  # std::thread::id / ::hardware_concurrency
            continue
        findings.append(
            Finding(
                path,
                line_of(text, match.start()),
                "raw-thread",
                "raw std::thread outside core::ThreadedExecutor -- "
                "host threads must go through the executor",
            )
        )


# --------------------------------------------------------------------------
# Rule: role-parity (core::PipelineTimer)
# --------------------------------------------------------------------------


def _matching_brace(text, open_brace):
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _class_body(text, class_name):
    match = re.search(r"\bclass\s+%s\b[^;{]*{" % class_name, text)
    if not match:
        return None, 0
    end = _matching_brace(text, match.end() - 1)
    return text[match.end() : end], match.end()


# A method introducer: name(...), possibly multi-line args, followed by
# qualifiers/annotations and then either ';' (declaration) or '{' (inline
# definition). Good enough for this codebase's clang-format style.
_METHOD_RE = re.compile(r"\b(~?\w+)\s*\(")

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "static_cast", "const_cast", "reinterpret_cast", "static_assert",
    "defined", "alignof", "decltype",
}


def _parse_class_methods(body, body_offset, text):
    """Yield (name, decl_tail_start, is_public, line) for each method.

    decl_tail_start points just past the closing ')' of the parameter
    list, where qualifiers and annotations live.
    """
    # Section markers.
    sections = [(0, True)]  # class PipelineTimer { public: ... first
    for match in re.finditer(r"\b(public|private|protected)\s*:", body):
        sections.append((match.start(), match.group(1) == "public"))
    sections.sort()

    def is_public(pos):
        state = False  # class default
        for start, public in sections:
            if start <= pos:
                state = public
        return state

    depth = 0
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0 and (ch.isalpha() or ch == "_" or ch == "~"):
            match = _METHOD_RE.match(body, i)
            if match and match.group(1) not in _CONTROL_KEYWORDS:
                close = _matching_paren(body, match.end() - 1)
                yield (
                    match.group(1),
                    close + 1,
                    is_public(i),
                    line_of(text, body_offset + i),
                )
                i = close + 1
                continue
        i += 1


def _matching_paren(text, open_paren):
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _decl_tail(body, start):
    """Text between a parameter list and the ';' or '{' ending the decl."""
    for i in range(start, len(body)):
        if body[i] in ";{":
            return body[start:i], body[i], i
    return body[start:], ";", len(body)


_CALL_RE = re.compile(r"\b(\w+)\s*\(")


def _body_calls(body_text):
    return {
        m.group(1)
        for m in _CALL_RE.finditer(body_text)
        if m.group(1) not in _CONTROL_KEYWORDS
    }


def check_role_parity(repo, findings):
    header_path = repo / "src" / "core" / "pipeline_timer.h"
    impl_path = repo / "src" / "core" / "pipeline_timer.cc"
    header = scrub(header_path.read_text())
    impl = scrub(impl_path.read_text())

    body, offset = _class_body(header, "PipelineTimer")
    if body is None:
        findings.append(
            Finding(header_path, 1, "role-parity",
                    "class PipelineTimer not found")
        )
        return

    annotated = {}  # name -> (is_public, line)
    inline_bodies = {}  # name -> body text
    method_names = set()
    for name, tail_start, public, line in _parse_class_methods(
        body, offset, header
    ):
        tail, terminator, term_pos = _decl_tail(body, tail_start)
        method_names.add(name)
        if "LBA_COORDINATOR_ONLY" in tail:
            # Both overloads of log()/retire() are annotated; keeping
            # the first line is fine for reporting.
            annotated.setdefault(name, (public, line))
        if terminator == "{":
            end = _matching_brace(body, term_pos)
            inline_bodies.setdefault(name, "")
            inline_bodies[name] += body[term_pos : end + 1]

    # Out-of-line bodies.
    cc_bodies = {}
    for match in re.finditer(r"\bPipelineTimer\s*::\s*(~?\w+)\s*\(", impl):
        name = match.group(1)
        close = _matching_paren(impl, match.end() - 1)
        tail, terminator, term_pos = _decl_tail(impl, close + 1)
        if terminator != "{":
            continue  # a declaration or pointer-to-member mention
        end = _matching_brace(impl, term_pos)
        cc_bodies.setdefault(name, "")
        cc_bodies[name] += impl[term_pos : end + 1]
        method_names.add(name)

    bodies = {}
    for name in method_names:
        bodies[name] = inline_bodies.get(name, "") + cc_bodies.get(name, "")

    calls = {name: _body_calls(text) for name, text in bodies.items()}

    def reaches_assert(name, seen=None):
        if seen is None:
            seen = set()
        if name in seen:
            return False
        seen.add(name)
        direct = calls.get(name, set())
        if "assertCoordinator" in direct:
            return True
        return any(
            callee in method_names and reaches_assert(callee, seen)
            for callee in direct
        )

    # Direction 1: a public LBA_COORDINATOR_ONLY method must prove the
    # role at runtime (transitively -- e.g. via syncConst/flushPending).
    for name, (public, line) in sorted(annotated.items()):
        if not public:
            continue
        if not bodies.get(name):
            findings.append(
                Finding(
                    header_path, line, "role-parity",
                    f"no body found for annotated method '{name}' "
                    "(lint parser out of date?)",
                )
            )
            continue
        if not reaches_assert(name):
            findings.append(
                Finding(
                    header_path, line, "role-parity",
                    f"public method '{name}' is LBA_COORDINATOR_ONLY "
                    "but never reaches assertCoordinator() -- the "
                    "static claim has no runtime twin",
                )
            )

    # Direction 2: a method that asserts the role must also declare it.
    for name, direct in sorted(calls.items()):
        if name in ("assertCoordinator", "PipelineTimer"):
            # The trap itself, and the constructors (which *assume* the
            # role -- they define the coordinator, nothing to require).
            continue
        if "assertCoordinator" in direct and name not in annotated:
            findings.append(
                Finding(
                    header_path, 1, "role-parity",
                    f"method '{name}' calls assertCoordinator() but is "
                    "not annotated LBA_COORDINATOR_ONLY",
                )
            )


# --------------------------------------------------------------------------
# Rule: fused-annotations (lifeguard/compiler.h + lifeguard/dispatch.h)
# --------------------------------------------------------------------------

# method name -> (annotation substrings that must appear in every
# declaration tail, substrings that must NOT appear). Checked against
# the headers only: clang TSA takes attributes from the declaration,
# so the .cc definitions carry none.
_FUSED_RULES = {
    "compileHandlers": (("LBA_COORDINATOR_ONLY",), ()),
    "consumeBatchFused": (("coordinator_role", "functional_side_"), ()),
    "fusedDrain": (("coordinator_role", "functional_side_"), ()),
    "consumeBatchFusedDeferred": (("functional_side_",),
                                  ("coordinator_role",)),
}


def check_fused_annotations(repo, findings):
    for rel in (("src", "lifeguard", "compiler.h"),
                ("src", "lifeguard", "dispatch.h")):
        path = repo.joinpath(*rel)
        if not path.is_file():
            findings.append(
                Finding(path, 1, "fused-annotations",
                        "expected header not found (fused tier moved? "
                        "update tools/lba_lint.py)")
            )
            continue
        text = scrub(path.read_text())
        for name, (required, forbidden) in _FUSED_RULES.items():
            for match in re.finditer(r"\b%s\s*\(" % name, text):
                close = _matching_paren(text, match.end() - 1)
                tail, terminator, _ = _decl_tail(text, close + 1)
                if terminator not in ";{":
                    continue
                line = line_of(text, match.start())
                for want in required:
                    if want not in tail:
                        findings.append(
                            Finding(
                                path, line, "fused-annotations",
                                f"declaration of '{name}' lost the "
                                f"'{want}' capability requirement -- "
                                "the fused tier must keep the batched "
                                "tier's ownership contract",
                            )
                        )
                for bad in forbidden:
                    if bad in tail:
                        findings.append(
                            Finding(
                                path, line, "fused-annotations",
                                f"declaration of '{name}' now requires "
                                f"'{bad}' -- the deferred functional "
                                "half runs on worker threads and must "
                                "stay callable without it",
                            )
                        )

    # The rule must be checking something real: every rule name has to
    # appear at least once, or the lint is silently dead.
    seen = scrub(
        (repo / "src" / "lifeguard" / "compiler.h").read_text()
        if (repo / "src" / "lifeguard" / "compiler.h").is_file() else ""
    ) + scrub(
        (repo / "src" / "lifeguard" / "dispatch.h").read_text()
        if (repo / "src" / "lifeguard" / "dispatch.h").is_file() else ""
    )
    for name in _FUSED_RULES:
        if not re.search(r"\b%s\s*\(" % name, seen):
            findings.append(
                Finding(
                    repo / "src" / "lifeguard" / "dispatch.h", 1,
                    "fused-annotations",
                    f"'{name}' not found in the fused-tier headers "
                    "(renamed? update tools/lba_lint.py)",
                )
            )


# --------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-p", "--build-dir", default="build",
        help="build directory containing compile_commands.json",
    )
    parser.add_argument(
        "--repo", default=None,
        help="repository root (default: parent of this script's dir)",
    )
    args = parser.parse_args()

    repo = Path(args.repo) if args.repo else Path(__file__).resolve().parents[1]
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = repo / build_dir

    files = source_files(repo, build_dir)
    scrubbed = {path: scrub(path.read_text()) for path in files}

    findings = []
    atomic_names = collect_atomic_names(scrubbed)
    for path, text in scrubbed.items():
        check_atomic_order(path, text, atomic_names, findings)
        check_raw_thread(path, text, findings)
    check_role_parity(repo, findings)
    check_fused_annotations(repo, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lba_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lba_lint: OK ({len(files)} files, "
          f"{len(atomic_names)} atomic variables)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
