/**
 * @file
 * lba_trace — the "trace generation tool" of the paper's methodology:
 * run a benchmark program under the capture hardware and store its
 * compressed event trace, or inspect/dump an existing trace file.
 *
 * Usage:
 *   lba_trace gen <benchmark> <out.lbat> [instructions] [--codec name]
 *   lba_trace info <trace.lbat>
 *   lba_trace dump <trace.lbat> [count]
 *   lba_trace list
 *   lba_trace codecs
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compress/registry.h"
#include "compress/trace_file.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  lba_trace gen <benchmark> <out.lbat> [instructions]"
                 " [--codec name]\n"
                 "  lba_trace info <trace.lbat>\n"
                 "  lba_trace dump <trace.lbat> [count]\n"
                 "  lba_trace list\n"
                 "  lba_trace codecs\n");
    return 2;
}

int
cmdList()
{
    std::printf("benchmarks (paper Section 3 suite):\n");
    for (const workload::Profile& p : workload::fullSuite()) {
        std::printf("  %-9s %u thread(s), %4.0f%% memory refs, "
                    "%u KiB working set\n",
                    p.name.c_str(), p.threads, p.mem_fraction * 100,
                    p.working_set_kb);
    }
    std::printf("benchmarks (request-serving suite):\n");
    for (const workload::Profile& p : workload::serverSuite()) {
        std::printf("  %-9s %u thread(s), %4.0f%% memory refs, "
                    "%u KiB working set, %u phases%s\n",
                    p.name.c_str(), p.threads, p.mem_fraction * 100,
                    p.working_set_kb, p.phases,
                    p.worker_churn ? ", worker churn" : "");
    }
    return 0;
}

int
cmdCodecs()
{
    std::printf("registered codecs:\n");
    auto& registry = compress::CodecRegistry::instance();
    for (const std::string& name : registry.names()) {
        const compress::CodecInfo* info = registry.find(name);
        std::printf("  %-10s %s%s\n", name.c_str(),
                    info->description.c_str(),
                    name == compress::kDefaultCodec ? " [default]" : "");
    }
    return 0;
}

int
cmdGen(const std::string& benchmark, const std::string& path,
       std::uint64_t instructions, const std::string& codec)
{
    const workload::Profile* profile = workload::findProfile(benchmark);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s' (try: list)\n",
                     benchmark.c_str());
        return 1;
    }
    auto generated = workload::generate(*profile, {}, instructions);
    std::vector<log::EventRecord> records;
    log::CaptureUnit capture(
        [&](const log::EventRecord& r) { records.push_back(r); });
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(&capture);
    if (!result.all_exited) {
        std::fprintf(stderr, "warning: benchmark did not run to "
                             "completion\n");
    }

    compress::DecodeError error;
    if (!compress::writeTrace(path, records, codec, &error)) {
        std::fprintf(stderr, "write failed: %s\n",
                     error.toString().c_str());
        return 1;
    }
    auto info = compress::readTraceInfo(path, &error);
    std::printf("%s: %llu records, codec %s, %.3f bytes/record "
                "compressed\n",
                path.c_str(),
                static_cast<unsigned long long>(records.size()),
                codec.c_str(), info ? info->bytesPerRecord() : 0.0);
    return 0;
}

int
cmdInfo(const std::string& path)
{
    compress::DecodeError error;
    auto info = compress::readTraceInfo(path, &error);
    if (!info) {
        std::fprintf(stderr, "%s\n", error.toString().c_str());
        return 1;
    }
    std::printf("version        : %u\n", info->version);
    std::printf("codec          : %s\n", info->codec.c_str());
    std::printf("records        : %llu\n",
                static_cast<unsigned long long>(info->records));
    std::printf("payload bytes  : %llu\n",
                static_cast<unsigned long long>(info->payload_bytes));
    std::printf("bytes/record   : %.3f  (paper target: < 1)\n",
                info->bytesPerRecord());
    return 0;
}

int
cmdDump(const std::string& path, std::uint64_t count)
{
    compress::DecodeError error;
    auto records = compress::readTrace(path, &error);
    if (!records) {
        std::fprintf(stderr, "%s\n", error.toString().c_str());
        return 1;
    }
    std::uint64_t n = std::min<std::uint64_t>(count, records->size());
    for (std::uint64_t i = 0; i < n; ++i) {
        std::printf("%8llu %s\n", static_cast<unsigned long long>(i),
                    log::toString((*records)[i]).c_str());
    }
    if (n < records->size()) {
        std::printf("... (%llu more)\n",
                    static_cast<unsigned long long>(records->size() -
                                                    n));
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    // Extract --codec wherever it appears; positional args remain.
    std::string codec = compress::kDefaultCodec;
    for (std::size_t i = 0; i < args.size();) {
        if (args[i] == "--codec" && i + 1 < args.size()) {
            codec = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
        } else {
            ++i;
        }
    }
    if (!compress::CodecRegistry::instance().find(codec)) {
        std::fprintf(stderr, "unknown codec '%s' (try: codecs)\n",
                     codec.c_str());
        return 2;
    }

    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "list") return cmdList();
    if (cmd == "codecs") return cmdCodecs();
    if (cmd == "gen" && (args.size() == 3 || args.size() == 4)) {
        std::uint64_t instrs =
            args.size() == 4
                ? std::strtoull(args[3].c_str(), nullptr, 10)
                : 250000;
        return cmdGen(args[1], args[2], instrs ? instrs : 250000,
                      codec);
    }
    if (cmd == "info" && args.size() == 2) return cmdInfo(args[1]);
    if (cmd == "dump" && (args.size() == 2 || args.size() == 3)) {
        std::uint64_t count =
            args.size() == 3
                ? std::strtoull(args[2].c_str(), nullptr, 10)
                : 20;
        return cmdDump(args[1], count);
    }
    return usage();
}
