/**
 * @file
 * lba_trace — the "trace generation tool" of the paper's methodology:
 * run a benchmark program under the capture hardware and store its
 * compressed event trace, or inspect/dump an existing trace file.
 *
 * Usage:
 *   lba_trace gen <benchmark> <out.lbat> [instructions]
 *   lba_trace info <trace.lbat>
 *   lba_trace dump <trace.lbat> [count]
 *   lba_trace list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compress/trace_file.h"
#include "log/capture.h"
#include "sim/process.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace lba;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  lba_trace gen <benchmark> <out.lbat> [instructions]\n"
                 "  lba_trace info <trace.lbat>\n"
                 "  lba_trace dump <trace.lbat> [count]\n"
                 "  lba_trace list\n");
    return 2;
}

int
cmdList()
{
    std::printf("benchmarks (paper Section 3 suite):\n");
    for (const workload::Profile& p : workload::fullSuite()) {
        std::printf("  %-8s %u thread(s), %4.0f%% memory refs, "
                    "%u KiB working set\n",
                    p.name.c_str(), p.threads, p.mem_fraction * 100,
                    p.working_set_kb);
    }
    return 0;
}

int
cmdGen(const std::string& benchmark, const std::string& path,
       std::uint64_t instructions)
{
    const workload::Profile* profile = workload::findProfile(benchmark);
    if (!profile) {
        std::fprintf(stderr, "unknown benchmark '%s' (try: list)\n",
                     benchmark.c_str());
        return 1;
    }
    auto generated = workload::generate(*profile, {}, instructions);
    std::vector<log::EventRecord> records;
    log::CaptureUnit capture(
        [&](const log::EventRecord& r) { records.push_back(r); });
    sim::Process process;
    process.load(generated.program);
    sim::RunResult result = process.run(&capture);
    if (!result.all_exited) {
        std::fprintf(stderr, "warning: benchmark did not run to "
                             "completion\n");
    }

    std::string error;
    if (!compress::writeTrace(path, records, &error)) {
        std::fprintf(stderr, "write failed: %s\n", error.c_str());
        return 1;
    }
    auto info = compress::readTraceInfo(path, &error);
    std::printf("%s: %llu records, %.3f bytes/record compressed\n",
                path.c_str(),
                static_cast<unsigned long long>(records.size()),
                info ? info->bytesPerRecord() : 0.0);
    return 0;
}

int
cmdInfo(const std::string& path)
{
    std::string error;
    auto info = compress::readTraceInfo(path, &error);
    if (!info) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::printf("records        : %llu\n",
                static_cast<unsigned long long>(info->records));
    std::printf("payload bytes  : %llu\n",
                static_cast<unsigned long long>(info->payload_bytes));
    std::printf("bytes/record   : %.3f  (paper target: < 1)\n",
                info->bytesPerRecord());
    return 0;
}

int
cmdDump(const std::string& path, std::uint64_t count)
{
    std::string error;
    auto records = compress::readTrace(path, &error);
    if (!records) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::uint64_t n = std::min<std::uint64_t>(count, records->size());
    for (std::uint64_t i = 0; i < n; ++i) {
        std::printf("%8llu %s\n", static_cast<unsigned long long>(i),
                    log::toString((*records)[i]).c_str());
    }
    if (n < records->size()) {
        std::printf("... (%llu more)\n",
                    static_cast<unsigned long long>(records->size() -
                                                    n));
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) return usage();
    std::string cmd = argv[1];
    if (cmd == "list") return cmdList();
    if (cmd == "gen" && (argc == 4 || argc == 5)) {
        std::uint64_t instrs =
            argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 250000;
        return cmdGen(argv[2], argv[3], instrs ? instrs : 250000);
    }
    if (cmd == "info" && argc == 3) return cmdInfo(argv[2]);
    if (cmd == "dump" && (argc == 3 || argc == 4)) {
        std::uint64_t count =
            argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 20;
        return cmdDump(argv[2], count);
    }
    return usage();
}
