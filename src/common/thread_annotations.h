#pragma once
/**
 * @file
 * Clang Thread Safety Analysis (TSA) vocabulary for the LBA runtime,
 * plus the *thread-role* capabilities built on top of it.
 *
 * The threaded runtime (docs/ARCHITECTURE.md "Threaded execution") has
 * a strict ownership model: the *coordinator* thread owns the timing
 * engine, the shared cache hierarchy and every cycle counter; one
 * *worker* thread per lane owns lifeguard state between flush barriers;
 * and each SPSC log ring has exactly one producer-side and one
 * consumer-side owner. Until this header existed those rules lived in
 * runtime `assertCoordinator()` traps and prose. The macros below
 * express them in types, so a clang build with `-Wthread-safety
 * -Wthread-safety-beta -Werror` rejects an ownership violation at
 * compile time (the `static-analysis` CI job, and the negative-compile
 * harness in tests/static_analysis/).
 *
 * Vocabulary (all no-ops on compilers without the TSA attributes, so
 * gcc builds are byte-identical):
 *
 *  - LBA_CAPABILITY / LBA_GUARDED_BY / LBA_PT_GUARDED_BY /
 *    LBA_REQUIRES / LBA_ACQUIRE / LBA_RELEASE / ... — thin aliases of
 *    the standard clang attributes, for mutex-style data.
 *  - Thread roles: `threading::coordinator_role` and
 *    `threading::worker_role` are zero-state capabilities. A function
 *    that may only run on the coordinating thread is annotated
 *    LBA_COORDINATOR_ONLY; the analysis then demands every caller hold
 *    the role. Roles are *assumed*, not acquired: the thread that is
 *    the coordinator by construction (it built the PipelineTimer; see
 *    PipelineTimer::coordinator_) calls assumeCoordinatorRole() once,
 *    which tells the analysis "this code path holds the role" the same
 *    way assertCoordinator() proves it at runtime. Assumption sites
 *    are therefore exactly the places that *define* a thread's role:
 *    the run() drivers and the worker-thread entry lambda. The lint
 *    (tools/lba_lint.py) checks that static annotations and runtime
 *    asserts stay in agreement.
 *  - SPSC side roles: LBA_SPSC_PRODUCER(cap) / LBA_SPSC_CONSUMER(cap)
 *    mark the producer- and consumer-side entry points of a
 *    single-producer/single-consumer ring; `cap` is the ring's
 *    per-object side capability (log::LogBuffer::producer_side_ /
 *    consumer_side_). The owning thread assumes the side through the
 *    ring's assumeProducer()/assumeConsumer().
 *  - sync::Mutex / sync::MutexLock / sync::CondVar — annotated
 *    wrappers over the std primitives (libstdc++'s std::mutex carries
 *    no TSA attributes), used where the runtime really blocks
 *    (core::ThreadedExecutor's sleep path).
 *
 * docs/STATIC_ANALYSIS.md documents the whole scheme and how to run
 * the gate locally.
 */

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LBA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LBA_THREAD_ANNOTATION
#define LBA_THREAD_ANNOTATION(x) // no-op outside clang TSA
#endif

/** Marks a type as a capability (lockable or pure role). */
#define LBA_CAPABILITY(name) LBA_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define LBA_SCOPED_CAPABILITY LBA_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define LBA_GUARDED_BY(cap) LBA_THREAD_ANNOTATION(guarded_by(cap))

/** Pointer member whose *pointee* is guarded by the capability. */
#define LBA_PT_GUARDED_BY(cap) LBA_THREAD_ANNOTATION(pt_guarded_by(cap))

/** Function callable only while holding the capabilities (exclusive). */
#define LBA_REQUIRES(...)                                                   \
    LBA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while holding the capabilities (shared). */
#define LBA_REQUIRES_SHARED(...)                                            \
    LBA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capabilities (no arg: `this`). */
#define LBA_ACQUIRE(...)                                                    \
    LBA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capabilities (no arg: `this`). */
#define LBA_RELEASE(...)                                                    \
    LBA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires on a true (or given) return value. */
#define LBA_TRY_ACQUIRE(...)                                                \
    LBA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function callable only while NOT holding the capabilities. */
#define LBA_EXCLUDES(...) LBA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/**
 * Function that *proves* the capability is held (a runtime check or a
 * by-construction argument) rather than acquiring it — the static
 * counterpart of an assert. This is how thread roles are adopted.
 */
#define LBA_ASSERT_CAPABILITY(x)                                            \
    LBA_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the named capability. */
#define LBA_RETURN_CAPABILITY(x) LBA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: body intentionally not analyzed (say why in a comment). */
#define LBA_NO_THREAD_SAFETY_ANALYSIS                                       \
    LBA_THREAD_ANNOTATION(no_thread_safety_analysis)

#include <mutex>              // IWYU pragma: keep (sync::Mutex)
#include <condition_variable> // IWYU pragma: keep (sync::CondVar)

namespace lba::threading {

/**
 * A zero-state capability naming a thread role. Roles are never locked
 * or unlocked — a thread *is* the coordinator (it constructed the
 * engine) or *is* a worker (it runs workerLoop) — so the only way to
 * hold one is an assume function below, placed where the role is true
 * by construction.
 */
struct LBA_CAPABILITY("thread_role") ThreadRole
{
};

/** The thread driving the timing engine (built the PipelineTimer). */
inline ThreadRole coordinator_role;

/** A core::ThreadedExecutor worker-lane thread. */
inline ThreadRole worker_role;

/**
 * Statically adopt the coordinator role. Call only where the current
 * thread is the coordinator by construction: the top of a platform
 * run() driver, or a PipelineTimer constructor (which records the
 * coordinator's thread id for the matching runtime check,
 * PipelineTimer::assertCoordinator()).
 */
inline void
assumeCoordinatorRole() LBA_ASSERT_CAPABILITY(coordinator_role)
{
}

/**
 * Statically adopt the worker role. Call only from a worker thread's
 * entry function (core::ThreadedExecutor's thread lambda).
 */
inline void
assumeWorkerRole() LBA_ASSERT_CAPABILITY(worker_role)
{
}

} // namespace lba::threading

/** Entry point runnable only on the coordinating thread. Pair with
 *  assertCoordinator() (or an equivalent runtime trap) in the body —
 *  tools/lba_lint.py enforces the parity for core::PipelineTimer. */
#define LBA_COORDINATOR_ONLY                                                \
    LBA_REQUIRES(::lba::threading::coordinator_role)

/** Entry point runnable only on an executor worker thread. */
#define LBA_WORKER_ONLY LBA_REQUIRES(::lba::threading::worker_role)

/** Producer-side entry point of an SPSC ring; @p cap is the ring's
 *  producer-side capability member. */
#define LBA_SPSC_PRODUCER(cap) LBA_REQUIRES(cap)

/** Consumer-side entry point of an SPSC ring. */
#define LBA_SPSC_CONSUMER(cap) LBA_REQUIRES(cap)

namespace lba::sync {

/**
 * std::mutex with TSA attributes (libstdc++'s has none). Prefer
 * MutexLock for scoped holds; lock()/unlock() exist for the
 * condition-variable dance and deliberate split acquire/release.
 */
class LBA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() LBA_ACQUIRE() { mutex_.lock(); }
    void unlock() LBA_RELEASE() { mutex_.unlock(); }
    bool try_lock() LBA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    std::mutex mutex_;
};

/** Scoped lock over sync::Mutex (std::lock_guard analogue). */
class LBA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) LBA_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() LBA_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * Condition variable waiting on sync::Mutex. Built on
 * std::condition_variable_any, which takes any BasicLockable — so the
 * annotated mutex is used directly and the wait keeps its usual
 * unlock/re-lock semantics.
 */
class CondVar
{
  public:
    /** Wait until @p pred; @p mutex must be held (it is released while
     *  blocked and re-held when this returns, like std::condition_
     *  variable::wait — the analysis sees it as held throughout, which
     *  matches what the caller may assume before and after). */
    template <typename Pred>
    void
    wait(Mutex& mutex, Pred pred) LBA_REQUIRES(mutex)
    {
        cv_.wait(mutex, pred);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace lba::sync
