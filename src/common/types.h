#pragma once
/**
 * @file
 * Fundamental scalar types shared by all LBA libraries.
 */

#include <cstdint>

namespace lba {

/** Virtual address in the simulated machine (byte-granular, 64-bit). */
using Addr = std::uint64_t;

/** Simulated-machine cycle count. */
using Cycles = std::uint64_t;

/** Simulated thread identifier (dense, starting at 0). */
using ThreadId = std::uint16_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** Register value width of the simulated machine. */
using Word = std::uint64_t;

} // namespace lba
