#pragma once
/**
 * @file
 * Internal invariant checking for the LBA libraries.
 *
 * Follows the gem5 panic()/fatal() distinction:
 *  - LBA_ASSERT / lba::panic  -- internal invariant violated (library bug);
 *    aborts so a debugger or core dump can capture the state.
 *  - lba::fatal               -- user error (bad configuration, malformed
 *    input); exits with an error code.
 */

#include <cstdio>
#include <cstdlib>

namespace lba {

/** Print a formatted message and abort (library bug). */
[[noreturn]] inline void
panicAt(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

/** Print a formatted message and exit(1) (user error). */
[[noreturn]] inline void
fatal(const char* msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

} // namespace lba

/** Assert an internal invariant; always enabled (cheap checks only). */
#define LBA_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lba::panicAt(__FILE__, __LINE__, msg);                        \
        }                                                                   \
    } while (0)
