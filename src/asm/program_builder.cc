/**
 * @file
 * ProgramBuilder implementation.
 */

#include "asm/program_builder.h"

#include <limits>

#include "common/assert.h"

namespace lba::assembler {

using isa::Instruction;
using isa::Opcode;

Label
ProgramBuilder::newLabel()
{
    Label label{static_cast<std::uint32_t>(label_positions_.size())};
    label_positions_.push_back(-1);
    return label;
}

void
ProgramBuilder::bind(Label label)
{
    LBA_ASSERT(label.id < label_positions_.size(), "unknown label");
    LBA_ASSERT(label_positions_[label.id] < 0, "label bound twice");
    label_positions_[label.id] = static_cast<std::int64_t>(instrs_.size());
}

void
ProgramBuilder::emit(const Instruction& instr)
{
    instrs_.push_back(instr);
}

void
ProgramBuilder::nop()
{
    emit({Opcode::kNop, 0, 0, 0, 0});
}

void
ProgramBuilder::halt()
{
    emit({Opcode::kHalt, 0, 0, 0, 0});
}

void
ProgramBuilder::li(RegIndex rd, std::int32_t imm)
{
    emit({Opcode::kLi, rd, 0, 0, imm});
}

void
ProgramBuilder::lih(RegIndex rd, std::int32_t imm_high)
{
    emit({Opcode::kLih, rd, 0, 0, imm_high});
}

void
ProgramBuilder::mov(RegIndex rd, RegIndex rs1)
{
    emit({Opcode::kMov, rd, rs1, 0, 0});
}

void
ProgramBuilder::alu(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    LBA_ASSERT(isa::classOf(op) == isa::InstrClass::kIntAlu &&
                   isa::readsRs2(op),
               "alu() requires a register-register ALU opcode");
    emit({op, rd, rs1, rs2, 0});
}

void
ProgramBuilder::alui(Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm)
{
    LBA_ASSERT(isa::classOf(op) == isa::InstrClass::kIntAlu &&
                   !isa::readsRs2(op),
               "alui() requires a register-immediate ALU opcode");
    emit({op, rd, rs1, 0, imm});
}

void
ProgramBuilder::load(Opcode op, RegIndex rd, RegIndex base, std::int32_t off)
{
    LBA_ASSERT(isa::isLoad(op), "load() requires a load opcode");
    emit({op, rd, base, 0, off});
}

void
ProgramBuilder::store(Opcode op, RegIndex val, RegIndex base,
                      std::int32_t off)
{
    LBA_ASSERT(isa::isStore(op), "store() requires a store opcode");
    emit({op, 0, base, val, off});
}

void
ProgramBuilder::branch(Opcode op, RegIndex rs1, RegIndex rs2, Label target)
{
    LBA_ASSERT(isa::classOf(op) == isa::InstrClass::kBranch,
               "branch() requires a branch opcode");
    fixups_.push_back({instrs_.size(), target.id});
    emit({op, 0, rs1, rs2, 0});
}

void
ProgramBuilder::jmp(Label target)
{
    fixups_.push_back({instrs_.size(), target.id});
    emit({Opcode::kJmp, 0, 0, 0, 0});
}

void
ProgramBuilder::jr(RegIndex rs1)
{
    emit({Opcode::kJr, 0, rs1, 0, 0});
}

void
ProgramBuilder::call(Label target)
{
    fixups_.push_back({instrs_.size(), target.id});
    emit({Opcode::kCall, 0, 0, 0, 0});
}

void
ProgramBuilder::callr(RegIndex rs1)
{
    emit({Opcode::kCallr, 0, rs1, 0, 0});
}

void
ProgramBuilder::ret()
{
    emit({Opcode::kRet, 0, 0, 0, 0});
}

void
ProgramBuilder::syscall(std::int32_t number)
{
    emit({Opcode::kSyscall, 0, 0, 0, number});
}

void
ProgramBuilder::li64(RegIndex rd, std::uint64_t value)
{
    auto low = static_cast<std::int32_t>(value & 0xffffffffu);
    auto high = static_cast<std::int32_t>(value >> 32);
    li(rd, low);
    // li sign-extends; when the sign extension already produces the right
    // high half we can skip the lih.
    if (static_cast<std::uint64_t>(static_cast<std::int64_t>(low)) != value)
        lih(rd, high);
}

void
ProgramBuilder::liLabel(RegIndex rd, Label target)
{
    fixups_.push_back({instrs_.size(), target.id, true});
    li(rd, 0);
}

std::vector<isa::Instruction>
ProgramBuilder::build(Addr base_addr, std::string* error)
{
    for (const Fixup& fixup : fixups_) {
        std::int64_t pos = label_positions_[fixup.label_id];
        if (pos < 0) {
            if (error) *error = "unbound label referenced by instruction";
            return {};
        }
        std::int64_t value;
        if (fixup.absolute) {
            value = static_cast<std::int64_t>(base_addr) +
                    pos * isa::kInstrBytes;
        } else {
            std::int64_t delta_instrs =
                pos - static_cast<std::int64_t>(fixup.instr_index);
            value = delta_instrs * isa::kInstrBytes;
        }
        if (value < std::numeric_limits<std::int32_t>::min() ||
            value > std::numeric_limits<std::int32_t>::max()) {
            if (error) {
                *error = fixup.absolute
                             ? "label address exceeds 32-bit range"
                             : "branch offset exceeds 32-bit range";
            }
            return {};
        }
        instrs_[fixup.instr_index].imm = static_cast<std::int32_t>(value);
    }
    if (error) error->clear();
    return instrs_;
}

} // namespace lba::assembler
