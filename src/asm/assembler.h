#pragma once
/**
 * @file
 * Two-pass text assembler for the LRISC ISA.
 *
 * Accepted syntax (one instruction per line):
 * @code
 *   ; comments start with ';' or '#'
 *   loop:                  ; labels end with ':'
 *       li   r1, 100
 *       addi r1, r1, -1
 *       ld   r2, 8(r5)     ; loads/stores use offset(base)
 *       sd   r2, 0(r5)
 *       bne  r1, r0, loop  ; control flow may target labels or
 *       jmp  16            ; numeric pc-relative byte offsets
 *       syscall 1
 *       halt
 * @endcode
 *
 * Register operands are written r0..r31; the aliases sp (r29), lr (r30)
 * and at (r31) are also accepted.
 */

#include <string>
#include <vector>

#include "isa/isa.h"

namespace lba::assembler {

/** Outcome of assembling a source string. */
struct AssembleResult
{
    /** The assembled program (empty on failure). */
    std::vector<isa::Instruction> program;
    /** Human-readable error description (empty on success). */
    std::string error;
    /** 1-based source line of the error (0 on success). */
    int error_line = 0;

    /** True when assembly succeeded. */
    bool ok() const { return error.empty(); }
};

/**
 * Assemble LRISC source text.
 *
 * @param source The program text.
 * @return The program, or an error with the offending line number.
 */
AssembleResult assemble(const std::string& source);

} // namespace lba::assembler
