#pragma once
/**
 * @file
 * ProgramBuilder: a C++ API for constructing LRISC programs with symbolic
 * labels. This is the interface the synthetic-workload generator uses; the
 * text assembler (assembler.h) provides the same capability for humans.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace lba::assembler {

/** Opaque handle for a forward-referenceable code label. */
struct Label
{
    std::uint32_t id = 0;
};

/**
 * Incrementally builds an instruction sequence, resolving label-relative
 * control transfers in a final fixup pass.
 *
 * All emit helpers append exactly one instruction except li64(), which may
 * emit one or two. Positions are instruction indices; the program's base
 * address is supplied at build() time to compute byte offsets.
 */
class ProgramBuilder
{
  public:
    /** Create a fresh label (unbound). */
    Label newLabel();

    /** Bind @p label to the current end-of-program position. */
    void bind(Label label);

    /** Append a raw instruction. */
    void emit(const isa::Instruction& instr);

    // --- Convenience emitters (one instruction each) ---
    void nop();
    void halt();
    void li(RegIndex rd, std::int32_t imm);
    void lih(RegIndex rd, std::int32_t imm_high);
    void mov(RegIndex rd, RegIndex rs1);
    void alu(isa::Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
    void alui(isa::Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm);
    void load(isa::Opcode op, RegIndex rd, RegIndex base, std::int32_t off);
    void store(isa::Opcode op, RegIndex val, RegIndex base,
               std::int32_t off);
    void branch(isa::Opcode op, RegIndex rs1, RegIndex rs2, Label target);
    void jmp(Label target);
    void jr(RegIndex rs1);
    void call(Label target);
    void callr(RegIndex rs1);
    void ret();
    void syscall(std::int32_t number);

    /** Load an arbitrary 64-bit constant (1 or 2 instructions). */
    void li64(RegIndex rd, std::uint64_t value);

    /**
     * Load the absolute address of @p target into @p rd (one li; the
     * value is patched at build() time from the base address). Used to
     * materialize thread entry points and indirect-jump targets.
     */
    void liLabel(RegIndex rd, Label target);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return instrs_.size(); }

    /**
     * Resolve all label references and return the finished program.
     *
     * @param base_addr Address the first instruction will be loaded at
     *                  (needed because control transfers are pc-relative).
     * @param error Receives a description when building fails.
     * @return The program, or an empty vector on error (unbound label,
     *         branch offset overflow).
     */
    std::vector<isa::Instruction> build(Addr base_addr,
                                        std::string* error = nullptr);

  private:
    struct Fixup
    {
        std::size_t instr_index;
        std::uint32_t label_id;
        /** False: pc-relative byte offset; true: absolute address. */
        bool absolute = false;
    };

    std::vector<isa::Instruction> instrs_;
    std::vector<std::int64_t> label_positions_; // -1 while unbound
    std::vector<Fixup> fixups_;
};

} // namespace lba::assembler
