/**
 * @file
 * Two-pass text assembler implementation.
 */

#include "asm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

namespace lba::assembler {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Strip comments and surrounding whitespace from a source line. */
std::string
cleanLine(const std::string& line)
{
    std::string out = line;
    std::size_t cut = out.find_first_of(";#");
    if (cut != std::string::npos) out.erase(cut);
    std::size_t begin = out.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    std::size_t end = out.find_last_not_of(" \t\r");
    return out.substr(begin, end - begin + 1);
}

/** Split an operand string on commas, trimming each piece. */
std::vector<std::string>
splitOperands(const std::string& text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : text) {
        if (ch == ',') {
            parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    parts.push_back(current);
    for (std::string& part : parts) {
        std::size_t begin = part.find_first_not_of(" \t");
        if (begin == std::string::npos) {
            part.clear();
            continue;
        }
        std::size_t end = part.find_last_not_of(" \t");
        part = part.substr(begin, end - begin + 1);
    }
    return parts;
}

/** Parse a register operand ("r7", "sp", "lr", "at"). */
std::optional<RegIndex>
parseReg(const std::string& text)
{
    if (text == "sp") return isa::kRegSp;
    if (text == "lr") return isa::kRegLr;
    if (text == "at") return isa::kRegAt;
    if (text.size() < 2 || (text[0] != 'r' && text[0] != 'R')) {
        return std::nullopt;
    }
    char* end = nullptr;
    long value = std::strtol(text.c_str() + 1, &end, 10);
    if (*end != '\0' || value < 0 ||
        value >= static_cast<long>(isa::kNumRegs)) {
        return std::nullopt;
    }
    return static_cast<RegIndex>(value);
}

/** Parse a signed immediate (decimal or 0x-hex). */
std::optional<std::int64_t>
parseImm(const std::string& text)
{
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    long long value = std::strtoll(text.c_str(), &end, 0);
    if (*end != '\0') return std::nullopt;
    return value;
}

/** Parse "offset(base)" memory operand syntax. */
std::optional<std::pair<std::int32_t, RegIndex>>
parseMemOperand(const std::string& text)
{
    std::size_t open = text.find('(');
    std::size_t close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open || close != text.size() - 1) {
        return std::nullopt;
    }
    std::string off_text = text.substr(0, open);
    if (off_text.empty()) off_text = "0";
    auto off = parseImm(off_text);
    auto base = parseReg(text.substr(open + 1, close - open - 1));
    if (!off || !base) return std::nullopt;
    if (*off < INT32_MIN || *off > INT32_MAX) return std::nullopt;
    return std::make_pair(static_cast<std::int32_t>(*off), *base);
}

/** Lookup table from mnemonic to opcode. */
const std::map<std::string, Opcode>&
mnemonicTable()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (unsigned i = 0;
             i < static_cast<unsigned>(Opcode::kNumOpcodes); ++i) {
            auto op = static_cast<Opcode>(i);
            t[isa::mnemonic(op)] = op;
        }
        return t;
    }();
    return table;
}

/** A parsed source line awaiting label resolution. */
struct PendingInstr
{
    Instruction instr;
    std::string label_operand; // non-empty when imm awaits a label
    int line = 0;
};

} // namespace

AssembleResult
assemble(const std::string& source)
{
    AssembleResult result;
    std::map<std::string, std::size_t> labels;
    std::vector<PendingInstr> pending;

    auto fail = [&](int line, const std::string& message) {
        result.program.clear();
        result.error = message;
        result.error_line = line;
        return result;
    };

    std::istringstream stream(source);
    std::string raw_line;
    int line_no = 0;
    while (std::getline(stream, raw_line)) {
        ++line_no;
        std::string line = cleanLine(raw_line);
        if (line.empty()) continue;

        // Labels (possibly followed by an instruction on the same line).
        while (true) {
            std::size_t colon = line.find(':');
            std::size_t space = line.find_first_of(" \t");
            if (colon == std::string::npos ||
                (space != std::string::npos && space < colon)) {
                break;
            }
            std::string name = line.substr(0, colon);
            if (name.empty()) return fail(line_no, "empty label name");
            if (labels.count(name)) {
                return fail(line_no, "duplicate label '" + name + "'");
            }
            labels[name] = pending.size();
            line = cleanLine(line.substr(colon + 1));
            if (line.empty()) break;
        }
        if (line.empty()) continue;

        // Mnemonic and operands.
        std::size_t space = line.find_first_of(" \t");
        std::string mn = line.substr(0, space);
        std::string rest =
            space == std::string::npos ? "" : line.substr(space + 1);
        auto it = mnemonicTable().find(mn);
        if (it == mnemonicTable().end()) {
            return fail(line_no, "unknown mnemonic '" + mn + "'");
        }
        Opcode op = it->second;
        std::vector<std::string> ops =
            rest.empty() ? std::vector<std::string>{} : splitOperands(rest);

        PendingInstr p;
        p.instr.op = op;
        p.line = line_no;

        auto want = [&](std::size_t n) { return ops.size() == n; };
        auto bad_operands = [&]() {
            return fail(line_no,
                        std::string("bad operands for '") + mn + "'");
        };

        switch (isa::classOf(op)) {
          case isa::InstrClass::kNop:
          case isa::InstrClass::kHalt:
          case isa::InstrClass::kReturn:
            if (!want(0)) return bad_operands();
            break;

          case isa::InstrClass::kLoadImm: {
            if (!want(2)) return bad_operands();
            auto rd = parseReg(ops[0]);
            auto imm = parseImm(ops[1]);
            if (!rd || !imm || *imm < INT32_MIN || *imm > INT32_MAX) {
                return bad_operands();
            }
            p.instr.rd = *rd;
            p.instr.imm = static_cast<std::int32_t>(*imm);
            break;
          }

          case isa::InstrClass::kMove: {
            if (!want(2)) return bad_operands();
            auto rd = parseReg(ops[0]);
            auto rs1 = parseReg(ops[1]);
            if (!rd || !rs1) return bad_operands();
            p.instr.rd = *rd;
            p.instr.rs1 = *rs1;
            break;
          }

          case isa::InstrClass::kIntAlu: {
            if (!want(3)) return bad_operands();
            auto rd = parseReg(ops[0]);
            auto rs1 = parseReg(ops[1]);
            if (!rd || !rs1) return bad_operands();
            p.instr.rd = *rd;
            p.instr.rs1 = *rs1;
            if (isa::readsRs2(op)) {
                auto rs2 = parseReg(ops[2]);
                if (!rs2) return bad_operands();
                p.instr.rs2 = *rs2;
            } else {
                auto imm = parseImm(ops[2]);
                if (!imm || *imm < INT32_MIN || *imm > INT32_MAX) {
                    return bad_operands();
                }
                p.instr.imm = static_cast<std::int32_t>(*imm);
            }
            break;
          }

          case isa::InstrClass::kLoad: {
            if (!want(2)) return bad_operands();
            auto rd = parseReg(ops[0]);
            auto mem = parseMemOperand(ops[1]);
            if (!rd || !mem) return bad_operands();
            p.instr.rd = *rd;
            p.instr.imm = mem->first;
            p.instr.rs1 = mem->second;
            break;
          }

          case isa::InstrClass::kStore: {
            if (!want(2)) return bad_operands();
            auto val = parseReg(ops[0]);
            auto mem = parseMemOperand(ops[1]);
            if (!val || !mem) return bad_operands();
            p.instr.rs2 = *val;
            p.instr.imm = mem->first;
            p.instr.rs1 = mem->second;
            break;
          }

          case isa::InstrClass::kBranch: {
            if (!want(3)) return bad_operands();
            auto rs1 = parseReg(ops[0]);
            auto rs2 = parseReg(ops[1]);
            if (!rs1 || !rs2) return bad_operands();
            p.instr.rs1 = *rs1;
            p.instr.rs2 = *rs2;
            if (auto imm = parseImm(ops[2]);
                imm && *imm >= INT32_MIN && *imm <= INT32_MAX) {
                p.instr.imm = static_cast<std::int32_t>(*imm);
            } else {
                p.label_operand = ops[2];
            }
            break;
          }

          case isa::InstrClass::kJump:
          case isa::InstrClass::kCall: {
            if (!want(1)) return bad_operands();
            if (auto imm = parseImm(ops[0]);
                imm && *imm >= INT32_MIN && *imm <= INT32_MAX) {
                p.instr.imm = static_cast<std::int32_t>(*imm);
            } else {
                p.label_operand = ops[0];
            }
            break;
          }

          case isa::InstrClass::kIndirectJump:
          case isa::InstrClass::kIndirectCall: {
            if (!want(1)) return bad_operands();
            auto rs1 = parseReg(ops[0]);
            if (!rs1) return bad_operands();
            p.instr.rs1 = *rs1;
            break;
          }

          case isa::InstrClass::kSyscall: {
            if (!want(1)) return bad_operands();
            auto imm = parseImm(ops[0]);
            if (!imm || *imm < 0 || *imm > INT32_MAX) {
                return bad_operands();
            }
            p.instr.imm = static_cast<std::int32_t>(*imm);
            break;
          }

          default:
            return fail(line_no, "unhandled instruction class");
        }

        pending.push_back(std::move(p));
    }

    // Pass 2: resolve label operands to pc-relative byte offsets.
    for (std::size_t i = 0; i < pending.size(); ++i) {
        PendingInstr& p = pending[i];
        if (!p.label_operand.empty()) {
            auto it = labels.find(p.label_operand);
            if (it == labels.end()) {
                return fail(p.line,
                            "unknown label '" + p.label_operand + "'");
            }
            std::int64_t delta =
                (static_cast<std::int64_t>(it->second) -
                 static_cast<std::int64_t>(i)) *
                isa::kInstrBytes;
            if (delta < INT32_MIN || delta > INT32_MAX) {
                return fail(p.line, "branch offset exceeds 32-bit range");
            }
            p.instr.imm = static_cast<std::int32_t>(delta);
        }
        result.program.push_back(p.instr);
    }
    return result;
}

} // namespace lba::assembler
