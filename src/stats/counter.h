#pragma once
/**
 * @file
 * Named statistic counters and scalar summaries.
 *
 * Simulation components expose their measurements as StatSet groups so
 * benches and reports can print them uniformly.
 */

#include <cstdint>
#include <map>
#include <string>

#include "common/assert.h"

namespace lba::stats {

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta to the counter. */
    void add(std::uint64_t delta = 1) { value_ += delta; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * An online mean/min/max accumulator for double-valued samples.
 */
class Summary
{
  public:
    /** Record one sample. */
    void
    record(double sample)
    {
        if (count_ == 0 || sample < min_) min_ = sample;
        if (count_ == 0 || sample > max_) max_ = sample;
        sum_ += sample;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A registry of named counters, so a component can expose all of its
 * statistics by name for report printing.
 */
class StatSet
{
  public:
    /** Get (creating if absent) the counter named @p name. */
    Counter& counter(const std::string& name) { return counters_[name]; }

    /** Read-only view of all counters. */
    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }

    /** Reset every counter in the set. */
    void
    reset()
    {
        for (auto& [name, c] : counters_) {
            c.reset();
        }
    }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace lba::stats
