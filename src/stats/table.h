#pragma once
/**
 * @file
 * Plain-text and CSV table formatting used by the benchmark harnesses to
 * print paper-style result tables.
 */

#include <string>
#include <vector>

namespace lba::stats {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"benchmark", "valgrind", "lba"});
 *   t.addRow({"gzip", "24.1", "3.2"});
 *   std::cout << t.toString();
 * @endcode
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render as an aligned monospace table. */
    std::string toString() const;

    /** Render as CSV (RFC-4180-style quoting for commas/quotes). */
    std::string toCsv() const;

    /**
     * Render as a JSON array of row objects keyed by the column
     * headers (cells stay strings; consumers parse numbers as needed).
     */
    std::string toJson() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fractional digits. */
std::string formatDouble(double value, int decimals = 2);

/** Format a ratio as e.g. "12.3x". */
std::string formatSlowdown(double value);

} // namespace lba::stats
