#pragma once
/**
 * @file
 * Minimal streaming JSON writer for machine-readable stats emission
 * (the `--json` flag of lba_run and the benches). No parsing, no DOM —
 * just correctly escaped, correctly comma'd output, so benchmark
 * results can be collected into BENCH_results.json and tracked across
 * commits.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/assert.h"

namespace lba::stats {

/** Escape a string for use inside a JSON string literal. */
inline std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Streaming writer producing compact JSON.
 *
 * @code
 *   JsonWriter json;
 *   json.beginObject();
 *   json.key("bench");
 *   json.value("ablation_sched");
 *   json.key("rows");
 *   json.beginArray();
 *   ...
 *   json.endArray();
 *   json.endObject();
 *   std::string text = json.str();
 * @endcode
 */
class JsonWriter
{
  public:
    void
    beginObject()
    {
        prefix();
        out_ += '{';
        first_.push_back(true);
    }

    void
    endObject()
    {
        pop();
        out_ += '}';
    }

    void
    beginArray()
    {
        prefix();
        out_ += '[';
        first_.push_back(true);
    }

    void
    endArray()
    {
        pop();
        out_ += ']';
    }

    void
    key(const std::string& name)
    {
        prefix();
        out_ += '"';
        out_ += jsonEscape(name);
        out_ += "\":";
        after_key_ = true;
    }

    void
    value(const std::string& text)
    {
        prefix();
        out_ += '"';
        out_ += jsonEscape(text);
        out_ += '"';
    }

    void value(const char* text) { value(std::string(text)); }

    void
    value(double number)
    {
        prefix();
        if (!std::isfinite(number)) {
            out_ += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.10g", number);
        out_ += buf;
    }

    void
    value(std::uint64_t number)
    {
        prefix();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(number));
        out_ += buf;
    }

    void
    value(bool flag)
    {
        prefix();
        out_ += flag ? "true" : "false";
    }

    /** Splice @p rendered — a complete, pre-rendered JSON value — in
     *  as the next value (e.g. Table::toJson() output). */
    void
    raw(const std::string& rendered)
    {
        prefix();
        out_ += rendered;
    }

    /** key() + value() in one call. */
    template <typename T>
    void
    field(const std::string& name, const T& v)
    {
        key(name);
        value(v);
    }

    /** The document written so far (complete once nesting is closed). */
    const std::string& str() const { return out_; }

    /** True when every beginObject/beginArray has been closed. */
    bool complete() const { return first_.empty() && !out_.empty(); }

  private:
    void
    prefix()
    {
        if (after_key_) {
            after_key_ = false;
            return;
        }
        if (first_.empty()) return;
        if (!first_.back()) out_ += ',';
        first_.back() = false;
    }

    void
    pop()
    {
        LBA_ASSERT(!first_.empty(), "unbalanced JSON nesting");
        LBA_ASSERT(!after_key_, "key without a value");
        first_.pop_back();
    }

    std::string out_;
    std::vector<bool> first_;
    bool after_key_ = false;
};

} // namespace lba::stats
