/**
 * @file
 * Table formatting implementation.
 */

#include "stats/table.h"

#include <cstdio>
#include <sstream>

#include "common/assert.h"
#include "stats/json.h"

namespace lba::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LBA_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    LBA_ASSERT(cells.size() == headers_.size(),
               "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c]) widths[c] = row[c].size();
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) {
                out << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        out << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

namespace {

/** Quote a CSV cell if it contains a comma, quote, or newline. */
std::string
csvQuote(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"') quoted += "\"\"";
        else quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << csvQuote(row[c]);
            if (c + 1 < row.size()) out << ',';
        }
        out << '\n';
    };
    emit_row(headers_);
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
Table::toJson() const
{
    JsonWriter json;
    json.beginArray();
    for (const auto& row : rows_) {
        json.beginObject();
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            json.field(headers_[c], row[c]);
        }
        json.endObject();
    }
    json.endArray();
    return json.str();
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatSlowdown(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1fx", value);
    return buf;
}

} // namespace lba::stats
