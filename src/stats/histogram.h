#pragma once
/**
 * @file
 * Fixed-bucket histogram for distribution statistics (e.g. handler cost
 * distributions, record size distributions).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace lba::stats {

/**
 * Histogram over [0, bucket_width * num_buckets) with an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets Number of regular buckets.
     * @param bucket_width Width of each bucket (must be > 0).
     */
    Histogram(std::size_t num_buckets, std::uint64_t bucket_width)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {
        LBA_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
        LBA_ASSERT(bucket_width > 0, "bucket width must be positive");
    }

    /** Record one sample. */
    void
    record(std::uint64_t sample)
    {
        std::size_t idx = static_cast<std::size_t>(sample / width_);
        if (idx >= buckets_.size()) {
            ++overflow_;
        } else {
            ++buckets_[idx];
        }
        ++count_;
        total_ += sample;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }

    /** Mean of all recorded samples (0 when empty). */
    double
    mean() const
    {
        return count_ ? static_cast<double>(total_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Smallest sample value v such that at least @p fraction of samples are
     * <= the upper edge of v's bucket. Overflowed samples are treated as
     * landing just past the last bucket.
     */
    std::uint64_t
    percentileUpperBound(double fraction) const
    {
        LBA_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                   "fraction must be in [0,1]");
        if (count_ == 0) return 0;
        // Ceiling semantics, consistent with percentile(): the target
        // rank is the smallest integer >= fraction * count, and at
        // least 1 so fraction 0.0 resolves to the first non-empty
        // bucket instead of matching an empty leading bucket.
        std::uint64_t target = static_cast<std::uint64_t>(
            std::ceil(fraction * static_cast<double>(count_)));
        if (target == 0) target = 1;
        if (target > count_) target = count_;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target) return (i + 1) * width_;
        }
        return (buckets_.size() + 1) * width_;
    }

    /**
     * Point estimate of the @p fraction quantile (e.g. 0.5, 0.95, 0.99),
     * linearly interpolated within the containing bucket (samples are
     * assumed uniform inside a bucket). Overflowed samples are treated
     * as landing in one virtual bucket just past the last edge, so a
     * heavy overflow tail saturates at that edge rather than fabricating
     * values. Returns 0 when empty.
     */
    double
    percentile(double fraction) const
    {
        LBA_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                   "fraction must be in [0,1]");
        if (count_ == 0) return 0.0;
        double target = fraction * static_cast<double>(count_);
        double seen = 0.0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            double next = seen + static_cast<double>(buckets_[i]);
            if (next >= target && buckets_[i] > 0) {
                double within =
                    (target - seen) / static_cast<double>(buckets_[i]);
                return (static_cast<double>(i) + within) *
                       static_cast<double>(width_);
            }
            seen = next;
        }
        // Quantile falls in the overflow tail.
        double spill = static_cast<double>(overflow_);
        double within = spill > 0.0 ? (target - seen) / spill : 1.0;
        return (static_cast<double>(buckets_.size()) + within) *
               static_cast<double>(width_);
    }

    /** Median estimate (see percentile()). */
    double p50() const { return percentile(0.50); }
    /** 95th-percentile estimate (see percentile()). */
    double p95() const { return percentile(0.95); }
    /** 99th-percentile estimate (see percentile()). */
    double p99() const { return percentile(0.99); }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace lba::stats
