#pragma once
/**
 * @file
 * The "dict" codec: a mirrored FIFO dictionary over the static part of
 * each record (pc, tid, type, opcode, rd, rs1, rs2), with zigzag-delta
 * varints for the dynamic addr/aux fields.
 *
 * Workload traces revisit the same static instructions constantly (loop
 * bodies, hot functions), so after warm-up most records hit the
 * dictionary and cost a control byte + a short index + two deltas. The
 * dictionary is FIFO, not LRU — hits do not reorder entries — so the
 * decoder reconstructs the table from literals alone and the two sides
 * stay in lock-step without any extra signalling. Like the varint
 * codec it round-trips arbitrary EventRecords byte-exactly.
 *
 * Stream grammar per record (all fields byte-aligned):
 *   control   : 1 byte; bit0 = dictionary hit,
 *               bits 1..7 reserved (must be zero — decoders reject)
 *   hit       : varint slot index (< entries inserted so far, decoders
 *               reject out-of-range indices)
 *   literal   : varint tid, varint(zigzag(pc - last_pc)),
 *               type byte (< log::kNumEventTypes), opcode/rd/rs1/rs2
 *               literal bytes; the key is then inserted at the next
 *               FIFO slot on both sides
 *   both      : varint(zigzag(addr - last_addr)),
 *               varint(zigzag(aux - last_aux))
 * All last-values start at zero on both sides; the dictionary starts
 * empty and holds at most kDictSlots entries (slot reuse is FIFO).
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compress/bitstream.h"
#include "compress/codec.h"

namespace lba::compress {

/** Number of dictionary slots (power of two; index varints stay <= 2B). */
inline constexpr std::size_t kDictSlots = 4096;

/** The static record fields the dictionary keys on. */
struct DictKey
{
    Addr pc = 0;
    ThreadId tid = 0;
    log::EventType type = log::EventType::kNop;
    std::uint8_t opcode = 0;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;

    bool operator==(const DictKey&) const = default;
};

/** Hash for the encoder-side key -> slot map. */
struct DictKeyHash
{
    std::size_t
    operator()(const DictKey& key) const
    {
        // pc dominates; fold the small fields in with distinct shifts.
        std::uint64_t h = key.pc * 0x9e3779b97f4a7c15ull;
        h ^= static_cast<std::uint64_t>(key.tid) << 48;
        h ^= static_cast<std::uint64_t>(key.type) << 40;
        h ^= static_cast<std::uint64_t>(key.opcode) << 32;
        h ^= static_cast<std::uint64_t>(key.rd) << 24;
        h ^= static_cast<std::uint64_t>(key.rs1) << 16;
        h ^= static_cast<std::uint64_t>(key.rs2) << 8;
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

/** Streaming dictionary encoder. */
class DictEncoder final : public Encoder
{
  public:
    void append(const log::EventRecord& record) override;
    void finishStream() override {}
    std::uint64_t records() const override { return records_; }
    std::uint64_t bitsWritten() const override
    {
        return writer_.bitCount();
    }
    std::size_t pull(std::uint8_t* out, std::size_t max) override;
    std::size_t pullableBytes() const override
    {
        return writer_.bytes().size() - pulled_;
    }

    /** Dictionary hits so far (for the benches). */
    std::uint64_t hits() const { return hits_; }

  private:
    BitWriter writer_;
    std::vector<DictKey> slots_;
    std::unordered_map<DictKey, std::uint32_t, DictKeyHash> index_;
    std::size_t next_slot_ = 0;
    Addr last_pc_ = 0;
    Addr last_addr_ = 0;
    std::uint64_t last_aux_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t hits_ = 0;
    std::size_t pulled_ = 0;
};

/** Streaming hardened decoder for the dictionary grammar. */
class DictDecoder final : public Decoder
{
  public:
    DictDecoder() : reader_(buffer_) {}

    void push(const std::uint8_t* data, std::size_t n) override;
    void finishInput() override { input_done_ = true; }
    DecodeStatus next(log::EventRecord* out) override;
    const DecodeError& error() const override { return error_; }
    std::uint64_t records() const override { return records_; }

  private:
    std::vector<std::uint8_t> buffer_;
    BitReader reader_;
    std::vector<DictKey> slots_;
    std::size_t next_slot_ = 0;
    Addr last_pc_ = 0;
    Addr last_addr_ = 0;
    std::uint64_t last_aux_ = 0;
    DecodeError error_;
    std::uint64_t records_ = 0;
    bool input_done_ = false;
};

} // namespace lba::compress
