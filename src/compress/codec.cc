/**
 * @file
 * Codec interface anchors and error-kind rendering.
 */

#include "compress/codec.h"

namespace lba::compress {

Encoder::~Encoder() = default;
Decoder::~Decoder() = default;

const char*
decodeErrorKindName(DecodeErrorKind kind)
{
    switch (kind) {
      case DecodeErrorKind::kNone:
        return "ok";
      case DecodeErrorKind::kTruncated:
        return "truncated";
      case DecodeErrorKind::kMalformed:
        return "malformed";
      case DecodeErrorKind::kLimitExceeded:
        return "limit-exceeded";
      case DecodeErrorKind::kUnsupported:
        return "unsupported";
      case DecodeErrorKind::kIo:
        return "io";
    }
    return "unknown";
}

std::string
DecodeError::toString() const
{
    if (ok()) return "ok";
    return std::string(decodeErrorKindName(kind)) + " @" +
           std::to_string(offset) + ": " + message;
}

} // namespace lba::compress
