#pragma once
/**
 * @file
 * Value-prediction-based log compression (the paper's "compress" /
 * "decompress" engines, adapted from Burtscher's VPC [1]).
 *
 * The compressor and decompressor run identical predictor banks; a record
 * whose fields all predict correctly costs only a few flag bits, which is
 * how the paper reaches < 1 byte per instruction. The encoding is exactly
 * invertible: tests assert decompress(compress(trace)) == trace.
 *
 * Stream grammar per record (bit-granular, LSB-first):
 *   kind      : 1 bit   (0 = instruction event, 1 = annotation event)
 *   tid       : 1 bit hit, or 0-bit + 16-bit literal
 *  instruction events:
 *   pc        : '0' sequential hit | '10' context hit
 *               | '11' + varint(zigzag(pc - base))
 *   static    : '1' hit | '0' + opcode(6) rd(5) rs1(5) rs2(5)
 *   payload (derived from opcode class):
 *     load/store   : '0' stride hit | '10' last hit
 *                    | '11' + varint(zigzag(addr - base))
 *     control      : taken(1); if taken:
 *                    '1' target hit | '0' + varint(zigzag(target - pc))
 *     other        : (nothing)
 *  annotation events:
 *   type      : 3 bits
 *   addr, aux : varint(zigzag(delta vs per-type last value))
 */

#include <cstdint>
#include <vector>

#include "compress/bitstream.h"
#include "compress/codec.h"
#include "compress/predictors.h"
#include "log/event.h"

namespace lba::compress {

/** Predictor state shared (by construction) between the two ends. */
struct PredictorBank
{
    PcPredictor pc;
    StaticPredictor stat;
    StridePredictor mem_addr;
    TargetPredictor ctrl_target;

    /** Per-annotation-type last payload values. */
    struct AnnotationLast
    {
        Addr addr = 0;
        std::uint64_t aux = 0;
    };
    AnnotationLast annotation[8];

    ThreadId last_tid = 0;
    bool tid_seen = false;
};

/** Per-field bit accounting for the compression-breakdown benchmark. */
struct FieldBits
{
    std::uint64_t kind = 0;
    std::uint64_t tid = 0;
    std::uint64_t pc = 0;
    std::uint64_t stat = 0;
    std::uint64_t addr = 0;
    std::uint64_t ctrl = 0;
    std::uint64_t annotation = 0;
};

/** Streaming compressor: append records, read back the packed bytes. */
class LogCompressor
{
  public:
    /** Compress one record onto the output stream. */
    void append(const log::EventRecord& record);

    /** Number of records compressed. */
    std::uint64_t records() const { return records_; }

    /** Total output bits so far. */
    std::uint64_t bits() const { return writer_.bitCount(); }

    /** Average compressed size, in bytes per record. */
    double
    bytesPerRecord() const
    {
        return records_ ? static_cast<double>(bits()) / 8.0 /
                              static_cast<double>(records_)
                        : 0.0;
    }

    /** Packed output bytes (final byte may be partial). */
    const std::vector<std::uint8_t>& bytes() const
    {
        return writer_.bytes();
    }

    /** Per-field bit breakdown. */
    const FieldBits& fieldBits() const { return field_bits_; }

  private:
    PredictorBank bank_;
    BitWriter writer_;
    std::uint64_t records_ = 0;
    FieldBits field_bits_;
};

/** Streaming decompressor over a packed byte buffer. */
class LogDecompressor
{
  public:
    /**
     * @param bytes Buffer produced by LogCompressor. The caller must know
     *              the record count (the stream has no terminator). The
     *              vector may grow between next()/tryNext() calls
     *              (streaming push); it must not shrink.
     */
    explicit LogDecompressor(const std::vector<std::uint8_t>& bytes)
        : reader_(bytes)
    {
    }

    /**
     * Decode the next record from a *trusted* stream (panics on a
     * stream this compressor cannot have produced). The transport
     * accounting path and the differential tests use this; anything
     * that touches bytes from outside the process goes through
     * tryNext().
     */
    log::EventRecord next();

    /**
     * Hardened decode for untrusted streams. Never aborts and never
     * half-applies: predictor-bank updates commit only after every
     * field of the record has been read and validated.
     *
     * @return kOk with *out filled; kNeedMore when the buffered bytes
     *         end mid-record (the read position rolls back to the
     *         record boundary, so the caller can push more bytes and
     *         retry); kError with *error filled when the stream is
     *         structurally invalid — an impossible predictor hit, an
     *         out-of-range opcode literal, or an overlong varint.
     */
    DecodeStatus tryNext(log::EventRecord* out, DecodeError* error);

    /** Bits consumed so far (clean-end detection in the codec). */
    std::uint64_t bitPos() const { return reader_.bitPos(); }

    /** Bits currently buffered beyond the read position. */
    std::uint64_t bitsAvailable() const
    {
        return reader_.bitsAvailable();
    }

  private:
    PredictorBank bank_;
    BitReader reader_;
};

} // namespace lba::compress
