#pragma once
/**
 * @file
 * Shared record generation for codec tests, benches, and fuzz
 * harnesses: a deterministic PRNG record stream and the canonicalizer
 * that maps arbitrary records onto capture-shaped ones.
 *
 * "Canonical" means "could have come from the capture unit": the
 * predictor codec does not transmit fields it can rederive (aux for
 * memory/control events, pc and operand ids for annotations), so it
 * only round-trips records where those fields already hold the derived
 * values. canonicalize() enforces exactly the shape
 * LogDecompressor::tryNext() reconstructs. The byte-aligned codecs
 * (varint, dict) round-trip arbitrary records and don't need it.
 */

#include <cstddef>
#include <cstdint>

#include "compress/codec.h"
#include "isa/isa.h"
#include "log/event.h"

namespace lba::compress {

/** Force @p record into capture shape (see file comment). */
inline log::EventRecord
canonicalize(log::EventRecord record)
{
    if (log::isAnnotation(record.type)) {
        // Annotation payload is (tid, type, addr, aux) only.
        record.pc = 0;
        record.opcode = 0;
        record.rd = 0;
        record.rs1 = 0;
        record.rs2 = 0;
        return record;
    }
    auto op = static_cast<isa::Opcode>(
        record.opcode %
        static_cast<std::uint8_t>(isa::Opcode::kNumOpcodes));
    record.opcode = static_cast<std::uint8_t>(op);
    record.rd &= isa::kNumRegs - 1;
    record.rs1 &= isa::kNumRegs - 1;
    record.rs2 &= isa::kNumRegs - 1;
    auto cls = isa::classOf(op);
    record.type = log::eventTypeOf(cls);
    if (cls == isa::InstrClass::kLoad ||
        cls == isa::InstrClass::kStore) {
        record.aux = isa::memAccessBytes(op);
    } else if (isa::isControl(op)) {
        if (record.aux != 0) {
            record.aux = 1; // taken; addr carries the target
        } else {
            record.addr = 0; // not taken: no payload transmitted
        }
    } else {
        record.addr = 0;
        record.aux = 0;
    }
    return record;
}

/**
 * Deterministic record-stream generator (splitmix64 core). Same seed,
 * same stream — everywhere, forever; test failures replay exactly.
 */
class RecordGen
{
  public:
    explicit RecordGen(std::uint64_t seed) : state_(seed) {}

    /** Next raw pseudo-random 64-bit value. */
    std::uint64_t
    nextU64()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Next workload-shaped record: a small hot pc set and strided
     * addresses most of the time (so predictive codecs have something
     * to predict), wild values on a minority of records (so they also
     * see misses), occasional annotations.
     */
    log::EventRecord
    next()
    {
        log::EventRecord record;
        std::uint64_t r = nextU64();
        record.tid = static_cast<ThreadId>((r >> 8) % 3);
        if (r % 16 == 0) {
            // Annotation event.
            record.type = static_cast<log::EventType>(
                static_cast<unsigned>(log::EventType::kAlloc) +
                ((r >> 16) % 8));
            record.addr = 0x10000 + ((r >> 24) % 64) * 64;
            record.aux = (r >> 32) % 512;
            return canonicalize(record);
        }
        if (r % 16 < 12) {
            // Hot loop: sequential pcs, strided addresses.
            record.pc = 0x400000 + (pc_step_++ % 64) * 8;
            record.opcode = static_cast<std::uint8_t>(
                (r >> 16) %
                static_cast<std::uint8_t>(isa::Opcode::kNumOpcodes));
            record.addr = 0x800000 + (addr_step_++ % 1024) * 8;
        } else {
            // Cold record: everything pseudo-random.
            record.pc = nextU64();
            record.opcode = static_cast<std::uint8_t>(r >> 16);
            record.addr = nextU64();
        }
        record.rd = static_cast<std::uint8_t>(r >> 40);
        record.rs1 = static_cast<std::uint8_t>(r >> 48);
        record.rs2 = static_cast<std::uint8_t>(r >> 56);
        record.aux = (r >> 4) & 1;
        return canonicalize(record);
    }

    /**
     * Next fully arbitrary record (any field pattern, including shapes
     * the capture unit never emits). For the byte-aligned codecs and
     * the encoder fuzz harness.
     */
    log::EventRecord
    nextArbitrary()
    {
        log::EventRecord record;
        std::uint64_t a = nextU64(), b = nextU64();
        record.pc = a;
        record.tid = static_cast<ThreadId>(b);
        record.type = static_cast<log::EventType>(
            (b >> 16) % log::kNumEventTypes);
        record.opcode = static_cast<std::uint8_t>(b >> 24);
        record.rd = static_cast<std::uint8_t>(b >> 32);
        record.rs1 = static_cast<std::uint8_t>(b >> 40);
        record.rs2 = static_cast<std::uint8_t>(b >> 48);
        record.addr = nextU64();
        record.aux = nextU64();
        return record;
    }

  private:
    std::uint64_t state_;
    std::uint64_t pc_step_ = 0;
    std::uint64_t addr_step_ = 0;
};

/**
 * Bytes consumed per record by recordFromBytes(): pc(8) + tid(2) +
 * type/opcode/rd/rs1/rs2(5) + addr(8) + aux(8). Fuzz harnesses step
 * their input in this stride.
 */
inline constexpr std::size_t kRecordStrideBytes = 31;

/**
 * Build a record from raw bytes (fuzzer input -> encoder input).
 * Consumes up to kRecordStrideBytes; shorter input zero-fills. The
 * type field is reduced mod kNumEventTypes so the record is *valid*
 * (encoders may assert on impossible enum values — that is not a
 * finding), but no other field is constrained.
 */
inline log::EventRecord
recordFromBytes(const std::uint8_t* data, std::size_t n)
{
    auto u64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i) {
            if (at + i < n) {
                v |= static_cast<std::uint64_t>(data[at + i]) << (8 * i);
            }
        }
        return v;
    };
    auto u8 = [&](std::size_t at) -> std::uint8_t {
        return at < n ? data[at] : 0;
    };
    log::EventRecord record;
    record.pc = u64(0);
    record.tid = static_cast<ThreadId>(u8(8) |
                                       (static_cast<unsigned>(u8(9)) << 8));
    record.type =
        static_cast<log::EventType>(u8(10) % log::kNumEventTypes);
    record.opcode = u8(11);
    record.rd = u8(12);
    record.rs1 = u8(13);
    record.rs2 = u8(14);
    record.addr = u64(15);
    record.aux = u64(23);
    return record;
}

} // namespace lba::compress
