/**
 * @file
 * Log compressor / decompressor implementation.
 *
 * Invariant: every predictor update performed here is mirrored verbatim in
 * the decompressor, keeping the two predictor banks bit-for-bit in sync.
 */

#include "compress/compressor.h"

#include "common/assert.h"

namespace lba::compress {

using log::EventRecord;
using log::EventType;

namespace {

/** True when the class carries a load/store effective address. */
bool
hasMemPayload(isa::InstrClass cls)
{
    return cls == isa::InstrClass::kLoad || cls == isa::InstrClass::kStore;
}

/** True when the class carries a control-transfer payload. */
bool
hasCtrlPayload(isa::InstrClass cls)
{
    switch (cls) {
      case isa::InstrClass::kBranch:
      case isa::InstrClass::kJump:
      case isa::InstrClass::kIndirectJump:
      case isa::InstrClass::kCall:
      case isa::InstrClass::kIndirectCall:
      case isa::InstrClass::kReturn:
        return true;
      default:
        return false;
    }
}

} // namespace

void
LogCompressor::append(const EventRecord& record)
{
    ++records_;
    std::uint64_t mark = writer_.bitCount();
    auto take = [&](std::uint64_t& sink) {
        std::uint64_t now = writer_.bitCount();
        sink += now - mark;
        mark = now;
    };

    bool annotation = log::isAnnotation(record.type);
    writer_.writeBit(annotation);
    take(field_bits_.kind);

    // Thread id.
    if (bank_.tid_seen && record.tid == bank_.last_tid) {
        writer_.writeBit(true);
    } else {
        writer_.writeBit(false);
        writer_.writeBits(record.tid, 16);
    }
    bank_.last_tid = record.tid;
    bank_.tid_seen = true;
    take(field_bits_.tid);

    if (annotation) {
        unsigned type_index =
            static_cast<unsigned>(record.type) -
            static_cast<unsigned>(EventType::kAlloc);
        LBA_ASSERT(type_index < 8, "bad annotation type");
        writer_.writeBits(type_index, 3);
        auto& last = bank_.annotation[type_index];
        writer_.writeVarint(zigzagDelta(record.addr, last.addr));
        writer_.writeVarint(zigzagDelta(record.aux, last.aux));
        last.addr = record.addr;
        last.aux = record.aux;
        take(field_bits_.annotation);
        return;
    }

    // Program counter.
    PcPredictor::Source pc_src = bank_.pc.predict(record.tid, record.pc);
    switch (pc_src) {
      case PcPredictor::Source::kSequential:
        writer_.writeBit(false);
        break;
      case PcPredictor::Source::kContext:
        writer_.writeBit(true);
        writer_.writeBit(false);
        break;
      case PcPredictor::Source::kMiss:
        writer_.writeBit(true);
        writer_.writeBit(true);
        writer_.writeVarint(
            zigzagDelta(record.pc, bank_.pc.missBase(record.tid)));
        break;
    }
    bank_.pc.update(record.tid, record.pc);
    take(field_bits_.pc);

    // Static instruction fields.
    StaticInfo actual{record.opcode, record.rd, record.rs1, record.rs2};
    const StaticInfo* predicted = bank_.stat.predict(record.pc);
    if (predicted && *predicted == actual) {
        writer_.writeBit(true);
    } else {
        writer_.writeBit(false);
        writer_.writeBits(record.opcode, 6);
        writer_.writeBits(record.rd, 5);
        writer_.writeBits(record.rs1, 5);
        writer_.writeBits(record.rs2, 5);
        bank_.stat.update(record.pc, actual);
    }
    take(field_bits_.stat);

    auto cls = isa::classOf(static_cast<isa::Opcode>(record.opcode));
    if (hasMemPayload(cls)) {
        StridePredictor::Source src =
            bank_.mem_addr.predict(record.pc, record.addr);
        switch (src) {
          case StridePredictor::Source::kStride:
            writer_.writeBit(false);
            break;
          case StridePredictor::Source::kLast:
            writer_.writeBit(true);
            writer_.writeBit(false);
            break;
          case StridePredictor::Source::kMiss:
            writer_.writeBit(true);
            writer_.writeBit(true);
            writer_.writeVarint(zigzagDelta(
                record.addr, bank_.mem_addr.missBase(record.pc)));
            break;
        }
        bank_.mem_addr.update(record.pc, record.addr);
        take(field_bits_.addr);
    } else if (hasCtrlPayload(cls)) {
        bool taken = record.aux != 0;
        writer_.writeBit(taken);
        if (taken) {
            if (bank_.ctrl_target.predict(record.pc, record.addr)) {
                writer_.writeBit(true);
            } else {
                writer_.writeBit(false);
                writer_.writeVarint(
                    zigzagDelta(record.addr, record.pc));
            }
            bank_.ctrl_target.update(record.pc, record.addr);
        }
        take(field_bits_.ctrl);
    }
}

EventRecord
LogDecompressor::next()
{
    EventRecord record;
    bool annotation = reader_.readBit();

    // Thread id.
    if (reader_.readBit()) {
        LBA_ASSERT(bank_.tid_seen, "tid hit before any tid literal");
        record.tid = bank_.last_tid;
    } else {
        record.tid = static_cast<ThreadId>(reader_.readBits(16));
    }
    bank_.last_tid = record.tid;
    bank_.tid_seen = true;

    if (annotation) {
        unsigned type_index = static_cast<unsigned>(reader_.readBits(3));
        record.type = static_cast<EventType>(
            static_cast<unsigned>(EventType::kAlloc) + type_index);
        auto& last = bank_.annotation[type_index];
        record.addr = zigzagApply(last.addr, reader_.readVarint());
        record.aux = zigzagApply(last.aux, reader_.readVarint());
        last.addr = record.addr;
        last.aux = record.aux;
        return record;
    }

    // Program counter.
    if (!reader_.readBit()) {
        record.pc = bank_.pc.resolve(record.tid,
                                     PcPredictor::Source::kSequential);
    } else if (!reader_.readBit()) {
        record.pc =
            bank_.pc.resolve(record.tid, PcPredictor::Source::kContext);
    } else {
        record.pc = zigzagApply(bank_.pc.missBase(record.tid),
                                reader_.readVarint());
    }
    bank_.pc.update(record.tid, record.pc);

    // Static instruction fields.
    if (reader_.readBit()) {
        const StaticInfo* info = bank_.stat.predict(record.pc);
        LBA_ASSERT(info != nullptr, "static hit for unseen pc");
        record.opcode = info->opcode;
        record.rd = info->rd;
        record.rs1 = info->rs1;
        record.rs2 = info->rs2;
    } else {
        record.opcode =
            static_cast<std::uint8_t>(reader_.readBits(6));
        record.rd = static_cast<std::uint8_t>(reader_.readBits(5));
        record.rs1 = static_cast<std::uint8_t>(reader_.readBits(5));
        record.rs2 = static_cast<std::uint8_t>(reader_.readBits(5));
        bank_.stat.update(record.pc, StaticInfo{record.opcode, record.rd,
                                                record.rs1, record.rs2});
    }

    auto op = static_cast<isa::Opcode>(record.opcode);
    auto cls = isa::classOf(op);
    record.type = log::eventTypeOf(cls);

    if (hasMemPayload(cls)) {
        if (!reader_.readBit()) {
            record.addr = bank_.mem_addr.resolve(
                record.pc, StridePredictor::Source::kStride);
        } else if (!reader_.readBit()) {
            record.addr = bank_.mem_addr.resolve(
                record.pc, StridePredictor::Source::kLast);
        } else {
            record.addr = zigzagApply(bank_.mem_addr.missBase(record.pc),
                                      reader_.readVarint());
        }
        bank_.mem_addr.update(record.pc, record.addr);
        record.aux = isa::memAccessBytes(op);
    } else if (hasCtrlPayload(cls)) {
        bool taken = reader_.readBit();
        if (taken) {
            record.aux = 1;
            if (reader_.readBit()) {
                record.addr = bank_.ctrl_target.resolve(record.pc);
            } else {
                record.addr =
                    zigzagApply(record.pc, reader_.readVarint());
            }
            bank_.ctrl_target.update(record.pc, record.addr);
        }
    }
    return record;
}

} // namespace lba::compress
