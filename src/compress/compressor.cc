/**
 * @file
 * Log compressor / decompressor implementation.
 *
 * Invariant: every predictor update performed here is mirrored verbatim in
 * the decompressor, keeping the two predictor banks bit-for-bit in sync.
 */

#include "compress/compressor.h"

#include "common/assert.h"

namespace lba::compress {

using log::EventRecord;
using log::EventType;

namespace {

/** True when the class carries a load/store effective address. */
bool
hasMemPayload(isa::InstrClass cls)
{
    return cls == isa::InstrClass::kLoad || cls == isa::InstrClass::kStore;
}

/** True when the class carries a control-transfer payload. */
bool
hasCtrlPayload(isa::InstrClass cls)
{
    switch (cls) {
      case isa::InstrClass::kBranch:
      case isa::InstrClass::kJump:
      case isa::InstrClass::kIndirectJump:
      case isa::InstrClass::kCall:
      case isa::InstrClass::kIndirectCall:
      case isa::InstrClass::kReturn:
        return true;
      default:
        return false;
    }
}

} // namespace

void
LogCompressor::append(const EventRecord& record)
{
    ++records_;
    std::uint64_t mark = writer_.bitCount();
    auto take = [&](std::uint64_t& sink) {
        std::uint64_t now = writer_.bitCount();
        sink += now - mark;
        mark = now;
    };

    bool annotation = log::isAnnotation(record.type);
    writer_.writeBit(annotation);
    take(field_bits_.kind);

    // Thread id.
    if (bank_.tid_seen && record.tid == bank_.last_tid) {
        writer_.writeBit(true);
    } else {
        writer_.writeBit(false);
        writer_.writeBits(record.tid, 16);
    }
    bank_.last_tid = record.tid;
    bank_.tid_seen = true;
    take(field_bits_.tid);

    if (annotation) {
        unsigned type_index =
            static_cast<unsigned>(record.type) -
            static_cast<unsigned>(EventType::kAlloc);
        LBA_ASSERT(type_index < 8, "bad annotation type");
        writer_.writeBits(type_index, 3);
        auto& last = bank_.annotation[type_index];
        writer_.writeVarint(zigzagDelta(record.addr, last.addr));
        writer_.writeVarint(zigzagDelta(record.aux, last.aux));
        last.addr = record.addr;
        last.aux = record.aux;
        take(field_bits_.annotation);
        return;
    }

    // Program counter.
    PcPredictor::Source pc_src = bank_.pc.predict(record.tid, record.pc);
    switch (pc_src) {
      case PcPredictor::Source::kSequential:
        writer_.writeBit(false);
        break;
      case PcPredictor::Source::kContext:
        writer_.writeBit(true);
        writer_.writeBit(false);
        break;
      case PcPredictor::Source::kMiss:
        writer_.writeBit(true);
        writer_.writeBit(true);
        writer_.writeVarint(
            zigzagDelta(record.pc, bank_.pc.missBase(record.tid)));
        break;
    }
    bank_.pc.update(record.tid, record.pc);
    take(field_bits_.pc);

    // Static instruction fields.
    StaticInfo actual{record.opcode, record.rd, record.rs1, record.rs2};
    const StaticInfo* predicted = bank_.stat.predict(record.pc);
    if (predicted && *predicted == actual) {
        writer_.writeBit(true);
    } else {
        writer_.writeBit(false);
        writer_.writeBits(record.opcode, 6);
        writer_.writeBits(record.rd, 5);
        writer_.writeBits(record.rs1, 5);
        writer_.writeBits(record.rs2, 5);
        bank_.stat.update(record.pc, actual);
    }
    take(field_bits_.stat);

    auto cls = isa::classOf(static_cast<isa::Opcode>(record.opcode));
    if (hasMemPayload(cls)) {
        StridePredictor::Source src =
            bank_.mem_addr.predict(record.pc, record.addr);
        switch (src) {
          case StridePredictor::Source::kStride:
            writer_.writeBit(false);
            break;
          case StridePredictor::Source::kLast:
            writer_.writeBit(true);
            writer_.writeBit(false);
            break;
          case StridePredictor::Source::kMiss:
            writer_.writeBit(true);
            writer_.writeBit(true);
            writer_.writeVarint(zigzagDelta(
                record.addr, bank_.mem_addr.missBase(record.pc)));
            break;
        }
        bank_.mem_addr.update(record.pc, record.addr);
        take(field_bits_.addr);
    } else if (hasCtrlPayload(cls)) {
        bool taken = record.aux != 0;
        writer_.writeBit(taken);
        if (taken) {
            if (bank_.ctrl_target.predict(record.pc, record.addr)) {
                writer_.writeBit(true);
            } else {
                writer_.writeBit(false);
                writer_.writeVarint(
                    zigzagDelta(record.addr, record.pc));
            }
            bank_.ctrl_target.update(record.pc, record.addr);
        }
        take(field_bits_.ctrl);
    }
}

EventRecord
LogDecompressor::next()
{
    EventRecord record;
    DecodeError error;
    DecodeStatus status = tryNext(&record, &error);
    LBA_ASSERT(status == DecodeStatus::kOk,
               "corrupt record in trusted log stream");
    return record;
}

/**
 * Map one checked read's result onto the record decode: break on
 * success, roll back and ask for more input on underrun, fail typed
 * on a malformed encoding. Local to tryNext (undefined right after).
 */
#define LBA_TRY_READ(expr, what)                                            \
    switch (expr) {                                                         \
      case BitsResult::kOk:                                                 \
        break;                                                              \
      case BitsResult::kUnderrun:                                           \
        return needMore();                                                  \
      case BitsResult::kMalformed:                                          \
        return fail(what);                                                  \
    }

DecodeStatus
LogDecompressor::tryNext(EventRecord* out, DecodeError* error)
{
    const std::uint64_t start = reader_.bitPos();
    auto needMore = [&] {
        reader_.seekBit(start);
        return DecodeStatus::kNeedMore;
    };
    auto fail = [&](const char* message) {
        if (error) {
            *error = DecodeError::make(DecodeErrorKind::kMalformed,
                                       reader_.bitPos() / 8, message);
        }
        reader_.seekBit(start);
        return DecodeStatus::kError;
    };

    // Phase 1: read and validate every field against the *current*
    // predictor bank. No bank mutation happens here, so any exit —
    // kNeedMore or kError — leaves the decoder exactly as it was.
    EventRecord record;
    bool annotation = false;
    LBA_TRY_READ(reader_.tryReadBit(&annotation), "kind bit");

    bool tid_hit = false;
    LBA_TRY_READ(reader_.tryReadBit(&tid_hit), "tid flag");
    if (tid_hit) {
        if (!bank_.tid_seen) {
            return fail("tid hit before any tid literal");
        }
        record.tid = bank_.last_tid;
    } else {
        std::uint64_t tid = 0;
        LBA_TRY_READ(reader_.tryReadBits(16, &tid), "tid literal");
        record.tid = static_cast<ThreadId>(tid);
    }

    if (annotation) {
        std::uint64_t type_index = 0;
        LBA_TRY_READ(reader_.tryReadBits(3, &type_index),
                     "annotation type");
        record.type = static_cast<EventType>(
            static_cast<unsigned>(EventType::kAlloc) +
            static_cast<unsigned>(type_index));
        std::uint64_t addr_delta = 0;
        std::uint64_t aux_delta = 0;
        LBA_TRY_READ(reader_.tryReadVarint(&addr_delta),
                     "annotation addr varint");
        LBA_TRY_READ(reader_.tryReadVarint(&aux_delta),
                     "annotation aux varint");
        auto& last = bank_.annotation[type_index];
        record.addr = zigzagApply(last.addr, addr_delta);
        record.aux = zigzagApply(last.aux, aux_delta);

        // Phase 2 (annotation): commit.
        last.addr = record.addr;
        last.aux = record.aux;
        bank_.last_tid = record.tid;
        bank_.tid_seen = true;
        *out = record;
        return DecodeStatus::kOk;
    }

    // Program counter.
    bool pc_nonseq = false;
    LBA_TRY_READ(reader_.tryReadBit(&pc_nonseq), "pc flag");
    if (!pc_nonseq) {
        if (!bank_.pc.tryResolve(record.tid,
                                 PcPredictor::Source::kSequential,
                                 &record.pc)) {
            return fail("sequential pc hit without predictor state");
        }
    } else {
        bool pc_miss = false;
        LBA_TRY_READ(reader_.tryReadBit(&pc_miss), "pc flag");
        if (!pc_miss) {
            if (!bank_.pc.tryResolve(record.tid,
                                     PcPredictor::Source::kContext,
                                     &record.pc)) {
                return fail("context pc hit without predictor state");
            }
        } else {
            std::uint64_t delta = 0;
            LBA_TRY_READ(reader_.tryReadVarint(&delta),
                         "pc delta varint");
            record.pc =
                zigzagApply(bank_.pc.missBase(record.tid), delta);
        }
    }

    // Static instruction fields.
    bool stat_hit = false;
    LBA_TRY_READ(reader_.tryReadBit(&stat_hit), "static flag");
    bool stat_update = false;
    if (stat_hit) {
        const StaticInfo* info = bank_.stat.predict(record.pc);
        if (info == nullptr) return fail("static hit for unseen pc");
        record.opcode = info->opcode;
        record.rd = info->rd;
        record.rs1 = info->rs1;
        record.rs2 = info->rs2;
    } else {
        std::uint64_t opcode = 0, rd = 0, rs1 = 0, rs2 = 0;
        LBA_TRY_READ(reader_.tryReadBits(6, &opcode), "opcode literal");
        LBA_TRY_READ(reader_.tryReadBits(5, &rd), "rd literal");
        LBA_TRY_READ(reader_.tryReadBits(5, &rs1), "rs1 literal");
        LBA_TRY_READ(reader_.tryReadBits(5, &rs2), "rs2 literal");
        // The 6-bit field can carry values past the opcode table;
        // classOf() on one of those is library-abort territory, so an
        // untrusted stream must be stopped here.
        if (opcode >=
            static_cast<std::uint64_t>(isa::Opcode::kNumOpcodes)) {
            return fail("opcode literal out of range");
        }
        record.opcode = static_cast<std::uint8_t>(opcode);
        record.rd = static_cast<std::uint8_t>(rd);
        record.rs1 = static_cast<std::uint8_t>(rs1);
        record.rs2 = static_cast<std::uint8_t>(rs2);
        stat_update = true;
    }

    auto op = static_cast<isa::Opcode>(record.opcode);
    auto cls = isa::classOf(op);
    record.type = log::eventTypeOf(cls);

    bool mem_update = false;
    bool ctrl_update = false;
    if (hasMemPayload(cls)) {
        bool addr_nonstride = false;
        LBA_TRY_READ(reader_.tryReadBit(&addr_nonstride), "addr flag");
        if (!addr_nonstride) {
            if (!bank_.mem_addr.tryResolve(
                    record.pc, StridePredictor::Source::kStride,
                    &record.addr)) {
                return fail("stride hit without predictor state");
            }
        } else {
            bool addr_miss = false;
            LBA_TRY_READ(reader_.tryReadBit(&addr_miss), "addr flag");
            if (!addr_miss) {
                if (!bank_.mem_addr.tryResolve(
                        record.pc, StridePredictor::Source::kLast,
                        &record.addr)) {
                    return fail("last-addr hit without predictor state");
                }
            } else {
                std::uint64_t delta = 0;
                LBA_TRY_READ(reader_.tryReadVarint(&delta),
                             "addr delta varint");
                record.addr = zigzagApply(
                    bank_.mem_addr.missBase(record.pc), delta);
            }
        }
        mem_update = true;
        record.aux = isa::memAccessBytes(op);
    } else if (hasCtrlPayload(cls)) {
        bool taken = false;
        LBA_TRY_READ(reader_.tryReadBit(&taken), "taken flag");
        if (taken) {
            record.aux = 1;
            bool target_hit = false;
            LBA_TRY_READ(reader_.tryReadBit(&target_hit),
                         "target flag");
            if (target_hit) {
                // resolve() is total here (unseen pc yields 0), which
                // matches what a conforming encoder would have stored.
                record.addr = bank_.ctrl_target.resolve(record.pc);
            } else {
                std::uint64_t delta = 0;
                LBA_TRY_READ(reader_.tryReadVarint(&delta),
                             "target delta varint");
                record.addr = zigzagApply(record.pc, delta);
            }
            ctrl_update = true;
        }
    }

    // Phase 2: every read succeeded — commit the bank updates in one
    // block. Mirrors LogCompressor::append() verbatim (the predictor
    // sync invariant), just batched at the end.
    bank_.last_tid = record.tid;
    bank_.tid_seen = true;
    bank_.pc.update(record.tid, record.pc);
    if (stat_update) {
        bank_.stat.update(record.pc,
                          StaticInfo{record.opcode, record.rd,
                                     record.rs1, record.rs2});
    }
    if (mem_update) bank_.mem_addr.update(record.pc, record.addr);
    if (ctrl_update) bank_.ctrl_target.update(record.pc, record.addr);
    *out = record;
    return DecodeStatus::kOk;
}

#undef LBA_TRY_READ

} // namespace lba::compress
