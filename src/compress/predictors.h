#pragma once
/**
 * @file
 * Value predictors shared by the log compressor and decompressor.
 *
 * Following Burtscher's VPC approach [1], each record field has its own
 * small predictor bank; a field that predicts correctly costs one or two
 * flag bits instead of a literal. Compressor and decompressor run
 * identical predictor state machines so no side information is needed.
 *
 * Predictor inventory:
 *  - PcPredictor:      per-thread sequential (pc+8) and finite-context
 *                      (last pc -> next pc) predictors.
 *  - StaticPredictor:  pc -> (opcode, rd, rs1, rs2); instruction words are
 *                      static, so this hits on every revisited pc.
 *  - StridePredictor:  pc-indexed last-address + stride for load/store
 *                      effective addresses.
 *  - TargetPredictor:  pc-indexed last taken-target for control transfers.
 *  - LastValue:        per-annotation-type last address/size values.
 */

#include <cstdint>
#include <unordered_map>

#include "common/assert.h"
#include "common/types.h"
#include "isa/isa.h"

namespace lba::compress {

/** Sequential + finite-context-method program-counter predictor. */
class PcPredictor
{
  public:
    /** Prediction sources, in the order they are tried. */
    enum class Source : std::uint8_t { kSequential, kContext, kMiss };

    /** Predict the pc of the next record for @p tid. */
    Source
    predict(ThreadId tid, Addr actual) const
    {
        auto it = last_pc_.find(tid);
        if (it == last_pc_.end()) {
            return Source::kMiss;
        }
        if (it->second + isa::kInstrBytes == actual) {
            return Source::kSequential;
        }
        auto ctx = context_.find(it->second);
        if (ctx != context_.end() && ctx->second == actual) {
            return Source::kContext;
        }
        return Source::kMiss;
    }

    /** Resolve a prediction on the decompressor side. */
    Addr
    resolve(ThreadId tid, Source source) const
    {
        Addr out = 0;
        LBA_ASSERT(tryResolve(tid, source, &out),
                   "pc hit without predictor state");
        return out;
    }

    /**
     * Checked resolve for untrusted streams: false when the stream
     * claims a hit the predictor bank cannot back (no last pc for the
     * thread, or a context hit with no stored successor) — which a
     * well-formed stream never does, so false means malformed input.
     */
    bool
    tryResolve(ThreadId tid, Source source, Addr* out) const
    {
        auto it = last_pc_.find(tid);
        if (it == last_pc_.end()) return false;
        if (source == Source::kSequential) {
            *out = it->second + isa::kInstrBytes;
            return true;
        }
        // kContext
        auto ctx = context_.find(it->second);
        if (ctx == context_.end()) return false;
        *out = ctx->second;
        return true;
    }

    /** Delta base for encoding a miss (0 when @p tid is unseen). */
    Addr
    missBase(ThreadId tid) const
    {
        auto it = last_pc_.find(tid);
        return it == last_pc_.end() ? 0
                                    : it->second + isa::kInstrBytes;
    }

    /** Record the actual pc (both sides call this after every record). */
    void
    update(ThreadId tid, Addr actual)
    {
        auto it = last_pc_.find(tid);
        if (it != last_pc_.end() &&
            it->second + isa::kInstrBytes != actual) {
            context_[it->second] = actual;
        }
        last_pc_[tid] = actual;
    }

  private:
    std::unordered_map<ThreadId, Addr> last_pc_;
    std::unordered_map<Addr, Addr> context_;
};

/** Static per-pc instruction fields. */
struct StaticInfo
{
    std::uint8_t opcode = 0;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;

    bool operator==(const StaticInfo&) const = default;
};

/** pc -> static instruction fields (hits after the first visit). */
class StaticPredictor
{
  public:
    /** @return Pointer to the prediction for @p pc, or nullptr. */
    const StaticInfo*
    predict(Addr pc) const
    {
        auto it = table_.find(pc);
        return it == table_.end() ? nullptr : &it->second;
    }

    void update(Addr pc, const StaticInfo& info) { table_[pc] = info; }

  private:
    std::unordered_map<Addr, StaticInfo> table_;
};

/** pc-indexed last-address + stride predictor for effective addresses. */
class StridePredictor
{
  public:
    enum class Source : std::uint8_t { kStride, kLast, kMiss };

    Source
    predict(Addr pc, Addr actual) const
    {
        auto it = table_.find(pc);
        if (it == table_.end()) return Source::kMiss;
        if (static_cast<Addr>(it->second.last + it->second.stride) ==
            actual) {
            return Source::kStride;
        }
        if (it->second.last == actual) return Source::kLast;
        return Source::kMiss;
    }

    /** Prediction value for hit kinds; also the delta base for misses. */
    Addr
    resolve(Addr pc, Source source) const
    {
        Addr out = 0;
        LBA_ASSERT(tryResolve(pc, source, &out),
                   "stride hit without predictor state");
        return out;
    }

    /** Checked resolve: false when @p pc has no entry (see
     *  PcPredictor::tryResolve — false means malformed input). */
    bool
    tryResolve(Addr pc, Source source, Addr* out) const
    {
        auto it = table_.find(pc);
        if (it == table_.end()) return false;
        const Entry& e = it->second;
        *out = source == Source::kStride
                   ? static_cast<Addr>(e.last + e.stride)
                   : e.last;
        return true;
    }

    /** Base for delta-encoding a miss (0 when pc is unseen). */
    Addr
    missBase(Addr pc) const
    {
        auto it = table_.find(pc);
        return it == table_.end() ? 0 : it->second.last;
    }

    void
    update(Addr pc, Addr actual)
    {
        Entry& e = table_[pc];
        if (e.seen) {
            // Wrap-around subtraction: signed subtraction of arbitrary
            // 64-bit addresses overflows; the predictor only ever adds
            // the stride back mod 2^64, so wrapping is exact.
            e.stride = static_cast<std::int64_t>(actual - e.last);
        }
        e.last = actual;
        e.seen = true;
    }

  private:
    struct Entry
    {
        Addr last = 0;
        std::int64_t stride = 0;
        bool seen = false;
    };

    std::unordered_map<Addr, Entry> table_;
};

/** pc-indexed last taken-target predictor for control transfers. */
class TargetPredictor
{
  public:
    /** @return True when the stored target for @p pc equals @p actual. */
    bool
    predict(Addr pc, Addr actual) const
    {
        auto it = table_.find(pc);
        return it != table_.end() && it->second == actual;
    }

    /** Stored target for @p pc (0 when unseen). */
    Addr
    resolve(Addr pc) const
    {
        auto it = table_.find(pc);
        return it == table_.end() ? 0 : it->second;
    }

    void update(Addr pc, Addr actual) { table_[pc] = actual; }

  private:
    std::unordered_map<Addr, Addr> table_;
};

} // namespace lba::compress
