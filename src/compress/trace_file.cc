/**
 * @file
 * Trace file reader/writer implementation.
 */

#include "compress/trace_file.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "compress/compressor.h"

namespace lba::compress {

namespace {

constexpr char kMagic[8] = {'L', 'B', 'A', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

void
put64(std::uint8_t* out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
}

std::uint64_t
get64(const std::uint8_t* in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    return value;
}

bool
fail(std::string* error, const std::string& message)
{
    if (error) *error = message;
    return false;
}

/** RAII FILE handle. */
struct FileCloser
{
    void operator()(std::FILE* f) const { if (f) std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTrace(const std::string& path,
           const std::vector<log::EventRecord>& records,
           std::string* error)
{
    LogCompressor compressor;
    for (const log::EventRecord& record : records) {
        compressor.append(record);
    }
    const std::vector<std::uint8_t>& payload = compressor.bytes();

    File file(std::fopen(path.c_str(), "wb"));
    if (!file) return fail(error, "cannot open '" + path + "' to write");

    std::uint8_t header[28];
    std::memcpy(header, kMagic, 8);
    header[8] = static_cast<std::uint8_t>(kVersion);
    header[9] = header[10] = header[11] = 0;
    put64(header + 12, records.size());
    put64(header + 20, payload.size());
    if (std::fwrite(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return fail(error, "short write on header");
    }
    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), file.get()) !=
            payload.size()) {
        return fail(error, "short write on payload");
    }
    if (error) error->clear();
    return true;
}

std::optional<TraceInfo>
readTraceInfo(const std::string& path, std::string* error)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file) {
        fail(error, "cannot open '" + path + "'");
        return std::nullopt;
    }
    std::uint8_t header[28];
    if (std::fread(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        fail(error, "truncated header");
        return std::nullopt;
    }
    if (std::memcmp(header, kMagic, 8) != 0) {
        fail(error, "not an LBA trace file");
        return std::nullopt;
    }
    if (header[8] != kVersion) {
        fail(error, "unsupported trace version");
        return std::nullopt;
    }
    TraceInfo info;
    info.records = get64(header + 12);
    info.payload_bytes = get64(header + 20);
    if (error) error->clear();
    return info;
}

std::optional<std::vector<log::EventRecord>>
readTrace(const std::string& path, std::string* error)
{
    auto info = readTraceInfo(path, error);
    if (!info) return std::nullopt;

    File file(std::fopen(path.c_str(), "rb"));
    if (!file) {
        fail(error, "cannot reopen '" + path + "'");
        return std::nullopt;
    }
    if (std::fseek(file.get(), 28, SEEK_SET) != 0) {
        fail(error, "seek failed");
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload(info->payload_bytes);
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), file.get()) !=
            payload.size()) {
        fail(error, "truncated payload");
        return std::nullopt;
    }

    LogDecompressor decompressor(payload);
    std::vector<log::EventRecord> records;
    records.reserve(info->records);
    for (std::uint64_t i = 0; i < info->records; ++i) {
        records.push_back(decompressor.next());
    }
    if (error) error->clear();
    return records;
}

} // namespace lba::compress
