/**
 * @file
 * Trace file reader/writer implementation.
 *
 * Reading order of operations is deliberate: validate the fixed
 * header, then the codec name, then every length against the real
 * file size, and only then allocate and decode. Nothing here trusts a
 * byte it has not checked.
 */

#include "compress/trace_file.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace lba::compress {

namespace {

constexpr char kMagic[8] = {'L', 'B', 'A', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
/** Fixed header prefix shared by v1 and v2. */
constexpr std::size_t kFixedHeaderBytes = 28;

void
put64(std::uint8_t* out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
}

std::uint64_t
get64(const std::uint8_t* in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    return value;
}

bool
fail(DecodeError* error, DecodeErrorKind kind, std::uint64_t offset,
     const std::string& message)
{
    if (error) *error = DecodeError::make(kind, offset, message);
    return false;
}

/** RAII FILE handle. */
struct FileCloser
{
    void operator()(std::FILE* f) const { if (f) std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/** File size via seek-to-end; false on I/O failure. */
bool
fileSize(std::FILE* f, std::uint64_t* out)
{
    long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return false;
    long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return false;
    *out = static_cast<std::uint64_t>(end);
    return true;
}

/**
 * Parse and fully validate a header from an open file. On success the
 * read position is at the start of the payload.
 */
bool
readHeader(std::FILE* f, TraceInfo* info, std::uint64_t* payload_offset,
           DecodeError* error)
{
    std::uint8_t header[kFixedHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
        return fail(error, DecodeErrorKind::kTruncated, 0,
                    "truncated header");
    }
    if (std::memcmp(header, kMagic, 8) != 0) {
        return fail(error, DecodeErrorKind::kMalformed, 0,
                    "not an LBA trace file");
    }
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i) {
        version |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
    }
    info->version = version;
    info->records = get64(header + 12);
    info->payload_bytes = get64(header + 20);

    std::uint64_t offset = kFixedHeaderBytes;
    if (version == kVersionV1) {
        info->codec = kDefaultCodec;
    } else if (version == kVersionV2) {
        std::uint8_t name_len = 0;
        if (std::fread(&name_len, 1, 1, f) != 1) {
            return fail(error, DecodeErrorKind::kTruncated, offset,
                        "truncated codec name length");
        }
        if (name_len == 0 || name_len > kMaxCodecNameBytes) {
            return fail(error, DecodeErrorKind::kMalformed, offset,
                        "bad codec name length");
        }
        char name[kMaxCodecNameBytes];
        if (std::fread(name, 1, name_len, f) != name_len) {
            return fail(error, DecodeErrorKind::kTruncated, offset + 1,
                        "truncated codec name");
        }
        for (unsigned i = 0; i < name_len; ++i) {
            if (name[i] < 0x21 || name[i] > 0x7e) {
                return fail(error, DecodeErrorKind::kMalformed,
                            offset + 1 + i,
                            "codec name contains non-printable bytes");
            }
        }
        info->codec.assign(name, name_len);
        offset += 1 + name_len;
    } else {
        return fail(error, DecodeErrorKind::kUnsupported, 8,
                    "unsupported trace version");
    }

    // Every byte the header promises must really exist, and nothing
    // may trail the payload — an attacker-controlled payload_bytes
    // must not be able to drive allocations past the file itself.
    std::uint64_t size = 0;
    if (!fileSize(f, &size)) {
        return fail(error, DecodeErrorKind::kIo, offset,
                    "cannot determine file size");
    }
    if (info->payload_bytes > size - offset) {
        return fail(error, DecodeErrorKind::kTruncated, offset,
                    "truncated payload: header promises " +
                        std::to_string(info->payload_bytes) +
                        " bytes, file holds " +
                        std::to_string(size - offset));
    }
    if (info->payload_bytes < size - offset) {
        return fail(error, DecodeErrorKind::kMalformed, offset,
                    "trailing bytes after payload");
    }
    // Even at one bit per record the payload could not hold more than
    // 8 records per byte; a count past that is an allocation bomb.
    if (info->records > info->payload_bytes * 8 + 8) {
        return fail(error, DecodeErrorKind::kLimitExceeded, 12,
                    "record count implausible for payload size");
    }
    *payload_offset = offset;
    return true;
}

} // namespace

bool
writeTrace(const std::string& path,
           const std::vector<log::EventRecord>& records,
           const std::string& codec, DecodeError* error)
{
    const CodecInfo* info = CodecRegistry::instance().find(codec);
    if (info == nullptr) {
        return fail(error, DecodeErrorKind::kUnsupported, 0,
                    "unknown codec '" + codec + "'");
    }
    std::unique_ptr<Encoder> encoder = info->makeEncoder();
    for (const log::EventRecord& record : records) {
        encoder->append(record);
    }
    encoder->finishStream();
    std::vector<std::uint8_t> payload(encoder->pullableBytes());
    encoder->pull(payload.data(), payload.size());

    File file(std::fopen(path.c_str(), "wb"));
    if (!file) {
        return fail(error, DecodeErrorKind::kIo, 0,
                    "cannot open '" + path + "' to write");
    }

    std::uint8_t header[kFixedHeaderBytes + 1 + kMaxCodecNameBytes];
    std::memcpy(header, kMagic, 8);
    header[8] = static_cast<std::uint8_t>(kVersionV2);
    header[9] = header[10] = header[11] = 0;
    put64(header + 12, records.size());
    put64(header + 20, payload.size());
    header[28] = static_cast<std::uint8_t>(codec.size());
    std::memcpy(header + 29, codec.data(), codec.size());
    std::size_t header_bytes = kFixedHeaderBytes + 1 + codec.size();
    if (std::fwrite(header, 1, header_bytes, file.get()) !=
        header_bytes) {
        return fail(error, DecodeErrorKind::kIo, 0,
                    "short write on header");
    }
    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), file.get()) !=
            payload.size()) {
        return fail(error, DecodeErrorKind::kIo, header_bytes,
                    "short write on payload");
    }
    if (error) *error = DecodeError{};
    return true;
}

std::optional<TraceInfo>
readTraceInfo(const std::string& path, DecodeError* error)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file) {
        fail(error, DecodeErrorKind::kIo, 0,
             "cannot open '" + path + "'");
        return std::nullopt;
    }
    TraceInfo info;
    std::uint64_t payload_offset = 0;
    if (!readHeader(file.get(), &info, &payload_offset, error)) {
        return std::nullopt;
    }
    if (error) *error = DecodeError{};
    return info;
}

std::optional<std::vector<log::EventRecord>>
readTrace(const std::string& path, DecodeError* error)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file) {
        fail(error, DecodeErrorKind::kIo, 0,
             "cannot open '" + path + "'");
        return std::nullopt;
    }
    TraceInfo info;
    std::uint64_t payload_offset = 0;
    if (!readHeader(file.get(), &info, &payload_offset, error)) {
        return std::nullopt;
    }
    const CodecInfo* codec = CodecRegistry::instance().find(info.codec);
    if (codec == nullptr) {
        fail(error, DecodeErrorKind::kUnsupported, kFixedHeaderBytes,
             "unknown codec '" + info.codec + "'");
        return std::nullopt;
    }

    // payload_bytes was validated against the file size, so this
    // allocation is bounded by real on-disk bytes.
    std::vector<std::uint8_t> payload(info.payload_bytes);
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), file.get()) !=
            payload.size()) {
        fail(error, DecodeErrorKind::kIo, payload_offset,
             "payload read failed");
        return std::nullopt;
    }

    std::unique_ptr<Decoder> decoder = codec->makeDecoder();
    if (!payload.empty()) decoder->push(payload.data(), payload.size());
    decoder->finishInput();

    std::vector<log::EventRecord> records;
    records.reserve(info.records);
    for (std::uint64_t i = 0; i < info.records; ++i) {
        log::EventRecord record;
        switch (decoder->next(&record)) {
          case DecodeStatus::kOk:
            records.push_back(record);
            break;
          case DecodeStatus::kEnd:
            fail(error, DecodeErrorKind::kTruncated, payload_offset,
                 "payload ends after " + std::to_string(i) + " of " +
                     std::to_string(info.records) + " records");
            return std::nullopt;
          case DecodeStatus::kError: {
            DecodeError inner = decoder->error();
            fail(error, inner.kind, payload_offset + inner.offset,
                 "record " + std::to_string(i) + ": " + inner.message);
            return std::nullopt;
          }
          case DecodeStatus::kNeedMore:
            // Unreachable: finishInput() was called, so decoders
            // resolve incomplete records to kError/kEnd instead.
            fail(error, DecodeErrorKind::kTruncated, payload_offset,
                 "decoder stalled mid-payload");
            return std::nullopt;
        }
    }
    if (error) *error = DecodeError{};
    return records;
}

} // namespace lba::compress
