#pragma once
/**
 * @file
 * The "varint" codec: byte-aligned zigzag-delta LEB128 encoding of
 * every record field against a small last-value state.
 *
 * Cost profile: the cheapest encode/decode in the registry — no hash
 * maps, no predictor banks, just field deltas — at a worse ratio than
 * the predictor codec (several bytes per record instead of sub-byte).
 * It is the right choice when the host-side compression cost matters
 * more than transport bandwidth, and it round-trips *arbitrary*
 * EventRecords byte-exactly (no capture-shape requirement), so it is
 * also the conservative archival choice for traces that did not come
 * from the capture unit.
 *
 * Stream grammar per record (all fields byte-aligned):
 *   control   : 1 byte; bit0 = tid equals previous record's tid,
 *               bits 1..7 reserved (must be zero — decoders reject)
 *   tid       : varint, only when control bit0 is clear
 *   pc        : varint(zigzag(pc - last_pc))
 *   type      : 1 byte (< log::kNumEventTypes, decoders reject others)
 *   opcode,rd,rs1,rs2 : 1 byte each, literal
 *   addr      : varint(zigzag(addr - last_addr))
 *   aux       : varint(zigzag(aux - last_aux))
 * All last-values start at zero on both sides.
 */

#include <cstddef>
#include <vector>

#include "compress/bitstream.h"
#include "compress/codec.h"

namespace lba::compress {

/** Last-value state shared by the varint encoder and decoder. */
struct VarintLasts
{
    std::uint64_t tid = 0;
    Addr pc = 0;
    Addr addr = 0;
    std::uint64_t aux = 0;
};

/** Streaming byte-aligned delta encoder. */
class VarintEncoder final : public Encoder
{
  public:
    void append(const log::EventRecord& record) override;
    void finishStream() override {}
    std::uint64_t records() const override { return records_; }
    std::uint64_t bitsWritten() const override
    {
        return writer_.bitCount();
    }
    std::size_t pull(std::uint8_t* out, std::size_t max) override;
    std::size_t pullableBytes() const override
    {
        return writer_.bytes().size() - pulled_;
    }

  private:
    VarintLasts lasts_;
    BitWriter writer_;
    std::uint64_t records_ = 0;
    std::size_t pulled_ = 0;
};

/** Streaming hardened decoder for the varint grammar. */
class VarintDecoder final : public Decoder
{
  public:
    VarintDecoder() : reader_(buffer_) {}

    void push(const std::uint8_t* data, std::size_t n) override;
    void finishInput() override { input_done_ = true; }
    DecodeStatus next(log::EventRecord* out) override;
    const DecodeError& error() const override { return error_; }
    std::uint64_t records() const override { return records_; }

  private:
    std::vector<std::uint8_t> buffer_;
    BitReader reader_;
    VarintLasts lasts_;
    DecodeError error_;
    std::uint64_t records_ = 0;
    bool input_done_ = false;
};

} // namespace lba::compress
