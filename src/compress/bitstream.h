#pragma once
/**
 * @file
 * Bit-granular output/input streams used by the log compressor.
 *
 * The compressor's whole point (paper Section 2) is to get the event
 * stream under one byte per instruction, so records must be bit-packed;
 * byte-aligned encodings cannot reach the target. Bits are filled LSB
 * first within each byte.
 */

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace lba::compress {

/** Append-only bit stream writer. */
class BitWriter
{
  public:
    /** Append the low @p count bits of @p value (count <= 64). */
    void
    writeBits(std::uint64_t value, unsigned count)
    {
        LBA_ASSERT(count <= 64, "cannot write more than 64 bits");
        for (unsigned i = 0; i < count; ++i) {
            if (bit_pos_ == 0) bytes_.push_back(0);
            if ((value >> i) & 1) {
                bytes_.back() |=
                    static_cast<std::uint8_t>(1u << bit_pos_);
            }
            bit_pos_ = (bit_pos_ + 1) % 8;
        }
    }

    /** Append one bit. */
    void writeBit(bool bit) { writeBits(bit ? 1 : 0, 1); }

    /**
     * Append an unsigned LEB128-style varint: 7 value bits per group,
     * high bit of each group set when more groups follow.
     */
    void
    writeVarint(std::uint64_t value)
    {
        do {
            std::uint64_t group = value & 0x7f;
            value >>= 7;
            writeBits(group | (value ? 0x80 : 0), 8);
        } while (value);
    }

    /** Total bits written so far. */
    std::uint64_t bitCount() const
    {
        return bytes_.empty()
                   ? 0
                   : (bytes_.size() - 1) * 8 +
                         (bit_pos_ == 0 ? 8 : bit_pos_);
    }

    /** The backing bytes (the final byte may be partially filled). */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    unsigned bit_pos_ = 0; // next free bit index within bytes_.back()
};

/**
 * Outcome of a checked (try*) bit-stream read. kUnderrun is
 * recoverable — the caller may push more bytes, seek back to the
 * record boundary and retry — which is what the streaming decoders'
 * kNeedMore path does; kMalformed is not.
 */
enum class BitsResult : std::uint8_t
{
    kOk = 0,
    /** The buffer holds too few bits. */
    kUnderrun,
    /** Structurally invalid encoding (e.g. overlong varint). */
    kMalformed,
};

/**
 * Sequential bit stream reader over a byte buffer.
 *
 * Two read families: the asserting readBits/readVarint for trusted
 * in-process streams (the transport-accounting path, which only ever
 * reads back what it wrote), and the checked tryReadBits/tryReadVarint
 * for untrusted input, which report underruns and malformed encodings
 * instead of aborting. The referenced byte vector may grow between
 * reads (streaming decoders push chunks into it); it must not shrink.
 */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes)
    {
    }

    /** Read @p count bits (LSB-first order, matching BitWriter). */
    std::uint64_t
    readBits(unsigned count)
    {
        std::uint64_t value = 0;
        BitsResult result = tryReadBits(count, &value);
        LBA_ASSERT(result == BitsResult::kOk, "bit stream underrun");
        return value;
    }

    /** Read one bit. */
    bool readBit() { return readBits(1) != 0; }

    /** Read a varint written by BitWriter::writeVarint. */
    std::uint64_t
    readVarint()
    {
        std::uint64_t value = 0;
        BitsResult result = tryReadVarint(&value);
        LBA_ASSERT(result == BitsResult::kOk, "bad varint");
        return value;
    }

    /**
     * Checked read of @p count bits (count <= 64) into @p out.
     * On kUnderrun the position is left unchanged and *out is
     * unspecified.
     */
    BitsResult
    tryReadBits(unsigned count, std::uint64_t* out)
    {
        LBA_ASSERT(count <= 64, "cannot read more than 64 bits");
        if (pos_ + count > bytes_.size() * 8) {
            return BitsResult::kUnderrun;
        }
        std::uint64_t value = 0;
        for (unsigned i = 0; i < count; ++i) {
            std::size_t byte = pos_ / 8;
            if ((bytes_[byte] >> (pos_ % 8)) & 1) {
                value |= 1ull << i;
            }
            ++pos_;
        }
        *out = value;
        return BitsResult::kOk;
    }

    /** Checked read of one bit. */
    BitsResult
    tryReadBit(bool* out)
    {
        std::uint64_t value = 0;
        BitsResult result = tryReadBits(1, &value);
        if (result == BitsResult::kOk) *out = value != 0;
        return result;
    }

    /**
     * Checked varint read. A varint whose continuation groups extend
     * past 64 value bits is kMalformed (an untrusted stream must not
     * be able to spin this loop); the position is then unspecified and
     * the caller is expected to seek back or abandon the stream.
     */
    BitsResult
    tryReadVarint(std::uint64_t* out)
    {
        std::uint64_t value = 0;
        unsigned shift = 0;
        while (true) {
            std::uint64_t group = 0;
            BitsResult result = tryReadBits(8, &group);
            if (result != BitsResult::kOk) return result;
            value |= (group & 0x7f) << shift;
            if (!(group & 0x80)) break;
            shift += 7;
            if (shift >= 64) return BitsResult::kMalformed;
        }
        *out = value;
        return BitsResult::kOk;
    }

    /** Bits consumed so far. */
    std::uint64_t bitPos() const { return pos_; }

    /** Bits currently buffered beyond the read position. */
    std::uint64_t
    bitsAvailable() const
    {
        return bytes_.size() * 8 - pos_;
    }

    /** Rewind/seek to an absolute bit position (record rollback). */
    void
    seekBit(std::uint64_t pos)
    {
        LBA_ASSERT(pos <= bytes_.size() * 8, "seek past end");
        pos_ = pos;
    }

    /** True when every complete byte has been consumed. */
    bool exhausted() const { return pos_ >= bytes_.size() * 8; }

  private:
    const std::vector<std::uint8_t>& bytes_;
    std::uint64_t pos_ = 0;
};

/** Map a signed delta to an unsigned value with small magnitudes small. */
inline std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/**
 * Zigzag-mapped delta of two unsigned values. The subtraction wraps mod
 * 2^64 (signed subtraction of arbitrary 64-bit values would overflow),
 * which zigzagApply inverts exactly.
 */
inline std::uint64_t
zigzagDelta(std::uint64_t value, std::uint64_t base)
{
    return zigzagEncode(static_cast<std::int64_t>(value - base));
}

/** Inverse of zigzagDelta: reapply a decoded delta to the base. */
inline std::uint64_t
zigzagApply(std::uint64_t base, std::uint64_t delta)
{
    return base + static_cast<std::uint64_t>(zigzagDecode(delta));
}

} // namespace lba::compress
