#pragma once
/**
 * @file
 * Bit-granular output/input streams used by the log compressor.
 *
 * The compressor's whole point (paper Section 2) is to get the event
 * stream under one byte per instruction, so records must be bit-packed;
 * byte-aligned encodings cannot reach the target. Bits are filled LSB
 * first within each byte.
 */

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace lba::compress {

/** Append-only bit stream writer. */
class BitWriter
{
  public:
    /** Append the low @p count bits of @p value (count <= 64). */
    void
    writeBits(std::uint64_t value, unsigned count)
    {
        LBA_ASSERT(count <= 64, "cannot write more than 64 bits");
        for (unsigned i = 0; i < count; ++i) {
            if (bit_pos_ == 0) bytes_.push_back(0);
            if ((value >> i) & 1) {
                bytes_.back() |=
                    static_cast<std::uint8_t>(1u << bit_pos_);
            }
            bit_pos_ = (bit_pos_ + 1) % 8;
        }
    }

    /** Append one bit. */
    void writeBit(bool bit) { writeBits(bit ? 1 : 0, 1); }

    /**
     * Append an unsigned LEB128-style varint: 7 value bits per group,
     * high bit of each group set when more groups follow.
     */
    void
    writeVarint(std::uint64_t value)
    {
        do {
            std::uint64_t group = value & 0x7f;
            value >>= 7;
            writeBits(group | (value ? 0x80 : 0), 8);
        } while (value);
    }

    /** Total bits written so far. */
    std::uint64_t bitCount() const
    {
        return bytes_.empty()
                   ? 0
                   : (bytes_.size() - 1) * 8 +
                         (bit_pos_ == 0 ? 8 : bit_pos_);
    }

    /** The backing bytes (the final byte may be partially filled). */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    unsigned bit_pos_ = 0; // next free bit index within bytes_.back()
};

/** Sequential bit stream reader over a byte buffer. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes)
    {
    }

    /** Read @p count bits (LSB-first order, matching BitWriter). */
    std::uint64_t
    readBits(unsigned count)
    {
        LBA_ASSERT(count <= 64, "cannot read more than 64 bits");
        std::uint64_t value = 0;
        for (unsigned i = 0; i < count; ++i) {
            std::size_t byte = pos_ / 8;
            LBA_ASSERT(byte < bytes_.size(), "bit stream underrun");
            if ((bytes_[byte] >> (pos_ % 8)) & 1) {
                value |= 1ull << i;
            }
            ++pos_;
        }
        return value;
    }

    /** Read one bit. */
    bool readBit() { return readBits(1) != 0; }

    /** Read a varint written by BitWriter::writeVarint. */
    std::uint64_t
    readVarint()
    {
        std::uint64_t value = 0;
        unsigned shift = 0;
        while (true) {
            std::uint64_t group = readBits(8);
            value |= (group & 0x7f) << shift;
            if (!(group & 0x80)) break;
            shift += 7;
            LBA_ASSERT(shift < 64, "varint too long");
        }
        return value;
    }

    /** Bits consumed so far. */
    std::uint64_t bitPos() const { return pos_; }

    /** True when every complete byte has been consumed. */
    bool exhausted() const { return pos_ >= bytes_.size() * 8; }

  private:
    const std::vector<std::uint8_t>& bytes_;
    std::uint64_t pos_ = 0;
};

/** Map a signed delta to an unsigned value with small magnitudes small. */
inline std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/**
 * Zigzag-mapped delta of two unsigned values. The subtraction wraps mod
 * 2^64 (signed subtraction of arbitrary 64-bit values would overflow),
 * which zigzagApply inverts exactly.
 */
inline std::uint64_t
zigzagDelta(std::uint64_t value, std::uint64_t base)
{
    return zigzagEncode(static_cast<std::int64_t>(value - base));
}

/** Inverse of zigzagDelta: reapply a decoded delta to the base. */
inline std::uint64_t
zigzagApply(std::uint64_t base, std::uint64_t delta)
{
    return base + static_cast<std::uint64_t>(zigzagDecode(delta));
}

} // namespace lba::compress
