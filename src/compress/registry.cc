/**
 * @file
 * Codec registry and built-in codec registration.
 */

#include "compress/registry.h"

#include "common/assert.h"
#include "compress/dict_codec.h"
#include "compress/predictor_codec.h"
#include "compress/varint_codec.h"

namespace lba::compress {

CodecRegistry&
CodecRegistry::instance()
{
    static CodecRegistry registry = [] {
        CodecRegistry r;
        r.add(CodecInfo{
            "predictor",
            "value-prediction bit-packed codec (paper default, "
            "sub-byte/record on workload traces)",
            kCapBitPacked | kCapPredictive | kCapCanonicalStreamsOnly,
            [] { return std::make_unique<PredictorEncoder>(); },
            [] { return std::make_unique<PredictorDecoder>(); },
        });
        r.add(CodecInfo{
            "varint",
            "byte-aligned zigzag-delta varint codec (cheapest "
            "encode/decode, round-trips arbitrary records)",
            kCapByteAligned,
            [] { return std::make_unique<VarintEncoder>(); },
            [] { return std::make_unique<VarintDecoder>(); },
        });
        r.add(CodecInfo{
            "dict",
            "FIFO dictionary over static record fields plus varint "
            "deltas (good on loopy traces, arbitrary records)",
            kCapByteAligned | kCapDictionary,
            [] { return std::make_unique<DictEncoder>(); },
            [] { return std::make_unique<DictDecoder>(); },
        });
        return r;
    }();
    return registry;
}

void
CodecRegistry::add(CodecInfo info)
{
    LBA_ASSERT(!info.name.empty(), "codec name must be non-empty");
    LBA_ASSERT(info.name.size() <= kMaxCodecNameBytes,
               "codec name too long for the trace-file header");
    LBA_ASSERT(find(info.name) == nullptr, "duplicate codec name");
    LBA_ASSERT(info.makeEncoder && info.makeDecoder,
               "codec factories must be set");
    codecs_.push_back(std::move(info));
}

const CodecInfo*
CodecRegistry::find(const std::string& name) const
{
    for (const CodecInfo& codec : codecs_) {
        if (codec.name == name) return &codec;
    }
    return nullptr;
}

std::vector<std::string>
CodecRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(codecs_.size());
    for (const CodecInfo& codec : codecs_) out.push_back(codec.name);
    return out;
}

} // namespace lba::compress
