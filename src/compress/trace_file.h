#pragma once
/**
 * @file
 * On-disk event-trace files.
 *
 * The paper's own methodology (Section 3) used exactly this split: "we
 * developed a trace generation tool to produce log record traces from
 * applications, and a Simics extension module to read the log traces
 * and perform event-driven lifeguard executions". These helpers store a
 * captured event stream in its compressed form so traces can be
 * generated once and replayed into lifeguards many times (tools/
 * lba_trace and tools/lba_run).
 *
 * Format v2 (little-endian):
 *   bytes 0..7    magic "LBATRACE"
 *   bytes 8..11   format version (2)
 *   bytes 12..19  record count
 *   bytes 20..27  payload byte count
 *   byte  28      codec name length L (1..kMaxCodecNameBytes)
 *   bytes 29..    codec name (L bytes, printable ASCII, no NUL)
 *   then          encoder output (payload byte count bytes, exactly)
 * Version-1 files (no codec field, payload at byte 28) still read;
 * they are always "predictor" streams.
 *
 * Trace files are *untrusted input*: every length is validated against
 * the actual file size before any allocation, the record count is
 * sanity-checked against the payload size, and the payload is decoded
 * through the hardened streaming Decoder — a malformed or adversarial
 * file yields a typed DecodeError, never UB or an abort.
 */

#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/registry.h"
#include "log/event.h"

namespace lba::compress {

/** Trace-file header information. */
struct TraceInfo
{
    std::uint64_t records = 0;
    std::uint64_t payload_bytes = 0;
    /** Format version the file was written with (1 or 2). */
    std::uint32_t version = 0;
    /** Codec that encoded the payload ("predictor" for v1 files). */
    std::string codec;

    /** Average compressed record size. */
    double
    bytesPerRecord() const
    {
        return records ? static_cast<double>(payload_bytes) /
                             static_cast<double>(records)
                       : 0.0;
    }
};

/**
 * Write @p records to @p path, encoded with the registered codec
 * @p codec.
 * @return False on I/O failure or unknown codec (@p error says which).
 */
bool writeTrace(const std::string& path,
                const std::vector<log::EventRecord>& records,
                const std::string& codec = kDefaultCodec,
                DecodeError* error = nullptr);

/**
 * Read and validate the header of a trace file without decoding the
 * payload. The header's payload length is checked against the actual
 * file size, so a successful TraceInfo never over-promises.
 */
std::optional<TraceInfo> readTraceInfo(const std::string& path,
                                       DecodeError* error = nullptr);

/**
 * Load and decode an entire trace file.
 * @return std::nullopt on I/O, format, or payload error (typed in
 * @p error).
 */
std::optional<std::vector<log::EventRecord>> readTrace(
    const std::string& path, DecodeError* error = nullptr);

} // namespace lba::compress
