#pragma once
/**
 * @file
 * On-disk event-trace files.
 *
 * The paper's own methodology (Section 3) used exactly this split: "we
 * developed a trace generation tool to produce log record traces from
 * applications, and a Simics extension module to read the log traces
 * and perform event-driven lifeguard executions". These helpers store a
 * captured event stream in its compressed form so traces can be
 * generated once and replayed into lifeguards many times (tools/
 * lba_trace and tools/lba_run).
 *
 * Format (little-endian):
 *   bytes 0..7   magic "LBATRACE"
 *   bytes 8..11  format version (currently 1)
 *   bytes 12..19 record count
 *   bytes 20..27 payload byte count
 *   bytes 28..   LogCompressor output
 */

#include <optional>
#include <string>
#include <vector>

#include "log/event.h"

namespace lba::compress {

/** Trace-file header information. */
struct TraceInfo
{
    std::uint64_t records = 0;
    std::uint64_t payload_bytes = 0;

    /** Average compressed record size. */
    double
    bytesPerRecord() const
    {
        return records ? static_cast<double>(payload_bytes) /
                             static_cast<double>(records)
                       : 0.0;
    }
};

/**
 * Write @p records to @p path in compressed trace format.
 * @return False on I/O failure (@p error describes it).
 */
bool writeTrace(const std::string& path,
                const std::vector<log::EventRecord>& records,
                std::string* error = nullptr);

/**
 * Read the header of a trace file without decoding the payload.
 */
std::optional<TraceInfo> readTraceInfo(const std::string& path,
                                       std::string* error = nullptr);

/**
 * Load and decompress an entire trace file.
 * @return std::nullopt on I/O or format error.
 */
std::optional<std::vector<log::EventRecord>> readTrace(
    const std::string& path, std::string* error = nullptr);

} // namespace lba::compress
