/**
 * @file
 * Dictionary codec implementation. The FIFO slot discipline is the
 * whole synchronization story: literals insert at next_slot_ on both
 * sides, hits never reorder, so slot indices always mean the same
 * thing to encoder and decoder.
 */

#include "compress/dict_codec.h"

#include <cstring>

#include "common/assert.h"

namespace lba::compress {

void
DictEncoder::append(const log::EventRecord& record)
{
    ++records_;
    DictKey key{record.pc,     record.tid, record.type, record.opcode,
                record.rd,     record.rs1, record.rs2};
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++hits_;
        writer_.writeBits(0x01, 8);
        writer_.writeVarint(it->second);
    } else {
        writer_.writeBits(0x00, 8);
        writer_.writeVarint(record.tid);
        writer_.writeVarint(zigzagDelta(record.pc, last_pc_));
        writer_.writeBits(static_cast<std::uint8_t>(record.type), 8);
        writer_.writeBits(record.opcode, 8);
        writer_.writeBits(record.rd, 8);
        writer_.writeBits(record.rs1, 8);
        writer_.writeBits(record.rs2, 8);
        if (slots_.size() < kDictSlots) {
            slots_.push_back(key);
        } else {
            index_.erase(slots_[next_slot_]);
            slots_[next_slot_] = key;
        }
        index_.emplace(key, static_cast<std::uint32_t>(next_slot_));
        next_slot_ = (next_slot_ + 1) % kDictSlots;
    }
    writer_.writeVarint(zigzagDelta(record.addr, last_addr_));
    writer_.writeVarint(zigzagDelta(record.aux, last_aux_));
    last_pc_ = record.pc;
    last_addr_ = record.addr;
    last_aux_ = record.aux;
}

std::size_t
DictEncoder::pull(std::uint8_t* out, std::size_t max)
{
    std::size_t n = pullableBytes();
    if (n > max) n = max;
    if (n == 0) return 0;
    std::memcpy(out, writer_.bytes().data() + pulled_, n);
    pulled_ += n;
    return n;
}

void
DictDecoder::push(const std::uint8_t* data, std::size_t n)
{
    LBA_ASSERT(!input_done_, "push after finishInput");
    buffer_.insert(buffer_.end(), data, data + n);
}

/** See compressor.cc — same checked-read dispatch, local to next(). */
#define LBA_TRY_READ(expr, what)                                            \
    switch (expr) {                                                         \
      case BitsResult::kOk:                                                 \
        break;                                                              \
      case BitsResult::kUnderrun:                                           \
        return needMore();                                                  \
      case BitsResult::kMalformed:                                          \
        return fail(what);                                                  \
    }

DecodeStatus
DictDecoder::next(log::EventRecord* out)
{
    if (!error_.ok()) return DecodeStatus::kError;
    const std::uint64_t start = reader_.bitPos();
    if (reader_.bitsAvailable() == 0 && input_done_) {
        return DecodeStatus::kEnd;
    }
    auto needMore = [&]() -> DecodeStatus {
        reader_.seekBit(start);
        if (!input_done_) return DecodeStatus::kNeedMore;
        error_ = DecodeError::make(DecodeErrorKind::kTruncated,
                                   start / 8, "input ends mid-record");
        return DecodeStatus::kError;
    };
    auto fail = [&](const char* message) {
        error_ = DecodeError::make(DecodeErrorKind::kMalformed,
                                   reader_.bitPos() / 8, message);
        reader_.seekBit(start);
        return DecodeStatus::kError;
    };

    log::EventRecord record;
    std::uint64_t control = 0;
    LBA_TRY_READ(reader_.tryReadBits(8, &control), "control byte");
    if (control & ~0x01ull) {
        return fail("reserved control bits set");
    }

    DictKey key;
    bool literal = !(control & 0x01);
    if (literal) {
        std::uint64_t tid = 0;
        LBA_TRY_READ(reader_.tryReadVarint(&tid), "tid varint");
        if (tid > 0xffff) return fail("tid out of range");
        key.tid = static_cast<ThreadId>(tid);

        std::uint64_t pc_delta = 0;
        LBA_TRY_READ(reader_.tryReadVarint(&pc_delta), "pc varint");
        key.pc = zigzagApply(last_pc_, pc_delta);

        std::uint64_t type = 0;
        LBA_TRY_READ(reader_.tryReadBits(8, &type), "type byte");
        if (type >= log::kNumEventTypes) {
            return fail("event type out of range");
        }
        key.type = static_cast<log::EventType>(type);

        std::uint64_t opcode = 0, rd = 0, rs1 = 0, rs2 = 0;
        LBA_TRY_READ(reader_.tryReadBits(8, &opcode), "opcode byte");
        LBA_TRY_READ(reader_.tryReadBits(8, &rd), "rd byte");
        LBA_TRY_READ(reader_.tryReadBits(8, &rs1), "rs1 byte");
        LBA_TRY_READ(reader_.tryReadBits(8, &rs2), "rs2 byte");
        key.opcode = static_cast<std::uint8_t>(opcode);
        key.rd = static_cast<std::uint8_t>(rd);
        key.rs1 = static_cast<std::uint8_t>(rs1);
        key.rs2 = static_cast<std::uint8_t>(rs2);
    } else {
        std::uint64_t slot = 0;
        LBA_TRY_READ(reader_.tryReadVarint(&slot), "slot varint");
        if (slot >= slots_.size()) {
            return fail("dictionary index out of range");
        }
        key = slots_[slot];
    }

    std::uint64_t addr_delta = 0, aux_delta = 0;
    LBA_TRY_READ(reader_.tryReadVarint(&addr_delta), "addr varint");
    LBA_TRY_READ(reader_.tryReadVarint(&aux_delta), "aux varint");

    // All reads succeeded; commit dictionary and last-value state.
    if (literal) {
        if (slots_.size() < kDictSlots) {
            slots_.push_back(key);
        } else {
            slots_[next_slot_] = key;
        }
        next_slot_ = (next_slot_ + 1) % kDictSlots;
    }
    record.pc = key.pc;
    record.tid = key.tid;
    record.type = key.type;
    record.opcode = key.opcode;
    record.rd = key.rd;
    record.rs1 = key.rs1;
    record.rs2 = key.rs2;
    record.addr = zigzagApply(last_addr_, addr_delta);
    record.aux = zigzagApply(last_aux_, aux_delta);
    last_pc_ = record.pc;
    last_addr_ = record.addr;
    last_aux_ = record.aux;
    ++records_;
    *out = record;
    return DecodeStatus::kOk;
}

#undef LBA_TRY_READ

} // namespace lba::compress
