#pragma once
/**
 * @file
 * The codec abstraction of the compression subsystem: a uniform
 * streaming Encoder/Decoder pair interface that every log codec
 * implements, plus the typed error model for decoding untrusted input.
 *
 * Why a registry of codecs (compress/registry.h) instead of the one
 * hard-wired predictor compressor: the inter-core log transport
 * bandwidth bounds every lifeguard's slowdown (paper Section 2), and
 * different record streams compress best under different models — the
 * value-prediction codec wins on instruction streams, a dictionary
 * codec on streams dominated by repeated records, and a plain
 * varint-delta codec trades ratio for the cheapest host encode cost.
 * The platform selects by name (LbaConfig::codec, `lba_run --codec`).
 *
 * Streaming contract. Encoders are push-record / pull-bytes:
 *
 *   encoder.append(record);                  // any number of times
 *   n = encoder.pull(buf, max);              // drain finalized bytes
 *   encoder.finishStream();                  // seal (flush partial byte)
 *
 * pull() may be called at any point, so a transport can ship
 * partially-encoded streams without waiting for the end of the run;
 * bytes become pullable as soon as they can no longer change (for
 * bit-packed codecs, everything but the trailing partial byte).
 *
 * Decoders are push-bytes / pull-records, built for *untrusted* input:
 *
 *   decoder.push(chunk, n);                  // any chunking, any time
 *   switch (decoder.next(&record)) { ... }   // kOk | kNeedMore | ...
 *   decoder.finishInput();                   // no more bytes will come
 *
 * next() never aborts, never reads out of bounds, and never returns a
 * half-applied record: a record that cannot be completed from the
 * buffered bytes rolls the stream position back and returns kNeedMore
 * (kError{kTruncated} once finishInput() was called), leaving the
 * decoder state exactly as before the attempt. Malformed input —
 * impossible flag sequences, out-of-range literals, overlong varints —
 * yields a sticky kError with a typed DecodeError, not UB and not a
 * panic. fuzz/ drives every implementation through these paths.
 */

#include <cstdint>
#include <string>

#include "log/event.h"

namespace lba::compress {

/** Why a decode failed (the typed, recoverable error model). */
enum class DecodeErrorKind : std::uint8_t
{
    kNone = 0,
    /** Input ended in the middle of a record. */
    kTruncated,
    /** Structurally invalid input (bad literal, impossible flag). */
    kMalformed,
    /** Well-formed input demanding absurd resources (length bombs). */
    kLimitExceeded,
    /** Unknown codec / version / container field. */
    kUnsupported,
    /** Underlying file or stream I/O failure. */
    kIo,
};

/** Printable name of a DecodeErrorKind. */
const char* decodeErrorKindName(DecodeErrorKind kind);

/** A typed decode error: what went wrong, where, and a human message. */
struct DecodeError
{
    DecodeErrorKind kind = DecodeErrorKind::kNone;
    /** Byte offset into the encoded stream (best effort). */
    std::uint64_t offset = 0;
    std::string message;

    bool ok() const { return kind == DecodeErrorKind::kNone; }

    /** "kind @offset: message" for logs and CLI output. */
    std::string toString() const;

    static DecodeError
    make(DecodeErrorKind kind, std::uint64_t offset, std::string message)
    {
        return DecodeError{kind, offset, std::move(message)};
    }
};

/** Result of one Decoder::next() pull. */
enum class DecodeStatus : std::uint8_t
{
    /** A record was decoded into *out. */
    kOk = 0,
    /** Clean end of stream (only sub-record padding bits remain). */
    kEnd,
    /** The buffered input does not contain a complete record yet. */
    kNeedMore,
    /** Decoding failed; see Decoder::error(). Sticky. */
    kError,
};

/** Capability flags describing a codec's profile (CodecInfo::caps). */
enum CodecCaps : unsigned
{
    /** Output is bit-granular (sub-byte records possible). */
    kCapBitPacked = 1u << 0,
    /** Output is byte-aligned (cheap encode/decode, larger). */
    kCapByteAligned = 1u << 1,
    /** Uses value predictors (history-dependent, best ratio). */
    kCapPredictive = 1u << 2,
    /** Uses a record dictionary (best on repeated-record streams). */
    kCapDictionary = 1u << 3,
    /**
     * Round-trips only *capture-shaped* streams: records as the
     * capture hardware emits them (derived fields canonical — see
     * compress/record_gen.h). Codecs without this flag round-trip
     * arbitrary EventRecords byte-exactly.
     */
    kCapCanonicalStreamsOnly = 1u << 4,
};

/**
 * Streaming encoder: push records, pull finalized bytes.
 *
 * Implementations are deterministic — identical record streams yield
 * identical bytes — which is what lets transport accounting charge
 * exact per-record bit costs (core/pipeline_timer.h).
 */
class Encoder
{
  public:
    virtual ~Encoder();

    /** Compress one record onto the stream. */
    virtual void append(const log::EventRecord& record) = 0;

    /**
     * Seal the stream: flush any partial trailing byte so every encoded
     * byte becomes pullable. No append() after this.
     */
    virtual void finishStream() = 0;

    /** Records compressed so far. */
    virtual std::uint64_t records() const = 0;

    /** Total encoded size so far, in bits (bandwidth accounting). */
    virtual std::uint64_t bitsWritten() const = 0;

    /**
     * Copy up to @p max finalized encoded bytes into @p out and
     * advance the pull cursor past them.
     * @return Bytes copied (0 when nothing is finalized yet).
     */
    virtual std::size_t pull(std::uint8_t* out, std::size_t max) = 0;

    /** Finalized bytes currently available to pull(). */
    virtual std::size_t pullableBytes() const = 0;

    /** Average encoded size, in bytes per record. */
    double
    bytesPerRecord() const
    {
        std::uint64_t n = records();
        return n ? static_cast<double>(bitsWritten()) / 8.0 /
                       static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * Streaming decoder over untrusted bytes: push chunks, pull records.
 * See the file comment for the full contract; in short, next() either
 * succeeds, asks for more input, reports a clean end, or returns a
 * typed error — it never aborts and never leaves a half-applied
 * record or predictor state.
 */
class Decoder
{
  public:
    virtual ~Decoder();

    /** Feed @p n more encoded bytes (any chunking, including n = 0). */
    virtual void push(const std::uint8_t* data, std::size_t n) = 0;

    /**
     * Declare the input complete: a subsequent mid-record kNeedMore
     * becomes kError{kTruncated}; a record-boundary end becomes kEnd.
     */
    virtual void finishInput() = 0;

    /** Decode the next record. */
    virtual DecodeStatus next(log::EventRecord* out) = 0;

    /** The sticky error after a kError result. */
    virtual const DecodeError& error() const = 0;

    /** Records decoded so far. */
    virtual std::uint64_t records() const = 0;
};

} // namespace lba::compress
