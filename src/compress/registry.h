#pragma once
/**
 * @file
 * CodecRegistry: the name -> codec-factory table behind every codec
 * selection surface (LbaConfig::codec, `lba_run --codec`,
 * `lba_trace --codec`, the trace-file v2 header, the benches, the fuzz
 * harnesses).
 *
 * Built-in codecs ("predictor", "varint", "dict") are registered by
 * the magic-static instance() on first use; experiments can add() more
 * at startup. Factories return fresh streaming Encoder/Decoder
 * instances — codec state never outlives one stream.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace lba::compress {

/** One registered codec: identity, capabilities, and factories. */
struct CodecInfo
{
    /** Registry key; also the on-disk name in trace-file v2 headers. */
    std::string name;
    /** One-line human description (shown by `lba_run --list-codecs`). */
    std::string description;
    /** Bitwise-or of CodecCaps flags. */
    std::uint32_t caps = 0;
    std::function<std::unique_ptr<Encoder>()> makeEncoder;
    std::function<std::unique_ptr<Decoder>()> makeDecoder;
};

/** Process-wide codec table. */
class CodecRegistry
{
  public:
    /** The singleton, with the built-in codecs pre-registered. */
    static CodecRegistry& instance();

    /**
     * Register a codec. Names must be unique, non-empty, and at most
     * kMaxCodecNameBytes long (the trace-file header stores them with
     * a one-byte length). Duplicate registration is a caller bug.
     */
    void add(CodecInfo info);

    /** Look up by name; nullptr when unknown. */
    const CodecInfo* find(const std::string& name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

  private:
    CodecRegistry() = default;

    std::vector<CodecInfo> codecs_;
};

/** The codec used when none is requested (the paper's compressor). */
inline constexpr const char* kDefaultCodec = "predictor";

/** Longest codec name storable in a trace-file v2 header. */
inline constexpr std::size_t kMaxCodecNameBytes = 64;

} // namespace lba::compress
