/**
 * @file
 * Predictor codec: streaming adapters over the VPC compressor.
 */

#include "compress/predictor_codec.h"

#include <cstring>

#include "common/assert.h"

namespace lba::compress {

std::size_t
PredictorEncoder::pullableBytes() const
{
    // Bit-packed stream: the trailing partial byte can still change
    // until the stream is sealed, so only complete bytes are final.
    std::size_t final_bytes =
        finished_ ? inner_.bytes().size()
                  : static_cast<std::size_t>(inner_.bits() / 8);
    return final_bytes - pulled_;
}

std::size_t
PredictorEncoder::pull(std::uint8_t* out, std::size_t max)
{
    std::size_t n = pullableBytes();
    if (n > max) n = max;
    if (n == 0) return 0;
    std::memcpy(out, inner_.bytes().data() + pulled_, n);
    pulled_ += n;
    return n;
}

void
PredictorDecoder::push(const std::uint8_t* data, std::size_t n)
{
    LBA_ASSERT(!input_done_, "push after finishInput");
    buffer_.insert(buffer_.end(), data, data + n);
}

DecodeStatus
PredictorDecoder::next(log::EventRecord* out)
{
    if (!error_.ok()) return DecodeStatus::kError;
    DecodeStatus status = inner_.tryNext(out, &error_);
    if (status == DecodeStatus::kOk) {
        ++records_;
        return status;
    }
    if (status == DecodeStatus::kError) return status;
    // kNeedMore, rolled back to the record boundary.
    if (!input_done_) return DecodeStatus::kNeedMore;
    if (inner_.bitsAvailable() < 8) {
        // Only sub-byte padding remains: a clean end. (The bit-packed
        // grammar has no terminator, so up to 7 trailing bits are
        // indistinguishable from padding; callers that know the
        // record count stop before ever looking at them.)
        return DecodeStatus::kEnd;
    }
    error_ = DecodeError::make(DecodeErrorKind::kTruncated,
                               inner_.bitPos() / 8,
                               "input ends mid-record");
    return DecodeStatus::kError;
}

} // namespace lba::compress
