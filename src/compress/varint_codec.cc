/**
 * @file
 * Varint-delta codec implementation. Encoder and decoder mirror each
 * other's last-value updates exactly (same invariant as the predictor
 * codec, with a far smaller state machine).
 */

#include "compress/varint_codec.h"

#include <cstring>

#include "common/assert.h"

namespace lba::compress {

void
VarintEncoder::append(const log::EventRecord& record)
{
    ++records_;
    bool tid_same = record.tid == lasts_.tid;
    writer_.writeBits(tid_same ? 0x01 : 0x00, 8);
    if (!tid_same) writer_.writeVarint(record.tid);
    writer_.writeVarint(zigzagDelta(record.pc, lasts_.pc));
    writer_.writeBits(static_cast<std::uint8_t>(record.type), 8);
    writer_.writeBits(record.opcode, 8);
    writer_.writeBits(record.rd, 8);
    writer_.writeBits(record.rs1, 8);
    writer_.writeBits(record.rs2, 8);
    writer_.writeVarint(zigzagDelta(record.addr, lasts_.addr));
    writer_.writeVarint(zigzagDelta(record.aux, lasts_.aux));
    lasts_.tid = record.tid;
    lasts_.pc = record.pc;
    lasts_.addr = record.addr;
    lasts_.aux = record.aux;
}

std::size_t
VarintEncoder::pull(std::uint8_t* out, std::size_t max)
{
    std::size_t n = pullableBytes();
    if (n > max) n = max;
    if (n == 0) return 0;
    std::memcpy(out, writer_.bytes().data() + pulled_, n);
    pulled_ += n;
    return n;
}

void
VarintDecoder::push(const std::uint8_t* data, std::size_t n)
{
    LBA_ASSERT(!input_done_, "push after finishInput");
    buffer_.insert(buffer_.end(), data, data + n);
}

/** See compressor.cc — same checked-read dispatch, local to next(). */
#define LBA_TRY_READ(expr, what)                                            \
    switch (expr) {                                                         \
      case BitsResult::kOk:                                                 \
        break;                                                              \
      case BitsResult::kUnderrun:                                           \
        return needMore();                                                  \
      case BitsResult::kMalformed:                                          \
        return fail(what);                                                  \
    }

DecodeStatus
VarintDecoder::next(log::EventRecord* out)
{
    if (!error_.ok()) return DecodeStatus::kError;
    const std::uint64_t start = reader_.bitPos();
    if (reader_.bitsAvailable() == 0 && input_done_) {
        return DecodeStatus::kEnd;
    }
    auto needMore = [&]() -> DecodeStatus {
        reader_.seekBit(start);
        if (!input_done_) return DecodeStatus::kNeedMore;
        error_ = DecodeError::make(DecodeErrorKind::kTruncated,
                                   start / 8, "input ends mid-record");
        return DecodeStatus::kError;
    };
    auto fail = [&](const char* message) {
        error_ = DecodeError::make(DecodeErrorKind::kMalformed,
                                   reader_.bitPos() / 8, message);
        reader_.seekBit(start);
        return DecodeStatus::kError;
    };

    log::EventRecord record;
    std::uint64_t control = 0;
    LBA_TRY_READ(reader_.tryReadBits(8, &control), "control byte");
    if (control & ~0x01ull) {
        return fail("reserved control bits set");
    }
    std::uint64_t tid = lasts_.tid;
    if (!(control & 0x01)) {
        LBA_TRY_READ(reader_.tryReadVarint(&tid), "tid varint");
        if (tid > 0xffff) return fail("tid out of range");
    }
    record.tid = static_cast<ThreadId>(tid);

    std::uint64_t pc_delta = 0;
    LBA_TRY_READ(reader_.tryReadVarint(&pc_delta), "pc varint");
    record.pc = zigzagApply(lasts_.pc, pc_delta);

    std::uint64_t type = 0;
    LBA_TRY_READ(reader_.tryReadBits(8, &type), "type byte");
    if (type >= log::kNumEventTypes) {
        return fail("event type out of range");
    }
    record.type = static_cast<log::EventType>(type);

    std::uint64_t opcode = 0, rd = 0, rs1 = 0, rs2 = 0;
    LBA_TRY_READ(reader_.tryReadBits(8, &opcode), "opcode byte");
    LBA_TRY_READ(reader_.tryReadBits(8, &rd), "rd byte");
    LBA_TRY_READ(reader_.tryReadBits(8, &rs1), "rs1 byte");
    LBA_TRY_READ(reader_.tryReadBits(8, &rs2), "rs2 byte");
    record.opcode = static_cast<std::uint8_t>(opcode);
    record.rd = static_cast<std::uint8_t>(rd);
    record.rs1 = static_cast<std::uint8_t>(rs1);
    record.rs2 = static_cast<std::uint8_t>(rs2);

    std::uint64_t addr_delta = 0, aux_delta = 0;
    LBA_TRY_READ(reader_.tryReadVarint(&addr_delta), "addr varint");
    LBA_TRY_READ(reader_.tryReadVarint(&aux_delta), "aux varint");
    record.addr = zigzagApply(lasts_.addr, addr_delta);
    record.aux = zigzagApply(lasts_.aux, aux_delta);

    lasts_.tid = record.tid;
    lasts_.pc = record.pc;
    lasts_.addr = record.addr;
    lasts_.aux = record.aux;
    ++records_;
    *out = record;
    return DecodeStatus::kOk;
}

#undef LBA_TRY_READ

} // namespace lba::compress
