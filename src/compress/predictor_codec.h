#pragma once
/**
 * @file
 * The value-prediction codec ("predictor") behind the streaming
 * Encoder/Decoder interface — the platform default, and the codec the
 * paper's < 1 byte/instruction claim is about.
 *
 * The wrapper delegates to LogCompressor/LogDecompressor untouched, so
 * every bit count (and therefore every transport-accounting cycle) is
 * identical to the pre-registry compressor; the differential tests
 * assert this. The decode side rides LogDecompressor::tryNext(), the
 * hardened two-phase path, so untrusted input yields typed errors.
 */

#include <cstddef>
#include <vector>

#include "compress/codec.h"
#include "compress/compressor.h"

namespace lba::compress {

/** Streaming encoder over LogCompressor. */
class PredictorEncoder final : public Encoder
{
  public:
    void append(const log::EventRecord& record) override
    {
        inner_.append(record);
    }

    void finishStream() override { finished_ = true; }

    std::uint64_t records() const override { return inner_.records(); }
    std::uint64_t bitsWritten() const override { return inner_.bits(); }

    std::size_t pull(std::uint8_t* out, std::size_t max) override;
    std::size_t pullableBytes() const override;

    /** The wrapped compressor (FieldBits breakdown for the benches). */
    const LogCompressor& inner() const { return inner_; }

  private:
    LogCompressor inner_;
    /** Bytes already handed out through pull(). */
    std::size_t pulled_ = 0;
    bool finished_ = false;
};

/** Streaming hardened decoder over LogDecompressor::tryNext. */
class PredictorDecoder final : public Decoder
{
  public:
    PredictorDecoder() : inner_(buffer_) {}

    void push(const std::uint8_t* data, std::size_t n) override;
    void finishInput() override { input_done_ = true; }
    DecodeStatus next(log::EventRecord* out) override;
    const DecodeError& error() const override { return error_; }
    std::uint64_t records() const override { return records_; }

  private:
    std::vector<std::uint8_t> buffer_;
    LogDecompressor inner_;
    DecodeError error_;
    std::uint64_t records_ = 0;
    bool input_done_ = false;
};

} // namespace lba::compress
