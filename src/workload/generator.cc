/**
 * @file
 * Synthetic benchmark generator implementation.
 *
 * All randomness is a seeded xorshift64 stream, so generation is fully
 * deterministic per profile: every platform run sees the same program.
 */

#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "asm/program_builder.h"
#include "common/assert.h"
#include "sim/process.h"
#include "sim/syscalls.h"

namespace lba::workload {

using assembler::Label;
using assembler::ProgramBuilder;
using isa::Opcode;

namespace {

/** Deterministic RNG for program generation. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

    /** Uniform value in [0, bound). */
    std::uint64_t bounded(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) /
               static_cast<double>(1ull << 53);
    }

  private:
    std::uint64_t state_;
};

// Register roles in generated code.
constexpr RegIndex kRegTable = 9;  // pointer-table base
constexpr RegIndex kRegIter = 10;  // loop down-counter
constexpr RegIndex kRegChase = 11; // chase pointer
constexpr RegIndex kRegBlock = 8;  // current array-block pointer
constexpr RegIndex kScratchLo = 12, kScratchHi = 19;
constexpr RegIndex kRegInput = 21; // input-buffer pointer
constexpr RegIndex kRegShared = 22;
constexpr RegIndex kRegLock = 23;
constexpr RegIndex kRegTick = 24;  // up-counter for periodic triggers
constexpr RegIndex kRegTrig = 25;  // trigger scratch
constexpr RegIndex kRegChurn = 26; // churn-block pointer

// Pointer-table slots (offsets in the globals table, 8 bytes each).
constexpr std::int32_t kMaxBlocksPerThread = 24;
constexpr std::int32_t kMainBlockSlot = 0;
constexpr std::int32_t kWorkerBlockSlot = 32;
constexpr std::int32_t kWorkerInputSlot = 59;
constexpr std::int32_t kInputSlot = 60;
constexpr std::int32_t kSharedSlot = 61;
constexpr std::int32_t kMainRingSlot = 62;
constexpr std::int32_t kWorkerRingSlot = 63;

constexpr std::uint64_t kInputBufBytes = 4096;
constexpr std::uint64_t kInputChunk = 64;
constexpr Addr kLockAddr = sim::kGlobalBase + 0x900;

/** Static layout derived from the profile. */
struct Layout
{
    unsigned num_blocks = 4;
    std::uint64_t array_bytes = 32 * 1024;
    std::uint64_t ring_bytes = 64 * 1024;
    std::uint64_t ring_nodes = 1024;
    std::uint64_t shared_bytes = 0;
    /**
     * Hot shared-region offsets (counters, queue heads): the SAME set
     * for every thread, so the Eraser state machine actually observes
     * sharing on them.
     */
    std::vector<std::int32_t> shared_hot;
};

/** Per-iteration emission plan (exact dynamic counts per iteration). */
struct Plan
{
    unsigned mem_slots = 50;    // private memory slots per body
    unsigned chase_slots = 5;   // of mem_slots, via the chase ring
    unsigned alu_slots = 30;
    unsigned branch_slots = 14;
    unsigned call_slots = 2;    // each costs 5 dynamic instructions
    std::uint64_t churn_period = 0;  // 0 = disabled
    std::uint64_t input_period = 0;
    std::uint64_t lock_period = 0;
    unsigned shared_per_burst = 0;
    double instrs_per_iter = 0.0;
    double mem_per_iter = 0.0;
    std::uint64_t iterations = 1;
};

constexpr unsigned kLeafCount = 4;
constexpr unsigned kLeafBodyInstrs = 3; // + ret
constexpr double kCallDynInstrs = 1.0 + kLeafBodyInstrs + 1.0;
constexpr unsigned kChurnInstrs = 6;  // 1 mem, 2 syscalls
constexpr unsigned kInputInstrs = 3;  // 1 mem
constexpr unsigned kTriggerInstrs = 3;
constexpr unsigned kLoopOverhead = 3; // tick++, iter--, bne

Layout
planLayout(const Profile& p, std::uint64_t target)
{
    Layout l;
    std::uint64_t ws = static_cast<std::uint64_t>(p.working_set_kb) * 1024;
    // Scale the data footprint with the run length, as benchmark suites
    // do with test/train/ref inputs: a short run cannot amortize the
    // initialization (and allocation-marking) of a multi-MB working
    // set. Full-length runs (the profile's target_instructions) keep
    // the profile's working set.
    ws = std::min<std::uint64_t>(
        ws, std::max<std::uint64_t>(64 * 1024, 4 * target));
    // Per-thread working set.
    if (p.threads > 1) ws /= 2;

    // Ring size tracks how central pointer chasing is to the benchmark:
    // mcf-style codes traverse multi-MB structures; light chasers walk
    // short lists with decent cache residence.
    std::uint64_t ring;
    if (p.chase_fraction >= 0.3) {
        ring = ws / 2;
    } else if (p.chase_fraction >= 0.1) {
        ring = 32 * 1024;
    } else {
        ring = 8 * 1024;
    }
    ring = std::max<std::uint64_t>(ring, 8 * 1024);
    // Building the ring costs ~12 instructions per node; when the
    // requested run is short (tests, scaled benches), cap the ring so
    // the build prologue stays under ~25% of the budget. Full-scale
    // runs keep the profile's working set.
    std::uint64_t max_nodes = std::max<std::uint64_t>(
        128, target / (48 * p.threads));
    if (ring / 64 > max_nodes) ring = max_nodes * 64;
    l.ring_bytes = ring & ~63ull;
    l.ring_nodes = l.ring_bytes / 64;

    std::uint64_t arrays = ws > ring ? ws - ring : 32 * 1024;
    l.num_blocks = static_cast<unsigned>(std::clamp<std::uint64_t>(
        arrays / (32 * 1024), 2, kMaxBlocksPerThread));
    l.array_bytes = std::max<std::uint64_t>(
        (arrays / l.num_blocks) & ~63ull, 1024);

    if (p.threads > 1) {
        // Shared region: half of one thread's (scaled) working set.
        l.shared_bytes =
            std::max<std::uint64_t>((ws / 2) & ~63ull, 4096);
        Rng hot_rng(p.seed * 0x5851f42d4c957f2dull + 11);
        for (int i = 0; i < 16; ++i) {
            l.shared_hot.push_back(static_cast<std::int32_t>(
                hot_rng.bounded(l.shared_bytes - 8) & ~7ull));
        }
    }
    return l;
}

Plan
planBody(const Profile& p, const Layout& layout, std::uint64_t target)
{
    Plan plan;
    bool mt = p.threads > 1;

    double T = 150.0; // initial estimate, refined by fixed-point
    for (int round = 0; round < 6; ++round) {
        // Periodic features.
        double churn_per_iter = p.allocs_per_kinstr * T / 1000.0;
        plan.churn_period =
            p.allocs_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     churn_per_iter)))
                : 0;
        double reads_per_iter =
            p.input_bytes_per_kinstr * T / 1000.0 /
            static_cast<double>(kInputChunk);
        plan.input_period =
            p.input_bytes_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     reads_per_iter)))
                : 0;
        double locks_per_iter = p.locks_per_kinstr * T / 1000.0;
        plan.lock_period =
            mt && p.locks_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     locks_per_iter)))
                : 0;

        double mem_total = p.mem_fraction * T;
        double shared_rate = 0.0;
        plan.shared_per_burst = 0;
        if (plan.lock_period > 0) {
            shared_rate = p.shared_fraction * mem_total;
            plan.shared_per_burst = static_cast<unsigned>(std::llround(
                shared_rate * static_cast<double>(plan.lock_period)));
            shared_rate = static_cast<double>(plan.shared_per_burst) /
                          static_cast<double>(plan.lock_period);
        }

        double periodic_mem =
            (plan.churn_period ? 1.0 / plan.churn_period : 0.0) +
            (plan.input_period ? 1.0 / plan.input_period : 0.0) +
            shared_rate;
        double body_mem = std::max(4.0, mem_total - periodic_mem);
        plan.mem_slots = static_cast<unsigned>(std::llround(body_mem));
        plan.chase_slots = static_cast<unsigned>(std::llround(
            std::min<double>(plan.mem_slots,
                             p.chase_fraction * mem_total)));

        plan.branch_slots = static_cast<unsigned>(
            std::llround(p.branch_fraction * T));
        plan.call_slots = static_cast<unsigned>(
            std::llround(p.call_fraction * T / kCallDynInstrs));
        // ALU fills the remainder of a ~96-slot body.
        int alu = 96 - static_cast<int>(plan.mem_slots) -
                  static_cast<int>(plan.branch_slots) -
                  static_cast<int>(plan.call_slots);
        plan.alu_slots = static_cast<unsigned>(std::max(6, alu));

        double overhead = kLoopOverhead +
                          (plan.churn_period ? kTriggerInstrs : 0) +
                          (plan.input_period ? kTriggerInstrs : 0) +
                          (plan.lock_period ? kTriggerInstrs : 0);
        double periodic_instrs =
            (plan.churn_period
                 ? static_cast<double>(kChurnInstrs) / plan.churn_period
                 : 0.0) +
            (plan.input_period
                 ? static_cast<double>(kInputInstrs) / plan.input_period
                 : 0.0) +
            (plan.lock_period
                 ? (4.0 + plan.shared_per_burst) / plan.lock_period
                 : 0.0);

        T = plan.mem_slots + plan.alu_slots + plan.branch_slots +
            plan.call_slots * kCallDynInstrs + overhead + periodic_instrs;
        plan.instrs_per_iter = T;
        plan.mem_per_iter = body_mem + periodic_mem;
    }

    // Prologue estimate: allocations + ring build (12 instrs/node).
    double prologue = layout.num_blocks * 3.0 + 30.0 +
                      static_cast<double>(layout.ring_nodes) * 12.0;
    double per_thread_budget =
        std::max(1.0, (static_cast<double>(target) -
                       prologue * p.threads) /
                          p.threads);
    plan.iterations = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(per_thread_budget /
                                      plan.instrs_per_iter));
    return plan;
}

/** Emits one thread's code (prologue, loop, epilogue pieces). */
class ThreadEmitter
{
  public:
    ThreadEmitter(ProgramBuilder& b, const Profile& p, const Layout& l,
                  const Plan& plan, const BugInjection& bugs, Rng& rng,
                  bool is_worker, const std::vector<Label>& leaves)
        : b_(b), p_(p), l_(l), plan_(plan), bugs_(bugs), rng_(rng),
          worker_(is_worker), leaves_(leaves)
    {
        block_slot_ = worker_ ? kWorkerBlockSlot : kMainBlockSlot;
        ring_slot_ = worker_ ? kWorkerRingSlot : kMainRingSlot;
        input_slot_ = worker_ ? kWorkerInputSlot : kInputSlot;
    }

    /** Allocate blocks/ring/input, build the ring, seed registers. */
    void
    emitPrologue()
    {
        b_.li64(kRegTable, sim::kGlobalBase);

        // Array blocks.
        for (unsigned i = 0; i < l_.num_blocks; ++i) {
            emitAlloc(l_.array_bytes, (block_slot_ + (int)i) * 8);
        }
        // Input buffer + chase ring.
        emitAlloc(kInputBufBytes, input_slot_ * 8);
        emitAlloc(l_.ring_bytes, ring_slot_ * 8);

        emitRingBuild();

        // Seed scratch registers with distinct values.
        for (RegIndex r = kScratchLo; r <= kScratchHi; ++r) {
            b_.li(r, static_cast<std::int32_t>(rng_.bounded(1 << 20) + r));
        }
        b_.load(Opcode::kLd, kRegInput, kRegTable, input_slot_ * 8);
        b_.load(Opcode::kLd, kRegChase, kRegTable, ring_slot_ * 8);
        b_.load(Opcode::kLd, kRegBlock, kRegTable, block_slot_ * 8);
        if (p_.threads > 1) {
            b_.load(Opcode::kLd, kRegShared, kRegTable, kSharedSlot * 8);
            b_.li64(kRegLock, kLockAddr);
        }

        // Initial input chunk so taint exists from the start.
        b_.mov(1, kRegInput);
        b_.li(2, static_cast<std::int32_t>(kInputChunk));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kRead));
    }

    /** The main monitored loop. */
    void
    emitLoop()
    {
        b_.li(kRegTick, 0);
        b_.li64(kRegIter, plan_.iterations);
        Label top = b_.newLabel();
        b_.bind(top);

        emitBodySlots();
        if (plan_.churn_period) emitChurn();
        if (plan_.input_period) emitInput();
        if (plan_.lock_period) emitBurst();

        b_.alui(Opcode::kAddi, kRegTick, kRegTick, 1);
        b_.alui(Opcode::kAddi, kRegIter, kRegIter, -1);
        b_.branch(Opcode::kBne, kRegIter, isa::kRegZero, top);
    }

    /** Free everything this thread allocated (honouring bug knobs). */
    void
    emitEpilogue()
    {
        if (!worker_ && bugs_.tainted_jump) {
            // The "exploit": treat untrusted input bytes as a code
            // pointer and jump through them.
            b_.load(Opcode::kLd, 12, kRegInput, 0);
            b_.jr(12);
        }
        if (!worker_ && bugs_.use_after_free) {
            emitFree(block_slot_ * 8);
            b_.load(Opcode::kLd, 13, kRegTable, block_slot_ * 8);
            b_.load(Opcode::kLd, 14, 13, 8); // read of freed memory
        }
        for (unsigned i = 0; i < l_.num_blocks; ++i) {
            if (!worker_ && bugs_.use_after_free && i == 0) continue;
            if (!worker_ && bugs_.leak && i == 1) continue;
            emitFree((block_slot_ + (int)i) * 8);
        }
        if (!worker_ && bugs_.double_free) {
            // Second free of block 2 (already freed in the loop above).
            emitFree((block_slot_ + 2) * 8);
        }
        emitFree(input_slot_ * 8);
        emitFree(ring_slot_ * 8);
    }

  private:
    void
    emitAlloc(std::uint64_t bytes, std::int32_t table_off)
    {
        b_.li(1, static_cast<std::int32_t>(bytes));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b_.store(Opcode::kSd, 1, kRegTable, table_off);
    }

    void
    emitFree(std::int32_t table_off)
    {
        b_.load(Opcode::kLd, 1, kRegTable, table_off);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
    }

    /**
     * Build the chase ring: node j links to node (j + P) mod N, with P
     * prime and co-prime to N, so the walk visits every node in a
     * single cycle with a large non-sequential stride (cache-hostile
     * when the ring exceeds the cache, like mcf's network traversal).
     * The build itself iterates j sequentially, so its stores are
     * cache-friendly — initialization is not the interesting phase.
     */
    void
    emitRingBuild()
    {
        const std::int32_t step = static_cast<std::int32_t>(
            7919 % l_.ring_nodes ? 7919 % l_.ring_nodes : 1);
        // r13 = ring base, r15 = N, r12 = j, r14 = cur, r16 = next idx
        b_.load(Opcode::kLd, 13, kRegTable, ring_slot_ * 8);
        b_.li(15, static_cast<std::int32_t>(l_.ring_nodes));
        b_.li(12, 0);
        Label top = b_.newLabel();
        b_.bind(top);
        // cur = base + j * 64
        b_.alui(Opcode::kShli, 14, 12, 6);
        b_.alu(Opcode::kAdd, 14, 14, 13);
        // next = base + ((j + P) mod N) * 64
        b_.alui(Opcode::kAddi, 16, 12, step);
        b_.alu(Opcode::kRemu, 16, 16, 15);
        b_.alui(Opcode::kShli, 16, 16, 6);
        b_.alu(Opcode::kAdd, 16, 16, 13);
        b_.store(Opcode::kSd, 16, 14, 0);
        b_.alui(Opcode::kAddi, 12, 12, 1);
        b_.branch(Opcode::kBne, 12, 15, top);
    }

    RegIndex
    scratch()
    {
        return static_cast<RegIndex>(
            kScratchLo + rng_.bounded(kScratchHi - kScratchLo + 1));
    }

    /**
     * Pick an array-access offset. Real programs have strong temporal
     * locality (L1 hit rates in the 90s); model it with a small per-block
     * hot set of offsets used for ~85% of accesses, the rest spread over
     * the whole block (the cold / capacity-miss tail that the working-set
     * size controls).
     */
    std::int32_t
    arrayOffset()
    {
        if (rng_.uniform() < 0.97) {
            auto& hot = hot_offsets_[current_block_];
            if (hot.size() < 8) {
                hot.push_back(static_cast<std::int32_t>(
                    rng_.bounded(l_.array_bytes - 16) & ~7ull));
            }
            return hot[rng_.bounded(hot.size())];
        }
        // Cold tail: a sequential scan cursor per block (streaming
        // passes over the data, like gzip's window or gs's page),
        // whose footprint is what the working-set knob controls.
        std::int32_t off = cold_cursor_[current_block_];
        cold_cursor_[current_block_] =
            (off + 8) % static_cast<std::int32_t>(l_.array_bytes - 16);
        return off;
    }

    void
    emitMemSlot(bool chase)
    {
        bool is_load = rng_.uniform() < p_.load_fraction;
        if (chase) {
            if (is_load) {
                b_.load(Opcode::kLd, kRegChase, kRegChase, 0);
            } else {
                b_.store(Opcode::kSd, scratch(), kRegChase, 8);
            }
            return;
        }
        if (rng_.uniform() < p_.stack_fraction) {
            // Locals/spills in the top 2 KiB of the thread's stack —
            // hot in the L1, outside the heap (cheap for AddrCheck,
            // droppable by the address-range filter).
            std::int32_t off = -static_cast<std::int32_t>(
                (rng_.bounded(2048 - 16) & ~7ull) + 8);
            if (is_load) {
                b_.load(Opcode::kLd, scratch(), isa::kRegSp, off);
            } else {
                b_.store(Opcode::kSd, scratch(), isa::kRegSp, off);
            }
            return;
        }
        ++mem_count_;
        if (mem_count_ % 16 == 0) {
            // Rotate to another array block (a table load: a memory ref).
            current_block_ =
                static_cast<unsigned>(rng_.bounded(l_.num_blocks));
            std::int32_t slot =
                block_slot_ + static_cast<std::int32_t>(current_block_);
            b_.load(Opcode::kLd, kRegBlock, kRegTable, slot * 8);
            return;
        }
        if (mem_count_ % 16 == 5) {
            // Touch the untrusted-input buffer (propagates taint).
            std::int32_t off = static_cast<std::int32_t>(
                rng_.bounded(kInputBufBytes - 8) & ~7ull);
            b_.load(Opcode::kLd, scratch(), kRegInput, off);
            return;
        }
        std::int32_t off = arrayOffset();
        if (is_load) {
            b_.load(Opcode::kLd, scratch(), kRegBlock, off);
        } else {
            b_.store(Opcode::kSd, scratch(), kRegBlock, off);
        }
    }

    void
    emitAluSlot()
    {
        static constexpr Opcode kRegOps[] = {
            Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd,
            Opcode::kOr,  Opcode::kXor, Opcode::kSlt,
        };
        static constexpr Opcode kImmOps[] = {
            Opcode::kAddi, Opcode::kXori, Opcode::kShli, Opcode::kShri,
        };
        if (rng_.uniform() < 0.7) {
            Opcode op = kRegOps[rng_.bounded(sizeof(kRegOps) /
                                             sizeof(kRegOps[0]))];
            b_.alu(op, scratch(), scratch(), scratch());
        } else {
            Opcode op = kImmOps[rng_.bounded(sizeof(kImmOps) /
                                             sizeof(kImmOps[0]))];
            std::int32_t imm = op == Opcode::kShli || op == Opcode::kShri
                                   ? static_cast<std::int32_t>(
                                         rng_.bounded(15) + 1)
                                   : static_cast<std::int32_t>(
                                         rng_.bounded(1024));
            b_.alui(op, scratch(), scratch(), imm);
        }
    }

    void
    emitBranchSlot()
    {
        // Data-dependent branch to the immediately following label:
        // taken-ness varies with scratch values but no work is skipped,
        // keeping dynamic instruction counts exact.
        static constexpr Opcode kBrOps[] = {Opcode::kBeq, Opcode::kBne,
                                            Opcode::kBlt};
        Opcode op =
            kBrOps[rng_.bounded(sizeof(kBrOps) / sizeof(kBrOps[0]))];
        Label next = b_.newLabel();
        b_.branch(op, scratch(), scratch(), next);
        b_.bind(next);
    }

    void
    emitBodySlots()
    {
        enum class Kind { kMem, kChase, kAlu, kBranch, kCall };
        std::vector<Kind> slots;
        unsigned plain_mem =
            plan_.mem_slots > plan_.chase_slots
                ? plan_.mem_slots - plan_.chase_slots
                : 0;
        slots.insert(slots.end(), plain_mem, Kind::kMem);
        slots.insert(slots.end(), plan_.chase_slots, Kind::kChase);
        slots.insert(slots.end(), plan_.alu_slots, Kind::kAlu);
        slots.insert(slots.end(), plan_.branch_slots, Kind::kBranch);
        slots.insert(slots.end(), plan_.call_slots, Kind::kCall);
        // Deterministic Fisher-Yates shuffle.
        for (std::size_t i = slots.size(); i > 1; --i) {
            std::swap(slots[i - 1], slots[rng_.bounded(i)]);
        }
        for (Kind kind : slots) {
            switch (kind) {
              case Kind::kMem: emitMemSlot(false); break;
              case Kind::kChase: emitMemSlot(true); break;
              case Kind::kAlu: emitAluSlot(); break;
              case Kind::kBranch: emitBranchSlot(); break;
              case Kind::kCall:
                b_.call(leaves_[rng_.bounded(leaves_.size())]);
                break;
            }
        }
    }

    /** Guard: execute the section only when tick % period == 0. */
    Label
    emitTrigger(std::uint64_t period)
    {
        b_.li(kRegTrig, static_cast<std::int32_t>(period));
        b_.alu(Opcode::kRemu, kRegTrig, kRegTick, kRegTrig);
        Label skip = b_.newLabel();
        b_.branch(Opcode::kBne, kRegTrig, isa::kRegZero, skip);
        return skip;
    }

    void
    emitChurn()
    {
        Label skip = emitTrigger(plan_.churn_period);
        b_.li(1, 64);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b_.mov(kRegChurn, 1);
        b_.store(Opcode::kSd, 12, kRegChurn, 0);
        b_.mov(1, kRegChurn);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
        b_.bind(skip);
    }

    void
    emitInput()
    {
        Label skip = emitTrigger(plan_.input_period);
        b_.mov(1, kRegInput);
        b_.li(2, static_cast<std::int32_t>(kInputChunk));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kRead));
        b_.bind(skip);
    }

    void
    emitBurst()
    {
        Label skip = emitTrigger(plan_.lock_period);
        b_.mov(1, kRegLock);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kLock));
        for (unsigned i = 0; i < plan_.shared_per_burst; ++i) {
            std::int32_t off;
            if (rng_.uniform() < 0.75 && !l_.shared_hot.empty()) {
                // Hot shared words, common across threads.
                off = l_.shared_hot[rng_.bounded(l_.shared_hot.size())];
            } else {
                off = static_cast<std::int32_t>(
                    rng_.bounded(l_.shared_bytes - 8) & ~7ull);
            }
            if (rng_.uniform() < p_.load_fraction) {
                b_.load(Opcode::kLd, scratch(), kRegShared, off);
            } else {
                b_.store(Opcode::kSd, scratch(), kRegShared, off);
            }
        }
        b_.mov(1, kRegLock);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kUnlock));
        if (bugs_.race) {
            // Unlocked write to the shared region: the injected race.
            b_.store(Opcode::kSd, 12, kRegShared, 0);
        }
        b_.bind(skip);
    }

    ProgramBuilder& b_;
    const Profile& p_;
    const Layout& l_;
    const Plan& plan_;
    const BugInjection& bugs_;
    Rng& rng_;
    bool worker_;
    const std::vector<Label>& leaves_;
    std::int32_t block_slot_ = 0;
    std::int32_t ring_slot_ = 0;
    std::int32_t input_slot_ = 0;
    std::uint64_t mem_count_ = 0;
    unsigned current_block_ = 0;
    /** Per-block hot offset sets (see arrayOffset()). */
    std::map<unsigned, std::vector<std::int32_t>> hot_offsets_;
    /** Per-block sequential cold-scan cursors. */
    std::map<unsigned, std::int32_t> cold_cursor_;
};

} // namespace

GeneratedProgram
generate(const Profile& profile, const BugInjection& bugs,
         std::uint64_t instructions)
{
    std::uint64_t target =
        instructions ? instructions : profile.target_instructions;
    Layout layout = planLayout(profile, target);
    Plan plan = planBody(profile, layout, target);

    Rng rng(profile.seed * 0x9e3779b97f4a7c15ull + 1);
    ProgramBuilder b;

    std::vector<Label> leaves;
    for (unsigned i = 0; i < kLeafCount; ++i) {
        leaves.push_back(b.newLabel());
    }

    bool mt = profile.threads > 1;
    Label worker_entry = b.newLabel();

    ThreadEmitter main_emitter(b, profile, layout, plan, bugs, rng,
                               /*is_worker=*/false, leaves);
    main_emitter.emitPrologue();

    if (mt) {
        // Allocate the shared region, publish it, then start the worker.
        b.li(1, static_cast<std::int32_t>(layout.shared_bytes));
        b.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b.store(Opcode::kSd, 1, kRegTable, kSharedSlot * 8);
        b.load(Opcode::kLd, kRegShared, kRegTable, kSharedSlot * 8);
        b.liLabel(1, worker_entry);
        b.li(2, 0);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kSpawn));
    }

    main_emitter.emitLoop();

    if (mt) {
        b.li(1, 1); // worker tid
        b.syscall(static_cast<std::int32_t>(sim::Sys::kJoin));
    }
    main_emitter.emitEpilogue();
    if (mt) {
        b.load(Opcode::kLd, 1, kRegTable, kSharedSlot * 8);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
    }
    b.halt();

    if (mt) {
        Rng worker_rng(profile.seed * 0xbf58476d1ce4e5b9ull + 7);
        ThreadEmitter worker_emitter(b, profile, layout, plan, bugs,
                                     worker_rng, /*is_worker=*/true,
                                     leaves);
        b.bind(worker_entry);
        worker_emitter.emitPrologue();
        worker_emitter.emitLoop();
        worker_emitter.emitEpilogue();
        b.syscall(static_cast<std::int32_t>(sim::Sys::kExit));
    }

    // Leaf functions: small pure-ALU bodies.
    for (unsigned i = 0; i < kLeafCount; ++i) {
        b.bind(leaves[i]);
        b.alui(Opcode::kAddi, 12, 12,
               static_cast<std::int32_t>(rng.bounded(64) + 1));
        b.alu(Opcode::kXor, 13, 13, 12);
        b.alui(Opcode::kShri, 14, 13,
               static_cast<std::int32_t>(rng.bounded(7) + 1));
        b.ret();
    }

    std::string error;
    GeneratedProgram out;
    out.program = b.build(sim::kCodeBase, &error);
    LBA_ASSERT(error.empty(), "workload program failed to build");
    out.planned_instructions =
        static_cast<std::uint64_t>(plan.instrs_per_iter *
                                   static_cast<double>(plan.iterations) *
                                   profile.threads);
    out.planned_mem_fraction = plan.mem_per_iter / plan.instrs_per_iter;
    out.iterations = plan.iterations;
    return out;
}

} // namespace lba::workload
