/**
 * @file
 * Synthetic benchmark generator implementation.
 *
 * All randomness is a seeded xorshift64 stream, so generation is fully
 * deterministic per profile: every platform run sees the same program.
 */

#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "asm/program_builder.h"
#include "common/assert.h"
#include "sim/process.h"
#include "sim/syscalls.h"

namespace lba::workload {

using assembler::Label;
using assembler::ProgramBuilder;
using isa::Opcode;

namespace {

/** Deterministic RNG for program generation. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

    /** Uniform value in [0, bound). */
    std::uint64_t bounded(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) /
               static_cast<double>(1ull << 53);
    }

  private:
    std::uint64_t state_;
};

// Register roles in generated code.
constexpr RegIndex kRegTable = 9;  // pointer-table base
constexpr RegIndex kRegIter = 10;  // loop down-counter
constexpr RegIndex kRegChase = 11; // chase pointer
constexpr RegIndex kRegBlock = 8;  // current array-block pointer
constexpr RegIndex kScratchLo = 12, kScratchHi = 19;
constexpr RegIndex kRegInput = 21; // input-buffer pointer
constexpr RegIndex kRegShared = 22;
constexpr RegIndex kRegLock = 23;
constexpr RegIndex kRegTick = 24;  // up-counter for periodic triggers
constexpr RegIndex kRegTrig = 25;  // trigger scratch
constexpr RegIndex kRegChurn = 26; // churn-block pointer

// Pointer-table slots (offsets in the globals table, 8 bytes each).
constexpr std::int32_t kMaxBlocksPerThread = 24;
constexpr std::int32_t kMainBlockSlot = 0;
constexpr std::int32_t kWorkerBlockSlot = 32;
constexpr std::int32_t kWorkerInputSlot = 59;
constexpr std::int32_t kInputSlot = 60;
constexpr std::int32_t kSharedSlot = 61;
constexpr std::int32_t kMainRingSlot = 62;
constexpr std::int32_t kWorkerRingSlot = 63;

constexpr std::uint64_t kInputBufBytes = 4096;
constexpr std::uint64_t kInputChunk = 64;
constexpr Addr kLockAddr = sim::kGlobalBase + 0x900;

/** Static layout derived from the profile. */
struct Layout
{
    unsigned num_blocks = 4;
    std::uint64_t array_bytes = 32 * 1024;
    std::uint64_t ring_bytes = 64 * 1024;
    std::uint64_t ring_nodes = 1024;
    std::uint64_t shared_bytes = 0;
    /**
     * Hot shared-region offsets (counters, queue heads): the SAME set
     * for every thread, so the Eraser state machine actually observes
     * sharing on them.
     */
    std::vector<std::int32_t> shared_hot;
};

/** Per-iteration emission plan (exact dynamic counts per iteration). */
struct Plan
{
    unsigned mem_slots = 50;    // private memory slots per body
    unsigned chase_slots = 5;   // of mem_slots, via the chase ring
    unsigned alu_slots = 30;
    unsigned branch_slots = 14;
    unsigned call_slots = 2;    // each costs 5 dynamic instructions
    std::uint64_t churn_period = 0;  // 0 = disabled
    std::uint64_t input_period = 0;
    std::uint64_t lock_period = 0;
    unsigned shared_per_burst = 0;
    double instrs_per_iter = 0.0;
    double mem_per_iter = 0.0;
    std::uint64_t iterations = 1;
};

constexpr unsigned kLeafCount = 4;
constexpr unsigned kLeafBodyInstrs = 3; // + ret
constexpr double kCallDynInstrs = 1.0 + kLeafBodyInstrs + 1.0;
constexpr unsigned kChurnInstrs = 6;  // 1 mem, 2 syscalls
constexpr unsigned kInputInstrs = 3;  // 1 mem
constexpr unsigned kTriggerInstrs = 3;
constexpr unsigned kLoopOverhead = 3; // tick++, iter--, bne

Layout
planLayout(const Profile& p, std::uint64_t target)
{
    Layout l;
    std::uint64_t ws = static_cast<std::uint64_t>(p.working_set_kb) * 1024;
    // Scale the data footprint with the run length, as benchmark suites
    // do with test/train/ref inputs: a short run cannot amortize the
    // initialization (and allocation-marking) of a multi-MB working
    // set. Full-length runs (the profile's target_instructions) keep
    // the profile's working set.
    ws = std::min<std::uint64_t>(
        ws, std::max<std::uint64_t>(64 * 1024, 4 * target));
    // Per-thread working set.
    if (p.threads > 1) ws /= 2;

    // Ring size tracks how central pointer chasing is to the benchmark:
    // mcf-style codes traverse multi-MB structures; light chasers walk
    // short lists with decent cache residence.
    std::uint64_t ring;
    if (p.chase_fraction >= 0.3) {
        ring = ws / 2;
    } else if (p.chase_fraction >= 0.1) {
        ring = 32 * 1024;
    } else {
        ring = 8 * 1024;
    }
    ring = std::max<std::uint64_t>(ring, 8 * 1024);
    // Building the ring costs ~12 instructions per node; when the
    // requested run is short (tests, scaled benches), cap the ring so
    // the build prologue stays under ~25% of the budget. Full-scale
    // runs keep the profile's working set.
    std::uint64_t max_nodes = std::max<std::uint64_t>(
        128, target / (48 * p.threads));
    if (ring / 64 > max_nodes) ring = max_nodes * 64;
    l.ring_bytes = ring & ~63ull;
    l.ring_nodes = l.ring_bytes / 64;

    std::uint64_t arrays = ws > ring ? ws - ring : 32 * 1024;
    l.num_blocks = static_cast<unsigned>(std::clamp<std::uint64_t>(
        arrays / (32 * 1024), 2, kMaxBlocksPerThread));
    l.array_bytes = std::max<std::uint64_t>(
        (arrays / l.num_blocks) & ~63ull, 1024);

    if (p.threads > 1) {
        // Shared region: half of one thread's (scaled) working set.
        l.shared_bytes =
            std::max<std::uint64_t>((ws / 2) & ~63ull, 4096);
        Rng hot_rng(p.seed * 0x5851f42d4c957f2dull + 11);
        for (int i = 0; i < 16; ++i) {
            l.shared_hot.push_back(static_cast<std::int32_t>(
                hot_rng.bounded(l.shared_bytes - 8) & ~7ull));
        }
    }
    return l;
}

Plan
planBody(const Profile& p, const Layout& layout, std::uint64_t target)
{
    Plan plan;
    bool mt = p.threads > 1;

    double T = 150.0; // initial estimate, refined by fixed-point
    for (int round = 0; round < 6; ++round) {
        // Periodic features.
        double churn_per_iter = p.allocs_per_kinstr * T / 1000.0;
        plan.churn_period =
            p.allocs_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     churn_per_iter)))
                : 0;
        double reads_per_iter =
            p.input_bytes_per_kinstr * T / 1000.0 /
            static_cast<double>(kInputChunk);
        plan.input_period =
            p.input_bytes_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     reads_per_iter)))
                : 0;
        double locks_per_iter = p.locks_per_kinstr * T / 1000.0;
        plan.lock_period =
            mt && p.locks_per_kinstr > 0
                ? std::max<std::uint64_t>(
                      1, std::llround(1.0 / std::max(1e-9,
                                                     locks_per_iter)))
                : 0;

        double mem_total = p.mem_fraction * T;
        double shared_rate = 0.0;
        plan.shared_per_burst = 0;
        if (plan.lock_period > 0) {
            shared_rate = p.shared_fraction * mem_total;
            plan.shared_per_burst = static_cast<unsigned>(std::llround(
                shared_rate * static_cast<double>(plan.lock_period)));
            shared_rate = static_cast<double>(plan.shared_per_burst) /
                          static_cast<double>(plan.lock_period);
        }

        double periodic_mem =
            (plan.churn_period ? 1.0 / plan.churn_period : 0.0) +
            (plan.input_period ? 1.0 / plan.input_period : 0.0) +
            shared_rate;
        double body_mem = std::max(4.0, mem_total - periodic_mem);
        plan.mem_slots = static_cast<unsigned>(std::llround(body_mem));
        plan.chase_slots = static_cast<unsigned>(std::llround(
            std::min<double>(plan.mem_slots,
                             p.chase_fraction * mem_total)));

        plan.branch_slots = static_cast<unsigned>(
            std::llround(p.branch_fraction * T));
        plan.call_slots = static_cast<unsigned>(
            std::llround(p.call_fraction * T / kCallDynInstrs));
        // ALU fills the remainder of a ~96-slot body.
        int alu = 96 - static_cast<int>(plan.mem_slots) -
                  static_cast<int>(plan.branch_slots) -
                  static_cast<int>(plan.call_slots);
        plan.alu_slots = static_cast<unsigned>(std::max(6, alu));

        double overhead = kLoopOverhead +
                          (plan.churn_period ? kTriggerInstrs : 0) +
                          (plan.input_period ? kTriggerInstrs : 0) +
                          (plan.lock_period ? kTriggerInstrs : 0);
        double periodic_instrs =
            (plan.churn_period
                 ? static_cast<double>(kChurnInstrs) / plan.churn_period
                 : 0.0) +
            (plan.input_period
                 ? static_cast<double>(kInputInstrs) / plan.input_period
                 : 0.0) +
            (plan.lock_period
                 ? (4.0 + plan.shared_per_burst) / plan.lock_period
                 : 0.0);

        T = plan.mem_slots + plan.alu_slots + plan.branch_slots +
            plan.call_slots * kCallDynInstrs + overhead + periodic_instrs;
        plan.instrs_per_iter = T;
        plan.mem_per_iter = body_mem + periodic_mem;
    }

    // Prologue estimate: allocations + ring build (12 instrs/node).
    double prologue = layout.num_blocks * 3.0 + 30.0 +
                      static_cast<double>(layout.ring_nodes) * 12.0;
    double per_thread_budget =
        std::max(1.0, (static_cast<double>(target) -
                       prologue * p.threads) /
                          p.threads);
    plan.iterations = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(per_thread_budget /
                                      plan.instrs_per_iter));
    return plan;
}

/** Emits one thread's code (prologue, loop, epilogue pieces). */
class ThreadEmitter
{
  public:
    ThreadEmitter(ProgramBuilder& b, const Profile& p, const Layout& l,
                  const Plan& plan, const BugInjection& bugs, Rng& rng,
                  bool is_worker, const std::vector<Label>& leaves)
        : b_(b), p_(p), l_(l), plan_(plan), bugs_(bugs), rng_(rng),
          worker_(is_worker), leaves_(leaves)
    {
        block_slot_ = worker_ ? kWorkerBlockSlot : kMainBlockSlot;
        ring_slot_ = worker_ ? kWorkerRingSlot : kMainRingSlot;
        input_slot_ = worker_ ? kWorkerInputSlot : kInputSlot;
    }

    /** Allocate blocks/ring/input, build the ring, seed registers. */
    void
    emitPrologue()
    {
        b_.li64(kRegTable, sim::kGlobalBase);

        // Array blocks.
        for (unsigned i = 0; i < l_.num_blocks; ++i) {
            emitAlloc(l_.array_bytes, (block_slot_ + (int)i) * 8);
        }
        // Input buffer + chase ring.
        emitAlloc(kInputBufBytes, input_slot_ * 8);
        emitAlloc(l_.ring_bytes, ring_slot_ * 8);

        emitRingBuild();

        // Seed scratch registers with distinct values.
        for (RegIndex r = kScratchLo; r <= kScratchHi; ++r) {
            b_.li(r, static_cast<std::int32_t>(rng_.bounded(1 << 20) + r));
        }
        b_.load(Opcode::kLd, kRegInput, kRegTable, input_slot_ * 8);
        b_.load(Opcode::kLd, kRegChase, kRegTable, ring_slot_ * 8);
        b_.load(Opcode::kLd, kRegBlock, kRegTable, block_slot_ * 8);
        if (p_.threads > 1) {
            b_.load(Opcode::kLd, kRegShared, kRegTable, kSharedSlot * 8);
            b_.li64(kRegLock, kLockAddr);
        }

        // Initial input chunk so taint exists from the start.
        b_.mov(1, kRegInput);
        b_.li(2, static_cast<std::int32_t>(kInputChunk));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kRead));
    }

    /** The main monitored loop. */
    void
    emitLoop()
    {
        b_.li(kRegTick, 0);
        b_.li64(kRegIter, plan_.iterations);
        Label top = b_.newLabel();
        b_.bind(top);

        emitBodySlots();
        if (plan_.churn_period) emitChurn();
        if (plan_.input_period) emitInput();
        if (plan_.lock_period) emitBurst();

        b_.alui(Opcode::kAddi, kRegTick, kRegTick, 1);
        b_.alui(Opcode::kAddi, kRegIter, kRegIter, -1);
        b_.branch(Opcode::kBne, kRegIter, isa::kRegZero, top);
    }

    /** Free everything this thread allocated (honouring bug knobs). */
    void
    emitEpilogue()
    {
        if (!worker_ && bugs_.tainted_jump) {
            // The "exploit": treat untrusted input bytes as a code
            // pointer and jump through them.
            b_.load(Opcode::kLd, 12, kRegInput, 0);
            b_.jr(12);
        }
        if (!worker_ && bugs_.use_after_free) {
            emitFree(block_slot_ * 8);
            b_.load(Opcode::kLd, 13, kRegTable, block_slot_ * 8);
            b_.load(Opcode::kLd, 14, 13, 8); // read of freed memory
        }
        for (unsigned i = 0; i < l_.num_blocks; ++i) {
            if (!worker_ && bugs_.use_after_free && i == 0) continue;
            if (!worker_ && bugs_.leak && i == 1) continue;
            emitFree((block_slot_ + (int)i) * 8);
        }
        if (!worker_ && bugs_.double_free) {
            // Second free of block 2 (already freed in the loop above).
            emitFree((block_slot_ + 2) * 8);
        }
        emitFree(input_slot_ * 8);
        emitFree(ring_slot_ * 8);
    }

  private:
    void
    emitAlloc(std::uint64_t bytes, std::int32_t table_off)
    {
        b_.li(1, static_cast<std::int32_t>(bytes));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b_.store(Opcode::kSd, 1, kRegTable, table_off);
    }

    void
    emitFree(std::int32_t table_off)
    {
        b_.load(Opcode::kLd, 1, kRegTable, table_off);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
    }

    /**
     * Build the chase ring: node j links to node (j + P) mod N, with P
     * prime and co-prime to N, so the walk visits every node in a
     * single cycle with a large non-sequential stride (cache-hostile
     * when the ring exceeds the cache, like mcf's network traversal).
     * The build itself iterates j sequentially, so its stores are
     * cache-friendly — initialization is not the interesting phase.
     */
    void
    emitRingBuild()
    {
        const std::int32_t step = static_cast<std::int32_t>(
            7919 % l_.ring_nodes ? 7919 % l_.ring_nodes : 1);
        // r13 = ring base, r15 = N, r12 = j, r14 = cur, r16 = next idx
        b_.load(Opcode::kLd, 13, kRegTable, ring_slot_ * 8);
        b_.li(15, static_cast<std::int32_t>(l_.ring_nodes));
        b_.li(12, 0);
        Label top = b_.newLabel();
        b_.bind(top);
        // cur = base + j * 64
        b_.alui(Opcode::kShli, 14, 12, 6);
        b_.alu(Opcode::kAdd, 14, 14, 13);
        // next = base + ((j + P) mod N) * 64
        b_.alui(Opcode::kAddi, 16, 12, step);
        b_.alu(Opcode::kRemu, 16, 16, 15);
        b_.alui(Opcode::kShli, 16, 16, 6);
        b_.alu(Opcode::kAdd, 16, 16, 13);
        b_.store(Opcode::kSd, 16, 14, 0);
        b_.alui(Opcode::kAddi, 12, 12, 1);
        b_.branch(Opcode::kBne, 12, 15, top);
    }

    RegIndex
    scratch()
    {
        return static_cast<RegIndex>(
            kScratchLo + rng_.bounded(kScratchHi - kScratchLo + 1));
    }

    /**
     * Pick an array-access offset. Real programs have strong temporal
     * locality (L1 hit rates in the 90s); model it with a small per-block
     * hot set of offsets used for ~85% of accesses, the rest spread over
     * the whole block (the cold / capacity-miss tail that the working-set
     * size controls).
     */
    std::int32_t
    arrayOffset()
    {
        if (rng_.uniform() < 0.97) {
            auto& hot = hot_offsets_[current_block_];
            if (hot.size() < 8) {
                hot.push_back(static_cast<std::int32_t>(
                    rng_.bounded(l_.array_bytes - 16) & ~7ull));
            }
            return hot[rng_.bounded(hot.size())];
        }
        // Cold tail: a sequential scan cursor per block (streaming
        // passes over the data, like gzip's window or gs's page),
        // whose footprint is what the working-set knob controls.
        std::int32_t off = cold_cursor_[current_block_];
        cold_cursor_[current_block_] =
            (off + 8) % static_cast<std::int32_t>(l_.array_bytes - 16);
        return off;
    }

    void
    emitMemSlot(bool chase)
    {
        bool is_load = rng_.uniform() < p_.load_fraction;
        if (chase) {
            if (is_load) {
                b_.load(Opcode::kLd, kRegChase, kRegChase, 0);
            } else {
                b_.store(Opcode::kSd, scratch(), kRegChase, 8);
            }
            return;
        }
        if (rng_.uniform() < p_.stack_fraction) {
            // Locals/spills in the top 2 KiB of the thread's stack —
            // hot in the L1, outside the heap (cheap for AddrCheck,
            // droppable by the address-range filter).
            std::int32_t off = -static_cast<std::int32_t>(
                (rng_.bounded(2048 - 16) & ~7ull) + 8);
            if (is_load) {
                b_.load(Opcode::kLd, scratch(), isa::kRegSp, off);
            } else {
                b_.store(Opcode::kSd, scratch(), isa::kRegSp, off);
            }
            return;
        }
        ++mem_count_;
        if (mem_count_ % 16 == 0) {
            // Rotate to another array block (a table load: a memory ref).
            current_block_ =
                static_cast<unsigned>(rng_.bounded(l_.num_blocks));
            std::int32_t slot =
                block_slot_ + static_cast<std::int32_t>(current_block_);
            b_.load(Opcode::kLd, kRegBlock, kRegTable, slot * 8);
            return;
        }
        if (mem_count_ % 16 == 5) {
            // Touch the untrusted-input buffer (propagates taint).
            std::int32_t off = static_cast<std::int32_t>(
                rng_.bounded(kInputBufBytes - 8) & ~7ull);
            b_.load(Opcode::kLd, scratch(), kRegInput, off);
            return;
        }
        std::int32_t off = arrayOffset();
        if (is_load) {
            b_.load(Opcode::kLd, scratch(), kRegBlock, off);
        } else {
            b_.store(Opcode::kSd, scratch(), kRegBlock, off);
        }
    }

    void
    emitAluSlot()
    {
        static constexpr Opcode kRegOps[] = {
            Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd,
            Opcode::kOr,  Opcode::kXor, Opcode::kSlt,
        };
        static constexpr Opcode kImmOps[] = {
            Opcode::kAddi, Opcode::kXori, Opcode::kShli, Opcode::kShri,
        };
        if (rng_.uniform() < 0.7) {
            Opcode op = kRegOps[rng_.bounded(sizeof(kRegOps) /
                                             sizeof(kRegOps[0]))];
            b_.alu(op, scratch(), scratch(), scratch());
        } else {
            Opcode op = kImmOps[rng_.bounded(sizeof(kImmOps) /
                                             sizeof(kImmOps[0]))];
            std::int32_t imm = op == Opcode::kShli || op == Opcode::kShri
                                   ? static_cast<std::int32_t>(
                                         rng_.bounded(15) + 1)
                                   : static_cast<std::int32_t>(
                                         rng_.bounded(1024));
            b_.alui(op, scratch(), scratch(), imm);
        }
    }

    void
    emitBranchSlot()
    {
        // Data-dependent branch to the immediately following label:
        // taken-ness varies with scratch values but no work is skipped,
        // keeping dynamic instruction counts exact.
        static constexpr Opcode kBrOps[] = {Opcode::kBeq, Opcode::kBne,
                                            Opcode::kBlt};
        Opcode op =
            kBrOps[rng_.bounded(sizeof(kBrOps) / sizeof(kBrOps[0]))];
        Label next = b_.newLabel();
        b_.branch(op, scratch(), scratch(), next);
        b_.bind(next);
    }

    void
    emitBodySlots()
    {
        enum class Kind { kMem, kChase, kAlu, kBranch, kCall };
        std::vector<Kind> slots;
        unsigned plain_mem =
            plan_.mem_slots > plan_.chase_slots
                ? plan_.mem_slots - plan_.chase_slots
                : 0;
        slots.insert(slots.end(), plain_mem, Kind::kMem);
        slots.insert(slots.end(), plan_.chase_slots, Kind::kChase);
        slots.insert(slots.end(), plan_.alu_slots, Kind::kAlu);
        slots.insert(slots.end(), plan_.branch_slots, Kind::kBranch);
        slots.insert(slots.end(), plan_.call_slots, Kind::kCall);
        // Deterministic Fisher-Yates shuffle.
        for (std::size_t i = slots.size(); i > 1; --i) {
            std::swap(slots[i - 1], slots[rng_.bounded(i)]);
        }
        for (Kind kind : slots) {
            switch (kind) {
              case Kind::kMem: emitMemSlot(false); break;
              case Kind::kChase: emitMemSlot(true); break;
              case Kind::kAlu: emitAluSlot(); break;
              case Kind::kBranch: emitBranchSlot(); break;
              case Kind::kCall:
                b_.call(leaves_[rng_.bounded(leaves_.size())]);
                break;
            }
        }
    }

    /** Guard: execute the section only when tick % period == 0. */
    Label
    emitTrigger(std::uint64_t period)
    {
        b_.li(kRegTrig, static_cast<std::int32_t>(period));
        b_.alu(Opcode::kRemu, kRegTrig, kRegTick, kRegTrig);
        Label skip = b_.newLabel();
        b_.branch(Opcode::kBne, kRegTrig, isa::kRegZero, skip);
        return skip;
    }

    void
    emitChurn()
    {
        Label skip = emitTrigger(plan_.churn_period);
        b_.li(1, 64);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b_.mov(kRegChurn, 1);
        b_.store(Opcode::kSd, 12, kRegChurn, 0);
        b_.mov(1, kRegChurn);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
        b_.bind(skip);
    }

    void
    emitInput()
    {
        Label skip = emitTrigger(plan_.input_period);
        b_.mov(1, kRegInput);
        b_.li(2, static_cast<std::int32_t>(kInputChunk));
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kRead));
        b_.bind(skip);
    }

    void
    emitBurst()
    {
        Label skip = emitTrigger(plan_.lock_period);
        b_.mov(1, kRegLock);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kLock));
        for (unsigned i = 0; i < plan_.shared_per_burst; ++i) {
            std::int32_t off;
            if (rng_.uniform() < 0.75 && !l_.shared_hot.empty()) {
                // Hot shared words, common across threads.
                off = l_.shared_hot[rng_.bounded(l_.shared_hot.size())];
            } else {
                off = static_cast<std::int32_t>(
                    rng_.bounded(l_.shared_bytes - 8) & ~7ull);
            }
            if (rng_.uniform() < p_.load_fraction) {
                b_.load(Opcode::kLd, scratch(), kRegShared, off);
            } else {
                b_.store(Opcode::kSd, scratch(), kRegShared, off);
            }
        }
        b_.mov(1, kRegLock);
        b_.syscall(static_cast<std::int32_t>(sim::Sys::kUnlock));
        if (bugs_.race) {
            // Unlocked write to the shared region: the injected race.
            b_.store(Opcode::kSd, 12, kRegShared, 0);
        }
        b_.bind(skip);
    }

    ProgramBuilder& b_;
    const Profile& p_;
    const Layout& l_;
    const Plan& plan_;
    const BugInjection& bugs_;
    Rng& rng_;
    bool worker_;
    const std::vector<Label>& leaves_;
    std::int32_t block_slot_ = 0;
    std::int32_t ring_slot_ = 0;
    std::int32_t input_slot_ = 0;
    std::uint64_t mem_count_ = 0;
    unsigned current_block_ = 0;
    /** Per-block hot offset sets (see arrayOffset()). */
    std::map<unsigned, std::vector<std::int32_t>> hot_offsets_;
    /** Per-block sequential cold-scan cursors. */
    std::map<unsigned, std::int32_t> cold_cursor_;
};

/**
 * Request-serving program shape (Profile::phases > 0).
 *
 * Structure:
 *   prologue: allocate the hot buffer, the cold buffer and the marker
 *             buffer; seed registers;
 *   phase p (0..P-1): a counted loop of R short requests — allocate a
 *             request block, write its header, touch the hot/cold
 *             split (hot_fraction of the data touches hit the small
 *             hot buffer; the rest stream through the cold buffer at a
 *             per-phase prime-ish stride), a little ALU work, free the
 *             block — then a SYS_WRITE phase marker whose kOutput
 *             annotation record ends the phase in the log. Phase
 *             bodies are regenerated per phase (new hot offsets, new
 *             stride, reshuffled slots): the access pattern genuinely
 *             changes at each marker.
 *   epilogue: free the long-lived buffers and halt.
 *
 * Every request body is straight-line (branches only appear around
 * bug-gated sections), so for single-threaded bug-free programs the
 * marker record indices are exact: dynamic counts equal static size
 * deltas plus two annotation records (alloc + free) per request.
 *
 * Bug knobs: leak skips the free of every 64th request (MemLeak),
 * use_after_free reloads every 128th request's block after its free
 * (BoundsCheck/AddrCheck), double_free frees every 256th request's
 * block twice (AddrCheck). tainted_jump/race do not apply here.
 *
 * With worker_churn, each phase change spawns and joins a short-lived
 * worker thread (thread churn); marker indices are then scheduler-
 * dependent and not reported.
 */
GeneratedProgram
generateRequestServing(const Profile& profile, const BugInjection& bugs,
                       std::uint64_t target)
{
    LBA_ASSERT(profile.request_bytes >= 16,
               "request blocks hold a 16-byte header");
    constexpr unsigned kTouches = 8;
    unsigned n_hot = static_cast<unsigned>(std::clamp<long long>(
        std::llround(profile.hot_fraction * kTouches), 0, kTouches));
    unsigned n_cold = kTouches - n_hot;

    constexpr std::uint64_t kHotBytes = 4096;
    std::uint64_t cold_bytes = std::max<std::uint64_t>(
        8 * 1024,
        (static_cast<std::uint64_t>(profile.working_set_kb) * 1024) &
            ~63ull);

    // ~instructions per request (kept in sync with the emission below;
    // only used to derive the request count from the budget).
    double per_request = 3 + 2 + n_hot + 4.0 * n_cold + 4 + 2 + 3;
    unsigned phases = std::max(1u, profile.phases);
    std::uint64_t requests =
        profile.requests_per_phase
            ? profile.requests_per_phase
            : std::max<std::uint64_t>(
                  4, static_cast<std::uint64_t>(
                         static_cast<double>(target) /
                         (phases * per_request)));

    bool any_bug = bugs.use_after_free || bugs.double_free || bugs.leak;
    bool exact_markers = !any_bug && !profile.worker_churn;

    Rng rng(profile.seed * 0x9e3779b97f4a7c15ull + 5);
    ProgramBuilder b;
    Label worker_entry = b.newLabel();

    // Cold-walk registers (r15..r18 are ours; scratch is r12-r14/r19).
    constexpr RegIndex kRegColdSize = 15;
    constexpr RegIndex kRegColdCur = 16;
    constexpr RegIndex kRegColdBase = 17;
    constexpr RegIndex kRegColdAddr = 18;
    const RegIndex scratch[] = {12, 13, 14, 19};

    std::uint64_t dyn = 0; // record-stream cursor (instrs + annotations)

    // --- Prologue -------------------------------------------------
    std::size_t mark = b.size();
    b.li64(kRegTable, sim::kGlobalBase);
    auto emit_alloc = [&](std::uint64_t bytes, std::int32_t slot) {
        b.li(1, static_cast<std::int32_t>(bytes));
        b.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b.store(Opcode::kSd, 1, kRegTable, slot * 8);
    };
    emit_alloc(kHotBytes, kMainBlockSlot);
    emit_alloc(cold_bytes, kMainBlockSlot + 1);
    emit_alloc(kInputBufBytes, kInputSlot);
    b.load(Opcode::kLd, kRegBlock, kRegTable, kMainBlockSlot * 8);
    b.load(Opcode::kLd, kRegColdBase, kRegTable,
           (kMainBlockSlot + 1) * 8);
    b.load(Opcode::kLd, kRegInput, kRegTable, kInputSlot * 8);
    b.li(kRegColdSize, static_cast<std::int32_t>(cold_bytes));
    b.li(kRegColdCur, 0);
    b.li(kRegTick, 0);
    for (RegIndex r : scratch) {
        b.li(r, static_cast<std::int32_t>(rng.bounded(1 << 20) + r));
    }
    dyn += (b.size() - mark) + 3; // three kAlloc annotations

    GeneratedProgram out;

    // --- Phases ---------------------------------------------------
    for (unsigned p = 0; p < phases; ++p) {
        // Per-phase pattern: fresh hot set, fresh cold stride, fresh
        // slot order and load/store mix.
        std::vector<std::int32_t> hot_offs;
        for (unsigned i = 0; i < n_hot; ++i) {
            hot_offs.push_back(static_cast<std::int32_t>(
                rng.bounded(kHotBytes - 8) & ~7ull));
        }
        std::int32_t stride = static_cast<std::int32_t>(
            ((rng.bounded(cold_bytes / 2) | 1) * 8) %
            static_cast<std::int64_t>(cold_bytes));
        if (stride == 0) stride = 8;

        // Touch slot order (hot/cold interleave), shuffled per phase.
        std::vector<bool> is_hot;
        is_hot.insert(is_hot.end(), n_hot, true);
        is_hot.insert(is_hot.end(), n_cold, false);
        for (std::size_t i = is_hot.size(); i > 1; --i) {
            std::size_t j = rng.bounded(i);
            bool t = is_hot[i - 1];
            is_hot[i - 1] = is_hot[j];
            is_hot[j] = t;
        }

        mark = b.size();
        b.li64(kRegIter, requests);
        std::size_t header_static = b.size() - mark;

        mark = b.size();
        Label top = b.newLabel();
        b.bind(top);
        // Request: allocate + header writes.
        b.li(1, static_cast<std::int32_t>(profile.request_bytes));
        b.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b.mov(kRegChurn, 1);
        b.store(Opcode::kSd, 12, kRegChurn, 0);
        b.store(Opcode::kSd, 13, kRegChurn, 8);
        // Hot/cold touches.
        unsigned hot_i = 0;
        for (bool hot : is_hot) {
            bool is_load = rng.uniform() < profile.load_fraction;
            if (hot) {
                std::int32_t off = hot_offs[hot_i++ % hot_offs.size()];
                if (is_load) {
                    b.load(Opcode::kLd, scratch[hot_i % 4], kRegBlock,
                           off);
                } else {
                    b.store(Opcode::kSd, scratch[hot_i % 4], kRegBlock,
                            off);
                }
            } else {
                b.alui(Opcode::kAddi, kRegColdCur, kRegColdCur, stride);
                b.alu(Opcode::kRemu, kRegColdCur, kRegColdCur,
                      kRegColdSize);
                b.alu(Opcode::kAdd, kRegColdAddr, kRegColdBase,
                      kRegColdCur);
                if (is_load) {
                    b.load(Opcode::kLd, 12, kRegColdAddr, 0);
                } else {
                    b.store(Opcode::kSd, 12, kRegColdAddr, 0);
                }
            }
        }
        // ALU work (phase-varied).
        for (unsigned i = 0; i < 4; ++i) {
            static constexpr Opcode kOps[] = {Opcode::kAdd, Opcode::kXor,
                                              Opcode::kMul, Opcode::kSub};
            b.alu(kOps[rng.bounded(4)], scratch[rng.bounded(4)],
                  scratch[rng.bounded(4)], scratch[rng.bounded(4)]);
        }
        // Free (possibly bug-gated).
        if (bugs.leak) {
            // Every 64th request's block is never freed.
            b.li(kRegTrig, 64);
            b.alu(Opcode::kRemu, kRegTrig, kRegTick, kRegTrig);
            Label do_free = b.newLabel();
            Label after = b.newLabel();
            b.branch(Opcode::kBne, kRegTrig, isa::kRegZero, do_free);
            b.jmp(after);
            b.bind(do_free);
            b.mov(1, kRegChurn);
            b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
            b.bind(after);
        } else {
            b.mov(1, kRegChurn);
            b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
        }
        if (bugs.use_after_free) {
            // Every 128th request reloads its freed block.
            b.li(kRegTrig, 128);
            b.alu(Opcode::kRemu, kRegTrig, kRegTick, kRegTrig);
            Label skip = b.newLabel();
            b.branch(Opcode::kBne, kRegTrig, isa::kRegZero, skip);
            b.load(Opcode::kLd, 14, kRegChurn, 0);
            b.bind(skip);
        }
        if (bugs.double_free) {
            // Every 256th request frees its block a second time.
            b.li(kRegTrig, 256);
            b.alu(Opcode::kRemu, kRegTrig, kRegTick, kRegTrig);
            Label skip = b.newLabel();
            b.branch(Opcode::kBne, kRegTrig, isa::kRegZero, skip);
            b.mov(1, kRegChurn);
            b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
            b.bind(skip);
        }
        b.alui(Opcode::kAddi, kRegTick, kRegTick, 1);
        b.alui(Opcode::kAddi, kRegIter, kRegIter, -1);
        b.branch(Opcode::kBne, kRegIter, isa::kRegZero, top);
        std::size_t body_static = b.size() - mark;

        // Straight-line body: dynamic = static per iteration, plus
        // the two annotation records (kAlloc + kFree) per request.
        dyn += header_static + requests * (body_static + 2);

        // Thread churn: a short-lived worker per phase change.
        if (profile.worker_churn) {
            b.liLabel(1, worker_entry);
            b.li(2, static_cast<std::int32_t>(p));
            b.syscall(static_cast<std::int32_t>(sim::Sys::kSpawn));
            b.li(1, static_cast<std::int32_t>(p) + 1);
            b.syscall(static_cast<std::int32_t>(sim::Sys::kJoin));
        }

        // Phase marker: SYS_WRITE whose kOutput annotation carries the
        // phase number (aux = p + 1).
        b.mov(1, kRegInput);
        b.li(2, static_cast<std::int32_t>(p) + 1);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kWrite));
        dyn += 4; // mov + li + syscall records + the kOutput annotation
        if (exact_markers) {
            out.phase_marker_records.push_back(dyn - 1);
        }
    }

    // --- Epilogue -------------------------------------------------
    auto emit_free = [&](std::int32_t slot) {
        b.load(Opcode::kLd, 1, kRegTable, slot * 8);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
    };
    emit_free(kInputSlot);
    emit_free(kMainBlockSlot);
    emit_free(kMainBlockSlot + 1);
    b.halt();

    if (profile.worker_churn) {
        // Worker body: one short request of its own, then exit.
        b.bind(worker_entry);
        b.li(1, 256);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b.mov(kRegChurn, 1);
        b.store(Opcode::kSd, 12, kRegChurn, 0);
        b.load(Opcode::kLd, 13, kRegChurn, 0);
        b.mov(1, kRegChurn);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
        b.syscall(static_cast<std::int32_t>(sim::Sys::kExit));
    }

    std::string error;
    out.program = b.build(sim::kCodeBase, &error);
    LBA_ASSERT(error.empty(), "request program failed to build");
    out.planned_instructions = static_cast<std::uint64_t>(
        static_cast<double>(phases) * static_cast<double>(requests) *
        per_request);
    out.planned_mem_fraction = (2.0 + n_hot + n_cold) / per_request;
    out.iterations = requests;
    out.requests = requests * phases;
    out.hot_touches = n_hot;
    out.cold_touches = n_cold;
    return out;
}

} // namespace

GeneratedProgram
generate(const Profile& profile, const BugInjection& bugs,
         std::uint64_t instructions)
{
    std::uint64_t target =
        instructions ? instructions : profile.target_instructions;
    if (profile.phases > 0) {
        return generateRequestServing(profile, bugs, target);
    }
    Layout layout = planLayout(profile, target);
    Plan plan = planBody(profile, layout, target);

    Rng rng(profile.seed * 0x9e3779b97f4a7c15ull + 1);
    ProgramBuilder b;

    std::vector<Label> leaves;
    for (unsigned i = 0; i < kLeafCount; ++i) {
        leaves.push_back(b.newLabel());
    }

    bool mt = profile.threads > 1;
    Label worker_entry = b.newLabel();

    ThreadEmitter main_emitter(b, profile, layout, plan, bugs, rng,
                               /*is_worker=*/false, leaves);
    main_emitter.emitPrologue();

    if (mt) {
        // Allocate the shared region, publish it, then start the worker.
        b.li(1, static_cast<std::int32_t>(layout.shared_bytes));
        b.syscall(static_cast<std::int32_t>(sim::Sys::kAlloc));
        b.store(Opcode::kSd, 1, kRegTable, kSharedSlot * 8);
        b.load(Opcode::kLd, kRegShared, kRegTable, kSharedSlot * 8);
        b.liLabel(1, worker_entry);
        b.li(2, 0);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kSpawn));
    }

    main_emitter.emitLoop();

    if (mt) {
        b.li(1, 1); // worker tid
        b.syscall(static_cast<std::int32_t>(sim::Sys::kJoin));
    }
    main_emitter.emitEpilogue();
    if (mt) {
        b.load(Opcode::kLd, 1, kRegTable, kSharedSlot * 8);
        b.syscall(static_cast<std::int32_t>(sim::Sys::kFree));
    }
    b.halt();

    if (mt) {
        Rng worker_rng(profile.seed * 0xbf58476d1ce4e5b9ull + 7);
        ThreadEmitter worker_emitter(b, profile, layout, plan, bugs,
                                     worker_rng, /*is_worker=*/true,
                                     leaves);
        b.bind(worker_entry);
        worker_emitter.emitPrologue();
        worker_emitter.emitLoop();
        worker_emitter.emitEpilogue();
        b.syscall(static_cast<std::int32_t>(sim::Sys::kExit));
    }

    // Leaf functions: small pure-ALU bodies.
    for (unsigned i = 0; i < kLeafCount; ++i) {
        b.bind(leaves[i]);
        b.alui(Opcode::kAddi, 12, 12,
               static_cast<std::int32_t>(rng.bounded(64) + 1));
        b.alu(Opcode::kXor, 13, 13, 12);
        b.alui(Opcode::kShri, 14, 13,
               static_cast<std::int32_t>(rng.bounded(7) + 1));
        b.ret();
    }

    std::string error;
    GeneratedProgram out;
    out.program = b.build(sim::kCodeBase, &error);
    LBA_ASSERT(error.empty(), "workload program failed to build");
    out.planned_instructions =
        static_cast<std::uint64_t>(plan.instrs_per_iter *
                                   static_cast<double>(plan.iterations) *
                                   profile.threads);
    out.planned_mem_fraction = plan.mem_per_iter / plan.instrs_per_iter;
    out.iterations = plan.iterations;
    return out;
}

} // namespace lba::workload
