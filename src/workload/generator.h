#pragma once
/**
 * @file
 * Synthetic benchmark generator.
 *
 * Turns a workload::Profile into a runnable LRISC program whose *dynamic*
 * behaviour matches the profile: instruction mix, working set, pointer
 * chasing, heap churn, untrusted-input rate, and (for multithreaded
 * profiles) lock-protected shared accesses across two threads.
 *
 * Program shape (single-threaded):
 *   prologue: allocate array blocks + input buffer + chase ring,
 *             build the ring as a pseudo-random permutation cycle,
 *             ingest an initial input chunk;
 *   main loop (N iterations): a generated body of array loads/stores,
 *             ring-chase loads, ALU work, data-dependent forward
 *             branches, leaf-function calls, and periodic slots for
 *             alloc/free churn and SYS_READ input;
 *   epilogue: free every block (modulo injected bugs) and halt.
 *
 * Multithreaded profiles spawn a worker running the same kind of loop on
 * its own blocks/ring, with both threads accessing a shared region inside
 * lock/unlock sections.
 *
 * Bug injection produces the defect classes the paper's lifeguards
 * detect, for tests and examples.
 */

#include <cstdint>
#include <vector>

#include "isa/isa.h"
#include "workload/profile.h"

namespace lba::workload {

/** Optional defects compiled into the generated program. */
struct BugInjection
{
    /** Read from a block after freeing it (AddrCheck). */
    bool use_after_free = false;
    /** Free the same block twice (AddrCheck). */
    bool double_free = false;
    /** Skip freeing one block (AddrCheck leak scan). */
    bool leak = false;
    /** Jump through a pointer read from untrusted input (TaintCheck). */
    bool tainted_jump = false;
    /** Unlocked writes to the shared region from both threads
     *  (LockSet; multithreaded profiles only). */
    bool race = false;
};

/** A generated benchmark program plus its planning metadata. */
struct GeneratedProgram
{
    std::vector<isa::Instruction> program;
    /** Planned dynamic instructions (approximate). */
    std::uint64_t planned_instructions = 0;
    /** Planned memory-reference fraction (approximate). */
    double planned_mem_fraction = 0.0;
    /** Main-loop iterations per thread (requests served per phase for
     *  request-serving programs). */
    std::uint64_t iterations = 0;

    // --- Request-serving metadata (Profile::phases > 0) -------------

    /** Total requests served across all phases. */
    std::uint64_t requests = 0;
    /**
     * Record-stream index (zero-based, counting retired-instruction
     * records AND annotation records, as log::RecordingObserver sees
     * them) of each phase's ending kOutput marker record. EXACT by
     * construction: the serving loop is straight-line per request, so
     * dynamic counts follow from static ones. Only populated for
     * single-threaded, bug-free request programs — worker churn makes
     * interleaving scheduler-dependent and injected bugs make
     * per-request record counts data-dependent.
     */
    std::vector<std::uint64_t> phase_marker_records;
    /** Per-request hot-buffer touches (for the hot/cold ratio test). */
    unsigned hot_touches = 0;
    /** Per-request cold-buffer touches. */
    unsigned cold_touches = 0;
};

/**
 * Generate the program for @p profile.
 *
 * @param profile      Benchmark profile.
 * @param bugs         Defects to inject (default: clean program).
 * @param instructions Override the profile's dynamic instruction target
 *                     (0 = use the profile's).
 */
GeneratedProgram generate(const Profile& profile,
                          const BugInjection& bugs = {},
                          std::uint64_t instructions = 0);

} // namespace lba::workload
