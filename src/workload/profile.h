#pragma once
/**
 * @file
 * Benchmark workload profiles.
 *
 * The paper evaluates seven single-threaded benchmarks (bc, gnuplot, gs,
 * gzip, mcf, tidy, w3m) and two multithreaded ones (water, zchaff), run to
 * completion under Simics: on average 209M x86 instructions of which 51%
 * are memory references. We cannot ship those binaries, so each benchmark
 * is replaced by a synthetic program generated from a *profile* capturing
 * the characteristics that drive lifeguard cost:
 *
 *   - dynamic instruction count (scaled down ~100x by default; slowdown
 *     ratios are per-instruction rates and size-invariant, which the
 *     scaling ablation verifies),
 *   - memory-reference fraction (the suite averages ~51% to match),
 *   - working-set size and pointer-chase fraction (cache behaviour;
 *     e.g. mcf is a pointer-chasing cache-hostile code),
 *   - heap allocation churn (AddrCheck work; tidy/bc are allocator-heavy),
 *   - untrusted-input rate (TaintCheck work; gzip streams input),
 *   - thread count, shared-access fraction and lock rate (LockSet work).
 *
 * The numbers are calibrated from the public characterization of these
 * applications (SPEC/benchmark literature), not measured from the
 * originals; docs/BENCHMARKS.md documents this substitution.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace lba::workload {

/** Generation parameters for one synthetic benchmark. */
struct Profile
{
    std::string name;

    /** Approximate dynamic instructions for the default run. */
    std::uint64_t target_instructions = 2'000'000;

    /** Fraction of retired instructions that are loads/stores. */
    double mem_fraction = 0.51;
    /** Of memory references, fraction that are loads. */
    double load_fraction = 0.67;
    /** Of memory references, fraction through the pointer-chase ring. */
    double chase_fraction = 0.10;
    /** Of memory references, fraction to the thread's stack (locals,
     *  spills) — cheap for AddrCheck and filterable by address range. */
    double stack_fraction = 0.15;

    /** Data working set (array blocks + chase ring). */
    std::uint32_t working_set_kb = 256;

    /** Fraction of body slots that are conditional branches. */
    double branch_fraction = 0.14;
    /** Fraction of body slots that are calls to leaf functions. */
    double call_fraction = 0.04;

    /** Heap alloc/free pairs per 1000 instructions. */
    double allocs_per_kinstr = 2.0;
    /** SYS_READ bytes ingested per 1000 instructions (taint source). */
    double input_bytes_per_kinstr = 4.0;

    /** Number of threads (1 or 2 in the paper's suite). */
    unsigned threads = 1;
    /** Of memory references, fraction to the lock-protected shared
     *  region (multithreaded profiles only). */
    double shared_fraction = 0.0;
    /** Lock acquire/release pairs per 1000 instructions. */
    double locks_per_kinstr = 0.0;

    /** Program-generation seed (distinct code per benchmark). */
    std::uint64_t seed = 1;

    // --- Request-serving shape (server workloads) -------------------
    // When phases > 0 the generator emits the request-serving program
    // shape instead of the benchmark loop: `phases` serving phases,
    // each a counted run of short requests (allocate, touch hot/cold
    // data, free), each phase ending with a SYS_WRITE phase marker
    // whose kOutput annotation the platform sees in the record stream.
    // Phase bodies are regenerated per phase (different hot set, cold
    // stride, instruction mix) so the access pattern genuinely changes
    // at each boundary.

    /** Number of serving phases (0 = classic benchmark shape). */
    unsigned phases = 0;
    /** Requests per phase (0 = derive from target_instructions). */
    std::uint64_t requests_per_phase = 0;
    /** Of per-request hot/cold data touches, the fraction aimed at the
     *  small L1-resident hot buffer (the rest stream through the cold
     *  buffer, whose size working_set_kb controls). */
    double hot_fraction = 0.875;
    /** Bytes allocated per request. */
    std::uint32_t request_bytes = 64;
    /** Spawn/join a short-lived worker thread at each phase change
     *  (thread churn; makes record interleaving scheduler-dependent,
     *  so phase marker indices are not reported for these). */
    bool worker_churn = false;
};

/** The seven single-threaded benchmarks of Figure 2(a)/(b). */
const std::vector<Profile>& singleThreadedSuite();

/** The two multithreaded benchmarks of Figure 2(c). */
const std::vector<Profile>& multiThreadedSuite();

/** All nine benchmarks. */
const std::vector<Profile>& fullSuite();

/**
 * The server-shaped request-serving profiles (req_serve, req_churn).
 * Kept out of fullSuite(): the paper's figures run the paper's nine
 * benchmarks; these exist to exercise the scheduler and the
 * tag/leak lifeguards under production-shaped load.
 */
const std::vector<Profile>& serverSuite();

/** Look up a profile by benchmark name (nullptr when unknown).
 *  Searches the paper suite and the server suite. */
const Profile* findProfile(const std::string& name);

} // namespace lba::workload
