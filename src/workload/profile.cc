/**
 * @file
 * The benchmark-suite profile table.
 */

#include "workload/profile.h"

namespace lba::workload {

namespace {

std::vector<Profile>
makeSingleThreaded()
{
    std::vector<Profile> suite;

    // bc: arbitrary-precision calculator. ALU-dominated, small working
    // set, frequent small allocations for bignum digits.
    Profile bc;
    bc.name = "bc";
    bc.target_instructions = 2'000'000;
    bc.mem_fraction = 0.42;
    bc.load_fraction = 0.70;
    bc.chase_fraction = 0.05;
    bc.stack_fraction = 0.30;
    bc.working_set_kb = 48;
    bc.branch_fraction = 0.18;
    bc.call_fraction = 0.06;
    bc.allocs_per_kinstr = 6.0;
    bc.input_bytes_per_kinstr = 2.0;
    bc.seed = 101;
    suite.push_back(bc);

    // gnuplot: plotting; moderate arrays, some transcendental-style ALU.
    Profile gnuplot;
    gnuplot.name = "gnuplot";
    gnuplot.target_instructions = 2'000'000;
    gnuplot.mem_fraction = 0.50;
    gnuplot.load_fraction = 0.68;
    gnuplot.chase_fraction = 0.10;
    gnuplot.stack_fraction = 0.20;
    gnuplot.working_set_kb = 192;
    gnuplot.branch_fraction = 0.13;
    gnuplot.call_fraction = 0.05;
    gnuplot.allocs_per_kinstr = 2.0;
    gnuplot.input_bytes_per_kinstr = 4.0;
    gnuplot.seed = 102;
    suite.push_back(gnuplot);

    // gs (ghostscript): interpreter over a large document heap.
    Profile gs;
    gs.name = "gs";
    gs.target_instructions = 2'500'000;
    gs.mem_fraction = 0.55;
    gs.load_fraction = 0.66;
    gs.chase_fraction = 0.15;
    gs.stack_fraction = 0.15;
    gs.working_set_kb = 768;
    gs.branch_fraction = 0.12;
    gs.call_fraction = 0.05;
    gs.allocs_per_kinstr = 3.0;
    gs.input_bytes_per_kinstr = 6.0;
    gs.seed = 103;
    suite.push_back(gs);

    // gzip: streaming compressor; window-sized working set, heavy
    // untrusted input ingestion, few allocations.
    Profile gzip;
    gzip.name = "gzip";
    gzip.target_instructions = 2'000'000;
    gzip.mem_fraction = 0.46;
    gzip.load_fraction = 0.62;
    gzip.chase_fraction = 0.05;
    gzip.stack_fraction = 0.10;
    gzip.working_set_kb = 320;
    gzip.branch_fraction = 0.16;
    gzip.call_fraction = 0.03;
    gzip.allocs_per_kinstr = 0.3;
    gzip.input_bytes_per_kinstr = 16.0;
    gzip.seed = 104;
    suite.push_back(gzip);

    // mcf: network-simplex optimizer; the classic pointer-chasing,
    // cache-hostile SPEC code with a multi-MB working set.
    Profile mcf;
    mcf.name = "mcf";
    mcf.target_instructions = 2'500'000;
    mcf.mem_fraction = 0.60;
    mcf.load_fraction = 0.75;
    mcf.chase_fraction = 0.60;
    mcf.stack_fraction = 0.05;
    mcf.working_set_kb = 4096;
    mcf.branch_fraction = 0.12;
    mcf.call_fraction = 0.02;
    mcf.allocs_per_kinstr = 0.2;
    mcf.input_bytes_per_kinstr = 1.0;
    mcf.seed = 105;
    suite.push_back(mcf);

    // tidy: HTML fixer; parse-tree node churn (very allocator-heavy).
    Profile tidy;
    tidy.name = "tidy";
    tidy.target_instructions = 1'500'000;
    tidy.mem_fraction = 0.52;
    tidy.load_fraction = 0.65;
    tidy.chase_fraction = 0.10;
    tidy.stack_fraction = 0.25;
    tidy.working_set_kb = 96;
    tidy.branch_fraction = 0.16;
    tidy.call_fraction = 0.06;
    tidy.allocs_per_kinstr = 8.0;
    tidy.input_bytes_per_kinstr = 8.0;
    tidy.seed = 106;
    suite.push_back(tidy);

    // w3m: text browser; DOM-ish pointer structures plus page input.
    Profile w3m;
    w3m.name = "w3m";
    w3m.target_instructions = 2'000'000;
    w3m.mem_fraction = 0.50;
    w3m.load_fraction = 0.67;
    w3m.chase_fraction = 0.20;
    w3m.stack_fraction = 0.20;
    w3m.working_set_kb = 256;
    w3m.branch_fraction = 0.14;
    w3m.call_fraction = 0.05;
    w3m.allocs_per_kinstr = 5.0;
    w3m.input_bytes_per_kinstr = 10.0;
    w3m.seed = 107;
    suite.push_back(w3m);

    return suite;
}

std::vector<Profile>
makeMultiThreaded()
{
    std::vector<Profile> suite;

    // water (SPLASH-2): molecular dynamics; threads update shared
    // particle arrays under fine-grained locks.
    Profile water;
    water.name = "water";
    water.target_instructions = 2'000'000;
    water.mem_fraction = 0.54;
    water.load_fraction = 0.70;
    water.chase_fraction = 0.05;
    water.stack_fraction = 0.15;
    water.working_set_kb = 512;
    water.branch_fraction = 0.12;
    water.call_fraction = 0.04;
    water.allocs_per_kinstr = 0.5;
    water.input_bytes_per_kinstr = 1.0;
    water.threads = 2;
    water.shared_fraction = 0.50;
    water.locks_per_kinstr = 3.0;
    water.seed = 108;
    suite.push_back(water);

    // zchaff: SAT solver; large shared clause database, coarser locking,
    // pointer-heavy watched-literal traversal.
    Profile zchaff;
    zchaff.name = "zchaff";
    zchaff.target_instructions = 2'500'000;
    zchaff.mem_fraction = 0.58;
    zchaff.load_fraction = 0.74;
    zchaff.chase_fraction = 0.20;
    zchaff.stack_fraction = 0.10;
    zchaff.working_set_kb = 1024;
    zchaff.branch_fraction = 0.15;
    zchaff.call_fraction = 0.03;
    zchaff.allocs_per_kinstr = 1.0;
    zchaff.input_bytes_per_kinstr = 2.0;
    zchaff.threads = 2;
    zchaff.shared_fraction = 0.55;
    zchaff.locks_per_kinstr = 1.5;
    zchaff.seed = 109;
    suite.push_back(zchaff);

    return suite;
}

std::vector<Profile>
makeServer()
{
    std::vector<Profile> suite;

    // req_serve: a request-serving server loop — many short requests
    // (allocate, touch a hot set, stream cold data, free) across
    // phases whose access pattern changes at each SYS_WRITE-marked
    // boundary. Single-threaded so phase markers land at exactly
    // computable record indices (GeneratedProgram::phase_marker_records).
    Profile serve;
    serve.name = "req_serve";
    serve.target_instructions = 2'000'000;
    serve.mem_fraction = 0.45;
    serve.load_fraction = 0.70;
    serve.working_set_kb = 512;
    serve.allocs_per_kinstr = 40.0; // one block per request
    serve.input_bytes_per_kinstr = 0.0;
    serve.phases = 4;
    serve.hot_fraction = 0.875;
    serve.request_bytes = 64;
    serve.seed = 201;
    suite.push_back(serve);

    // req_churn: the same serving loop plus thread churn — a
    // short-lived worker spawned and joined at every phase change,
    // exercising tenant-internal thread arrival/departure.
    Profile churn = serve;
    churn.name = "req_churn";
    churn.worker_churn = true;
    churn.seed = 202;
    suite.push_back(churn);

    return suite;
}

} // namespace

const std::vector<Profile>&
singleThreadedSuite()
{
    static const std::vector<Profile> suite = makeSingleThreaded();
    return suite;
}

const std::vector<Profile>&
multiThreadedSuite()
{
    static const std::vector<Profile> suite = makeMultiThreaded();
    return suite;
}

const std::vector<Profile>&
fullSuite()
{
    static const std::vector<Profile> suite = [] {
        std::vector<Profile> all = singleThreadedSuite();
        const auto& mt = multiThreadedSuite();
        all.insert(all.end(), mt.begin(), mt.end());
        return all;
    }();
    return suite;
}

const std::vector<Profile>&
serverSuite()
{
    static const std::vector<Profile> suite = makeServer();
    return suite;
}

const Profile*
findProfile(const std::string& name)
{
    for (const Profile& p : fullSuite()) {
        if (p.name == name) return &p;
    }
    for (const Profile& p : serverSuite()) {
        if (p.name == name) return &p;
    }
    return nullptr;
}

} // namespace lba::workload
