#pragma once
/**
 * @file
 * End-to-end containment: detection -> rewind -> on-the-fly repair.
 *
 * The paper's Section 1 extension promises that the log "provid[es] a
 * means, when a problem is detected, to (selectively) rewind the
 * monitored program and possibly perform on-the-fly bug repair". The
 * Checkpointer (replay/checkpoint.h) supplies the mechanism — syscall-
 * boundary snapshots plus a store undo log — and this module closes the
 * loop with the timing platform:
 *
 *  - A ContainmentManager wraps a monitoring platform's RetireObserver
 *    (LbaSystem, ParallelLbaSystem, or the pool driver) and watches its
 *    lifeguards. When a lifeguard raises a finding, the application is
 *    stopped at that retirement.
 *  - Containment drain: before the rewind point is trusted, every lane
 *    the application's records targeted must have consumed them
 *    (PipelineTimer::drainProducer — the multi-lane generalisation of
 *    the syscall-containment drain). The consume lag at detection time
 *    is exactly how far the application ran ahead of the lifeguard.
 *  - Rewind cost: restoring the last checkpoint replays the undo log
 *    newest-first; each undone store is charged through the application
 *    core's caches, plus a fixed pipeline-flush cost, all landing on
 *    the application clock (PipelineTimer::chargeContainment).
 *  - A RepairPolicy decides what happens next: abort the program, skip
 *    the offending instruction, patch it with a safe replacement, or
 *    quarantine the offending address and resume unchanged.
 *
 * Checkpoints are free at syscall boundaries (the syscall-containment
 * drain already synchronised app and lifeguard there), so containment
 * with zero findings is cycle-identical to a baseline run — asserted by
 * differential tests. An optional checkpoint interval additionally
 * snapshots every N instructions; each such checkpoint must drain the
 * lanes first and therefore costs cycles, which is the
 * interval-vs-rewind-distance trade bench/ablation_containment.cc
 * sweeps. (Contrast with hardware tagging like ARM MTE, which detects
 * but cannot rewind.)
 */

#include <cstdint>
#include <optional>
#include <set>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/pipeline_timer.h"
#include "replay/checkpoint.h"
#include "sim/process.h"
#include "stats/histogram.h"

namespace lba::replay {

/** What to do with the program after a finding triggered a rewind. */
enum class RepairPolicy : std::uint8_t {
    /** Terminate the program at the rewind point (clean state). */
    kAbort = 0,
    /** Patch the offending instruction out (nop). */
    kSkip,
    /**
     * Semantic patch: a faulting load becomes `li rd, 0` so downstream
     * dataflow sees a defined value; other instructions become nops.
     */
    kPatch,
    /**
     * Leave the code alone, quarantine the offending data address:
     * further findings at that address are suppressed and execution
     * resumes past the (still buggy) access.
     */
    kQuarantine,
};

/** Printable policy name ("abort", "skip", "patch", "quarantine"). */
const char* repairPolicyName(RepairPolicy policy);

/** Parse a policy name. @return False on an unknown name. */
bool parseRepairPolicy(std::string_view name, RepairPolicy* policy);

/** Containment configuration (platform-independent). */
struct ContainmentConfig
{
    /** Master switch; when false the platforms run exactly as before. */
    bool enabled = false;
    RepairPolicy policy = RepairPolicy::kPatch;
    /**
     * Extra checkpoint every N retired instructions (0 = checkpoints at
     * syscall boundaries only). Interval checkpoints bound the rewind
     * distance of syscall-free stretches but cost a containment drain
     * each, so — unlike the free syscall-boundary checkpoints — they
     * perturb timing even when nothing is ever rewound.
     */
    std::uint64_t checkpoint_interval = 0;
    /** Fixed pipeline-flush cost charged per rewind. */
    Cycles rewind_flush_cycles = 20;
    /** Rewind-distance histogram geometry (instructions per bucket). */
    std::size_t rewind_hist_buckets = 64;
    std::uint64_t rewind_hist_bucket_width = 16;
};

/** How each handled finding was repaired. */
struct RepairOutcomes
{
    /** Offending instruction replaced with a safe equivalent. */
    std::uint64_t patched = 0;
    /** Offending instruction nop'd out. */
    std::uint64_t skipped = 0;
    /** Offending address quarantined (code untouched). */
    std::uint64_t quarantined = 0;
    /** Program terminated at the rewind point. */
    std::uint64_t aborted = 0;
    /** Findings ignored because their address was already quarantined
     *  or the same finding was already repaired. */
    std::uint64_t suppressed = 0;
};

/** Accounting for one contained run (per monitored application). */
struct ContainmentStats
{
    std::uint64_t checkpoints = 0;
    std::uint64_t syscall_checkpoints = 0;
    std::uint64_t interval_checkpoints = 0;
    std::uint64_t undo_entries = 0;
    /** High-water undo-log size between two checkpoints. */
    std::uint64_t max_window_entries = 0;

    std::uint64_t rewinds = 0;
    /** Total instructions rewound (sum of rewind distances). */
    std::uint64_t rewound_instructions = 0;
    std::uint64_t max_rewind_distance = 0;
    /** Cycles charged to the app for rewinds (drain + undo replay). */
    Cycles rewind_cycles = 0;
    /** Cycles the app stalled draining for interval checkpoints. */
    Cycles checkpoint_stall_cycles = 0;

    RepairOutcomes repairs;

    /** Distribution of rewind distances, in instructions. */
    stats::Histogram rewind_distance{64, 16};
};

/**
 * Drives detection, rewind and repair for one monitored application on
 * one timing engine producer.
 *
 * Wire it as the process's RetireObserver AND StoreInterceptor; it owns
 * a Checkpointer internally and forwards every event to @p platform:
 * @code
 *   replay::ContainmentManager manager(process, system.timer(), 0,
 *                                      system, {&guard}, config);
 *   process.setStoreInterceptor(&manager);
 *   auto contained = replay::runContained(process, manager);
 * @endcode
 */
class ContainmentManager : public sim::RetireObserver,
                           public sim::StoreInterceptor
{
  public:
    /**
     * @param process  The monitored application (must outlive this).
     * @param timer    The platform's timing engine.
     * @param producer The engine producer index of this application.
     * @param platform Downstream observer (the monitoring platform).
     * @param watched  Lifeguards whose findings trigger containment
     *                 (one for the serial system, one per shard for the
     *                 parallel system / pool tenants).
     * @param config   Containment configuration (enabled is ignored
     *                 here; constructing a manager means "on").
     */
    ContainmentManager(sim::Process& process, core::PipelineTimer& timer,
                       unsigned producer, sim::RetireObserver& platform,
                       std::vector<const lifeguard::Lifeguard*> watched,
                       const ContainmentConfig& config);

    // RetireObserver: forward through the checkpointer to the platform,
    // then detect new findings and take interval checkpoints.
    // Coordinator-confined like the platforms it wraps (the timer
    // underneath traps off-thread use at runtime).
    void onRetire(const sim::Retired& retired) override
        LBA_COORDINATOR_ONLY;
    void onOsEvent(const sim::OsEvent& event) override
        LBA_COORDINATOR_ONLY;
    void onSyscallComplete(ThreadId tid) override LBA_COORDINATOR_ONLY;

    // StoreInterceptor: undo logging.
    void onPreStore(ThreadId tid, Addr addr, unsigned bytes,
                    Word old_value) override;

    /** True when a finding stopped the run and awaits containment. */
    bool pendingFinding() const { return pending_.has_value(); }

    /**
     * Contain the pending finding: drain every lane, rewind to the last
     * checkpoint (charging the cost to the application clock), and
     * apply the repair policy.
     * @return False when the policy terminates the run (abort).
     */
    bool containAndRepair() LBA_COORDINATOR_ONLY;

    /** Fold end-of-run window state into the statistics. Idempotent. */
    void finalize();

    const ContainmentStats& stats() const { return stats_; }

  private:
    /** Scan the watched lifeguards for new findings; arm a stop. */
    void checkFindings() LBA_COORDINATOR_ONLY;

    /** True when @p finding must not trigger (another) containment. */
    bool isSuppressed(const lifeguard::Finding& finding) const;

    /** Drain + snapshot between syscalls (checkpoint_interval). */
    void intervalCheckpoint() LBA_COORDINATOR_ONLY;

    sim::Process& process_;
    core::PipelineTimer& timer_;
    unsigned producer_;
    std::vector<const lifeguard::Lifeguard*> watched_;
    ContainmentConfig config_;

    Checkpointer checkpointer_;
    /** Per-watched-lifeguard count of findings already examined. */
    std::vector<std::size_t> seen_;
    /** The finding that stopped the run, if any. */
    std::optional<lifeguard::Finding> pending_;
    /** Data addresses whose findings are suppressed (quarantine). */
    std::set<Addr> quarantined_;
    /** Exact findings already repaired; duplicates from other shards
     *  (broadcast annotations) must not rewind again. */
    std::set<std::tuple<std::uint8_t, Addr, Addr>> repaired_;

    ContainmentStats stats_;
};

/** Outcome of a contained run. */
struct ContainedRun
{
    sim::RunResult result;
    /** True when the abort policy terminated the program. */
    bool aborted = false;
};

/**
 * Run @p process to completion (or abort) under containment: every
 * finding-triggered stop is contained and repaired, then execution
 * resumes. Finalizes the manager's statistics before returning.
 */
ContainedRun runContained(sim::Process& process,
                          ContainmentManager& manager);

} // namespace lba::replay
