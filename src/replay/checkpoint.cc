/**
 * @file
 * Checkpointer implementation.
 */

#include "replay/checkpoint.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::replay {

Checkpointer::Checkpointer(sim::Process& process,
                           sim::RetireObserver* inner)
    : process_(process), inner_(inner)
{
    takeCheckpoint();
}

Checkpointer::~Checkpointer() { finalize(); }

void
Checkpointer::finalize()
{
    stats_.max_window_entries =
        std::max<std::uint64_t>(stats_.max_window_entries, undo_.size());
}

void
Checkpointer::takeCheckpoint()
{
    thread_snapshot_.clear();
    for (ThreadId tid = 0; tid < process_.numThreads(); ++tid) {
        thread_snapshot_.push_back(process_.thread(tid));
    }
    scheduler_snapshot_ = process_.schedulerCursor();
    finalize();
    undo_.clear();
    window_instructions_ = 0;
    ++stats_.checkpoints;
}

void
Checkpointer::onRetire(const sim::Retired& retired)
{
    ++window_instructions_;
    if (inner_) inner_->onRetire(retired);
}

void
Checkpointer::onOsEvent(const sim::OsEvent& event)
{
    if (inner_) inner_->onOsEvent(event);
}

void
Checkpointer::onSyscallComplete(ThreadId tid)
{
    if (inner_) inner_->onSyscallComplete(tid);
    // All OS-side effects (input writes, allocations, wakeups) are
    // applied and the next instruction has not executed: a consistent
    // rewind point.
    takeCheckpoint();
}

void
Checkpointer::onPreStore(ThreadId, Addr addr, unsigned bytes,
                         Word old_value)
{
    undo_.push_back({addr, old_value, static_cast<std::uint8_t>(bytes)});
    ++stats_.undo_entries;
}

void
Checkpointer::rewind()
{
    // The window ends here, not at a checkpoint: account its high-water
    // mark before the undo log is replayed away.
    finalize();
    // Undo memory writes, newest first.
    mem::Memory& memory = process_.memory();
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        memory.writeValue(it->addr, it->old_value, it->bytes);
    }
    undo_.clear();

    // Threads created since the checkpoint were created by a syscall,
    // and checkpoints sit at syscall boundaries, so the count matches.
    LBA_ASSERT(thread_snapshot_.size() == process_.numThreads(),
               "rewind window unexpectedly crossed a thread spawn");
    for (ThreadId tid = 0; tid < thread_snapshot_.size(); ++tid) {
        process_.restoreThread(tid, thread_snapshot_[tid]);
    }
    process_.setSchedulerCursor(scheduler_snapshot_);
    window_instructions_ = 0;
    ++stats_.rewinds;
}

} // namespace lba::replay
