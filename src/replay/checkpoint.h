#pragma once
/**
 * @file
 * Checkpoint/rewind support — the paper's Section 1 extension: "the log
 * captures the dynamic history of a monitored program ... providing a
 * means, when a problem is detected, to (selectively) rewind the
 * monitored program and possibly perform on-the-fly bug repair". The
 * paper's footnote 1 notes that rewind needs additional record fields;
 * the extra state is exactly the overwritten value of every store,
 * which this module captures as an undo log.
 *
 * Design: the syscall-containment mechanism already guarantees the
 * lifeguard has checked everything *before* each syscall, so detection
 * lag never spans a syscall. The Checkpointer therefore snapshots
 * thread state at syscall boundaries; between checkpoints the only
 * mutable state is memory written by ordinary stores, which the undo
 * log captures. rewind() restores the exact machine state at the last
 * checkpoint, after which the program can be resumed — optionally after
 * patching the offending instruction (see examples/rewind_repair.cpp).
 *
 * (Contrast with BugNet / Flight Data Recorder, which record for
 * *offline* replay; LBA wants online rewind within the containment
 * window.)
 */

#include <vector>

#include "sim/cpu.h"
#include "sim/process.h"

namespace lba::replay {

/** Accounting for checkpoint/rewind activity. */
struct CheckpointStats
{
    std::uint64_t checkpoints = 0;
    std::uint64_t undo_entries = 0;
    std::uint64_t rewinds = 0;
    /** High-water mark of undo entries between two checkpoints. */
    std::uint64_t max_window_entries = 0;
};

/**
 * Observer wrapper that maintains rewind capability for a Process.
 *
 * Wire it as BOTH the process's RetireObserver (forwarding to the real
 * monitoring platform) and its StoreInterceptor:
 * @code
 *   replay::Checkpointer cp(process, &lba_system);
 *   process.setStoreInterceptor(&cp);
 *   process.run(&cp);
 *   ...
 *   cp.rewind();     // back to the last syscall boundary
 * @endcode
 */
class Checkpointer : public sim::RetireObserver,
                     public sim::StoreInterceptor
{
  public:
    /** An overwritten store value: one entry of the undo log. */
    struct UndoEntry
    {
        Addr addr;
        Word old_value;
        std::uint8_t bytes;
    };

    /**
     * @param process The process to checkpoint (must outlive this).
     * @param inner   Downstream observer (the monitoring platform);
     *                may be nullptr.
     */
    explicit Checkpointer(sim::Process& process,
                          sim::RetireObserver* inner = nullptr);

    /** Folds the final (open) window into the statistics. */
    ~Checkpointer() override;

    // RetireObserver: forward + manage checkpoint boundaries.
    void onRetire(const sim::Retired& retired) override;
    void onOsEvent(const sim::OsEvent& event) override;
    void onSyscallComplete(ThreadId tid) override;

    // StoreInterceptor: undo logging.
    void onPreStore(ThreadId tid, Addr addr, unsigned bytes,
                    Word old_value) override;

    /**
     * Snapshot the current architectural state and clear the undo log.
     * Called automatically after every syscall; callable manually.
     */
    void takeCheckpoint();

    /**
     * Restore the machine to the last checkpoint: undo every store
     * since (in reverse order) and restore thread/scheduler state.
     */
    void rewind();

    /**
     * Fold the current (still open) window into the statistics. A
     * window is normally accounted when a checkpoint or rewind closes
     * it; the last window of a run ends with neither, so call this (or
     * rely on the destructor) before reading max_window_entries at
     * end of run. Idempotent.
     */
    void finalize();

    /** Instructions retired since the last checkpoint. */
    std::uint64_t
    instructionsSinceCheckpoint() const
    {
        return window_instructions_;
    }

    /**
     * The pending undo log, oldest first (rewind replays it newest
     * first). Exposed so containment can charge the rewind's store
     * replay through the application core's caches.
     */
    const std::vector<UndoEntry>& undoLog() const { return undo_; }

    const CheckpointStats& stats() const { return stats_; }

  private:
    sim::Process& process_;
    sim::RetireObserver* inner_;

    std::vector<sim::Thread> thread_snapshot_;
    std::size_t scheduler_snapshot_ = 0;
    std::vector<UndoEntry> undo_;
    std::uint64_t window_instructions_ = 0;

    CheckpointStats stats_;
};

} // namespace lba::replay
