/**
 * @file
 * Containment manager implementation.
 */

#include "replay/containment.h"

#include <algorithm>

#include "common/assert.h"
#include "isa/isa.h"

namespace lba::replay {

const char*
repairPolicyName(RepairPolicy policy)
{
    switch (policy) {
      case RepairPolicy::kAbort: return "abort";
      case RepairPolicy::kSkip: return "skip";
      case RepairPolicy::kPatch: return "patch";
      case RepairPolicy::kQuarantine: return "quarantine";
    }
    return "?";
}

bool
parseRepairPolicy(std::string_view name, RepairPolicy* policy)
{
    if (name == "abort") {
        *policy = RepairPolicy::kAbort;
    } else if (name == "skip") {
        *policy = RepairPolicy::kSkip;
    } else if (name == "patch") {
        *policy = RepairPolicy::kPatch;
    } else if (name == "quarantine") {
        *policy = RepairPolicy::kQuarantine;
    } else {
        return false;
    }
    return true;
}

namespace {

/** Suppression key: a finding's identity across shards and re-runs. */
std::tuple<std::uint8_t, Addr, Addr>
findingKey(const lifeguard::Finding& finding)
{
    return {static_cast<std::uint8_t>(finding.kind), finding.pc,
            finding.addr};
}

/**
 * True when patching the finding's pc is a sound repair. Leak findings
 * (MemLeak's kLeakSuspect / end-of-run kMemoryLeak) attribute the
 * *allocation site* — nopping or li-patching an allocation syscall
 * would corrupt the program's heap dataflow, so those route to
 * quarantine regardless of the skip/patch policy.
 */
bool
patchableSite(const lifeguard::Finding& finding)
{
    return finding.kind != lifeguard::FindingKind::kLeakSuspect &&
           finding.kind != lifeguard::FindingKind::kMemoryLeak;
}

} // namespace

ContainmentManager::ContainmentManager(
    sim::Process& process, core::PipelineTimer& timer, unsigned producer,
    sim::RetireObserver& platform,
    std::vector<const lifeguard::Lifeguard*> watched,
    const ContainmentConfig& config)
    : process_(process),
      timer_(timer),
      producer_(producer),
      watched_(std::move(watched)),
      config_(config),
      checkpointer_(process, &platform),
      seen_(watched_.size(), 0)
{
    LBA_ASSERT(!watched_.empty(), "containment needs lifeguards to watch");
    for (std::size_t g = 0; g < watched_.size(); ++g) {
        LBA_ASSERT(watched_[g] != nullptr, "watched lifeguard is null");
        seen_[g] = watched_[g]->findings().size();
    }
    stats_.rewind_distance = stats::Histogram(
        config_.rewind_hist_buckets, config_.rewind_hist_bucket_width);
}

bool
ContainmentManager::isSuppressed(const lifeguard::Finding& finding) const
{
    return quarantined_.count(finding.addr) > 0 ||
           repaired_.count(findingKey(finding)) > 0;
}

void
ContainmentManager::checkFindings()
{
    if (pending_) return;
    // Batched dispatch defers handler execution to the next flush
    // boundary; detection latency must not depend on the dispatch
    // mode, so catch the engine up before reading findings.
    timer_.sync();
    for (std::size_t g = 0; g < watched_.size(); ++g) {
        const auto& findings = watched_[g]->findings();
        while (seen_[g] < findings.size()) {
            const lifeguard::Finding& finding = findings[seen_[g]++];
            if (isSuppressed(finding)) {
                ++stats_.repairs.suppressed;
                continue;
            }
            // Stop the application at this retirement; the driver
            // (runContained / the pool) calls containAndRepair().
            // Remaining new findings stay unexamined until the next
            // event, so each gets its own containment decision.
            pending_ = finding;
            process_.requestStop();
            return;
        }
    }
}

void
ContainmentManager::intervalCheckpoint()
{
    // An interval checkpoint is only consistent once the lifeguards
    // have verified everything logged before it: drain every lane the
    // producer targeted. This is the (paid) generalisation of the free
    // syscall-boundary checkpoint.
    stats_.checkpoint_stall_cycles += timer_.drainProducer(producer_);
    checkpointer_.takeCheckpoint();
    ++stats_.interval_checkpoints;
}

void
ContainmentManager::onRetire(const sim::Retired& retired)
{
    checkpointer_.onRetire(retired);
    checkFindings();
    // No interval checkpoint on a syscall retirement (the free
    // syscall-boundary checkpoint follows immediately) or while a
    // finding is pending (a checkpoint would discard the rewind
    // window before containAndRepair uses it).
    if (config_.checkpoint_interval > 0 && !pending_ &&
        !retired.is_syscall &&
        checkpointer_.instructionsSinceCheckpoint() >=
            config_.checkpoint_interval) {
        intervalCheckpoint();
    }
}

void
ContainmentManager::onOsEvent(const sim::OsEvent& event)
{
    checkpointer_.onOsEvent(event);
    checkFindings();
}

void
ContainmentManager::onSyscallComplete(ThreadId tid)
{
    // Always checkpoint here, even with a finding pending: the syscall's
    // OS-side effects (heap, locks, input writes) are not undo-logged,
    // so the window must never span a completed syscall. A finding
    // raised by the syscall itself therefore rewinds distance 0 — to
    // the state right after the syscall.
    checkpointer_.onSyscallComplete(tid);
    ++stats_.syscall_checkpoints;
}

void
ContainmentManager::onPreStore(ThreadId tid, Addr addr, unsigned bytes,
                               Word old_value)
{
    checkpointer_.onPreStore(tid, addr, bytes, old_value);
}

bool
ContainmentManager::containAndRepair()
{
    LBA_ASSERT(pending_.has_value(),
               "containAndRepair() without a pending finding");
    lifeguard::Finding finding = *pending_;
    pending_.reset();

    // 1. Coordinate: every lane must consume the application's
    //    outstanding records before the rewind point is trusted. The
    //    stall is exactly the consume lag at detection time.
    Cycles drain_stall = timer_.drainProducer(producer_);

    // 2. Rewind, charging the cost: each undone store replays through
    //    the application core's caches (newest first, like the
    //    functional undo), plus a fixed pipeline-flush cost.
    std::uint64_t distance = checkpointer_.instructionsSinceCheckpoint();
    Cycles replay_cost = config_.rewind_flush_cycles;
    mem::CacheHierarchy& hierarchy = timer_.hierarchy();
    unsigned app_core = timer_.producerCore(producer_);
    const auto& undo = checkpointer_.undoLog();
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        replay_cost += 1 + hierarchy.dataAccess(app_core, it->addr, true);
    }
    timer_.chargeContainment(producer_, replay_cost);
    checkpointer_.rewind();

    ++stats_.rewinds;
    stats_.rewound_instructions += distance;
    stats_.max_rewind_distance =
        std::max(stats_.max_rewind_distance, distance);
    stats_.rewind_distance.record(distance);
    stats_.rewind_cycles += drain_stall + replay_cost;

    // 3. Repair.
    const isa::Instruction nop{};
    switch (config_.policy) {
      case RepairPolicy::kAbort:
        ++stats_.repairs.aborted;
        return false;

      case RepairPolicy::kSkip:
        if (patchableSite(finding) &&
            process_.patchInstruction(finding.pc, nop)) {
            ++stats_.repairs.skipped;
            repaired_.insert(findingKey(finding));
        } else {
            // Unpatchable site (e.g. an end-of-run or OS-event finding
            // with pc 0): quarantine instead so the run makes progress.
            quarantined_.insert(finding.addr);
            ++stats_.repairs.quarantined;
        }
        break;

      case RepairPolicy::kPatch: {
        isa::Instruction instr;
        bool patched = false;
        if (!patchableSite(finding)) {
            // fall through to quarantine below
        } else if (process_.instructionAt(finding.pc, &instr) &&
                   isa::isLoad(instr.op)) {
            // Preserve dataflow: the faulting load's destination gets a
            // defined default value instead of the poisoned read.
            patched = process_.patchInstruction(
                finding.pc, {isa::Opcode::kLi, instr.rd, 0, 0, 0});
        } else {
            patched = process_.patchInstruction(finding.pc, nop);
        }
        if (patched) {
            ++stats_.repairs.patched;
            repaired_.insert(findingKey(finding));
        } else {
            quarantined_.insert(finding.addr);
            ++stats_.repairs.quarantined;
        }
        break;
      }

      case RepairPolicy::kQuarantine:
        quarantined_.insert(finding.addr);
        ++stats_.repairs.quarantined;
        break;
    }
    return true;
}

void
ContainmentManager::finalize()
{
    checkpointer_.finalize();
    stats_.checkpoints = checkpointer_.stats().checkpoints;
    stats_.undo_entries = checkpointer_.stats().undo_entries;
    stats_.max_window_entries = checkpointer_.stats().max_window_entries;
}

ContainedRun
runContained(sim::Process& process, ContainmentManager& manager)
{
    // The driving thread is the coordinator: it owns the process, the
    // manager and (transitively) the timer the manager charges.
    threading::assumeCoordinatorRole();
    ContainedRun out;
    for (;;) {
        out.result = process.run(&manager);
        if (out.result.stopped && manager.pendingFinding()) {
            if (!manager.containAndRepair()) {
                out.aborted = true;
                break;
            }
            continue;
        }
        break;
    }
    manager.finalize();
    return out;
}

} // namespace lba::replay
