/**
 * @file
 * Cache-hierarchy timing implementation.
 */

#include "mem/hierarchy.h"

#include "common/assert.h"

namespace lba::mem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config)
{
    LBA_ASSERT(config_.num_cores > 0, "need at least one core");
    for (unsigned c = 0; c < config_.num_cores; ++c) {
        CacheConfig l1i_cfg{"l1i" + std::to_string(c), config_.l1i_bytes,
                            config_.line_bytes, config_.l1_assoc};
        CacheConfig l1d_cfg{"l1d" + std::to_string(c), config_.l1d_bytes,
                            config_.line_bytes, config_.l1_assoc};
        l1i_.push_back(std::make_unique<Cache>(l1i_cfg));
        l1d_.push_back(std::make_unique<Cache>(l1d_cfg));
    }
    CacheConfig l2_cfg{"l2", config_.l2_bytes, config_.line_bytes,
                       config_.l2_assoc};
    l2_ = std::make_unique<Cache>(l2_cfg);
}

Cycles
CacheHierarchy::l2Path(Addr addr, bool is_write)
{
    if (l2_->access(addr, is_write)) {
        return config_.l2_hit_cycles;
    }
    return config_.l2_hit_cycles + config_.mem_cycles;
}

Cycles
CacheHierarchy::instrFetch(unsigned core, Addr pc)
{
    LBA_ASSERT(core < l1i_.size(), "core index out of range");
    if (l1i_[core]->access(pc, false)) {
        return 0;
    }
    return l2Path(pc, false);
}

Cycles
CacheHierarchy::dataAccess(unsigned core, Addr addr, bool is_write)
{
    LBA_ASSERT(core < l1d_.size(), "core index out of range");
    if (l1d_[core]->access(addr, is_write)) {
        return 0;
    }
    return l2Path(addr, is_write);
}

void
CacheHierarchy::flushAll()
{
    for (auto& cache : l1i_) cache->flush();
    for (auto& cache : l1d_) cache->flush();
    l2_->flush();
}

void
CacheHierarchy::resetStats()
{
    for (auto& cache : l1i_) cache->resetStats();
    for (auto& cache : l1d_) cache->resetStats();
    l2_->resetStats();
}

} // namespace lba::mem
