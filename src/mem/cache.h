#pragma once
/**
 * @file
 * Timing-only set-associative cache model (tags, no data).
 *
 * The functional state lives in mem::Memory; the caches exist purely to
 * account hits and misses for the timing model, matching the paper's
 * single-CPI in-order cores with 16KB split L1s and a 512KB shared L2.
 * Write policy is write-back / write-allocate with true-LRU replacement.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lba::mem {

/** Static geometry of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t size_bytes = 16 * 1024;
    std::size_t line_bytes = 64;
    std::size_t associativity = 4;
};

/** Hit/miss accounting for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t accesses() const { return hits + misses; }

    /** Miss ratio in [0,1]; 0 when no accesses were made. */
    double
    missRatio() const
    {
        return accesses()
                   ? static_cast<double>(misses) /
                         static_cast<double>(accesses())
                   : 0.0;
    }
};

/**
 * One level of cache. access() reports whether the line was present and
 * installs it; the caller (CacheHierarchy) decides what a miss costs.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig& config);

    /**
     * Access the line containing @p addr.
     *
     * @param addr Byte address accessed.
     * @param is_write True for stores (marks the line dirty).
     * @return True on hit, false on miss (the line is installed either way).
     */
    bool access(Addr addr, bool is_write);

    /** True if the line containing @p addr is currently present. */
    bool probe(Addr addr) const;

    /** Invalidate every line and reset LRU state (keeps stats). */
    void flush();

    const CacheConfig& config() const { return config_; }
    const CacheStats& stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    std::size_t numSets() const { return sets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru_tick = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    std::size_t sets_;
    unsigned line_shift_;
    std::vector<Line> lines_; // sets_ * associativity, row-major by set
    std::uint64_t tick_ = 0;
    CacheStats stats_;
};

} // namespace lba::mem
