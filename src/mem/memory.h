#pragma once
/**
 * @file
 * Sparse functional main memory for the simulated machine.
 *
 * Backing storage is allocated lazily in 4 KiB pages; untouched memory
 * reads as zero. This is the *functional* store — timing is modelled
 * separately by mem/hierarchy.h so the lifeguard platforms can share one
 * functional image while keeping distinct cache behaviour.
 */

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace lba::mem {

/** Byte-addressable sparse memory with 64-bit addressing. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = 1ull << kPageShift;

    /** Read one byte (0 for untouched memory). */
    std::uint8_t read8(Addr addr) const;

    /** Read a little-endian 32-bit word. */
    std::uint32_t read32(Addr addr) const;

    /** Read a little-endian 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /** Write one byte. */
    void write8(Addr addr, std::uint8_t value);

    /** Write a little-endian 32-bit word. */
    void write32(Addr addr, std::uint32_t value);

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    /** Read @p size bytes with @p width-agnostic access (1, 4, or 8). */
    std::uint64_t readValue(Addr addr, unsigned bytes) const;

    /** Write the low @p bytes bytes of @p value at @p addr. */
    void writeValue(Addr addr, std::uint64_t value, unsigned bytes);

    /** Copy a byte buffer into memory. */
    void writeBytes(Addr addr, const std::uint8_t* data, std::size_t len);

    /** Number of pages currently materialized (for tests/stats). */
    std::size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    /** Find the page containing @p addr, or nullptr if untouched. */
    const std::uint8_t* findPage(Addr addr) const;

    /** Find or create the page containing @p addr. */
    std::uint8_t* touchPage(Addr addr);

    std::unordered_map<Addr, Page> pages_;
};

} // namespace lba::mem
