/**
 * @file
 * Set-associative cache implementation.
 */

#include "mem/cache.h"

#include <bit>

#include "common/assert.h"

namespace lba::mem {

Cache::Cache(const CacheConfig& config)
    : config_(config)
{
    LBA_ASSERT(config_.line_bytes > 0 &&
                   std::has_single_bit(config_.line_bytes),
               "line size must be a power of two");
    LBA_ASSERT(config_.associativity > 0, "associativity must be positive");
    LBA_ASSERT(config_.size_bytes %
                       (config_.line_bytes * config_.associativity) ==
                   0,
               "size must be a multiple of line_bytes * associativity");
    sets_ = config_.size_bytes / (config_.line_bytes *
                                  config_.associativity);
    LBA_ASSERT(sets_ > 0 && std::has_single_bit(sets_),
               "number of sets must be a power of two");
    line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
    lines_.resize(sets_ * config_.associativity);
}

bool
Cache::access(Addr addr, bool is_write)
{
    std::uint64_t line_addr = addr >> line_shift_;
    std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
    std::uint64_t tag = line_addr >> std::countr_zero(sets_);
    Line* base = &lines_[set * config_.associativity];

    ++tick_;
    Line* victim = base;
    for (std::size_t w = 0; w < config_.associativity; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru_tick = tick_;
            line.dirty = line.dirty || is_write;
            ++stats_.hits;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru_tick < victim->lru_tick) {
            victim = &line;
        }
    }

    ++stats_.misses;
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru_tick = tick_;
    victim->dirty = is_write;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t line_addr = addr >> line_shift_;
    std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
    std::uint64_t tag = line_addr >> std::countr_zero(sets_);
    const Line* base = &lines_[set * config_.associativity];
    for (std::size_t w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag) return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line& line : lines_) {
        line = Line{};
    }
    tick_ = 0;
}

} // namespace lba::mem
