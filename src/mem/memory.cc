/**
 * @file
 * Sparse memory implementation.
 */

#include "mem/memory.h"

#include <cstring>

#include "common/assert.h"

namespace lba::mem {

const std::uint8_t*
Memory::findPage(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t*
Memory::touchPage(Addr addr)
{
    Page& page = pages_[addr >> kPageShift];
    if (!page) {
        page = std::make_unique<std::uint8_t[]>(kPageBytes);
        std::memset(page.get(), 0, kPageBytes);
    }
    return page.get();
}

std::uint8_t
Memory::read8(Addr addr) const
{
    const std::uint8_t* page = findPage(addr);
    return page ? page[addr & (kPageBytes - 1)] : 0;
}

void
Memory::write8(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr & (kPageBytes - 1)] = value;
}

std::uint32_t
Memory::read32(Addr addr) const
{
    std::uint32_t value = 0;
    for (unsigned b = 0; b < 4; ++b) {
        value |= static_cast<std::uint32_t>(read8(addr + b)) << (8 * b);
    }
    return value;
}

std::uint64_t
Memory::read64(Addr addr) const
{
    std::uint64_t value = 0;
    for (unsigned b = 0; b < 8; ++b) {
        value |= static_cast<std::uint64_t>(read8(addr + b)) << (8 * b);
    }
    return value;
}

void
Memory::write32(Addr addr, std::uint32_t value)
{
    for (unsigned b = 0; b < 4; ++b) {
        write8(addr + b, static_cast<std::uint8_t>(value >> (8 * b)));
    }
}

void
Memory::write64(Addr addr, std::uint64_t value)
{
    for (unsigned b = 0; b < 8; ++b) {
        write8(addr + b, static_cast<std::uint8_t>(value >> (8 * b)));
    }
}

std::uint64_t
Memory::readValue(Addr addr, unsigned bytes) const
{
    switch (bytes) {
      case 1: return read8(addr);
      case 4: return read32(addr);
      case 8: return read64(addr);
      default: LBA_ASSERT(false, "unsupported access width");
    }
}

void
Memory::writeValue(Addr addr, std::uint64_t value, unsigned bytes)
{
    switch (bytes) {
      case 1:
        write8(addr, static_cast<std::uint8_t>(value));
        break;
      case 4:
        write32(addr, static_cast<std::uint32_t>(value));
        break;
      case 8:
        write64(addr, value);
        break;
      default:
        LBA_ASSERT(false, "unsupported access width");
    }
}

void
Memory::writeBytes(Addr addr, const std::uint8_t* data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        write8(addr + i, data[i]);
    }
}

} // namespace lba::mem
