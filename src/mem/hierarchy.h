#pragma once
/**
 * @file
 * Two-level cache hierarchy timing model.
 *
 * Reproduces the paper's memory system: each core has 16KB private split
 * L1 instruction/data caches; all cores share a 512KB L2. Latencies are
 * *additional* cycles beyond the single base CPI:
 *   L1 hit: +0, L1 miss/L2 hit: +l2_hit_cycles, L2 miss: +mem_cycles.
 *
 * Coherence is not modelled: the monitored application and the lifeguard
 * touch disjoint data, so sharing effects reduce to L2 capacity
 * interference, which this model does capture.
 */

#include <memory>
#include <vector>

#include "mem/cache.h"

namespace lba::mem {

/** Latency and geometry parameters for the hierarchy. */
struct HierarchyConfig
{
    std::size_t l1i_bytes = 16 * 1024; ///< split L1: 16KB I
    std::size_t l1d_bytes = 16 * 1024; ///< split L1: 16KB D
    std::size_t l2_bytes = 512 * 1024; ///< shared 512KB L2
    std::size_t line_bytes = 64;
    std::size_t l1_assoc = 4;
    std::size_t l2_assoc = 8;
    Cycles l2_hit_cycles = 6;   ///< extra cycles for an L1 miss, L2 hit
    Cycles mem_cycles = 100;    ///< extra cycles for an L2 miss
    unsigned num_cores = 2;
};

/**
 * The shared hierarchy: per-core L1I/L1D plus one shared L2.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig& config);

    /** Extra cycles for an instruction fetch by @p core at @p pc. */
    Cycles instrFetch(unsigned core, Addr pc);

    /** Extra cycles for a data access by @p core. */
    Cycles dataAccess(unsigned core, Addr addr, bool is_write);

    const HierarchyConfig& config() const { return config_; }
    const Cache& l1i(unsigned core) const { return *l1i_.at(core); }
    const Cache& l1d(unsigned core) const { return *l1d_.at(core); }
    const Cache& l2() const { return *l2_; }

    /** Invalidate all caches (e.g. between benchmark runs). */
    void flushAll();

    /** Zero all hit/miss statistics. */
    void resetStats();

  private:
    /** L1-miss path: probe shared L2 and convert to extra cycles. */
    Cycles l2Path(Addr addr, bool is_write);

    HierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::unique_ptr<Cache> l2_;
};

} // namespace lba::mem
