#pragma once
/**
 * @file
 * Simulated heap allocator backing the SYS_ALLOC / SYS_FREE syscalls.
 *
 * A first-fit free-list allocator over a fixed heap region. Block metadata
 * is kept in host structures (not in simulated memory) so that workload
 * bugs (use-after-free, overflow) cannot corrupt the allocator itself;
 * what AddrCheck sees is exactly the alloc/free event stream plus the
 * program's accesses.
 */

#include <cstdint>
#include <map>

#include "common/types.h"

namespace lba::sim {

/** First-fit free-list allocator over [base, base + size). */
class Heap
{
  public:
    /** Allocation alignment in bytes. */
    static constexpr std::uint64_t kAlignment = 16;

    /**
     * @param base First byte of the heap region (must be aligned).
     * @param size Region size in bytes.
     */
    Heap(Addr base, std::uint64_t size);

    /**
     * Allocate @p size bytes (rounded up to the alignment).
     * @return Block base address, or 0 when the heap is exhausted.
     */
    Addr alloc(std::uint64_t size);

    /**
     * Free the block starting at @p addr.
     * @return False when @p addr is not the base of a live block
     *         (double free / wild free).
     */
    bool free(Addr addr);

    /** True when @p addr is the base of a currently live block. */
    bool isLiveBlock(Addr addr) const;

    /** Size of the live block at @p addr (0 when not a live base). */
    std::uint64_t blockSize(Addr addr) const;

    /** Number of live blocks. */
    std::size_t liveBlocks() const { return allocated_.size(); }

    /** Total bytes currently allocated. */
    std::uint64_t liveBytes() const { return live_bytes_; }

    Addr base() const { return base_; }
    std::uint64_t size() const { return size_; }

  private:
    Addr base_;
    std::uint64_t size_;
    /** Free regions: base -> length, non-adjacent (coalesced on free). */
    std::map<Addr, std::uint64_t> free_;
    /** Live blocks: base -> length. */
    std::map<Addr, std::uint64_t> allocated_;
    std::uint64_t live_bytes_ = 0;
};

} // namespace lba::sim
