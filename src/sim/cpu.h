#pragma once
/**
 * @file
 * Functional execution of single LRISC instructions.
 *
 * A Thread holds the architectural state (registers + pc). execute() applies
 * one decoded instruction to a thread against a Memory, returning everything
 * an observer (log capture, DBI engine, timing model) needs to know about
 * the retirement: effective address, control-flow outcome, and whether the
 * instruction raised a syscall or halted.
 *
 * execute() performs the register/memory side effects of everything EXCEPT
 * syscalls, which are reported to the caller (the Process) to run OS
 * semantics; the syscall instruction itself still retires normally.
 */

#include <array>
#include <cstdint>

#include "common/types.h"
#include "isa/isa.h"
#include "mem/memory.h"

namespace lba::sim {

/** Run state of a simulated thread. */
enum class ThreadState : std::uint8_t {
    kReady,      ///< runnable
    kBlockedLock,///< waiting on a contended lock
    kBlockedJoin,///< waiting for another thread to exit
    kDone,       ///< exited normally
    kFaulted,    ///< control left the code region or similar fatal error
};

/** Architectural state of one simulated thread. */
struct Thread
{
    std::array<Word, isa::kNumRegs> regs{};
    Addr pc = 0;
    ThreadState state = ThreadState::kReady;
    ThreadId tid = 0;
    /** Lock address or tid this thread is blocked on. */
    Addr wait_target = 0;

    /** Read a register (r0 always reads 0). */
    Word
    reg(RegIndex index) const
    {
        return index == isa::kRegZero ? 0 : regs[index];
    }

    /** Write a register (writes to r0 are discarded). */
    void
    setReg(RegIndex index, Word value)
    {
        if (index != isa::kRegZero) regs[index] = value;
    }
};

/** Everything observable about one retired instruction. */
struct Retired
{
    ThreadId tid = 0;
    Addr pc = 0;
    isa::Instruction instr;

    /** Effective address for loads/stores (0 otherwise). */
    Addr mem_addr = 0;
    /** Access width in bytes; 0 for non-memory instructions. */
    unsigned mem_bytes = 0;
    /** True when the memory access is a write. */
    bool mem_is_write = false;

    /** True for taken control transfers. */
    bool ctrl_taken = false;
    /** Target pc for taken control transfers. */
    Addr ctrl_target = 0;

    /** True when this instruction requests OS service. */
    bool is_syscall = false;
    /** True when this instruction halts the thread. */
    bool is_halt = false;
};

/**
 * Execute one instruction.
 *
 * @param thread Architectural state to update (pc is advanced).
 * @param memory Functional memory image.
 * @param instr The decoded instruction at thread.pc.
 * @return Retirement observation for the instruction.
 */
Retired execute(Thread& thread, mem::Memory& memory,
                const isa::Instruction& instr);

} // namespace lba::sim
