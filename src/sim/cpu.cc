/**
 * @file
 * Functional instruction execution.
 */

#include "sim/cpu.h"

#include "common/assert.h"

namespace lba::sim {

using isa::Instruction;
using isa::Opcode;

Retired
execute(Thread& thread, mem::Memory& memory, const Instruction& instr)
{
    Retired ret;
    ret.tid = thread.tid;
    ret.pc = thread.pc;
    ret.instr = instr;

    Addr next_pc = thread.pc + isa::kInstrBytes;
    const Word a = thread.reg(instr.rs1);
    const Word b = thread.reg(instr.rs2);
    const auto imm_s = static_cast<std::int64_t>(instr.imm);
    const auto imm_w = static_cast<Word>(imm_s);

    auto take = [&](Addr target) {
        ret.ctrl_taken = true;
        ret.ctrl_target = target;
        next_pc = target;
    };

    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        ret.is_halt = true;
        break;

      case Opcode::kLi:
        thread.setReg(instr.rd, imm_w);
        break;
      case Opcode::kLih:
        thread.setReg(instr.rd,
                      (thread.reg(instr.rd) & 0xffffffffull) |
                          (static_cast<Word>(
                               static_cast<std::uint32_t>(instr.imm))
                           << 32));
        break;
      case Opcode::kMov:
        thread.setReg(instr.rd, a);
        break;

      case Opcode::kAdd:
        thread.setReg(instr.rd, a + b);
        break;
      case Opcode::kSub:
        thread.setReg(instr.rd, a - b);
        break;
      case Opcode::kMul:
        thread.setReg(instr.rd, a * b);
        break;
      case Opcode::kDivu:
        thread.setReg(instr.rd, b ? a / b : ~0ull);
        break;
      case Opcode::kRemu:
        thread.setReg(instr.rd, b ? a % b : a);
        break;
      case Opcode::kAnd:
        thread.setReg(instr.rd, a & b);
        break;
      case Opcode::kOr:
        thread.setReg(instr.rd, a | b);
        break;
      case Opcode::kXor:
        thread.setReg(instr.rd, a ^ b);
        break;
      case Opcode::kShl:
        thread.setReg(instr.rd, a << (b & 63));
        break;
      case Opcode::kShr:
        thread.setReg(instr.rd, a >> (b & 63));
        break;
      case Opcode::kSra:
        thread.setReg(instr.rd,
                      static_cast<Word>(static_cast<std::int64_t>(a) >>
                                        (b & 63)));
        break;
      case Opcode::kSlt:
        thread.setReg(instr.rd, static_cast<std::int64_t>(a) <
                                        static_cast<std::int64_t>(b)
                                    ? 1
                                    : 0);
        break;
      case Opcode::kSltu:
        thread.setReg(instr.rd, a < b ? 1 : 0);
        break;

      case Opcode::kAddi:
        thread.setReg(instr.rd, a + imm_w);
        break;
      case Opcode::kMuli:
        thread.setReg(instr.rd, a * imm_w);
        break;
      case Opcode::kAndi:
        thread.setReg(instr.rd, a & imm_w);
        break;
      case Opcode::kOri:
        thread.setReg(instr.rd, a | imm_w);
        break;
      case Opcode::kXori:
        thread.setReg(instr.rd, a ^ imm_w);
        break;
      case Opcode::kShli:
        thread.setReg(instr.rd, a << (imm_w & 63));
        break;
      case Opcode::kShri:
        thread.setReg(instr.rd, a >> (imm_w & 63));
        break;

      case Opcode::kLb:
      case Opcode::kLw:
      case Opcode::kLd: {
        Addr ea = a + imm_w;
        unsigned bytes = isa::memAccessBytes(instr.op);
        thread.setReg(instr.rd, memory.readValue(ea, bytes));
        ret.mem_addr = ea;
        ret.mem_bytes = bytes;
        break;
      }
      case Opcode::kSb:
      case Opcode::kSw:
      case Opcode::kSd: {
        Addr ea = a + imm_w;
        unsigned bytes = isa::memAccessBytes(instr.op);
        memory.writeValue(ea, b, bytes);
        ret.mem_addr = ea;
        ret.mem_bytes = bytes;
        ret.mem_is_write = true;
        break;
      }

      case Opcode::kBeq:
        if (a == b) take(thread.pc + imm_s);
        break;
      case Opcode::kBne:
        if (a != b) take(thread.pc + imm_s);
        break;
      case Opcode::kBlt:
        if (static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)) {
            take(thread.pc + imm_s);
        }
        break;
      case Opcode::kBge:
        if (static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b)) {
            take(thread.pc + imm_s);
        }
        break;
      case Opcode::kBltu:
        if (a < b) take(thread.pc + imm_s);
        break;
      case Opcode::kBgeu:
        if (a >= b) take(thread.pc + imm_s);
        break;

      case Opcode::kJmp:
        take(thread.pc + imm_s);
        break;
      case Opcode::kJr:
        take(a);
        break;
      case Opcode::kCall:
        thread.setReg(isa::kRegLr, thread.pc + isa::kInstrBytes);
        take(thread.pc + imm_s);
        break;
      case Opcode::kCallr:
        thread.setReg(isa::kRegLr, thread.pc + isa::kInstrBytes);
        take(a);
        break;
      case Opcode::kRet:
        take(thread.reg(isa::kRegLr));
        break;

      case Opcode::kSyscall:
        ret.is_syscall = true;
        break;

      case Opcode::kNumOpcodes:
        LBA_ASSERT(false, "invalid opcode reached execute()");
    }

    thread.pc = next_pc;
    return ret;
}

} // namespace lba::sim
