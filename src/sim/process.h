#pragma once
/**
 * @file
 * The simulated process: program image, threads, scheduler, heap and OS
 * services. This is the substrate the monitored application runs on; both
 * monitoring platforms (LBA and the Valgrind-style DBI baseline) observe
 * its retirement stream through the RetireObserver interface.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.h"
#include "isa/isa.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "sim/heap.h"
#include "sim/syscalls.h"

namespace lba::sim {

/** Standard address-space layout of a simulated process. */
inline constexpr Addr kCodeBase = 0x10000;
inline constexpr Addr kGlobalBase = 0x1000000;
inline constexpr Addr kHeapBase = 0x10000000;
inline constexpr Addr kStackTop = 0x7fff0000;
inline constexpr std::uint64_t kStackRegion = 1 << 20; // 1 MiB per thread

/** Tunables for a simulated process. */
struct ProcessConfig
{
    std::uint64_t heap_bytes = 64ull << 20;
    /** Instructions per scheduling quantum (round-robin). */
    std::uint64_t quantum = 100;
    /** Seed of the untrusted-input stream served by SYS_READ. */
    std::uint64_t input_seed = 0x1234abcd;
    /** Safety stop for runaway programs. */
    std::uint64_t max_instructions = 500ull << 20;
    /** Maximum number of threads (stacks are carved statically). */
    unsigned max_threads = 64;
};

/**
 * Observer of the retirement stream. The LBA capture hardware, the DBI
 * baseline, and plain timing models all implement this.
 */
class RetireObserver
{
  public:
    virtual ~RetireObserver() = default;

    /** Called after every retired instruction, in program (retire) order. */
    virtual void onRetire(const Retired& retired) = 0;

    /**
     * Called when a syscall completes an OS-level action, immediately
     * after the syscall instruction's onRetire().
     */
    virtual void onOsEvent(const OsEvent& event) = 0;

    /**
     * Called once all OS-side effects of a syscall have been applied
     * and before the next instruction executes — a consistent
     * checkpoint boundary (default: no-op).
     */
    virtual void onSyscallComplete(ThreadId tid) { (void)tid; }
};

/**
 * Pre-execution hook for stores: sees the value about to be overwritten.
 * This is the capture point for undo logging (the paper's footnote 1:
 * "additional fields would be needed to enable rewind" — the old value
 * is exactly that additional field).
 */
class StoreInterceptor
{
  public:
    virtual ~StoreInterceptor() = default;

    /** Called before a store clobbers [addr, addr+bytes). */
    virtual void onPreStore(ThreadId tid, Addr addr, unsigned bytes,
                            Word old_value) = 0;
};

/** Outcome of Process::run(). */
struct RunResult
{
    std::uint64_t instructions = 0;
    bool all_exited = false;
    bool deadlocked = false;
    bool hit_instruction_limit = false;
    /** True when an observer called requestStop(); run() may resume. */
    bool stopped = false;
    unsigned faulted_threads = 0;
};

/**
 * A single simulated process with its own memory image, heap and threads.
 */
class Process
{
  public:
    explicit Process(const ProcessConfig& config = {});

    /**
     * Load @p program at kCodeBase and create the main thread (tid 0)
     * with pc at the first instruction and a full stack.
     */
    void load(const std::vector<isa::Instruction>& program);

    /**
     * Run until every thread exits, deadlock, the instruction limit, or
     * an observer calls requestStop(). Calling run() again resumes from
     * the stop point (scheduler and thread state persist).
     *
     * @param observer Retirement observer; may be nullptr.
     */
    RunResult run(RetireObserver* observer);

    /**
     * Ask the current run() to return after the current instruction.
     * Callable from observer callbacks (e.g. when a lifeguard finding
     * should trigger a rewind).
     */
    void requestStop() { stop_requested_ = true; }

    /** Install a pre-store hook (nullptr to remove). */
    void setStoreInterceptor(StoreInterceptor* interceptor)
    {
        store_interceptor_ = interceptor;
    }

    /**
     * Overwrite the architectural state of a thread (rewind support).
     * The thread must already exist.
     */
    void restoreThread(ThreadId tid, const Thread& state);

    /**
     * Replace the instruction at @p pc in both the decoded program and
     * the in-memory code image (on-the-fly bug repair).
     * @return False when @p pc is not a valid instruction address.
     */
    bool patchInstruction(Addr pc, const isa::Instruction& instr);

    /**
     * Read the (possibly patched) instruction at @p pc, so a repair
     * policy can craft a semantic replacement.
     * @return False when @p pc is not a valid instruction address.
     */
    bool instructionAt(Addr pc, isa::Instruction* instr) const;

    /** Scheduler rotation cursor (exposed for exact rewind). */
    std::size_t schedulerCursor() const { return current_; }
    void setSchedulerCursor(std::size_t cursor) { current_ = cursor; }

    mem::Memory& memory() { return memory_; }
    const mem::Memory& memory() const { return memory_; }
    Heap& heap() { return heap_; }
    const Heap& heap() const { return heap_; }

    /** Number of threads ever created. */
    std::size_t numThreads() const { return threads_.size(); }
    const Thread& thread(ThreadId tid) const { return threads_.at(tid); }

    /** Total instructions retired across all threads. */
    std::uint64_t instructionsRetired() const { return instructions_; }

    /** Retired-instruction count per instruction class. */
    const std::array<std::uint64_t, isa::kNumInstrClasses>&
    classCounts() const
    {
        return class_counts_;
    }

    /** Retired memory references (loads + stores). */
    std::uint64_t memRefs() const;

  private:
    struct LockState
    {
        bool held = false;
        ThreadId owner = 0;
        std::deque<ThreadId> waiters;
    };

    /** Fetch + decode the instruction at @p t's pc; false on fault. */
    bool fetch(Thread& t, isa::Instruction* instr) const;

    /** Run OS semantics for the syscall just retired by @p t. */
    void handleSyscall(Thread& t, RetireObserver* observer,
                       bool* end_quantum);

    /** Mark a thread exited and wake joiners. */
    void exitThread(Thread& t, RetireObserver* observer, ThreadState state);

    /** Next untrusted-input byte (xorshift64 stream). */
    std::uint8_t nextInputByte();

    /** Emit an OS event to the observer (if any). */
    void emit(RetireObserver* observer, const OsEvent& event);

    ProcessConfig config_;
    mem::Memory memory_;
    Heap heap_;
    std::vector<Thread> threads_;
    std::vector<isa::Instruction> program_;
    Addr code_end_ = kCodeBase;

    std::map<Addr, LockState> locks_;
    std::map<ThreadId, std::vector<ThreadId>> join_waiters_;

    std::uint64_t input_state_;
    std::uint64_t instructions_ = 0;
    std::array<std::uint64_t, isa::kNumInstrClasses> class_counts_{};
    std::size_t current_ = 0;
    bool stop_requested_ = false;
    StoreInterceptor* store_interceptor_ = nullptr;
};

} // namespace lba::sim
