/**
 * @file
 * Simulated process implementation: loader, scheduler, OS services.
 */

#include "sim/process.h"

#include "common/assert.h"
#include "isa/encoding.h"

namespace lba::sim {

using isa::Instruction;

const char*
osEventName(OsEventType type)
{
    switch (type) {
      case OsEventType::kAlloc: return "Alloc";
      case OsEventType::kFree: return "Free";
      case OsEventType::kInput: return "Input";
      case OsEventType::kOutput: return "Output";
      case OsEventType::kLock: return "Lock";
      case OsEventType::kUnlock: return "Unlock";
      case OsEventType::kThreadSpawn: return "ThreadSpawn";
      case OsEventType::kThreadExit: return "ThreadExit";
      default: return "?";
    }
}

Process::Process(const ProcessConfig& config)
    : config_(config),
      heap_(kHeapBase, config.heap_bytes),
      input_state_(config.input_seed ? config.input_seed : 1)
{
}

void
Process::load(const std::vector<Instruction>& program)
{
    LBA_ASSERT(threads_.empty(), "load() may only be called once");
    LBA_ASSERT(!program.empty(), "cannot load an empty program");
    program_ = program;
    code_end_ = kCodeBase + program_.size() * isa::kInstrBytes;

    // Materialize the encoded image in simulated memory so instruction
    // fetches touch real addresses (the I-cache model needs them).
    std::vector<std::uint8_t> image = isa::encodeProgram(program_);
    memory_.writeBytes(kCodeBase, image.data(), image.size());

    Thread main;
    main.tid = 0;
    main.pc = kCodeBase;
    main.setReg(isa::kRegSp, kStackTop);
    threads_.push_back(main);
}

bool
Process::fetch(Thread& t, Instruction* instr) const
{
    if (t.pc < kCodeBase || t.pc >= code_end_ ||
        (t.pc - kCodeBase) % isa::kInstrBytes != 0) {
        return false;
    }
    *instr = program_[(t.pc - kCodeBase) / isa::kInstrBytes];
    return true;
}

std::uint8_t
Process::nextInputByte()
{
    // xorshift64: deterministic pseudo-random "untrusted input" stream.
    input_state_ ^= input_state_ << 13;
    input_state_ ^= input_state_ >> 7;
    input_state_ ^= input_state_ << 17;
    return static_cast<std::uint8_t>(input_state_);
}

void
Process::emit(RetireObserver* observer, const OsEvent& event)
{
    if (observer) observer->onOsEvent(event);
}

void
Process::exitThread(Thread& t, RetireObserver* observer, ThreadState state)
{
    t.state = state;
    emit(observer, {OsEventType::kThreadExit, t.tid, 0, 0});
    auto it = join_waiters_.find(t.tid);
    if (it != join_waiters_.end()) {
        for (ThreadId waiter : it->second) {
            Thread& w = threads_[waiter];
            if (w.state == ThreadState::kBlockedJoin &&
                w.wait_target == t.tid) {
                w.state = ThreadState::kReady;
            }
        }
        join_waiters_.erase(it);
    }
}

void
Process::handleSyscall(Thread& t, RetireObserver* observer,
                       bool* end_quantum)
{
    // The syscall number travels in the instruction immediate; the decoded
    // instruction is at pc - 8 now (pc already advanced).
    Instruction instr;
    Thread probe = t;
    probe.pc = t.pc - isa::kInstrBytes;
    bool ok = fetch(probe, &instr);
    LBA_ASSERT(ok, "syscall retired from unfetchable pc");
    auto sys = static_cast<Sys>(static_cast<std::uint32_t>(instr.imm));

    switch (sys) {
      case Sys::kExit:
        exitThread(t, observer, ThreadState::kDone);
        *end_quantum = true;
        break;

      case Sys::kAlloc: {
        std::uint64_t size = t.reg(1);
        Addr ptr = heap_.alloc(size);
        t.setReg(1, ptr);
        emit(observer, {OsEventType::kAlloc, t.tid, ptr,
                        ptr ? heap_.blockSize(ptr) : 0});
        break;
      }

      case Sys::kFree: {
        Addr ptr = t.reg(1);
        bool freed = heap_.free(ptr);
        t.setReg(1, freed ? 1 : 0);
        emit(observer, {OsEventType::kFree, t.tid, ptr,
                        freed ? 1ull : 0ull});
        break;
      }

      case Sys::kRead: {
        Addr buf = t.reg(1);
        std::uint64_t len = t.reg(2);
        for (std::uint64_t i = 0; i < len; ++i) {
            memory_.write8(buf + i, nextInputByte());
        }
        t.setReg(1, len);
        emit(observer, {OsEventType::kInput, t.tid, buf, len});
        break;
      }

      case Sys::kWrite: {
        Addr buf = t.reg(1);
        std::uint64_t len = t.reg(2);
        t.setReg(1, len);
        emit(observer, {OsEventType::kOutput, t.tid, buf, len});
        break;
      }

      case Sys::kLock: {
        Addr addr = t.reg(1);
        LockState& lock = locks_[addr];
        if (!lock.held) {
            lock.held = true;
            lock.owner = t.tid;
            emit(observer, {OsEventType::kLock, t.tid, addr, 0});
        } else if (lock.owner == t.tid) {
            // Recursive acquire: treated as a no-op.
        } else {
            lock.waiters.push_back(t.tid);
            t.state = ThreadState::kBlockedLock;
            t.wait_target = addr;
            *end_quantum = true;
        }
        break;
      }

      case Sys::kUnlock: {
        Addr addr = t.reg(1);
        auto it = locks_.find(addr);
        if (it == locks_.end() || !it->second.held ||
            it->second.owner != t.tid) {
            t.setReg(1, 0);
            emit(observer, {OsEventType::kUnlock, t.tid, addr, 0});
            break;
        }
        LockState& lock = it->second;
        t.setReg(1, 1);
        emit(observer, {OsEventType::kUnlock, t.tid, addr, 1});
        if (lock.waiters.empty()) {
            lock.held = false;
        } else {
            // Transfer ownership to the first waiter and wake it.
            ThreadId next = lock.waiters.front();
            lock.waiters.pop_front();
            lock.owner = next;
            Thread& w = threads_[next];
            LBA_ASSERT(w.state == ThreadState::kBlockedLock &&
                           w.wait_target == addr,
                       "lock waiter in unexpected state");
            w.state = ThreadState::kReady;
            emit(observer, {OsEventType::kLock, next, addr, 0});
        }
        break;
      }

      case Sys::kSpawn: {
        Addr entry = t.reg(1);
        Word arg = t.reg(2);
        if (threads_.size() >= config_.max_threads) {
            t.setReg(1, ~0ull); // spawn failure
            break;
        }
        Thread child;
        child.tid = static_cast<ThreadId>(threads_.size());
        child.pc = entry;
        child.setReg(1, arg);
        child.setReg(isa::kRegSp, kStackTop - child.tid * kStackRegion);
        t.setReg(1, child.tid);
        emit(observer, {OsEventType::kThreadSpawn, t.tid, child.tid,
                        entry});
        threads_.push_back(child);
        break;
      }

      case Sys::kJoin: {
        auto target = static_cast<ThreadId>(t.reg(1));
        if (target >= threads_.size() || target == t.tid) {
            break; // join on nonsense: no-op
        }
        ThreadState st = threads_[target].state;
        if (st != ThreadState::kDone && st != ThreadState::kFaulted) {
            t.state = ThreadState::kBlockedJoin;
            t.wait_target = target;
            join_waiters_[target].push_back(t.tid);
            *end_quantum = true;
        }
        break;
      }

      case Sys::kYield:
        *end_quantum = true;
        break;

      default:
        // Unknown syscall: treated as a no-op (returns 0).
        t.setReg(1, 0);
        break;
    }
}

RunResult
Process::run(RetireObserver* observer)
{
    LBA_ASSERT(!threads_.empty(), "run() requires a loaded program");
    RunResult result;

    while (instructions_ < config_.max_instructions) {
        // Pick the next ready thread, round-robin from current_.
        Thread* t = nullptr;
        bool any_live = false;
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            std::size_t idx = (current_ + i) % threads_.size();
            ThreadState st = threads_[idx].state;
            if (st == ThreadState::kBlockedLock ||
                st == ThreadState::kBlockedJoin) {
                any_live = true;
            } else if (st == ThreadState::kReady) {
                any_live = true;
                t = &threads_[idx];
                current_ = idx;
                break;
            }
        }
        if (!t) {
            result.deadlocked = any_live;
            break;
        }

        bool end_quantum = false;
        for (std::uint64_t q = 0;
             q < config_.quantum &&
             instructions_ < config_.max_instructions;
             ++q) {
            Instruction instr;
            if (!fetch(*t, &instr)) {
                exitThread(*t, observer, ThreadState::kFaulted);
                ++result.faulted_threads;
                break;
            }
            if (store_interceptor_ && isa::isStore(instr.op)) {
                Addr ea = t->reg(instr.rs1) +
                          static_cast<Word>(
                              static_cast<std::int64_t>(instr.imm));
                unsigned bytes = isa::memAccessBytes(instr.op);
                store_interceptor_->onPreStore(
                    t->tid, ea, bytes, memory_.readValue(ea, bytes));
            }
            Retired retired = execute(*t, memory_, instr);
            ++instructions_;
            ++class_counts_[static_cast<std::size_t>(
                isa::classOf(instr.op))];
            if (observer) observer->onRetire(retired);

            if (retired.is_halt) {
                exitThread(*t, observer, ThreadState::kDone);
                break;
            }
            if (retired.is_syscall) {
                handleSyscall(*t, observer, &end_quantum);
                // kSpawn may grow threads_ and reallocate its storage;
                // re-resolve the running thread before touching it.
                t = &threads_[current_];
                if (observer) observer->onSyscallComplete(t->tid);
            }
            if (stop_requested_) break;
            if (end_quantum || t->state != ThreadState::kReady) break;
        }
        current_ = (current_ + 1) % threads_.size();
        if (stop_requested_) {
            stop_requested_ = false;
            result.stopped = true;
            break;
        }
    }

    result.instructions = instructions_;
    result.hit_instruction_limit =
        instructions_ >= config_.max_instructions;
    result.all_exited = true;
    for (const Thread& t : threads_) {
        if (t.state != ThreadState::kDone &&
            t.state != ThreadState::kFaulted) {
            result.all_exited = false;
        }
    }
    return result;
}

void
Process::restoreThread(ThreadId tid, const Thread& state)
{
    LBA_ASSERT(tid < threads_.size(), "restoreThread: unknown thread");
    LBA_ASSERT(state.tid == tid, "restoreThread: tid mismatch");
    threads_[tid] = state;
}

bool
Process::patchInstruction(Addr pc, const isa::Instruction& instr)
{
    if (pc < kCodeBase || pc >= code_end_ ||
        (pc - kCodeBase) % isa::kInstrBytes != 0) {
        return false;
    }
    program_[(pc - kCodeBase) / isa::kInstrBytes] = instr;
    memory_.write64(pc, isa::encode(instr));
    return true;
}

bool
Process::instructionAt(Addr pc, isa::Instruction* instr) const
{
    if (pc < kCodeBase || pc >= code_end_ ||
        (pc - kCodeBase) % isa::kInstrBytes != 0) {
        return false;
    }
    *instr = program_[(pc - kCodeBase) / isa::kInstrBytes];
    return true;
}

std::uint64_t
Process::memRefs() const
{
    return class_counts_[static_cast<std::size_t>(isa::InstrClass::kLoad)] +
           class_counts_[static_cast<std::size_t>(isa::InstrClass::kStore)];
}

} // namespace lba::sim
