/**
 * @file
 * First-fit heap allocator implementation.
 */

#include "sim/heap.h"

#include "common/assert.h"

namespace lba::sim {

Heap::Heap(Addr base, std::uint64_t size)
    : base_(base), size_(size)
{
    LBA_ASSERT(base % kAlignment == 0, "heap base must be aligned");
    LBA_ASSERT(size >= kAlignment, "heap too small");
    free_[base_] = size_;
}

Addr
Heap::alloc(std::uint64_t size)
{
    if (size == 0) size = kAlignment;
    size = (size + kAlignment - 1) & ~(kAlignment - 1);

    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < size) continue;
        Addr addr = it->first;
        std::uint64_t remaining = it->second - size;
        free_.erase(it);
        if (remaining > 0) {
            free_[addr + size] = remaining;
        }
        allocated_[addr] = size;
        live_bytes_ += size;
        return addr;
    }
    return 0;
}

bool
Heap::free(Addr addr)
{
    auto it = allocated_.find(addr);
    if (it == allocated_.end()) return false;
    std::uint64_t size = it->second;
    allocated_.erase(it);
    live_bytes_ -= size;

    // Insert into the free map, coalescing with neighbours.
    auto [ins, ok] = free_.emplace(addr, size);
    LBA_ASSERT(ok, "freed region overlaps free list");
    // Coalesce with successor.
    auto next = std::next(ins);
    if (next != free_.end() && ins->first + ins->second == next->first) {
        ins->second += next->second;
        free_.erase(next);
    }
    // Coalesce with predecessor.
    if (ins != free_.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            free_.erase(ins);
        }
    }
    return true;
}

bool
Heap::isLiveBlock(Addr addr) const
{
    return allocated_.count(addr) != 0;
}

std::uint64_t
Heap::blockSize(Addr addr) const
{
    auto it = allocated_.find(addr);
    return it == allocated_.end() ? 0 : it->second;
}

} // namespace lba::sim
