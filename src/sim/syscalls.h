#pragma once
/**
 * @file
 * Syscall numbers and OS-level event descriptions for the simulated
 * process.
 *
 * The paper's lifeguards observe program events above the raw instruction
 * stream: heap allocation (AddrCheck), untrusted input (TaintCheck), and
 * lock acquire/release (LockSet). On a real system these come from
 * instrumented libc/pthread wrappers; in this reproduction they are
 * syscalls of the simulated OS, and each produces an OS event alongside
 * the retiring syscall instruction.
 *
 * Calling convention: syscall number is the instruction immediate;
 * arguments in r1..r4; result in r1.
 */

#include <cstdint>

#include "common/types.h"

namespace lba::sim {

/** Syscall numbers (instruction immediates). */
enum class Sys : std::uint32_t {
    kExit = 0,  ///< terminate calling thread
    kAlloc = 1, ///< r1 = size               -> r1 = ptr (0 on failure)
    kFree = 2,  ///< r1 = ptr                -> r1 = 1 ok / 0 bad free
    kRead = 3,  ///< r1 = buf, r2 = len      -> r1 = bytes read (untrusted!)
    kWrite = 4, ///< r1 = buf, r2 = len      -> r1 = bytes written
    kLock = 5,  ///< r1 = lock address       (blocks until acquired)
    kUnlock = 6,///< r1 = lock address       -> r1 = 1 ok / 0 not owner
    kSpawn = 7, ///< r1 = entry pc, r2 = arg -> r1 = child tid
    kJoin = 8,  ///< r1 = tid                (blocks until tid exits)
    kYield = 9, ///< give up the quantum

    kNumSyscalls
};

/** Kinds of OS-level events visible to monitoring platforms. */
enum class OsEventType : std::uint8_t {
    kAlloc = 0,   ///< addr = block base, size = bytes (size 0 => failed)
    kFree,        ///< addr = block base, size = 1 if valid free else 0
    kInput,       ///< addr = buffer, size = bytes read (taint source)
    kOutput,      ///< addr = buffer, size = bytes written
    kLock,        ///< addr = lock address (acquired)
    kUnlock,      ///< addr = lock address (released; size 0 => bad unlock)
    kThreadSpawn, ///< addr = child tid, size = entry pc
    kThreadExit,  ///< thread terminated

    kNumOsEventTypes
};

/** One OS-level event, attributed to the thread that caused it. */
struct OsEvent
{
    OsEventType type = OsEventType::kAlloc;
    ThreadId tid = 0;
    Addr addr = 0;
    std::uint64_t size = 0;
};

/** Printable name of an OS event type. */
const char* osEventName(OsEventType type);

} // namespace lba::sim
