#pragma once
/**
 * @file
 * Parallel-lifeguard extension: splitting lifeguard functionality across
 * multiple cores (paper Section 1 "the lifeguard functionality can be
 * split across multiple cores, exploiting further parallelism", and
 * Section 3's "parallelizing lifeguards" future work).
 *
 * Sharding policy: memory-access records are routed by address (64-byte
 * region hash) so each shard owns a partition of the shadow space;
 * annotation records (alloc/free/input/lock/unlock/...) are broadcast to
 * every shard so each keeps a complete view of allocation and lock state;
 * remaining instruction records are distributed round-robin (their
 * handlers for shardable lifeguards are no-ops, so this only balances
 * dispatch cost).
 *
 * Timing is the shared core::PipelineTimer engine with one lane per
 * shard: each lane has its own log buffer, transport link and dispatch
 * engine, so filtering, compression accounting, back-pressure, syscall
 * containment and the consume-lag statistics behave identically to the
 * serial LbaSystem — with shards=1 the two systems are cycle-identical
 * by construction (asserted by tests/core_test.cpp's differential
 * tests).
 *
 * This partitioning preserves the semantics of per-address lifeguards
 * (AddrCheck, LockSet). TaintCheck is NOT shardable this way: its
 * register-taint state serializes the whole instruction stream — which is
 * precisely why the paper lists lifeguard parallelization as ongoing
 * research rather than a solved problem. See docs/ARCHITECTURE.md
 * ("The parallel-lifeguard extension") and bench/ablation_parallel.cc.
 */

#include <functional>
#include <memory>
#include <vector>

#include "core/pipeline_timer.h"
#include "log/capture.h"

namespace lba::core {

/**
 * Parallel LBA configuration: the full serial feature set (filtering,
 * transport bandwidth, compression, containment) plus the shard count.
 * Lane s consumes on core dispatch.core + s; buffer_capacity and
 * transport_bytes_per_cycle apply per shard.
 */
struct ParallelLbaConfig : LbaConfig
{
    /** Number of lifeguard cores; hierarchy needs shards+1 cores. */
    unsigned shards = 2;

    ParallelLbaConfig() = default;

    /** Shard an existing serial configuration. */
    ParallelLbaConfig(const LbaConfig& base, unsigned nshards)
        : LbaConfig(base), shards(nshards)
    {
    }
};

/**
 * Statistics for a parallel LBA run: the serial LbaRunStats aggregate
 * (summed/merged across shards) plus per-shard breakdowns.
 */
struct ParallelLbaStats : LbaRunStats
{
    /** Cycles each shard's core spent consuming records. */
    std::vector<Cycles> shard_busy_cycles;
    /** Records each shard consumed (broadcasts count in every shard). */
    std::vector<std::uint64_t> shard_records;
    /** Mean produce-to-consume lag per shard. */
    std::vector<double> shard_consume_lag;
    /** Bytes that crossed each shard's transport link. */
    std::vector<double> shard_transport_bytes;
    /** Cycles each shard's consumption waited on its transport. */
    std::vector<Cycles> shard_transport_wait_cycles;
    /** Peak log-buffer occupancy per shard, in records. */
    std::vector<std::uint64_t> shard_max_occupancy;
};

/**
 * Merge the findings of several lifeguard instances monitoring the same
 * application: annotation records are broadcast, so state derived from
 * them (live-block tables, lock tables) is replicated per instance and
 * the same finding (double free, leak) surfaces in several of them;
 * identical findings are deduplicated preserving first-seen order.
 */
std::vector<lifeguard::Finding> mergeShardFindings(
    const std::vector<std::unique_ptr<lifeguard::Lifeguard>>& shards);

/**
 * LBA with the log fanned out to multiple lifeguard cores.
 */
class ParallelLbaSystem : public sim::RetireObserver
{
  public:
    using Factory =
        std::function<std::unique_ptr<lifeguard::Lifeguard>()>;

    /**
     * @param factory   Creates one lifeguard instance per shard.
     * @param hierarchy Needs config.shards + 1 cores.
     */
    ParallelLbaSystem(const Factory& factory,
                      mem::CacheHierarchy& hierarchy,
                      const ParallelLbaConfig& config);

    // Coordinator-confined like the serial system (see LbaSystem).
    void onRetire(const sim::Retired& retired) override
        LBA_COORDINATOR_ONLY;
    void onOsEvent(const sim::OsEvent& event) override
        LBA_COORDINATOR_ONLY;

    /** Drain and finalize; must be called once after the run. */
    void finish() LBA_COORDINATOR_ONLY;

    const ParallelLbaStats& stats() const { return stats_; }

    /** Findings across all shards (detection order within a shard). */
    std::vector<lifeguard::Finding> allFindings() const
        LBA_COORDINATOR_ONLY;

    unsigned shards() const { return timer_->lanes(); }

    /** The underlying timing engine (containment integration). */
    PipelineTimer& timer() { return *timer_; }

    /** The shard lifeguard instances (containment watch list). */
    std::vector<const lifeguard::Lifeguard*> shardLifeguards() const;

    /** One shard's log-buffer occupancy statistics (snapshot). */
    log::LogBufferStats bufferStats(unsigned shard) const
    {
        return timer_->bufferStats(shard);
    }

    /** One shard's per-event-type dispatch statistics (snapshot). */
    lifeguard::DispatchStats
    dispatchStats(unsigned shard) const LBA_COORDINATOR_ONLY
    {
        return timer_->dispatchStats(shard);
    }

  private:
    /** Route a record to its shard (kBroadcast for annotations). */
    unsigned route(const log::EventRecord& record);

    std::vector<std::unique_ptr<lifeguard::Lifeguard>> lifeguards_;
    std::unique_ptr<PipelineTimer> timer_;
    std::uint64_t round_robin_ = 0;
    ParallelLbaStats stats_;
};

} // namespace lba::core
