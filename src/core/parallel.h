#pragma once
/**
 * @file
 * Parallel-lifeguard extension: splitting lifeguard functionality across
 * multiple cores (paper Section 1 "the lifeguard functionality can be
 * split across multiple cores, exploiting further parallelism", and
 * Section 3's "parallelizing lifeguards" future work).
 *
 * Sharding policy: memory-access records are routed by address (64-byte
 * region hash) so each shard owns a partition of the shadow space;
 * annotation records (alloc/free/input/lock/unlock/...) are broadcast to
 * every shard so each keeps a complete view of allocation and lock state;
 * remaining instruction records are distributed round-robin (their
 * handlers for shardable lifeguards are no-ops, so this only balances
 * dispatch cost).
 *
 * This partitioning preserves the semantics of per-address lifeguards
 * (AddrCheck, LockSet). TaintCheck is NOT shardable this way: its
 * register-taint state serializes the whole instruction stream — which is
 * precisely why the paper lists lifeguard parallelization as ongoing
 * research rather than a solved problem. See docs/ARCHITECTURE.md
 * ("The parallel-lifeguard extension") and bench/ablation_parallel.cc.
 */

#include <functional>
#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "core/lba_system.h"
#include "lifeguard/dispatch.h"
#include "mem/hierarchy.h"
#include "sim/process.h"

namespace lba::core {

/** Parallel LBA configuration. */
struct ParallelLbaConfig
{
    std::size_t buffer_capacity = 64 * 1024;
    unsigned app_core = 0;
    /** Number of lifeguard cores; hierarchy needs shards+1 cores. */
    unsigned shards = 2;
    Cycles dispatch_cycles = 1;
    bool syscall_stall = true;
    bool compress = true;
};

/** Statistics for a parallel LBA run. */
struct ParallelLbaStats
{
    std::uint64_t app_instructions = 0;
    std::uint64_t records_logged = 0;
    Cycles total_cycles = 0;
    Cycles app_cycles = 0;
    Cycles backpressure_stall_cycles = 0;
    Cycles syscall_stall_cycles = 0;
    std::vector<Cycles> shard_busy_cycles;
    double bytes_per_record = 0.0;
};

/**
 * LBA with the log fanned out to multiple lifeguard cores.
 */
class ParallelLbaSystem : public sim::RetireObserver
{
  public:
    using Factory =
        std::function<std::unique_ptr<lifeguard::Lifeguard>()>;

    /**
     * @param factory   Creates one lifeguard instance per shard.
     * @param hierarchy Needs config.shards + 1 cores.
     */
    ParallelLbaSystem(const Factory& factory,
                      mem::CacheHierarchy& hierarchy,
                      const ParallelLbaConfig& config);

    void onRetire(const sim::Retired& retired) override;
    void onOsEvent(const sim::OsEvent& event) override;

    /** Drain and finalize; must be called once after the run. */
    void finish();

    const ParallelLbaStats& stats() const { return stats_; }

    /** Findings across all shards (detection order within a shard). */
    std::vector<lifeguard::Finding> allFindings() const;

    unsigned shards() const { return static_cast<unsigned>(lanes_.size()); }

  private:
    struct Lane
    {
        std::unique_ptr<lifeguard::Lifeguard> lifeguard;
        std::unique_ptr<lifeguard::DispatchEngine> dispatch;
        Cycles last_finish = 0;
    };

    /** Route a record to its shard (kBroadcast for annotations). */
    static constexpr unsigned kBroadcast = ~0u;
    unsigned route(const log::EventRecord& record);

    void logRecord(const log::EventRecord& record);

    mem::CacheHierarchy& hierarchy_;
    ParallelLbaConfig config_;
    compress::LogCompressor compressor_;
    std::vector<Lane> lanes_;
    std::deque<Cycles> slot_finish_;
    Cycles app_time_ = 0;
    bool pending_drain_ = false;
    std::uint64_t round_robin_ = 0;
    ParallelLbaStats stats_;
};

} // namespace lba::core
