#pragma once
/**
 * @file
 * The dual-core LBA system (paper Figure 1): capture -> compress ->
 * log buffer -> decompress -> dispatch -> lifeguard, with decoupled
 * application/lifeguard cores coordinating only through the buffer.
 *
 * Timing model. Both cores are single-CPI in-order with the shared cache
 * hierarchy of mem::CacheHierarchy. Execution is driven by the
 * application's retirement stream; for every record i we compute
 *
 *   produce(i) = app core time after the instruction retires, delayed
 *                while the buffer is full (back-pressure stall);
 *   start(i)   = max(produce(i), finish(i-1));
 *   finish(i)  = start(i) + dispatch + handler cycles.
 *
 * The buffer slot for record i frees when record i-capacity finishes, so
 * a lifeguard that cannot keep up eventually stalls the application —
 * exactly the paper's decoupling semantics. Syscall containment stalls
 * the application at each syscall until the lifeguard has consumed every
 * record logged before it (Section 2).
 *
 * The value-prediction compressor runs over every logged record to
 * account transport bandwidth (< 1 byte/instruction claim); records are
 * handed to the dispatch engine functionally (the compressor's exact
 * invertibility is covered by tests and the compression benches).
 *
 * docs/ARCHITECTURE.md walks this pipeline and timing model in prose.
 */

#include <deque>
#include <memory>

#include "compress/compressor.h"
#include "lifeguard/dispatch.h"
#include "log/capture.h"
#include "log/log_buffer.h"
#include "mem/hierarchy.h"
#include "sim/process.h"
#include "stats/counter.h"

namespace lba::core {

/** LBA platform configuration. */
struct LbaConfig
{
    /** Log buffer capacity, in records. */
    std::size_t buffer_capacity = 64 * 1024;
    /** Application core index. */
    unsigned app_core = 0;
    /** Dispatch configuration (lifeguard core index, nlba cost). */
    lifeguard::DispatchConfig dispatch{1, 1};
    /** Stall syscalls until the log drains (error containment). */
    bool syscall_stall = true;
    /** Run the compressor for bandwidth accounting. */
    bool compress = true;
    /** Address-range record filter (paper Section 3 future work). */
    bool filter_enabled = false;
    Addr filter_base = 0;
    std::uint64_t filter_bytes = 0;
    /**
     * Log-transport bandwidth in bytes/cycle through the cache
     * hierarchy (0 = unlimited). With a finite bandwidth, a record can
     * only be consumed once its (compressed) bytes have crossed the
     * transport — this is where the < 1 byte/instruction compression
     * pays off (paper Section 2: compression "reduce[s] the bandwidth
     * pressure and buffer requirements on the log transport medium").
     */
    double transport_bytes_per_cycle = 0.0;
    /** Record size on the transport when compression is disabled. */
    unsigned raw_record_bytes = 24;
};

/** Timing/traffic statistics of one LBA run. */
struct LbaRunStats
{
    std::uint64_t app_instructions = 0;
    std::uint64_t records_logged = 0;
    std::uint64_t records_filtered = 0;
    Cycles total_cycles = 0;
    /** The application's own execution cycles (CPI + cache penalties). */
    Cycles app_cycles = 0;
    /** Cycles the application stalled on a full log buffer. */
    Cycles backpressure_stall_cycles = 0;
    /** Cycles the application stalled draining the log at syscalls. */
    Cycles syscall_stall_cycles = 0;
    /** Cycles the lifeguard core spent consuming records. */
    Cycles lifeguard_busy_cycles = 0;
    /** Compressed log size, bytes per logged record. */
    double bytes_per_record = 0.0;
    /** Mean cycles between record production and consumption start. */
    double mean_consume_lag = 0.0;
    /** Number of syscalls that triggered a containment drain. */
    std::uint64_t syscall_drains = 0;
    /** Total bytes pushed onto the log transport. */
    double transport_bytes = 0.0;
    /** Cycles consumption waited on transport bandwidth. */
    Cycles transport_wait_cycles = 0;
};

/**
 * The LBA monitoring platform: a RetireObserver that owns the capture,
 * compression, buffering and dispatch pipeline for one lifeguard core.
 */
class LbaSystem : public sim::RetireObserver
{
  public:
    /**
     * @param lifeguard The lifeguard running on the lifeguard core.
     * @param hierarchy Shared cache hierarchy (needs >= 2 cores).
     * @param config    Platform configuration.
     */
    LbaSystem(lifeguard::Lifeguard& lifeguard,
              mem::CacheHierarchy& hierarchy, const LbaConfig& config = {});

    void onRetire(const sim::Retired& retired) override;
    void onOsEvent(const sim::OsEvent& event) override;

    /**
     * Complete the run: drain the pipeline and run the lifeguard's
     * end-of-program hook. Must be called exactly once, after run().
     */
    void finish();

    /** Statistics (valid after finish()). */
    const LbaRunStats& stats() const { return stats_; }

    /** Log-buffer occupancy statistics. */
    const log::LogBufferStats& bufferStats() const
    {
        return buffer_.stats();
    }

    /** Per-event-type dispatch statistics. */
    const lifeguard::DispatchStats& dispatchStats() const
    {
        return dispatch_.stats();
    }

    const compress::LogCompressor& compressor() const
    {
        return compressor_;
    }

    lifeguard::Lifeguard& lifeguard() { return dispatch_.lifeguard(); }

  private:
    /** True when the filter drops this record. */
    bool filtered(const log::EventRecord& record) const;

    /** Push one record through buffer timing + dispatch. */
    void logRecord(const log::EventRecord& record);

    mem::CacheHierarchy& hierarchy_;
    LbaConfig config_;
    compress::LogCompressor compressor_;
    log::LogBuffer buffer_;
    lifeguard::DispatchEngine dispatch_;

    /** Application core clock. */
    Cycles app_time_ = 0;
    /** finish(i) of the most recently consumed record. */
    Cycles last_finish_ = 0;
    /** finish times of records still occupying buffer slots. */
    std::deque<Cycles> slot_finish_;
    /** Containment drain is applied before the next retirement. */
    bool pending_drain_ = false;
    /** Cycle at which the transport finishes delivering the last byte. */
    double transport_free_ = 0.0;

    stats::Summary consume_lag_;
    LbaRunStats stats_;
    bool finished_ = false;
};

} // namespace lba::core
