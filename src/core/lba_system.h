#pragma once
/**
 * @file
 * The dual-core LBA system (paper Figure 1): capture -> compress ->
 * log buffer -> decompress -> dispatch -> lifeguard, with decoupled
 * application/lifeguard cores coordinating only through the buffer.
 *
 * Timing model. Both cores are single-CPI in-order with the shared cache
 * hierarchy of mem::CacheHierarchy. Execution is driven by the
 * application's retirement stream; for every record i we compute
 *
 *   produce(i) = app core time after the instruction retires, delayed
 *                while the buffer is full (back-pressure stall);
 *   start(i)   = max(produce(i), finish(i-1));
 *   finish(i)  = start(i) + dispatch + handler cycles.
 *
 * The buffer slot for record i frees when record i-capacity finishes, so
 * a lifeguard that cannot keep up eventually stalls the application —
 * exactly the paper's decoupling semantics. Syscall containment stalls
 * the application at each syscall until the lifeguard has consumed every
 * record logged before it (Section 2).
 *
 * The value-prediction compressor runs over every logged record to
 * account transport bandwidth (< 1 byte/instruction claim); records are
 * handed to the dispatch engine functionally (the compressor's exact
 * invertibility is covered by tests and the compression benches).
 *
 * The recurrence itself lives in core::PipelineTimer (which also drives
 * the parallel system as its N-lane generalisation); LbaSystem is the
 * single-lane instantiation. docs/ARCHITECTURE.md walks this pipeline
 * and timing model in prose.
 */

#include "core/pipeline_timer.h"
#include "log/capture.h"

namespace lba::core {

/**
 * The LBA monitoring platform: a RetireObserver that owns the capture,
 * compression, buffering and dispatch pipeline for one lifeguard core.
 */
class LbaSystem : public sim::RetireObserver
{
  public:
    /**
     * @param lifeguard The lifeguard running on the lifeguard core.
     * @param hierarchy Shared cache hierarchy (needs >= 2 cores).
     * @param config    Platform configuration.
     */
    LbaSystem(lifeguard::Lifeguard& lifeguard,
              mem::CacheHierarchy& hierarchy, const LbaConfig& config = {});

    void onRetire(const sim::Retired& retired) override;
    void onOsEvent(const sim::OsEvent& event) override;

    /**
     * Complete the run: drain the pipeline and run the lifeguard's
     * end-of-program hook. Must be called exactly once, after run().
     */
    void finish();

    /** Statistics (valid after finish()). */
    const LbaRunStats& stats() const { return timer_.stats(); }

    /** Log-buffer occupancy statistics. */
    const log::LogBufferStats& bufferStats() const
    {
        return timer_.bufferStats(0);
    }

    /** Per-event-type dispatch statistics. */
    const lifeguard::DispatchStats& dispatchStats() const
    {
        return timer_.dispatchStats(0);
    }

    const compress::LogCompressor& compressor() const
    {
        return timer_.compressor();
    }

    lifeguard::Lifeguard& lifeguard() { return timer_.lifeguard(0); }

    /** The underlying timing engine (containment integration). */
    PipelineTimer& timer() { return timer_; }

  private:
    PipelineTimer timer_;
};

} // namespace lba::core
