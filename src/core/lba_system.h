#pragma once
/**
 * @file
 * The dual-core LBA system (paper Figure 1): capture -> compress ->
 * log buffer -> decompress -> dispatch -> lifeguard, with decoupled
 * application/lifeguard cores coordinating only through the buffer.
 *
 * Timing model. Both cores are single-CPI in-order with the shared cache
 * hierarchy of mem::CacheHierarchy. Execution is driven by the
 * application's retirement stream; for every record i we compute
 *
 *   produce(i) = app core time after the instruction retires, delayed
 *                while the buffer is full (back-pressure stall);
 *   start(i)   = max(produce(i), finish(i-1));
 *   finish(i)  = start(i) + dispatch + handler cycles.
 *
 * The buffer slot for record i frees when record i-capacity finishes, so
 * a lifeguard that cannot keep up eventually stalls the application —
 * exactly the paper's decoupling semantics. Syscall containment stalls
 * the application at each syscall until the lifeguard has consumed every
 * record logged before it (Section 2).
 *
 * The value-prediction compressor runs over every logged record to
 * account transport bandwidth (< 1 byte/instruction claim); records are
 * handed to the dispatch engine functionally (the compressor's exact
 * invertibility is covered by tests and the compression benches).
 *
 * The recurrence itself lives in core::PipelineTimer (which also drives
 * the parallel system as its N-lane generalisation); LbaSystem is the
 * single-lane instantiation. docs/ARCHITECTURE.md walks this pipeline
 * and timing model in prose.
 */

#include "core/pipeline_timer.h"
#include "log/capture.h"

namespace lba::core {

/**
 * The LBA monitoring platform: a RetireObserver that owns the capture,
 * compression, buffering and dispatch pipeline for one lifeguard core.
 */
class LbaSystem : public sim::RetireObserver
{
  public:
    /**
     * @param lifeguard The lifeguard running on the lifeguard core.
     * @param hierarchy Shared cache hierarchy (needs >= 2 cores).
     * @param config    Platform configuration.
     */
    LbaSystem(lifeguard::Lifeguard& lifeguard,
              mem::CacheHierarchy& hierarchy, const LbaConfig& config = {});

    // The retire stream must stay on the thread that built the system
    // (the coordinator); the timer underneath asserts it at runtime,
    // these annotations say it statically. The sim::RetireObserver
    // base is role-agnostic, so base-pointer dispatch is vouched for
    // by the run() drivers, which assume the role once up front.
    void onRetire(const sim::Retired& retired) override
        LBA_COORDINATOR_ONLY;
    void onOsEvent(const sim::OsEvent& event) override
        LBA_COORDINATOR_ONLY;

    /**
     * Complete the run: drain the pipeline and run the lifeguard's
     * end-of-program hook. Must be called exactly once, after run().
     */
    void finish() LBA_COORDINATOR_ONLY;

    /** Statistics (valid after finish()). */
    const LbaRunStats&
    stats() const LBA_COORDINATOR_ONLY
    {
        return timer_.stats();
    }

    /** Log-buffer occupancy statistics (quiescent-read snapshot). */
    log::LogBufferStats bufferStats() const
    {
        return timer_.bufferStats(0);
    }

    /** Per-event-type dispatch statistics (quiescent-read snapshot). */
    lifeguard::DispatchStats
    dispatchStats() const LBA_COORDINATOR_ONLY
    {
        return timer_.dispatchStats(0);
    }

    /** The run's log-stream encoder (LbaConfig::codec instance). */
    const compress::Encoder& encoder() const
    {
        return timer_.encoder();
    }

    lifeguard::Lifeguard&
    lifeguard() LBA_COORDINATOR_ONLY
    {
        return timer_.lifeguard(0);
    }

    /** The underlying timing engine (containment integration). */
    PipelineTimer& timer() { return timer_; }

  private:
    PipelineTimer timer_;
};

} // namespace lba::core
