#pragma once
/**
 * @file
 * The shared LBA timing engine: one implementation of the
 * produce/start/finish recurrence used by the serial (LbaSystem), the
 * parallel (ParallelLbaSystem) and the multi-tenant (sched::LifeguardPool)
 * platforms.
 *
 * A PipelineTimer owns one or more *lanes*. Each lane models one
 * lifeguard core with its own dispatch engine, its own bounded log
 * buffer, and its own bandwidth-limited transport link. For every record
 * delivered to lane L we compute
 *
 *   produce(i)   = app core time after the instruction retires, delayed
 *                  while any target lane's buffer is full (back-pressure);
 *   deliver(i,L) = first cycle at or after the record's last (compressed)
 *                  byte has crossed lane L's transport (ceiling — a record
 *                  is never consumed before its bytes have arrived);
 *   start(i,L)   = max(deliver(i,L), finish(i-1,L));
 *   finish(i,L)  = start(i,L) + dispatch + handler cycles.
 *
 * The lane-L buffer slot for record i frees when the lane's record
 * i-capacity finishes, so a lifeguard that cannot keep up eventually
 * stalls the application. Syscall containment stalls the application at
 * the first retirement after a syscall until every record the application
 * logged so far has been consumed — including the annotation records the
 * syscall itself emitted.
 *
 * With a single lane this is exactly the paper's dual-core recurrence
 * (core/lba_system.h); with N lanes it is the parallel-lifeguard
 * extension (core/parallel.h). The serial system is the lane-count-1
 * special case by construction, which the shards=1 differential tests
 * assert cycle-for-cycle.
 *
 * Dispatch tiers (LbaConfig::dispatch_tier). The recurrence above is
 * *what* is computed; the tier changes only *how* (and when) the host
 * computes it. kPerRecord consumes each record as it is logged through
 * the lifeguard's virtual handleEvent (the micro_dispatch baseline).
 * kBatched (the default) queues records as they are logged and drains
 * them at the next flush boundary — the following retirement (before
 * its drain check and cache accesses), a containment drain, a
 * slot-reservation squeeze, or end of run — first running every queued
 * handler in arrival order through the lifeguards' handler tables
 * (DispatchEngine::consumeBatch), then folding the per-record costs
 * into the recurrence in the same order. Because every flush boundary
 * precedes the next application-core cache access, the shared-L2
 * access interleaving is exactly the per-record path's, making the
 * tiers cycle-identical (tests/dispatch_batch_test.cpp) while the host
 * pays table dispatch instead of a virtual call per record. kFused
 * drains the same flush batches through each lifeguard's *compiled*
 * handler IR (lifeguard/compiler.h): same-event-type runs execute in
 * specialized loops with the shadow cost accounting inlined — no
 * virtual call, no per-record table lookup — and lifeguards without an
 * IR description fall back to kBatched per engine, transparently
 * (tests/dispatch_fused_test.cpp asserts the three-way cycle
 * identity).
 *
 * Threaded execution (LbaConfig::execution = kThreaded). Handlers run
 * on real host threads — one worker per lane (ThreadedExecutor) — and
 * every simulated cycle count stays bit-identical to serial execution.
 * The flush splits in two: phase 1 fans the queued per-engine runs out
 * to the workers, which execute handlers against their lifeguards'
 * private state while *recording* costs (instruction counts and the
 * ordered metadata accesses) into DeferredBatch scratch instead of
 * charging the shared cache hierarchy; phase 2, back on the
 * coordinating thread after the round barrier, replays the recorded
 * accesses through the hierarchy in global arrival order — the exact
 * interleaving the serial flush charges — and folds the costs into the
 * recurrence. Flush boundaries are therefore cross-thread barriers;
 * between them, only workers touch lifeguard state and only the
 * coordinator touches the timer. tests/threaded_test.cpp asserts the
 * cycle identity across serial/shards/pool/containment configurations;
 * docs/ARCHITECTURE.md "Threaded execution" gives the full argument.
 *
 * Multi-tenant generalisation (src/sched/). The timer also supports
 * multiple *producers*: independent monitored applications, each with its
 * own application-core clock, log stream (compressor), back-pressure and
 * containment state. Lanes are shared — records from different producers
 * serialize on each lane's clock, which is how lifeguard capacity becomes
 * a scheduled resource. In this mode the caller supplies the dispatch
 * engine per delivery (a lane context-switches between tenants' lifeguard
 * shards), so lanes are constructed without intrinsic lifeguards. With
 * one producer whose targets are the identity shard->lane map, the
 * recurrence is bit-for-bit the single-producer engine, which the
 * one-tenant differential tests in tests/sched_test.cpp assert.
 */

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "compress/registry.h"
#include "core/threaded_executor.h"
#include "lifeguard/dispatch.h"
#include "log/log_buffer.h"
#include "mem/hierarchy.h"
#include "sim/process.h"
#include "stats/counter.h"

namespace lba::core {

/**
 * How the host executes lifeguard handlers. Simulated timing is
 * identical either way (the mode changes host threads, not the model);
 * kThreaded requires a batching dispatch tier (kBatched or kFused),
 * whose flush boundaries are the cross-thread barriers.
 */
enum class ExecutionMode
{
    /** Everything on the calling thread (the reference). */
    kSerial,
    /** One host worker thread per lane (see the file comment). */
    kThreaded,
};

/**
 * How the host dispatches records to lifeguard handlers. Simulated
 * timing is identical across tiers (asserted by
 * tests/dispatch_batch_test.cpp and tests/dispatch_fused_test.cpp);
 * the tier trades host-side dispatch overhead, not model fidelity.
 */
enum class DispatchTier
{
    /** Consume each record as it is logged, through the lifeguard's
     *  virtual handleEvent (the micro_dispatch baseline). */
    kPerRecord,
    /** Queue and drain at flush boundaries through the handler table
     *  (DispatchEngine::consumeBatch). The default. */
    kBatched,
    /** Queue and drain through the compiled handler IR
     *  (DispatchEngine::consumeBatchFused): specialized loops over
     *  same-event-type runs, no virtual call or table lookup. Engines
     *  whose lifeguard has no IR description fall back to kBatched. */
    kFused,
};

/** LBA platform configuration (shared by the serial and parallel systems). */
struct LbaConfig
{
    /** Log buffer capacity, in records (per lane). */
    std::size_t buffer_capacity = 64 * 1024;
    /** Application core index. */
    unsigned app_core = 0;
    /**
     * Dispatch configuration. `dispatch.core` is the first lifeguard
     * core; lane L of a multi-lane timer consumes on core
     * `dispatch.core + L`.
     */
    lifeguard::DispatchConfig dispatch{1, 1};
    /** Stall syscalls until the log drains (error containment). */
    bool syscall_stall = true;
    /** Run the compressor for bandwidth accounting. */
    bool compress = true;
    /**
     * Registered codec encoding each producer's log stream for the
     * bandwidth accounting (compress::CodecRegistry). The default,
     * "predictor", is the paper's value-prediction compressor;
     * alternatives trade ratio for host encode cost. Must name a
     * registered codec.
     */
    std::string codec = compress::kDefaultCodec;
    /** Address-range record filter (paper Section 3 future work). */
    bool filter_enabled = false;
    Addr filter_base = 0;
    std::uint64_t filter_bytes = 0;
    /**
     * Log-transport bandwidth in bytes/cycle through the cache
     * hierarchy (0 = unlimited), per lane. With a finite bandwidth, a
     * record can only be consumed once its (compressed) bytes have
     * crossed the transport — this is where the < 1 byte/instruction
     * compression pays off (paper Section 2: compression "reduce[s] the
     * bandwidth pressure and buffer requirements on the log transport
     * medium").
     */
    double transport_bytes_per_cycle = 0.0;
    /** Record size on the transport when compression is disabled. */
    unsigned raw_record_bytes = 24;
    /**
     * Dispatch tier (see DispatchTier and the file comment). The
     * batching tiers (kBatched, kFused) queue records as they are
     * logged and drain them at the next flush boundary: the following
     * retirement, a containment drain, a slot-reservation squeeze, or
     * end of run. Every flush boundary precedes the next
     * application-core cache access, so the cache-access interleaving —
     * and therefore every cycle count — is identical to the kPerRecord
     * path (asserted by tests/dispatch_batch_test.cpp and
     * tests/dispatch_fused_test.cpp).
     */
    DispatchTier dispatch_tier = DispatchTier::kBatched;
    /**
     * Host execution mode (kThreaded = one worker thread per lane,
     * cycle-identical to kSerial; see the file comment). Threaded
     * execution requires a batching dispatch tier.
     */
    ExecutionMode execution = ExecutionMode::kSerial;
};

/**
 * Per-lane overrides for heterogeneous pools: a lane may have its own
 * buffer size and transport bandwidth (e.g. one fat lane plus several
 * thin ones). Values <= 0 inherit the LbaConfig-wide setting.
 */
struct LaneLimits
{
    /** Log buffer capacity in records (0 = LbaConfig::buffer_capacity). */
    std::size_t buffer_capacity = 0;
    /** Transport bytes/cycle (< 0 = LbaConfig value; 0 = unlimited). */
    double transport_bytes_per_cycle = -1.0;
};

/** Timing/traffic statistics of one LBA run (aggregated over lanes). */
struct LbaRunStats
{
    std::uint64_t app_instructions = 0;
    std::uint64_t records_logged = 0;
    std::uint64_t records_filtered = 0;
    Cycles total_cycles = 0;
    /** The application's own execution cycles (CPI + cache penalties). */
    Cycles app_cycles = 0;
    /** Cycles the application stalled on a full log buffer. */
    Cycles backpressure_stall_cycles = 0;
    /** Cycles the application stalled draining the log at syscalls. */
    Cycles syscall_stall_cycles = 0;
    /** Cycles lifeguard cores spent consuming records (summed). */
    Cycles lifeguard_busy_cycles = 0;
    /** Compressed log size, bytes per logged record. */
    double bytes_per_record = 0.0;
    /** Codec that produced bytes_per_record/transport_bytes (the
     *  LbaConfig::codec of the run; set by seal()). */
    std::string codec;
    /** Mean cycles between record production and consumption start. */
    double mean_consume_lag = 0.0;
    /** Number of syscalls that triggered a containment drain. */
    std::uint64_t syscall_drains = 0;
    /** Total bytes pushed onto the log transport (per-lane sum). */
    double transport_bytes = 0.0;
    /** Cycles consumption waited on transport bandwidth (per-lane sum). */
    Cycles transport_wait_cycles = 0;
    /**
     * Cycles the application spent on containment work: draining the
     * lanes for interval checkpoints and rewinds, and replaying undo
     * logs after a rewind (src/replay/containment.h). Zero when
     * containment is off or never triggered.
     */
    Cycles containment_cycles = 0;
};

/**
 * The shared timing engine. Owns the per-producer compressors, the
 * per-lane buffers and dispatch engines, and the application-core
 * clocks; the systems on top only decide routing (which lane a record
 * goes to).
 */
class PipelineTimer
{
  public:
    /** Lane index meaning "deliver to every lane". */
    static constexpr unsigned kBroadcast = ~0u;

    /** One delivery target of a multi-tenant record: the physical lane
     *  that serializes it and the dispatch engine (tenant lifeguard
     *  shard context) that consumes it. */
    struct Target
    {
        unsigned lane = 0;
        lifeguard::DispatchEngine* engine = nullptr;
    };

    /** Observes every consumed record (multi-tenant stats hook). */
    using ConsumeObserver = std::function<void(
        unsigned producer, unsigned lane, const log::EventRecord& record,
        Cycles lag, Cycles cost, double bytes)>;

    /**
     * Intrinsic-dispatch mode: one lifeguard per lane, as used by the
     * serial and parallel systems.
     *
     * @param hierarchy   Shared cache hierarchy; needs a core for the
     *                    application plus one per lane.
     * @param config      Platform configuration (see LbaConfig).
     * @param lifeguards  One lifeguard per lane (not owned; must outlive
     *                    the timer).
     * @param lane_limits Optional per-lane overrides (empty = uniform).
     */
    PipelineTimer(mem::CacheHierarchy& hierarchy, const LbaConfig& config,
                  const std::vector<lifeguard::Lifeguard*>& lifeguards,
                  const std::vector<LaneLimits>& lane_limits = {});

    /**
     * External-dispatch mode (multi-tenant pools): @p nlanes lanes with
     * no intrinsic lifeguard; every log() call must carry the dispatch
     * engine consuming on the target lane.
     */
    PipelineTimer(mem::CacheHierarchy& hierarchy, const LbaConfig& config,
                  unsigned nlanes,
                  const std::vector<LaneLimits>& lane_limits = {});

    /**
     * Register one more producer (monitored application) with its own
     * clock, compressor, back-pressure and containment state. Producer 0
     * always exists, on config.app_core.
     * @return The new producer's index.
     */
    unsigned addProducer(unsigned app_core) LBA_COORDINATOR_ONLY;

    /**
     * Account one retirement on @p producer's application core: apply
     * any pending syscall-containment drain, then charge fetch/memory
     * cost.
     */
    void retire(unsigned producer, const sim::Retired& retired)
        LBA_COORDINATOR_ONLY;
    void
    retire(const sim::Retired& retired) LBA_COORDINATOR_ONLY
    {
        retire(0, retired);
    }

    /**
     * Deliver one record to @p lane (or every lane with kBroadcast):
     * filtering, compression accounting, back-pressure, transport and
     * dispatch timing. Intrinsic-dispatch mode only.
     * @return False when the filter dropped the record.
     */
    bool log(const log::EventRecord& record, unsigned lane)
        LBA_COORDINATOR_ONLY;

    /**
     * Deliver one record of @p producer to each target in order
     * (external-dispatch mode). All target slots are reserved before any
     * consumption, so produce(i) reflects the slowest target lane; a
     * lane may appear more than once when several lifeguard shards fold
     * onto it.
     * @return False when the filter dropped the record.
     */
    bool log(unsigned producer, const log::EventRecord& record,
             const std::vector<Target>& targets) LBA_COORDINATOR_ONLY;

    /**
     * Arm the containment drain: @p producer stalls at its next
     * retirement until every record it has logged so far has been
     * consumed. No-op unless config.syscall_stall.
     */
    void noteSyscall(unsigned producer = 0) LBA_COORDINATOR_ONLY;

    /**
     * Immediately stall @p producer until every record it has logged so
     * far has been consumed on every lane it targeted — the multi-lane
     * coordination a consistent rewind point needs (all lanes drained
     * means the lifeguards have checked everything up to here). The
     * stall lands on the producer's clock as containment cycles.
     * @return The stall applied (0 when the lanes were already ahead).
     */
    Cycles drainProducer(unsigned producer) LBA_COORDINATOR_ONLY;

    /**
     * Charge @p cycles of containment work (undo-log replay, pipeline
     * flush on rewind) to @p producer's application clock.
     */
    void chargeContainment(unsigned producer, Cycles cycles)
        LBA_COORDINATOR_ONLY;

    /**
     * Drain the deferred batched-dispatch queue now (no-op on the
     * per-record path and at every natural flush boundary). External
     * drivers call this before inspecting mid-run lifeguard state —
     * e.g. the containment manager before checking findings, and the
     * pool at slice boundaries so scheduling sees up-to-date lag.
     */
    void
    sync() LBA_COORDINATOR_ONLY
    {
        assertCoordinator();
        flushPending();
    }

    /** The shared cache hierarchy (rewind cost modelling). */
    mem::CacheHierarchy& hierarchy() { return hierarchy_; }

    /** The application core @p producer retires on. */
    unsigned producerCore(unsigned producer) const;

    /**
     * Complete an intrinsic-dispatch run: run each lane's end-of-program
     * hook after the application has exited and the lane has drained,
     * charge it to that lane, and seal the aggregate stats. Call exactly
     * once.
     */
    void finishAll() LBA_COORDINATOR_ONLY;

    /**
     * External-dispatch end-of-program hook: run @p engine's finish pass
     * once @p producer's application has exited and @p lane has drained;
     * the cost lands on that lane's clock.
     * @return The lane's new last-finish time.
     */
    Cycles finishShard(unsigned producer, unsigned lane,
                       lifeguard::DispatchEngine& engine)
        LBA_COORDINATOR_ONLY;

    /**
     * Seal the aggregate and per-producer statistics after every
     * finishShard() call. finishAll() = per-lane finishShard + seal().
     * Call exactly once.
     */
    void seal() LBA_COORDINATOR_ONLY;

    /** Aggregate statistics (totals valid after finishAll()/seal()).
     *  Flushes deferred dispatch first, hence coordinator-only (as is
     *  every accessor below that syncs). */
    const LbaRunStats&
    stats() const LBA_COORDINATOR_ONLY
    {
        syncConst();
        return stats_;
    }

    /**
     * One producer's slice of the run: its own app/stall cycles, its
     * records, its log stream's bytes-per-record, its consume lag, and
     * (after seal()) its completion time in total_cycles.
     */
    const LbaRunStats& producerStats(unsigned producer) const
        LBA_COORDINATOR_ONLY;

    /** Current app-core clock of @p producer. */
    Cycles producerTime(unsigned producer) const;

    unsigned producers() const
    {
        return static_cast<unsigned>(producers_.size());
    }

    unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }

    /** Install a per-consumed-record observer (nullptr to remove). */
    void setConsumeObserver(ConsumeObserver observer)
    {
        consume_observer_ = std::move(observer);
    }

    /** Quiescent-read snapshots (by value: the underlying counters
     *  live in side-owned structs; see LogBufferStats/DispatchStats). */
    log::LogBufferStats bufferStats(unsigned lane) const;
    lifeguard::DispatchStats dispatchStats(unsigned lane) const
        LBA_COORDINATOR_ONLY;
    lifeguard::Lifeguard& lifeguard(unsigned lane) const
        LBA_COORDINATOR_ONLY;

    /** Lane clock: finish time of the lane's last consumed record. */
    Cycles laneLastFinish(unsigned lane) const LBA_COORDINATOR_ONLY;
    /** Cycles the lane's core spent consuming (and finishing). */
    Cycles laneBusyCycles(unsigned lane) const LBA_COORDINATOR_ONLY;
    /** Records this lane consumed (broadcasts count in every lane). */
    std::uint64_t laneRecords(unsigned lane) const LBA_COORDINATOR_ONLY;
    /** Mean produce-to-consume lag of this lane's records. */
    double laneMeanConsumeLag(unsigned lane) const LBA_COORDINATOR_ONLY;
    /** Bytes that crossed this lane's transport link. */
    double laneTransportBytes(unsigned lane) const LBA_COORDINATOR_ONLY;
    /** Cycles this lane's consumption waited on its transport. */
    Cycles laneTransportWaitCycles(unsigned lane) const
        LBA_COORDINATOR_ONLY;

    /** Producer 0's log-stream encoder (single-app runs). */
    const compress::Encoder& encoder() const
    {
        return *producers_.front().encoder;
    }

  private:
    struct Lane
    {
        lifeguard::Lifeguard* lifeguard = nullptr;
        std::unique_ptr<lifeguard::DispatchEngine> dispatch;
        log::LogBuffer buffer;
        /** finish times of records still occupying buffer slots. */
        std::deque<Cycles> slot_finish;
        /** finish(i-1) of this lane's most recent record. */
        Cycles last_finish = 0;
        /** Cycle at which the lane transport delivers its last byte. */
        double transport_free = 0.0;
        /** This lane's transport bandwidth (0 = unlimited). */
        double bytes_per_cycle = 0.0;
        /** Cycles this lane's core spent consuming and finishing. */
        Cycles busy_cycles = 0;
        stats::Summary consume_lag;
        double transport_bytes = 0.0;
        Cycles transport_wait_cycles = 0;
        std::uint64_t records = 0;
        /** Records queued for batched dispatch but not yet consumed. */
        std::size_t pending = 0;

        explicit Lane(std::size_t capacity) : buffer(capacity) {}
    };

    /** One monitored application feeding the shared lanes. */
    struct Producer
    {
        unsigned app_core = 0;
        /** Application core clock. */
        Cycles app_time = 0;
        /** Containment drain is applied before the next retirement. */
        bool pending_drain = false;
        /** Latest finish time over this producer's consumed records. */
        Cycles drain_clock = 0;
        /** This producer's log stream (per-tenant codec state, built
         *  from LbaConfig::codec by the registry). */
        std::unique_ptr<compress::Encoder> encoder;
        stats::Summary consume_lag;
        LbaRunStats stats;
    };

    /** Shared lane construction for both constructor modes (the
     *  constructing thread is the coordinator by definition; the
     *  constructors assume the role before calling in). */
    void buildLanes(unsigned nlanes,
                    const std::vector<lifeguard::Lifeguard*>& lifeguards,
                    const std::vector<LaneLimits>& lane_limits)
        LBA_COORDINATOR_ONLY;

    /** Build a fresh per-producer encoder from LbaConfig::codec. */
    std::unique_ptr<compress::Encoder> makeEncoder() const;

    /** True when the filter drops this record. */
    bool filtered(const log::EventRecord& record) const;

    /** Bytes this record costs on a transport link. */
    double transportCost(Producer& producer,
                         const log::EventRecord& record);

    /** Free @p needed slots in @p lane, stalling @p producer if
     *  needed. */
    void reserveSlots(Producer& producer, Lane& lane,
                      std::size_t needed) LBA_COORDINATOR_ONLY;

    /**
     * Deliver one record to one lane: push it into the lane buffer,
     * then either consume it immediately (per-record path) or queue it
     * for the next batched flush.
     */
    void consumeOn(Producer& producer, Lane& lane,
                   lifeguard::DispatchEngine& engine,
                   const log::EventRecord& record, Cycles produced_at,
                   double record_bytes) LBA_COORDINATOR_ONLY;

    /**
     * Fold one consumed record's @p cost into the timing recurrence:
     * transport delivery, start/finish, lag and busy accounting, slot
     * bookkeeping, and the consume observer.
     */
    void applyRecordTiming(Producer& producer, Lane& lane,
                           const log::EventRecord& record,
                           Cycles produced_at, double record_bytes,
                           Cycles cost) LBA_COORDINATOR_ONLY;

    /**
     * Drain the deferred dispatch queue: run every queued handler in
     * arrival order (batched per engine run), then apply the timing
     * recurrence per record in the same order.
     */
    void flushPending() LBA_COORDINATOR_ONLY;

    /**
     * Threaded phase 1: fan the first @p n queued records out to the
     * worker threads as per-engine runs, barrier on the round, then
     * replay the recorded costs through the shared hierarchy in global
     * arrival order, filling pending_costs_[0, n).
     */
    void runPendingThreaded(std::size_t n) LBA_COORDINATOR_ONLY;

    /** Threaded mode confines the timer to the thread that built it:
     *  every mutating entry point asserts it (the mid-run-read guard
     *  the TSan CI job backs up). No-op in serial mode. The
     *  ASSERT_CAPABILITY is the static twin of the runtime trap: a
     *  passed check *proves* the coordinator role to the analysis —
     *  tools/lba_lint.py keeps the two in lockstep. */
    void
    assertCoordinator() const
        LBA_ASSERT_CAPABILITY(::lba::threading::coordinator_role)
    {
        LBA_ASSERT(!executor_ ||
                       std::this_thread::get_id() == coordinator_,
                   "PipelineTimer used off the coordinating thread");
    }

    /** flushPending() from a const accessor: catching up lazily-
     *  deferred state does not change observable results. */
    void
    syncConst() const LBA_COORDINATOR_ONLY
    {
        const_cast<PipelineTimer*>(this)->flushPending();
    }

    /** Shared filtering + compression prologue of both log() variants. */
    bool admitRecord(Producer& producer, const log::EventRecord& record,
                     double* record_bytes) LBA_COORDINATOR_ONLY;

    mem::CacheHierarchy& hierarchy_;
    LbaConfig config_;
    std::vector<Lane> lanes_;
    std::vector<Producer> producers_;

    /** Scratch: per-lane slot demand of one multi-target record. */
    std::vector<std::pair<unsigned, std::size_t>> lane_demand_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);

    /** Deferred batched dispatch: records awaiting consumption, in
     *  arrival order (contiguous so engine runs batch directly). */
    std::vector<log::EventRecord> pending_records_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    /** Per-record routing/timing inputs parallel to pending_records_. */
    struct PendingMeta
    {
        unsigned producer = 0;
        unsigned lane = 0;
        lifeguard::DispatchEngine* engine = nullptr;
        Cycles produced_at = 0;
        double bytes = 0.0;
    };
    std::vector<PendingMeta> pending_meta_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    /** Scratch: per-record handler costs of one flush. */
    std::vector<Cycles> pending_costs_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    /** Threaded mode only: the worker pool (null in serial mode).
     *  The pointer is read by assertCoordinator() from any thread (a
     *  stale read can only soften a trap into a pass for a timer
     *  mid-construction, which no correct program observes); the
     *  executor itself is driven by the coordinator alone. */
    std::unique_ptr<ThreadedExecutor> executor_
        LBA_PT_GUARDED_BY(::lba::threading::coordinator_role);
    /** Scratch: one deferred-cost batch per engine run of one flush
     *  (address-stable from enqueue to replay — resized up front). */
    std::vector<lifeguard::DeferredBatch> batch_scratch_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    /** The thread the timer was built on (threaded-mode guard). */
    std::thread::id coordinator_;
    /** Re-entrancy guard: a flush is in progress (observer callbacks
     *  may reach a syncing accessor). */
    bool flushing_ LBA_GUARDED_BY(::lba::threading::coordinator_role) =
        false;

    ConsumeObserver consume_observer_;
    stats::Summary consume_lag_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    LbaRunStats stats_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    bool finished_ LBA_GUARDED_BY(::lba::threading::coordinator_role) =
        false;
};

} // namespace lba::core
