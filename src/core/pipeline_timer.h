#pragma once
/**
 * @file
 * The shared LBA timing engine: one implementation of the
 * produce/start/finish recurrence used by both the serial (LbaSystem)
 * and the parallel (ParallelLbaSystem) platforms.
 *
 * A PipelineTimer owns one or more *lanes*. Each lane models one
 * lifeguard core with its own dispatch engine, its own bounded log
 * buffer, and its own bandwidth-limited transport link. For every record
 * delivered to lane L we compute
 *
 *   produce(i)   = app core time after the instruction retires, delayed
 *                  while any target lane's buffer is full (back-pressure);
 *   deliver(i,L) = first cycle at or after the record's last (compressed)
 *                  byte has crossed lane L's transport (ceiling — a record
 *                  is never consumed before its bytes have arrived);
 *   start(i,L)   = max(deliver(i,L), finish(i-1,L));
 *   finish(i,L)  = start(i,L) + dispatch + handler cycles.
 *
 * The lane-L buffer slot for record i frees when the lane's record
 * i-capacity finishes, so a lifeguard that cannot keep up eventually
 * stalls the application. Syscall containment stalls the application at
 * the first retirement after a syscall until *every* lane has consumed
 * every record logged so far — including the annotation records the
 * syscall itself emitted.
 *
 * With a single lane this is exactly the paper's dual-core recurrence
 * (core/lba_system.h); with N lanes it is the parallel-lifeguard
 * extension (core/parallel.h). The serial system is the lane-count-1
 * special case by construction, which the shards=1 differential tests
 * assert cycle-for-cycle.
 */

#include <deque>
#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "lifeguard/dispatch.h"
#include "log/log_buffer.h"
#include "mem/hierarchy.h"
#include "sim/process.h"
#include "stats/counter.h"

namespace lba::core {

/** LBA platform configuration (shared by the serial and parallel systems). */
struct LbaConfig
{
    /** Log buffer capacity, in records (per lane). */
    std::size_t buffer_capacity = 64 * 1024;
    /** Application core index. */
    unsigned app_core = 0;
    /**
     * Dispatch configuration. `dispatch.core` is the first lifeguard
     * core; lane L of a multi-lane timer consumes on core
     * `dispatch.core + L`.
     */
    lifeguard::DispatchConfig dispatch{1, 1};
    /** Stall syscalls until the log drains (error containment). */
    bool syscall_stall = true;
    /** Run the compressor for bandwidth accounting. */
    bool compress = true;
    /** Address-range record filter (paper Section 3 future work). */
    bool filter_enabled = false;
    Addr filter_base = 0;
    std::uint64_t filter_bytes = 0;
    /**
     * Log-transport bandwidth in bytes/cycle through the cache
     * hierarchy (0 = unlimited), per lane. With a finite bandwidth, a
     * record can only be consumed once its (compressed) bytes have
     * crossed the transport — this is where the < 1 byte/instruction
     * compression pays off (paper Section 2: compression "reduce[s] the
     * bandwidth pressure and buffer requirements on the log transport
     * medium").
     */
    double transport_bytes_per_cycle = 0.0;
    /** Record size on the transport when compression is disabled. */
    unsigned raw_record_bytes = 24;
};

/** Timing/traffic statistics of one LBA run (aggregated over lanes). */
struct LbaRunStats
{
    std::uint64_t app_instructions = 0;
    std::uint64_t records_logged = 0;
    std::uint64_t records_filtered = 0;
    Cycles total_cycles = 0;
    /** The application's own execution cycles (CPI + cache penalties). */
    Cycles app_cycles = 0;
    /** Cycles the application stalled on a full log buffer. */
    Cycles backpressure_stall_cycles = 0;
    /** Cycles the application stalled draining the log at syscalls. */
    Cycles syscall_stall_cycles = 0;
    /** Cycles lifeguard cores spent consuming records (summed). */
    Cycles lifeguard_busy_cycles = 0;
    /** Compressed log size, bytes per logged record. */
    double bytes_per_record = 0.0;
    /** Mean cycles between record production and consumption start. */
    double mean_consume_lag = 0.0;
    /** Number of syscalls that triggered a containment drain. */
    std::uint64_t syscall_drains = 0;
    /** Total bytes pushed onto the log transport (per-lane sum). */
    double transport_bytes = 0.0;
    /** Cycles consumption waited on transport bandwidth (per-lane sum). */
    Cycles transport_wait_cycles = 0;
};

/**
 * The shared timing engine. Owns the compressor, the per-lane buffers
 * and dispatch engines, and the application-core clock; the systems on
 * top only decide routing (which lane a record goes to).
 */
class PipelineTimer
{
  public:
    /** Lane index meaning "deliver to every lane". */
    static constexpr unsigned kBroadcast = ~0u;

    /**
     * @param hierarchy  Shared cache hierarchy; needs a core for the
     *                   application plus one per lane.
     * @param config     Platform configuration (see LbaConfig).
     * @param lifeguards One lifeguard per lane (not owned; must outlive
     *                   the timer).
     */
    PipelineTimer(mem::CacheHierarchy& hierarchy, const LbaConfig& config,
                  const std::vector<lifeguard::Lifeguard*>& lifeguards);

    /**
     * Account one retirement on the application core: apply any pending
     * syscall-containment drain, then charge fetch/memory cost.
     */
    void retire(const sim::Retired& retired);

    /**
     * Deliver one record to @p lane (or every lane with kBroadcast):
     * filtering, compression accounting, back-pressure, transport and
     * dispatch timing.
     * @return False when the filter dropped the record.
     */
    bool log(const log::EventRecord& record, unsigned lane);

    /**
     * Arm the containment drain: the application stalls at its next
     * retirement until every lane has consumed all records logged so
     * far. No-op unless config.syscall_stall.
     */
    void noteSyscall();

    /**
     * Complete the run: run each lane's end-of-program hook after the
     * application has exited and the lane has drained, charge it to
     * that lane, and seal the aggregate stats. Call exactly once.
     */
    void finishAll();

    /** Aggregate statistics (totals valid after finishAll()). */
    const LbaRunStats& stats() const { return stats_; }

    unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }

    const log::LogBufferStats& bufferStats(unsigned lane) const;
    const lifeguard::DispatchStats& dispatchStats(unsigned lane) const;
    lifeguard::Lifeguard& lifeguard(unsigned lane) const;

    /** Lane clock: finish time of the lane's last consumed record. */
    Cycles laneLastFinish(unsigned lane) const;
    /** Cycles the lane's core spent consuming (and finishing). */
    Cycles laneBusyCycles(unsigned lane) const;
    /** Records this lane consumed (broadcasts count in every lane). */
    std::uint64_t laneRecords(unsigned lane) const;
    /** Mean produce-to-consume lag of this lane's records. */
    double laneMeanConsumeLag(unsigned lane) const;
    /** Bytes that crossed this lane's transport link. */
    double laneTransportBytes(unsigned lane) const;
    /** Cycles this lane's consumption waited on its transport. */
    Cycles laneTransportWaitCycles(unsigned lane) const;

    const compress::LogCompressor& compressor() const
    {
        return compressor_;
    }

  private:
    struct Lane
    {
        lifeguard::Lifeguard* lifeguard = nullptr;
        std::unique_ptr<lifeguard::DispatchEngine> dispatch;
        log::LogBuffer buffer;
        /** finish times of records still occupying buffer slots. */
        std::deque<Cycles> slot_finish;
        /** finish(i-1) of this lane's most recent record. */
        Cycles last_finish = 0;
        /** Cycle at which the lane transport delivers its last byte. */
        double transport_free = 0.0;
        stats::Summary consume_lag;
        double transport_bytes = 0.0;
        Cycles transport_wait_cycles = 0;
        std::uint64_t records = 0;

        explicit Lane(std::size_t capacity) : buffer(capacity) {}
    };

    /** True when the filter drops this record. */
    bool filtered(const log::EventRecord& record) const;

    /** Bytes this record costs on a transport link. */
    double transportCost(const log::EventRecord& record);

    /** Free a slot in @p lane, stalling the app if needed. */
    void reserveSlot(Lane& lane);

    /** Run the recurrence for one record on one lane. */
    void consumeOn(Lane& lane, const log::EventRecord& record,
                   Cycles produced_at, double record_bytes);

    mem::CacheHierarchy& hierarchy_;
    LbaConfig config_;
    compress::LogCompressor compressor_;
    std::vector<Lane> lanes_;

    /** Application core clock. */
    Cycles app_time_ = 0;
    /** Containment drain is applied before the next retirement. */
    bool pending_drain_ = false;

    stats::Summary consume_lag_;
    LbaRunStats stats_;
    bool finished_ = false;
};

} // namespace lba::core
