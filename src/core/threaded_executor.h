#pragma once
/**
 * @file
 * Worker-thread pool for threaded execution
 * (LbaConfig::execution = ExecutionMode::kThreaded).
 *
 * One host thread per lifeguard lane. The coordinating thread (the one
 * driving PipelineTimer) stages batches of records onto workers with
 * enqueue(), then runs one *round* with dispatchRound(): every involved
 * worker executes its batches through
 * lifeguard::DispatchEngine::consumeBatchDeferred() — the functional
 * half of dispatch, against state private to that engine's lifeguard —
 * and the call returns once all of them are done. The timing half
 * (replayDeferred) stays on the coordinator, which is what keeps
 * simulated cycles bit-identical to serial execution; see
 * docs/ARCHITECTURE.md "Threaded execution".
 *
 * Barrier protocol. Each worker owns two monotonic counters:
 *
 *   publish — bumped by the coordinator (release) after it has written
 *             the worker's batch list; the worker's acquire load
 *             therefore sees a fully-written list.
 *   done    — set by the worker (release) to the publish value it just
 *             served, after executing and clearing the list; the
 *             coordinator's acquire load therefore sees every handler
 *             side effect of the round.
 *
 * The publish→done chain alternates strictly (the coordinator never
 * publishes round r+1 before observing done == r), so the batch list
 * and everything the handlers touch are always owned by exactly one
 * thread — no locks on the work itself. A mutex + condition variable
 * pair per worker exists only to sleep: both sides spin briefly
 * (yielding), then block, so the protocol is cheap when cores are
 * plentiful and fair when they are not (e.g. a 1-core host running a
 * 4-lane simulation). tests/threaded_test.cpp proves cycle identity
 * across the suite; the TSan CI job checks the ordering claims.
 *
 * Engine affinity: an engine is pinned to one worker at first sight
 * (hint = the lane it first appeared on) and never migrates. Pinning is
 * keyed on the engine's *lifeguard*, so two engines sharing a lifeguard
 * (if a platform ever folds shards that way) can never run concurrently.
 */

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "lifeguard/dispatch.h"
#include "log/event.h"

namespace lba::core {

/**
 * See the file comment. Coordinator-thread only, except workerLoop —
 * and the annotations now say so: the public round API is
 * LBA_COORDINATOR_ONLY, workerLoop is LBA_WORKER_ONLY, and the thread
 * entry lambda is the one place the worker role is assumed.
 */
class ThreadedExecutor
{
  public:
    /** Spawns @p nworkers threads (>= 1), idle until dispatchRound(). */
    explicit ThreadedExecutor(unsigned nworkers);

    /** Joins the workers (idempotent with stopAndJoin()). The
     *  destroying thread is the owning coordinator by construction —
     *  the one context where the role holds without a driver assume. */
    ~ThreadedExecutor();

    ThreadedExecutor(const ThreadedExecutor&) = delete;
    ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

    /** Pin @p engine's lifeguard to worker `hint % workers()` now,
     *  before any record flows (lane engines at construction). */
    void bind(lifeguard::DispatchEngine* engine, unsigned hint)
        LBA_COORDINATOR_ONLY;

    /**
     * Stage one batch for the next round on @p engine's worker
     * (pinning it with @p hint on first sight). @p records and @p out
     * must stay valid through the next dispatchRound(); batches of one
     * worker run in enqueue order, so staging runs in global arrival
     * order preserves per-engine record order. @p fused selects the
     * engine's fused deferred drain (dispatch tier three) instead of
     * the batched one; both capture into @p out for the same
     * coordinator-side replay.
     */
    void enqueue(lifeguard::DispatchEngine* engine, unsigned hint,
                 const log::EventRecord* records, std::size_t count,
                 lifeguard::DeferredBatch* out, bool fused = false)
        LBA_COORDINATOR_ONLY;

    /** Run every staged batch; returns when all workers are done (and
     *  their side effects are visible, per the publish→done chain). */
    void dispatchRound() LBA_COORDINATOR_ONLY;

    /** Stop and join the workers. Idempotent; implied by ~. */
    void stopAndJoin() LBA_COORDINATOR_ONLY;

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    /** One staged consumeBatch(Fused)Deferred() call. */
    struct Run
    {
        lifeguard::DispatchEngine* engine = nullptr;
        const log::EventRecord* records = nullptr;
        std::size_t count = 0;
        lifeguard::DeferredBatch* out = nullptr;
        /** Drain through the fused tier (see enqueue()). */
        bool fused = false;
    };

    struct Worker
    {
        std::thread thread;
        /** Rounds published to this worker (coordinator: release). */
        std::atomic<std::uint64_t> publish{0};
        /** Rounds completed by this worker (worker: release). */
        std::atomic<std::uint64_t> done{0};
        std::atomic<bool> stop{false};
        /** Batch list: coordinator-owned between rounds, worker-owned
         *  between its publish and done (see file comment). The
         *  handoff is the publish/done counter chain, which is beyond
         *  a GUARDED_BY — the TSan CI job covers what TSA cannot. */
        std::vector<Run> runs;
        /** Sleep support only; the data above is lock-free. */
        sync::Mutex mutex;
        sync::CondVar cv_work;
        sync::CondVar cv_done;
    };

    /** Worker-thread body; the entry lambda assumes the role. */
    void workerLoop(Worker& worker) LBA_WORKER_ONLY;

    /** Workers are address-stable (atomics are not movable). */
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Lifeguard -> worker pinning (see file comment). */
    std::unordered_map<const lifeguard::Lifeguard*, unsigned> binding_
        LBA_GUARDED_BY(::lba::threading::coordinator_role);
    bool joined_ LBA_GUARDED_BY(::lba::threading::coordinator_role) =
        false;
};

} // namespace lba::core
