/**
 * @file
 * Worker-thread pool implementation (see the header for the barrier
 * protocol and memory-order argument).
 */

#include "core/threaded_executor.h"

#include "common/assert.h"

namespace lba::core {

namespace {

/** Spin iterations (with yield) before falling back to the condition
 *  variable. Small: on an oversubscribed host the other side needs the
 *  core more than we need the latency. */
constexpr int kSpinRounds = 256;

} // namespace

ThreadedExecutor::ThreadedExecutor(unsigned nworkers)
{
    if (nworkers == 0) nworkers = 1;
    workers_.reserve(nworkers);
    for (unsigned i = 0; i < nworkers; ++i) {
        workers_.push_back(std::make_unique<Worker>());
    }
    for (auto& worker : workers_) {
        // The one place the worker role is established: this lambda IS
        // the worker thread's entry function.
        worker->thread = std::thread([this, w = worker.get()] {
            threading::assumeWorkerRole();
            workerLoop(*w);
        });
    }
}

ThreadedExecutor::~ThreadedExecutor()
{
    // The destroying thread owns the executor — it is the coordinator
    // by construction (PipelineTimer tears its lanes down on the
    // thread that built them; seal() already joined on that thread).
    threading::assumeCoordinatorRole();
    stopAndJoin();
}

void
ThreadedExecutor::stopAndJoin()
{
    if (joined_) return;
    joined_ = true;
    for (auto& worker : workers_) {
        {
            sync::MutexLock lock(worker->mutex);
            worker->stop.store(true, std::memory_order_release);
        }
        worker->cv_work.notify_one();
    }
    for (auto& worker : workers_) {
        worker->thread.join();
    }
}

void
ThreadedExecutor::bind(lifeguard::DispatchEngine* engine, unsigned hint)
{
    LBA_ASSERT(engine != nullptr, "cannot bind a null engine");
    binding_.emplace(&engine->lifeguard(),
                     hint % static_cast<unsigned>(workers_.size()));
}

void
ThreadedExecutor::enqueue(lifeguard::DispatchEngine* engine,
                          unsigned hint, const log::EventRecord* records,
                          std::size_t count,
                          lifeguard::DeferredBatch* out, bool fused)
{
    LBA_ASSERT(!joined_, "enqueue() after stopAndJoin()");
    auto [it, inserted] = binding_.emplace(
        &engine->lifeguard(),
        hint % static_cast<unsigned>(workers_.size()));
    Worker& worker = *workers_[it->second];
    // Between rounds the coordinator owns `runs` (the worker released
    // it through its `done` store, which dispatchRound() acquired).
    worker.runs.push_back({engine, records, count, out, fused});
}

void
ThreadedExecutor::dispatchRound()
{
    // Publish: one release store per involved worker, after its batch
    // list is fully written. The brief lock before notify closes the
    // race with a worker between its predicate check and its wait.
    for (auto& wp : workers_) {
        Worker& worker = *wp;
        if (worker.runs.empty()) continue;
        std::uint64_t round =
            worker.publish.load(std::memory_order_relaxed) + 1;
        {
            sync::MutexLock lock(worker.mutex);
            worker.publish.store(round, std::memory_order_release);
        }
        worker.cv_work.notify_one();
    }

    // Collect: acquire each worker's `done`, spinning briefly before
    // sleeping. After this loop every handler side effect of the round
    // happens-before the coordinator's next step (the timing replay).
    for (auto& wp : workers_) {
        Worker& worker = *wp;
        std::uint64_t target =
            worker.publish.load(std::memory_order_relaxed);
        if (worker.done.load(std::memory_order_acquire) == target) {
            continue;
        }
        for (int spin = 0; spin < kSpinRounds; ++spin) {
            if (worker.done.load(std::memory_order_acquire) == target) {
                break;
            }
            std::this_thread::yield();
        }
        if (worker.done.load(std::memory_order_acquire) != target) {
            sync::MutexLock lock(worker.mutex);
            worker.cv_done.wait(worker.mutex, [&] {
                return worker.done.load(std::memory_order_acquire) ==
                       target;
            });
        }
    }
}

void
ThreadedExecutor::workerLoop(Worker& worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Wait for a new round (publish != seen) or stop, spinning
        // briefly before sleeping on cv_work.
        bool ready = false;
        for (int spin = 0; spin < kSpinRounds && !ready; ++spin) {
            ready = worker.publish.load(std::memory_order_acquire) !=
                        seen ||
                    worker.stop.load(std::memory_order_acquire);
            if (!ready) std::this_thread::yield();
        }
        if (!ready) {
            sync::MutexLock lock(worker.mutex);
            worker.cv_work.wait(worker.mutex, [&] {
                return worker.publish.load(std::memory_order_acquire) !=
                           seen ||
                       worker.stop.load(std::memory_order_acquire);
            });
        }
        std::uint64_t target =
            worker.publish.load(std::memory_order_acquire);
        if (target == seen) break; // stop, nothing published

        // Execute this round's batches in enqueue (= global arrival)
        // order. This is the only place handler code runs off the
        // coordinator thread; every engine here is pinned to this
        // worker, so its lifeguard state is touched by one thread at a
        // time, ordered by the publish/done chain.
        for (const Run& run : worker.runs) {
            // This worker owns the engine's functional side for the
            // round: the engine is pinned here, and the publish/done
            // chain hands its lifeguard state over exclusively.
            run.engine->assumeFunctionalOwner();
            if (run.fused) {
                run.engine->consumeBatchFusedDeferred(
                    run.records, run.count, *run.out);
            } else {
                run.engine->consumeBatchDeferred(run.records, run.count,
                                                 *run.out);
            }
        }
        worker.runs.clear();
        seen = target;
        {
            sync::MutexLock lock(worker.mutex);
            worker.done.store(seen, std::memory_order_release);
        }
        worker.cv_done.notify_one();
    }
}

} // namespace lba::core
