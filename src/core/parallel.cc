/**
 * @file
 * Parallel LBA implementation.
 */

#include "core/parallel.h"

#include <algorithm>

#include "common/assert.h"
#include "log/capture.h"

namespace lba::core {

using log::EventRecord;
using log::EventType;

ParallelLbaSystem::ParallelLbaSystem(const Factory& factory,
                                     mem::CacheHierarchy& hierarchy,
                                     const ParallelLbaConfig& config)
    : hierarchy_(hierarchy), config_(config)
{
    LBA_ASSERT(config.shards >= 1, "need at least one shard");
    LBA_ASSERT(hierarchy.config().num_cores >= config.shards + 1,
               "hierarchy must provide one core per shard plus the app");
    for (unsigned s = 0; s < config.shards; ++s) {
        Lane lane;
        lane.lifeguard = factory();
        LBA_ASSERT(lane.lifeguard != nullptr,
                   "lifeguard factory returned null");
        lifeguard::DispatchConfig dc{config.dispatch_cycles,
                                     config.app_core + 1 + s};
        lane.dispatch = std::make_unique<lifeguard::DispatchEngine>(
            *lane.lifeguard, hierarchy, dc);
        lanes_.push_back(std::move(lane));
    }
    stats_.shard_busy_cycles.assign(config.shards, 0);
}

unsigned
ParallelLbaSystem::route(const EventRecord& record)
{
    switch (record.type) {
      case EventType::kLoad:
      case EventType::kStore:
        // Address partition: 64-byte regions interleaved across shards.
        return static_cast<unsigned>((record.addr >> 6) % lanes_.size());
      case EventType::kAlloc:
      case EventType::kFree:
      case EventType::kInput:
      case EventType::kOutput:
      case EventType::kLock:
      case EventType::kUnlock:
      case EventType::kThreadSpawn:
      case EventType::kThreadExit:
        return kBroadcast;
      default:
        return static_cast<unsigned>(round_robin_++ % lanes_.size());
    }
}

void
ParallelLbaSystem::logRecord(const EventRecord& record)
{
    if (config_.compress) compressor_.append(record);

    if (slot_finish_.size() >= config_.buffer_capacity) {
        Cycles freed_at = slot_finish_.front();
        slot_finish_.pop_front();
        if (app_time_ < freed_at) {
            stats_.backpressure_stall_cycles += freed_at - app_time_;
            app_time_ = freed_at;
        }
    }

    Cycles produced_at = app_time_;
    unsigned target = route(record);
    Cycles finish = 0;
    if (target == kBroadcast) {
        for (Lane& lane : lanes_) {
            Cycles start = std::max(produced_at, lane.last_finish);
            lane.last_finish = start + lane.dispatch->consume(record);
            finish = std::max(finish, lane.last_finish);
        }
    } else {
        Lane& lane = lanes_[target];
        Cycles start = std::max(produced_at, lane.last_finish);
        lane.last_finish = start + lane.dispatch->consume(record);
        finish = lane.last_finish;
    }
    slot_finish_.push_back(finish);
    ++stats_.records_logged;
}

void
ParallelLbaSystem::onRetire(const sim::Retired& retired)
{
    if (pending_drain_) {
        pending_drain_ = false;
        Cycles drained = 0;
        for (const Lane& lane : lanes_) {
            drained = std::max(drained, lane.last_finish);
        }
        if (app_time_ < drained) {
            stats_.syscall_stall_cycles += drained - app_time_;
            app_time_ = drained;
        }
    }

    ++stats_.app_instructions;
    Cycles cost = 1 + hierarchy_.instrFetch(config_.app_core, retired.pc);
    if (retired.mem_bytes > 0) {
        cost += hierarchy_.dataAccess(config_.app_core, retired.mem_addr,
                                      retired.mem_is_write);
    }
    app_time_ += cost;
    stats_.app_cycles += cost;

    logRecord(log::CaptureUnit::makeRecord(retired));
    if (config_.syscall_stall && retired.is_syscall) {
        pending_drain_ = true;
    }
}

void
ParallelLbaSystem::onOsEvent(const sim::OsEvent& event)
{
    logRecord(log::CaptureUnit::makeRecord(event));
}

void
ParallelLbaSystem::finish()
{
    Cycles final_time = app_time_;
    Cycles finish_cost = 0;
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
        final_time = std::max(final_time, lanes_[s].last_finish);
        finish_cost = std::max(finish_cost, lanes_[s].dispatch->finish());
        stats_.shard_busy_cycles[s] =
            lanes_[s].dispatch->stats().total_cycles;
    }
    stats_.total_cycles = final_time + finish_cost;
    stats_.bytes_per_record = compressor_.bytesPerRecord();
}

std::vector<lifeguard::Finding>
ParallelLbaSystem::allFindings() const
{
    // Annotation records are broadcast, so state derived from them
    // (live-block tables, lock tables) is replicated per shard and the
    // same finding (double free, leak) surfaces in every lane; dedupe
    // identical findings while preserving first-seen order.
    std::vector<lifeguard::Finding> all;
    auto seen = [&](const lifeguard::Finding& f) {
        for (const auto& g : all) {
            if (g.kind == f.kind && g.pc == f.pc && g.addr == f.addr &&
                g.tid == f.tid && g.message == f.message) {
                return true;
            }
        }
        return false;
    };
    for (const Lane& lane : lanes_) {
        for (const auto& f : lane.lifeguard->findings()) {
            if (!seen(f)) all.push_back(f);
        }
    }
    return all;
}

} // namespace lba::core
