/**
 * @file
 * Parallel LBA implementation: routing on top of the shared timing
 * engine (core::PipelineTimer); one engine lane per shard.
 */

#include "core/parallel.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::core {

using log::EventRecord;
using log::EventType;

ParallelLbaSystem::ParallelLbaSystem(const Factory& factory,
                                     mem::CacheHierarchy& hierarchy,
                                     const ParallelLbaConfig& config)
{
    LBA_ASSERT(config.shards >= 1, "need at least one shard");
    std::vector<lifeguard::Lifeguard*> lanes;
    for (unsigned s = 0; s < config.shards; ++s) {
        lifeguards_.push_back(factory());
        LBA_ASSERT(lifeguards_.back() != nullptr,
                   "lifeguard factory returned null");
        lanes.push_back(lifeguards_.back().get());
    }
    timer_ = std::make_unique<PipelineTimer>(hierarchy, config, lanes);
}

unsigned
ParallelLbaSystem::route(const EventRecord& record)
{
    switch (record.type) {
      case EventType::kLoad:
      case EventType::kStore:
        // Address partition: 64-byte regions interleaved across shards.
        return static_cast<unsigned>((record.addr >> 6) %
                                     lifeguards_.size());
      case EventType::kAlloc:
      case EventType::kFree:
      case EventType::kInput:
      case EventType::kOutput:
      case EventType::kLock:
      case EventType::kUnlock:
      case EventType::kThreadSpawn:
      case EventType::kThreadExit:
        return PipelineTimer::kBroadcast;
      default:
        return static_cast<unsigned>(round_robin_++ %
                                     lifeguards_.size());
    }
}

void
ParallelLbaSystem::onRetire(const sim::Retired& retired)
{
    timer_->retire(retired);
    log::EventRecord record = log::CaptureUnit::makeRecord(retired);
    timer_->log(record, route(record));
    if (retired.is_syscall) {
        // Same containment ordering as the serial system: the drain is
        // armed after the syscall record itself is logged and applied
        // before the next retirement, so the annotation records emitted
        // by this syscall's onOsEvent are drained too.
        timer_->noteSyscall();
    }
}

void
ParallelLbaSystem::onOsEvent(const sim::OsEvent& event)
{
    log::EventRecord record = log::CaptureUnit::makeRecord(event);
    timer_->log(record, route(record));
}

void
ParallelLbaSystem::finish()
{
    timer_->finishAll();
    static_cast<LbaRunStats&>(stats_) = timer_->stats();
    unsigned n = timer_->lanes();
    stats_.shard_busy_cycles.resize(n);
    stats_.shard_records.resize(n);
    stats_.shard_consume_lag.resize(n);
    stats_.shard_transport_bytes.resize(n);
    stats_.shard_transport_wait_cycles.resize(n);
    stats_.shard_max_occupancy.resize(n);
    for (unsigned s = 0; s < n; ++s) {
        stats_.shard_busy_cycles[s] = timer_->laneBusyCycles(s);
        stats_.shard_records[s] = timer_->laneRecords(s);
        stats_.shard_consume_lag[s] = timer_->laneMeanConsumeLag(s);
        stats_.shard_transport_bytes[s] = timer_->laneTransportBytes(s);
        stats_.shard_transport_wait_cycles[s] =
            timer_->laneTransportWaitCycles(s);
        stats_.shard_max_occupancy[s] =
            timer_->bufferStats(s).max_occupancy;
    }
}

std::vector<lifeguard::Finding>
mergeShardFindings(
    const std::vector<std::unique_ptr<lifeguard::Lifeguard>>& shards)
{
    std::vector<lifeguard::Finding> all;
    auto seen = [&](const lifeguard::Finding& f) {
        for (const auto& g : all) {
            if (g.kind == f.kind && g.pc == f.pc && g.addr == f.addr &&
                g.tid == f.tid && g.message == f.message) {
                return true;
            }
        }
        return false;
    };
    for (const auto& guard : shards) {
        for (const auto& f : guard->findings()) {
            if (!seen(f)) all.push_back(f);
        }
    }
    return all;
}

std::vector<lifeguard::Finding>
ParallelLbaSystem::allFindings() const
{
    return mergeShardFindings(lifeguards_);
}

std::vector<const lifeguard::Lifeguard*>
ParallelLbaSystem::shardLifeguards() const
{
    std::vector<const lifeguard::Lifeguard*> out;
    out.reserve(lifeguards_.size());
    for (const auto& guard : lifeguards_) out.push_back(guard.get());
    return out;
}

} // namespace lba::core
