#pragma once
/**
 * @file
 * Experiment runner: executes the same program unmonitored, under LBA,
 * and under the DBI baseline, and reports comparable cycle counts.
 *
 * This is the top-level public API most users want:
 * @code
 *   core::Experiment exp(program, {});
 *   auto lba = exp.runLba([] { return std::make_unique<AddrCheck>(); });
 *   std::cout << lba.slowdown << "x, findings: "
 *             << lba.findings.size() << '\n';
 * @endcode
 *
 * examples/quickstart.cpp is a complete worked example; the platforms
 * being compared are described in docs/ARCHITECTURE.md.
 */

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/lba_system.h"
#include "core/parallel.h"
#include "dbi/dbi_system.h"
#include "isa/isa.h"
#include "lifeguard/lifeguard.h"
#include "mem/hierarchy.h"
#include "replay/containment.h"
#include "sim/process.h"

namespace lba::core {

/** Creates a fresh lifeguard instance (one per platform run / shard). */
using LifeguardFactory =
    std::function<std::unique_ptr<lifeguard::Lifeguard>()>;

/** Everything needed to run one program on every platform. */
struct ExperimentConfig
{
    sim::ProcessConfig process;
    mem::HierarchyConfig hierarchy;
    LbaConfig lba;
    dbi::DbiConfig dbi;
    /** Rewind-and-repair containment (LBA platforms only). */
    replay::ContainmentConfig containment;
};

/** Result of running one platform. */
struct PlatformResult
{
    std::string platform;
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    /** Execution time normalized to the unmonitored run. */
    double slowdown = 1.0;
    std::vector<lifeguard::Finding> findings;
    /** Valid when platform == "lba". */
    LbaRunStats lba;
    /** Valid when platform == "dbi". */
    dbi::DbiStats dbi;
    /** Valid when platform == "lba-parallel". */
    ParallelLbaStats parallel;
    sim::RunResult run;

    /** True when the run executed under rewind-and-repair containment. */
    bool containment_enabled = false;
    /** True when the abort repair policy terminated the program. */
    bool aborted = false;
    /** Valid when containment_enabled. */
    replay::ContainmentStats containment;
};

/**
 * Runs one program on the three platforms with identical inputs.
 * Functional execution is deterministic, so every platform observes the
 * exact same retirement stream; only timing differs.
 */
class Experiment
{
  public:
    Experiment(std::vector<isa::Instruction> program,
               ExperimentConfig config = {});

    /** Unmonitored baseline (computed once, cached). */
    const PlatformResult& unmonitored();

    /** Run under LBA with a fresh lifeguard from @p factory. */
    PlatformResult runLba(const LifeguardFactory& factory);

    /** Run under LBA with explicit configuration overrides. */
    PlatformResult runLba(const LifeguardFactory& factory,
                          const LbaConfig& lba_config);

    /** Run under LBA with explicit containment configuration. */
    PlatformResult runLba(const LifeguardFactory& factory,
                          const LbaConfig& lba_config,
                          const replay::ContainmentConfig& containment);

    /** Run under the Valgrind-style DBI baseline. */
    PlatformResult runDbi(const LifeguardFactory& factory);

    /**
     * Run under parallel LBA with @p shards lifeguard cores, inheriting
     * every other knob (filtering, transport bandwidth, compression,
     * containment) from the experiment's LbaConfig.
     */
    PlatformResult runParallelLba(const LifeguardFactory& factory,
                                  unsigned shards);

    /** Run under parallel LBA with explicit configuration overrides. */
    PlatformResult runParallelLba(const LifeguardFactory& factory,
                                  const ParallelLbaConfig& config);

    /** Run under parallel LBA with explicit containment configuration. */
    PlatformResult runParallelLba(
        const LifeguardFactory& factory, const ParallelLbaConfig& config,
        const replay::ContainmentConfig& containment);

    const ExperimentConfig& config() const { return config_; }

  private:
    /** Fresh process with the program loaded. */
    sim::Process makeProcess() const;

    std::vector<isa::Instruction> program_;
    ExperimentConfig config_;
    std::optional<PlatformResult> unmonitored_;
};

} // namespace lba::core
