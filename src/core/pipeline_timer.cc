/**
 * @file
 * Shared LBA timing engine implementation.
 */

#include "core/pipeline_timer.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lba::core {

using log::EventRecord;
using log::EventType;

PipelineTimer::PipelineTimer(
    mem::CacheHierarchy& hierarchy, const LbaConfig& config,
    const std::vector<lifeguard::Lifeguard*>& lifeguards,
    const std::vector<LaneLimits>& lane_limits)
    : hierarchy_(hierarchy), config_(config)
{
    // The constructing thread is the coordinator by definition (the
    // runtime twin is coordinator_, recorded in buildLanes).
    threading::assumeCoordinatorRole();
    LBA_ASSERT(!lifeguards.empty(), "timer needs at least one lane");
    buildLanes(static_cast<unsigned>(lifeguards.size()), lifeguards,
               lane_limits);
}

PipelineTimer::PipelineTimer(mem::CacheHierarchy& hierarchy,
                             const LbaConfig& config, unsigned nlanes,
                             const std::vector<LaneLimits>& lane_limits)
    : hierarchy_(hierarchy), config_(config)
{
    threading::assumeCoordinatorRole();
    LBA_ASSERT(nlanes >= 1, "timer needs at least one lane");
    buildLanes(nlanes, {}, lane_limits);
}

void
PipelineTimer::buildLanes(
    unsigned nlanes, const std::vector<lifeguard::Lifeguard*>& lifeguards,
    const std::vector<LaneLimits>& lane_limits)
{
    LBA_ASSERT(hierarchy_.config().num_cores >=
                   config_.dispatch.core + nlanes,
               "hierarchy must provide one core per lane plus the app");
    LBA_ASSERT(config_.app_core < config_.dispatch.core ||
                   config_.app_core >= config_.dispatch.core + nlanes,
               "application and lifeguard must use different cores");
    LBA_ASSERT(lane_limits.empty() || lane_limits.size() == nlanes,
               "lane limits must cover every lane or none");

    lanes_.reserve(nlanes);
    for (unsigned i = 0; i < nlanes; ++i) {
        std::size_t capacity = config_.buffer_capacity;
        double bandwidth = config_.transport_bytes_per_cycle;
        if (!lane_limits.empty()) {
            const LaneLimits& limits = lane_limits[i];
            if (limits.buffer_capacity > 0) {
                capacity = limits.buffer_capacity;
            }
            if (limits.transport_bytes_per_cycle >= 0.0) {
                bandwidth = limits.transport_bytes_per_cycle;
            }
        }
        Lane lane(capacity);
        lane.bytes_per_cycle = bandwidth;
        if (!lifeguards.empty()) {
            LBA_ASSERT(lifeguards[i] != nullptr, "lane lifeguard is null");
            lane.lifeguard = lifeguards[i];
            lifeguard::DispatchConfig dc = config_.dispatch;
            dc.core = config_.dispatch.core + i;
            lane.dispatch = std::make_unique<lifeguard::DispatchEngine>(
                *lane.lifeguard, hierarchy_, dc);
        }
        lanes_.push_back(std::move(lane));
    }

    Producer primary;
    primary.app_core = config_.app_core;
    primary.encoder = makeEncoder();
    producers_.push_back(std::move(primary));

    if (config_.execution == ExecutionMode::kThreaded) {
        LBA_ASSERT(config_.dispatch_tier != DispatchTier::kPerRecord,
                   "threaded execution requires a batching dispatch "
                   "tier (its flush boundaries are the cross-thread "
                   "barriers)");
        coordinator_ = std::this_thread::get_id();
        executor_ = std::make_unique<ThreadedExecutor>(nlanes);
        // Pin each intrinsic engine to its lane's worker up front.
        // External-dispatch engines (pool tenants) pin lazily, at the
        // first flush that carries them.
        for (unsigned i = 0; i < nlanes; ++i) {
            if (lanes_[i].dispatch) {
                executor_->bind(lanes_[i].dispatch.get(), i);
            }
        }
    }
}

unsigned
PipelineTimer::addProducer(unsigned app_core)
{
    assertCoordinator();
    LBA_ASSERT(!finished_, "cannot add a producer after seal()");
    LBA_ASSERT(app_core < hierarchy_.config().num_cores,
               "producer core outside the hierarchy");
    LBA_ASSERT(app_core < config_.dispatch.core ||
                   app_core >= config_.dispatch.core + lanes(),
               "producer and lifeguard must use different cores");
    Producer producer;
    producer.app_core = app_core;
    producer.encoder = makeEncoder();
    producers_.push_back(std::move(producer));
    return static_cast<unsigned>(producers_.size() - 1);
}

std::unique_ptr<compress::Encoder>
PipelineTimer::makeEncoder() const
{
    const compress::CodecInfo* info =
        compress::CodecRegistry::instance().find(config_.codec);
    LBA_ASSERT(info != nullptr,
               "LbaConfig::codec names no registered codec");
    return info->makeEncoder();
}

bool
PipelineTimer::filtered(const EventRecord& record) const
{
    if (!config_.filter_enabled) return false;
    if (record.type != EventType::kLoad &&
        record.type != EventType::kStore) {
        return false;
    }
    return record.addr < config_.filter_base ||
           record.addr >= config_.filter_base + config_.filter_bytes;
}

double
PipelineTimer::transportCost(Producer& producer, const EventRecord& record)
{
    // Bandwidth accounting: compressed records cost their true encoded
    // size; uncompressed transport pays the full record width. Each
    // producer is its own log stream, so its encoder sees only its
    // own record sequence.
    if (!config_.compress) return config_.raw_record_bytes;
    std::uint64_t before = producer.encoder->bitsWritten();
    producer.encoder->append(record);
    return static_cast<double>(producer.encoder->bitsWritten() - before) /
           8.0;
}

void
PipelineTimer::reserveSlots(Producer& producer, Lane& lane,
                            std::size_t needed)
{
    // Back-pressure: the lane slot for this record frees when the lane's
    // record capacity-entries ago has been consumed. The stall is paid
    // by the producing application, even when the occupying record
    // belongs to another tenant. A lane hosting several folded shard
    // contexts may need multiple slots for one logical record.
    LBA_ASSERT(needed <= lane.buffer.capacity(),
               "lane buffer smaller than one record's consumptions");
    if (lane.slot_finish.size() + lane.pending + needed >
        lane.buffer.capacity()) {
        // A queued-but-unconsumed record occupies a slot whose finish
        // time is not known yet: catch the whole queue up first (in
        // arrival order, so the interleaving stays identical to the
        // per-record path — these records were consumed before this
        // point on that path too).
        flushPending();
    }
    std::size_t freed = 0;
    while (lane.slot_finish.size() + needed > lane.buffer.capacity()) {
        Cycles freed_at = lane.slot_finish.front();
        lane.slot_finish.pop_front();
        if (producer.app_time < freed_at) {
            Cycles stall = freed_at - producer.app_time;
            stats_.backpressure_stall_cycles += stall;
            producer.stats.backpressure_stall_cycles += stall;
            producer.app_time = freed_at;
        }
        ++freed;
    }
    // The functional buffer mirrors the slot accounting. The
    // coordinator owns the consumer side of every lane ring (workers
    // receive record spans, never the ring).
    lane.buffer.assumeConsumer();
    lane.buffer.popN(freed);
}

void
PipelineTimer::consumeOn(Producer& producer, Lane& lane,
                         lifeguard::DispatchEngine& engine,
                         const EventRecord& record, Cycles produced_at,
                         double record_bytes)
{
    // The coordinator owns the producer side of every lane ring too:
    // records enter on the logging thread.
    lane.buffer.assumeProducer();
    bool pushed = lane.buffer.push(record, produced_at);
    LBA_ASSERT(pushed, "buffer full after slot accounting");

    if (config_.dispatch_tier != DispatchTier::kPerRecord) {
        PendingMeta meta;
        meta.producer =
            static_cast<unsigned>(&producer - producers_.data());
        meta.lane = static_cast<unsigned>(&lane - lanes_.data());
        meta.engine = &engine;
        meta.produced_at = produced_at;
        meta.bytes = record_bytes;
        pending_records_.push_back(record);
        pending_meta_.push_back(meta);
        ++lane.pending;
        return;
    }

    // Per-record path: serial by construction (threaded execution
    // requires batched dispatch), so the calling thread owns the
    // engine's functional side as well as the coordinator role.
    engine.assumeFunctionalOwner();
    Cycles cost = engine.consume(record);
    applyRecordTiming(producer, lane, record, produced_at, record_bytes,
                      cost);
}

void
PipelineTimer::applyRecordTiming(Producer& producer, Lane& lane,
                                 const EventRecord& record,
                                 Cycles produced_at, double record_bytes,
                                 Cycles cost)
{
    lane.transport_bytes += record_bytes;
    stats_.transport_bytes += record_bytes;
    producer.stats.transport_bytes += record_bytes;

    // The record is visible to the dispatch engine only after its bytes
    // have crossed the (possibly bandwidth-limited) transport. Ceiling:
    // the last byte must have fully arrived, so delivery lands on the
    // first cycle boundary at or after the transport completes.
    Cycles delivered_at = produced_at;
    if (lane.bytes_per_cycle > 0.0) {
        lane.transport_free =
            std::max(lane.transport_free,
                     static_cast<double>(produced_at)) +
            record_bytes / lane.bytes_per_cycle;
        delivered_at = static_cast<Cycles>(std::ceil(lane.transport_free));
        if (delivered_at > produced_at) {
            Cycles wait = delivered_at - produced_at;
            lane.transport_wait_cycles += wait;
            stats_.transport_wait_cycles += wait;
            producer.stats.transport_wait_cycles += wait;
        }
    }

    Cycles start = std::max(delivered_at, lane.last_finish);
    double lag = static_cast<double>(start - produced_at);
    lane.consume_lag.record(lag);
    producer.consume_lag.record(lag);
    consume_lag_.record(lag);
    lane.last_finish = start + cost;
    lane.busy_cycles += cost;
    producer.stats.lifeguard_busy_cycles += cost;
    producer.drain_clock = std::max(producer.drain_clock, lane.last_finish);
    lane.slot_finish.push_back(lane.last_finish);
    ++lane.records;

    if (consume_observer_) {
        unsigned producer_idx = static_cast<unsigned>(
            &producer - producers_.data());
        unsigned lane_idx = static_cast<unsigned>(&lane - lanes_.data());
        consume_observer_(producer_idx, lane_idx, record,
                          static_cast<Cycles>(lag), cost, record_bytes);
    }
}

void
PipelineTimer::flushPending()
{
    // The consume observer runs inside phase 2 and may call back into
    // a syncing accessor (stats(), sync(), ...); re-entering the flush
    // would re-run every queued handler. The guard makes re-entry a
    // no-op, like a stats read mid-consume on the per-record path.
    assertCoordinator();
    if (pending_meta_.empty() || flushing_) return;
    flushing_ = true;
    std::size_t n = pending_meta_.size();
    pending_costs_.resize(n);

    if (executor_) {
        // Threaded phase 1: same runs, fanned out to the worker
        // threads, costs recorded and replayed instead of charged
        // in-line — cycle-identical by construction (see the header).
        runPendingThreaded(n);
    } else {
        // Phase 1: handler execution, in arrival order — the same cache
        // interleaving as per-record consumption — with maximal runs
        // that share an engine drained through one consumeBatch (or
        // consumeBatchFused, on the fused tier) call each (the whole
        // queue, for single-lane systems).
        const bool fused = config_.dispatch_tier == DispatchTier::kFused;
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i + 1;
            while (j < n &&
                   pending_meta_[j].engine == pending_meta_[i].engine) {
                ++j;
            }
            // Serial flush: the coordinator runs the handlers itself,
            // so it owns each engine's functional side for the drain.
            lifeguard::DispatchEngine* engine = pending_meta_[i].engine;
            engine->assumeFunctionalOwner();
            if (fused) {
                engine->consumeBatchFused(pending_records_.data() + i,
                                          j - i, pending_costs_.data() + i);
            } else {
                engine->consumeBatch(pending_records_.data() + i, j - i,
                                     pending_costs_.data() + i);
            }
            i = j;
        }
    }

    // Phase 2: the timing recurrence, same order. Handler costs never
    // depend on the recurrence, so the split is exact.
    for (std::size_t k = 0; k < n; ++k) {
        const PendingMeta& meta = pending_meta_[k];
        Lane& lane = lanes_[meta.lane];
        applyRecordTiming(producers_[meta.producer], lane,
                          pending_records_[k], meta.produced_at,
                          meta.bytes, pending_costs_[k]);
        --lane.pending;
    }
    // Erase only what this flush consumed: an observer that logged
    // records mid-flush (none in-tree do) must not lose them.
    pending_records_.erase(pending_records_.begin(),
                           pending_records_.begin() +
                               static_cast<std::ptrdiff_t>(n));
    pending_meta_.erase(pending_meta_.begin(),
                        pending_meta_.begin() +
                            static_cast<std::ptrdiff_t>(n));
    flushing_ = false;
}

void
PipelineTimer::runPendingThreaded(std::size_t n)
{
    // Partition into the same maximal same-engine runs as the serial
    // flush (so even the `batches` stat matches), count them, and give
    // each run its own DeferredBatch scratch slot — resized before any
    // pointer is taken, because workers write through those pointers.
    std::size_t nruns = 0;
    for (std::size_t i = 0; i < n;) {
        std::size_t j = i + 1;
        while (j < n &&
               pending_meta_[j].engine == pending_meta_[i].engine) {
            ++j;
        }
        ++nruns;
        i = j;
    }
    if (batch_scratch_.size() < nruns) batch_scratch_.resize(nruns);

    // Fan out. Staging in global arrival order keeps each worker's
    // batch list — and therefore each engine's record stream — in
    // arrival order; runs on different workers race, which is safe
    // because phase 1 touches only per-lifeguard state.
    std::size_t run = 0;
    for (std::size_t i = 0; i < n;) {
        std::size_t j = i + 1;
        while (j < n &&
               pending_meta_[j].engine == pending_meta_[i].engine) {
            ++j;
        }
        executor_->enqueue(pending_meta_[i].engine,
                           pending_meta_[i].lane,
                           pending_records_.data() + i, j - i,
                           &batch_scratch_[run],
                           config_.dispatch_tier == DispatchTier::kFused);
        ++run;
        i = j;
    }
    executor_->dispatchRound();

    // Replay: charge the recorded accesses through the shared
    // hierarchy in global arrival order — run by run, record by
    // record, exactly the serial interleaving — producing the same
    // per-record costs consumeBatch() would have.
    run = 0;
    for (std::size_t i = 0; i < n;) {
        std::size_t j = i + 1;
        while (j < n &&
               pending_meta_[j].engine == pending_meta_[i].engine) {
            ++j;
        }
        lifeguard::DispatchEngine* engine = pending_meta_[i].engine;
        for (std::size_t k = i; k < j; ++k) {
            pending_costs_[k] = engine->replayDeferred(
                pending_records_[k], batch_scratch_[run], k - i);
        }
        ++run;
        i = j;
    }
}

bool
PipelineTimer::admitRecord(Producer& producer, const EventRecord& record,
                           double* record_bytes)
{
    if (filtered(record)) {
        ++stats_.records_filtered;
        ++producer.stats.records_filtered;
        return false;
    }
    *record_bytes = transportCost(producer, record);
    return true;
}

bool
PipelineTimer::log(const EventRecord& record, unsigned lane)
{
    assertCoordinator();
    Producer& producer = producers_.front();
    double record_bytes = 0.0;
    if (!admitRecord(producer, record, &record_bytes)) return false;

    // Reserve a slot in every target lane first: the application can
    // only append the record once all of its consumers have room, so
    // produce(i) reflects the back-pressure of the slowest target lane.
    if (lane == kBroadcast) {
        for (Lane& l : lanes_) reserveSlots(producer, l, 1);
        Cycles produced_at = producer.app_time;
        for (Lane& l : lanes_) {
            LBA_ASSERT(l.dispatch, "broadcast lane has no dispatch engine");
            consumeOn(producer, l, *l.dispatch, record, produced_at,
                      record_bytes);
        }
    } else {
        LBA_ASSERT(lane < lanes_.size(), "record routed to bad lane");
        Lane& l = lanes_[lane];
        LBA_ASSERT(l.dispatch, "lane has no dispatch engine; use the "
                               "external-dispatch log() overload");
        reserveSlots(producer, l, 1);
        consumeOn(producer, l, *l.dispatch, record, producer.app_time,
                  record_bytes);
    }
    ++stats_.records_logged;
    ++producer.stats.records_logged;
    return true;
}

bool
PipelineTimer::log(unsigned producer_idx, const EventRecord& record,
                   const std::vector<Target>& targets)
{
    assertCoordinator();
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    LBA_ASSERT(!targets.empty(), "record needs at least one target");
    Producer& producer = producers_[producer_idx];
    double record_bytes = 0.0;
    if (!admitRecord(producer, record, &record_bytes)) return false;

    // Same ordering as the broadcast path: all slots first, so
    // produce(i) reflects the slowest target lane, then consume in
    // target order. A lane takes one slot per target folded onto it,
    // so count per-lane demand first (first-seen lane order).
    lane_demand_.clear();
    for (const Target& target : targets) {
        LBA_ASSERT(target.lane < lanes_.size(),
                   "record routed to bad lane");
        bool found = false;
        for (auto& [lane, count] : lane_demand_) {
            if (lane == target.lane) {
                ++count;
                found = true;
                break;
            }
        }
        if (!found) lane_demand_.emplace_back(target.lane, 1);
    }
    for (const auto& [lane, count] : lane_demand_) {
        reserveSlots(producer, lanes_[lane], count);
    }
    Cycles produced_at = producer.app_time;
    for (const Target& target : targets) {
        LBA_ASSERT(target.engine != nullptr, "target has no engine");
        consumeOn(producer, lanes_[target.lane], *target.engine, record,
                  produced_at, record_bytes);
    }
    ++stats_.records_logged;
    ++producer.stats.records_logged;
    return true;
}

void
PipelineTimer::retire(unsigned producer_idx, const sim::Retired& retired)
{
    assertCoordinator();
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    // Flush boundary: consume everything the previous interval logged
    // before this retirement's drain check and cache accesses — the
    // point the per-record path had consumed them by.
    flushPending();
    Producer& producer = producers_[producer_idx];
    if (producer.pending_drain) {
        // Applied before this retirement's own cost, so the drain covers
        // every record this producer logged so far — including the
        // annotation records the syscall's own onOsEvent handlers
        // emitted. The producer's drain clock tracks the latest finish
        // over its own records, so one tenant's drain does not wait on
        // another tenant's backlog.
        producer.pending_drain = false;
        ++stats_.syscall_drains;
        ++producer.stats.syscall_drains;
        if (producer.app_time < producer.drain_clock) {
            Cycles stall = producer.drain_clock - producer.app_time;
            stats_.syscall_stall_cycles += stall;
            producer.stats.syscall_stall_cycles += stall;
            producer.app_time = producer.drain_clock;
        }
    }

    ++stats_.app_instructions;
    ++producer.stats.app_instructions;
    Cycles cost =
        1 + hierarchy_.instrFetch(producer.app_core, retired.pc);
    if (retired.mem_bytes > 0) {
        cost += hierarchy_.dataAccess(producer.app_core, retired.mem_addr,
                                      retired.mem_is_write);
    }
    producer.app_time += cost;
    stats_.app_cycles += cost;
    producer.stats.app_cycles += cost;
}

void
PipelineTimer::noteSyscall(unsigned producer)
{
    assertCoordinator();
    LBA_ASSERT(producer < producers_.size(), "bad producer index");
    if (config_.syscall_stall) producers_[producer].pending_drain = true;
}

Cycles
PipelineTimer::drainProducer(unsigned producer_idx)
{
    assertCoordinator();
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    flushPending();
    Producer& producer = producers_[producer_idx];
    if (producer.app_time >= producer.drain_clock) return 0;
    Cycles stall = producer.drain_clock - producer.app_time;
    producer.app_time = producer.drain_clock;
    stats_.containment_cycles += stall;
    producer.stats.containment_cycles += stall;
    return stall;
}

void
PipelineTimer::chargeContainment(unsigned producer_idx, Cycles cycles)
{
    assertCoordinator();
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    Producer& producer = producers_[producer_idx];
    producer.app_time += cycles;
    stats_.containment_cycles += cycles;
    producer.stats.containment_cycles += cycles;
}

unsigned
PipelineTimer::producerCore(unsigned producer_idx) const
{
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    return producers_[producer_idx].app_core;
}

Cycles
PipelineTimer::finishShard(unsigned producer_idx, unsigned lane_idx,
                           lifeguard::DispatchEngine& engine)
{
    assertCoordinator();
    LBA_ASSERT(!finished_, "finishShard() after seal()");
    LBA_ASSERT(producer_idx < producers_.size(), "bad producer index");
    LBA_ASSERT(lane_idx < lanes_.size(), "bad lane index");
    flushPending();
    Producer& producer = producers_[producer_idx];
    Lane& lane = lanes_[lane_idx];
    // The final pass runs once the producer's application has exited and
    // the lane has consumed its last record; the cost lands on that
    // lane's own clock, so an expensive final pass on one shard does not
    // charge the rest.
    Cycles fc = engine.finish();
    lane.last_finish = std::max(producer.app_time, lane.last_finish) + fc;
    lane.busy_cycles += fc;
    producer.stats.lifeguard_busy_cycles += fc;
    producer.drain_clock = std::max(producer.drain_clock, lane.last_finish);
    return lane.last_finish;
}

void
PipelineTimer::seal()
{
    assertCoordinator();
    LBA_ASSERT(!finished_, "seal() called twice");
    flushPending();
    finished_ = true;
    // No further flushes can carry work: park the worker threads. The
    // join also closes the happens-before chain, so the end-of-run
    // stats and findings reads below and after are race-free.
    if (executor_) executor_->stopAndJoin();

    Cycles end = 0;
    std::uint64_t compressed_records = 0;
    double compressed_bytes = 0.0;
    for (Producer& producer : producers_) {
        producer.stats.total_cycles =
            std::max(producer.app_time, producer.drain_clock);
        end = std::max(end, producer.stats.total_cycles);
        producer.encoder->finishStream();
        producer.stats.bytes_per_record =
            producer.encoder->bytesPerRecord();
        producer.stats.codec = config_.codec;
        producer.stats.mean_consume_lag = producer.consume_lag.mean();
        compressed_records += producer.encoder->records();
        compressed_bytes +=
            static_cast<double>(producer.encoder->bitsWritten()) / 8.0;
    }
    stats_.lifeguard_busy_cycles = 0;
    for (Lane& lane : lanes_) {
        end = std::max(end, lane.last_finish);
        stats_.lifeguard_busy_cycles += lane.busy_cycles;
    }
    stats_.total_cycles = end;
    stats_.codec = config_.codec;
    stats_.bytes_per_record =
        compressed_records
            ? compressed_bytes / static_cast<double>(compressed_records)
            : 0.0;
    stats_.mean_consume_lag = consume_lag_.mean();
}

void
PipelineTimer::finishAll()
{
    assertCoordinator();
    for (unsigned i = 0; i < lanes(); ++i) {
        LBA_ASSERT(lanes_[i].dispatch,
                   "finishAll() needs intrinsic dispatch engines");
        finishShard(0, i, *lanes_[i].dispatch);
    }
    seal();
}

const LbaRunStats&
PipelineTimer::producerStats(unsigned producer) const
{
    syncConst();
    LBA_ASSERT(producer < producers_.size(), "bad producer index");
    return producers_[producer].stats;
}

Cycles
PipelineTimer::producerTime(unsigned producer) const
{
    LBA_ASSERT(producer < producers_.size(), "bad producer index");
    return producers_[producer].app_time;
}

log::LogBufferStats
PipelineTimer::bufferStats(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].buffer.stats();
}

lifeguard::DispatchStats
PipelineTimer::dispatchStats(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    LBA_ASSERT(lanes_[lane].dispatch, "lane has no dispatch engine");
    return lanes_[lane].dispatch->stats();
}

lifeguard::Lifeguard&
PipelineTimer::lifeguard(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    LBA_ASSERT(lanes_[lane].lifeguard, "lane has no intrinsic lifeguard");
    // Callers read mid-run lifeguard state (findings); catch it up.
    syncConst();
    return *lanes_[lane].lifeguard;
}

Cycles
PipelineTimer::laneLastFinish(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].last_finish;
}

Cycles
PipelineTimer::laneBusyCycles(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].busy_cycles;
}

std::uint64_t
PipelineTimer::laneRecords(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].records;
}

double
PipelineTimer::laneMeanConsumeLag(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].consume_lag.mean();
}

double
PipelineTimer::laneTransportBytes(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].transport_bytes;
}

Cycles
PipelineTimer::laneTransportWaitCycles(unsigned lane) const
{
    syncConst();
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].transport_wait_cycles;
}

} // namespace lba::core
