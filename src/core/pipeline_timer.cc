/**
 * @file
 * Shared LBA timing engine implementation.
 */

#include "core/pipeline_timer.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lba::core {

using log::EventRecord;
using log::EventType;

PipelineTimer::PipelineTimer(
    mem::CacheHierarchy& hierarchy, const LbaConfig& config,
    const std::vector<lifeguard::Lifeguard*>& lifeguards)
    : hierarchy_(hierarchy), config_(config)
{
    LBA_ASSERT(!lifeguards.empty(), "timer needs at least one lane");
    unsigned nlanes = static_cast<unsigned>(lifeguards.size());
    LBA_ASSERT(hierarchy.config().num_cores >=
                   config.dispatch.core + nlanes,
               "hierarchy must provide one core per lane plus the app");
    LBA_ASSERT(config.app_core < config.dispatch.core ||
                   config.app_core >= config.dispatch.core + nlanes,
               "application and lifeguard must use different cores");

    lanes_.reserve(nlanes);
    for (unsigned i = 0; i < nlanes; ++i) {
        LBA_ASSERT(lifeguards[i] != nullptr, "lane lifeguard is null");
        Lane lane(config.buffer_capacity);
        lane.lifeguard = lifeguards[i];
        lifeguard::DispatchConfig dc = config.dispatch;
        dc.core = config.dispatch.core + i;
        lane.dispatch = std::make_unique<lifeguard::DispatchEngine>(
            *lane.lifeguard, hierarchy, dc);
        lanes_.push_back(std::move(lane));
    }
}

bool
PipelineTimer::filtered(const EventRecord& record) const
{
    if (!config_.filter_enabled) return false;
    if (record.type != EventType::kLoad &&
        record.type != EventType::kStore) {
        return false;
    }
    return record.addr < config_.filter_base ||
           record.addr >= config_.filter_base + config_.filter_bytes;
}

double
PipelineTimer::transportCost(const EventRecord& record)
{
    // Bandwidth accounting: compressed records cost their true encoded
    // size; uncompressed transport pays the full record width.
    if (!config_.compress) return config_.raw_record_bytes;
    std::uint64_t before = compressor_.bits();
    compressor_.append(record);
    return static_cast<double>(compressor_.bits() - before) / 8.0;
}

void
PipelineTimer::reserveSlot(Lane& lane)
{
    // Back-pressure: the lane slot for this record frees when the lane's
    // record capacity-entries ago has been consumed.
    if (lane.slot_finish.size() < lane.buffer.capacity()) return;
    Cycles freed_at = lane.slot_finish.front();
    lane.slot_finish.pop_front();
    if (app_time_ < freed_at) {
        stats_.backpressure_stall_cycles += freed_at - app_time_;
        app_time_ = freed_at;
    }
    // The functional buffer mirrors the slot accounting.
    log::LogBuffer::Entry drained;
    bool ok = lane.buffer.pop(&drained);
    LBA_ASSERT(ok, "slot accounting out of sync with buffer");
}

void
PipelineTimer::consumeOn(Lane& lane, const EventRecord& record,
                         Cycles produced_at, double record_bytes)
{
    bool pushed = lane.buffer.push(record, produced_at);
    LBA_ASSERT(pushed, "buffer full after slot accounting");
    lane.transport_bytes += record_bytes;
    stats_.transport_bytes += record_bytes;

    // The record is visible to the dispatch engine only after its bytes
    // have crossed the (possibly bandwidth-limited) transport. Ceiling:
    // the last byte must have fully arrived, so delivery lands on the
    // first cycle boundary at or after the transport completes.
    Cycles delivered_at = produced_at;
    if (config_.transport_bytes_per_cycle > 0.0) {
        lane.transport_free =
            std::max(lane.transport_free,
                     static_cast<double>(produced_at)) +
            record_bytes / config_.transport_bytes_per_cycle;
        delivered_at = static_cast<Cycles>(std::ceil(lane.transport_free));
        if (delivered_at > produced_at) {
            lane.transport_wait_cycles += delivered_at - produced_at;
            stats_.transport_wait_cycles += delivered_at - produced_at;
        }
    }

    Cycles start = std::max(delivered_at, lane.last_finish);
    double lag = static_cast<double>(start - produced_at);
    lane.consume_lag.record(lag);
    consume_lag_.record(lag);
    Cycles cost = lane.dispatch->consume(record);
    lane.last_finish = start + cost;
    lane.slot_finish.push_back(lane.last_finish);
    ++lane.records;
}

bool
PipelineTimer::log(const EventRecord& record, unsigned lane)
{
    if (filtered(record)) {
        ++stats_.records_filtered;
        return false;
    }
    double record_bytes = transportCost(record);

    // Reserve a slot in every target lane first: the application can
    // only append the record once all of its consumers have room, so
    // produce(i) reflects the back-pressure of the slowest target lane.
    if (lane == kBroadcast) {
        for (Lane& l : lanes_) reserveSlot(l);
        Cycles produced_at = app_time_;
        for (Lane& l : lanes_) {
            consumeOn(l, record, produced_at, record_bytes);
        }
    } else {
        LBA_ASSERT(lane < lanes_.size(), "record routed to bad lane");
        reserveSlot(lanes_[lane]);
        consumeOn(lanes_[lane], record, app_time_, record_bytes);
    }
    ++stats_.records_logged;
    return true;
}

void
PipelineTimer::retire(const sim::Retired& retired)
{
    if (pending_drain_) {
        // Applied before this retirement's own cost, so the drain covers
        // every record logged so far — including the annotation records
        // the syscall's own onOsEvent handlers emitted.
        pending_drain_ = false;
        ++stats_.syscall_drains;
        Cycles drained = 0;
        for (const Lane& lane : lanes_) {
            drained = std::max(drained, lane.last_finish);
        }
        if (app_time_ < drained) {
            stats_.syscall_stall_cycles += drained - app_time_;
            app_time_ = drained;
        }
    }

    ++stats_.app_instructions;
    Cycles cost = 1 + hierarchy_.instrFetch(config_.app_core, retired.pc);
    if (retired.mem_bytes > 0) {
        cost += hierarchy_.dataAccess(config_.app_core, retired.mem_addr,
                                      retired.mem_is_write);
    }
    app_time_ += cost;
    stats_.app_cycles += cost;
}

void
PipelineTimer::noteSyscall()
{
    if (config_.syscall_stall) pending_drain_ = true;
}

void
PipelineTimer::finishAll()
{
    LBA_ASSERT(!finished_, "finishAll() called twice");
    finished_ = true;

    // Each lane runs its end-of-program hook once the application has
    // exited and the lane has consumed its last record; the cost lands
    // on that lane's own clock (and its busy cycles via DispatchStats),
    // so an expensive final pass on one shard does not charge the rest.
    Cycles end = app_time_;
    stats_.lifeguard_busy_cycles = 0;
    for (Lane& lane : lanes_) {
        Cycles fc = lane.dispatch->finish();
        lane.last_finish = std::max(app_time_, lane.last_finish) + fc;
        end = std::max(end, lane.last_finish);
        stats_.lifeguard_busy_cycles += lane.dispatch->stats().total_cycles;
    }
    stats_.total_cycles = end;
    stats_.bytes_per_record = compressor_.bytesPerRecord();
    stats_.mean_consume_lag = consume_lag_.mean();
}

const log::LogBufferStats&
PipelineTimer::bufferStats(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].buffer.stats();
}

const lifeguard::DispatchStats&
PipelineTimer::dispatchStats(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].dispatch->stats();
}

lifeguard::Lifeguard&
PipelineTimer::lifeguard(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return *lanes_[lane].lifeguard;
}

Cycles
PipelineTimer::laneLastFinish(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].last_finish;
}

Cycles
PipelineTimer::laneBusyCycles(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].dispatch->stats().total_cycles;
}

std::uint64_t
PipelineTimer::laneRecords(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].records;
}

double
PipelineTimer::laneMeanConsumeLag(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].consume_lag.mean();
}

double
PipelineTimer::laneTransportBytes(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].transport_bytes;
}

Cycles
PipelineTimer::laneTransportWaitCycles(unsigned lane) const
{
    LBA_ASSERT(lane < lanes_.size(), "bad lane index");
    return lanes_[lane].transport_wait_cycles;
}

} // namespace lba::core
