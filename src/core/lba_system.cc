/**
 * @file
 * LBA system implementation.
 */

#include "core/lba_system.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::core {

using log::EventRecord;
using log::EventType;

LbaSystem::LbaSystem(lifeguard::Lifeguard& lifeguard,
                     mem::CacheHierarchy& hierarchy,
                     const LbaConfig& config)
    : hierarchy_(hierarchy),
      config_(config),
      buffer_(config.buffer_capacity),
      dispatch_(lifeguard, hierarchy, config.dispatch)
{
    LBA_ASSERT(hierarchy.config().num_cores >= 2,
               "LBA needs an application core and a lifeguard core");
    LBA_ASSERT(config.app_core != config.dispatch.core,
               "application and lifeguard must use different cores");
}

bool
LbaSystem::filtered(const EventRecord& record) const
{
    if (!config_.filter_enabled) return false;
    if (record.type != EventType::kLoad &&
        record.type != EventType::kStore) {
        return false;
    }
    return record.addr < config_.filter_base ||
           record.addr >= config_.filter_base + config_.filter_bytes;
}

void
LbaSystem::logRecord(const EventRecord& record)
{
    if (filtered(record)) {
        ++stats_.records_filtered;
        return;
    }

    // Bandwidth accounting: compressed records cost their true encoded
    // size; uncompressed transport pays the full record width.
    double record_bytes = config_.raw_record_bytes;
    if (config_.compress) {
        std::uint64_t before = compressor_.bits();
        compressor_.append(record);
        record_bytes =
            static_cast<double>(compressor_.bits() - before) / 8.0;
    }
    stats_.transport_bytes += record_bytes;

    // Back-pressure: the slot for this record frees when the record
    // capacity-entries ago has been consumed.
    if (slot_finish_.size() >= buffer_.capacity()) {
        Cycles freed_at = slot_finish_.front();
        slot_finish_.pop_front();
        if (app_time_ < freed_at) {
            stats_.backpressure_stall_cycles += freed_at - app_time_;
            app_time_ = freed_at;
        }
        // The functional buffer mirrors the slot accounting.
        log::LogBuffer::Entry drained;
        bool ok = buffer_.pop(&drained);
        LBA_ASSERT(ok, "slot accounting out of sync with buffer");
    }

    Cycles produced_at = app_time_;
    bool pushed = buffer_.push(record, produced_at);
    LBA_ASSERT(pushed, "buffer full after slot accounting");

    // The record is visible to the dispatch engine only after its bytes
    // have crossed the (possibly bandwidth-limited) transport.
    Cycles delivered_at = produced_at;
    if (config_.transport_bytes_per_cycle > 0.0) {
        transport_free_ =
            std::max(transport_free_, static_cast<double>(produced_at)) +
            record_bytes / config_.transport_bytes_per_cycle;
        delivered_at = static_cast<Cycles>(transport_free_);
        if (delivered_at > produced_at) {
            stats_.transport_wait_cycles +=
                delivered_at - produced_at;
        }
    }

    Cycles start = std::max(delivered_at, last_finish_);
    consume_lag_.record(static_cast<double>(start - produced_at));
    Cycles cost = dispatch_.consume(record);
    last_finish_ = start + cost;
    slot_finish_.push_back(last_finish_);
    ++stats_.records_logged;
}

void
LbaSystem::onRetire(const sim::Retired& retired)
{
    if (pending_drain_) {
        pending_drain_ = false;
        ++stats_.syscall_drains;
        if (app_time_ < last_finish_) {
            stats_.syscall_stall_cycles += last_finish_ - app_time_;
            app_time_ = last_finish_;
        }
    }

    ++stats_.app_instructions;
    Cycles cost = 1 + hierarchy_.instrFetch(config_.app_core, retired.pc);
    if (retired.mem_bytes > 0) {
        cost += hierarchy_.dataAccess(config_.app_core, retired.mem_addr,
                                      retired.mem_is_write);
    }
    app_time_ += cost;
    stats_.app_cycles += cost;

    logRecord(log::CaptureUnit::makeRecord(retired));

    if (config_.syscall_stall && retired.is_syscall) {
        // The OS stalls the syscall until the lifeguard has checked all
        // prior log entries; applied before the next retirement so the
        // annotation records emitted by this syscall are drained too.
        pending_drain_ = true;
    }
}

void
LbaSystem::onOsEvent(const sim::OsEvent& event)
{
    logRecord(log::CaptureUnit::makeRecord(event));
}

void
LbaSystem::finish()
{
    LBA_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    Cycles final_time = std::max(app_time_, last_finish_);
    final_time += dispatch_.finish();

    stats_.total_cycles = final_time;
    stats_.lifeguard_busy_cycles = dispatch_.stats().total_cycles;
    stats_.bytes_per_record = compressor_.bytesPerRecord();
    stats_.mean_consume_lag = consume_lag_.mean();
}

} // namespace lba::core
