/**
 * @file
 * LBA system implementation: the single-lane PipelineTimer instantiation.
 */

#include "core/lba_system.h"

namespace lba::core {

LbaSystem::LbaSystem(lifeguard::Lifeguard& lifeguard,
                     mem::CacheHierarchy& hierarchy,
                     const LbaConfig& config)
    : timer_(hierarchy, config, {&lifeguard})
{
}

void
LbaSystem::onRetire(const sim::Retired& retired)
{
    timer_.retire(retired);
    timer_.log(log::CaptureUnit::makeRecord(retired), 0);
    if (retired.is_syscall) {
        // The OS stalls the syscall until the lifeguard has checked all
        // prior log entries; applied before the next retirement so the
        // annotation records emitted by this syscall are drained too.
        timer_.noteSyscall();
    }
}

void
LbaSystem::onOsEvent(const sim::OsEvent& event)
{
    timer_.log(log::CaptureUnit::makeRecord(event), 0);
}

void
LbaSystem::finish()
{
    timer_.finishAll();
}

} // namespace lba::core
