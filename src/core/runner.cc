/**
 * @file
 * Experiment runner implementation.
 */

#include "core/runner.h"

#include "common/assert.h"

namespace lba::core {

namespace {

/** Observer charging only the application's own cost (no monitoring). */
class AppTimingObserver : public sim::RetireObserver
{
  public:
    AppTimingObserver(mem::CacheHierarchy& hierarchy, unsigned core)
        : hierarchy_(hierarchy), core_(core)
    {
    }

    void
    onRetire(const sim::Retired& retired) override
    {
        cycles_ += 1 + hierarchy_.instrFetch(core_, retired.pc);
        if (retired.mem_bytes > 0) {
            cycles_ += hierarchy_.dataAccess(core_, retired.mem_addr,
                                             retired.mem_is_write);
        }
    }

    void onOsEvent(const sim::OsEvent&) override {}

    Cycles cycles() const { return cycles_; }

  private:
    mem::CacheHierarchy& hierarchy_;
    unsigned core_;
    Cycles cycles_ = 0;
};

/**
 * Shared contained-run protocol of the LBA platforms: wire a manager
 * around @p platform, drive the process under it, and record the
 * containment outcome in @p result.
 * @return The run result (the process may have aborted mid-program).
 */
sim::RunResult
runWithContainment(sim::Process& process, core::PipelineTimer& timer,
                   sim::RetireObserver& platform,
                   std::vector<const lifeguard::Lifeguard*> watched,
                   const replay::ContainmentConfig& containment,
                   PlatformResult* result)
{
    replay::ContainmentManager manager(process, timer, 0, platform,
                                       std::move(watched), containment);
    process.setStoreInterceptor(&manager);
    replay::ContainedRun contained = replay::runContained(process, manager);
    process.setStoreInterceptor(nullptr);
    result->containment_enabled = true;
    result->aborted = contained.aborted;
    result->containment = manager.stats();
    return contained.result;
}

} // namespace

Experiment::Experiment(std::vector<isa::Instruction> program,
                       ExperimentConfig config)
    : program_(std::move(program)), config_(std::move(config))
{
    LBA_ASSERT(!program_.empty(), "experiment needs a program");
}

sim::Process
Experiment::makeProcess() const
{
    sim::Process process(config_.process);
    process.load(program_);
    return process;
}

const PlatformResult&
Experiment::unmonitored()
{
    if (unmonitored_) return *unmonitored_;

    sim::Process process = makeProcess();
    mem::HierarchyConfig hc = config_.hierarchy;
    mem::CacheHierarchy hierarchy(hc);
    AppTimingObserver observer(hierarchy, config_.lba.app_core);
    sim::RunResult run = process.run(&observer);

    PlatformResult result;
    result.platform = "unmonitored";
    result.instructions = run.instructions;
    result.cycles = observer.cycles();
    result.slowdown = 1.0;
    result.run = run;
    unmonitored_ = std::move(result);
    return *unmonitored_;
}

PlatformResult
Experiment::runLba(const LifeguardFactory& factory)
{
    return runLba(factory, config_.lba);
}

PlatformResult
Experiment::runLba(const LifeguardFactory& factory,
                   const LbaConfig& lba_config)
{
    return runLba(factory, lba_config, config_.containment);
}

PlatformResult
Experiment::runLba(const LifeguardFactory& factory,
                   const LbaConfig& lba_config,
                   const replay::ContainmentConfig& containment)
{
    // This thread builds and drives the whole platform below: it is
    // the coordinator by construction (the timer inside records it
    // for the runtime checks).
    threading::assumeCoordinatorRole();
    const PlatformResult& base = unmonitored();

    sim::Process process = makeProcess();
    mem::HierarchyConfig hc = config_.hierarchy;
    if (hc.num_cores < 2) hc.num_cores = 2;
    mem::CacheHierarchy hierarchy(hc);
    std::unique_ptr<lifeguard::Lifeguard> guard = factory();
    LBA_ASSERT(guard != nullptr, "lifeguard factory returned null");

    LbaSystem system(*guard, hierarchy, lba_config);
    PlatformResult result;
    sim::RunResult run;
    if (containment.enabled) {
        run = runWithContainment(process, system.timer(), system,
                                 {guard.get()}, containment, &result);
    } else {
        run = process.run(&system);
    }
    system.finish();

    result.platform = "lba";
    result.instructions = run.instructions;
    result.cycles = system.stats().total_cycles;
    result.slowdown = base.cycles
                          ? static_cast<double>(result.cycles) /
                                static_cast<double>(base.cycles)
                          : 0.0;
    result.findings = guard->findings();
    result.lba = system.stats();
    result.run = run;
    return result;
}

PlatformResult
Experiment::runDbi(const LifeguardFactory& factory)
{
    const PlatformResult& base = unmonitored();

    sim::Process process = makeProcess();
    mem::HierarchyConfig hc = config_.hierarchy;
    mem::CacheHierarchy hierarchy(hc);
    std::unique_ptr<lifeguard::Lifeguard> guard = factory();
    LBA_ASSERT(guard != nullptr, "lifeguard factory returned null");

    dbi::DbiSystem system(*guard, hierarchy, config_.dbi);
    sim::RunResult run = process.run(&system);
    system.finish();

    PlatformResult result;
    result.platform = "dbi";
    result.instructions = run.instructions;
    result.cycles = system.stats().total_cycles;
    result.slowdown = base.cycles
                          ? static_cast<double>(result.cycles) /
                                static_cast<double>(base.cycles)
                          : 0.0;
    result.findings = guard->findings();
    result.dbi = system.stats();
    result.run = run;
    return result;
}

PlatformResult
Experiment::runParallelLba(const LifeguardFactory& factory,
                           unsigned shards)
{
    return runParallelLba(factory,
                          ParallelLbaConfig(config_.lba, shards));
}

PlatformResult
Experiment::runParallelLba(const LifeguardFactory& factory,
                           const ParallelLbaConfig& config)
{
    return runParallelLba(factory, config, config_.containment);
}

PlatformResult
Experiment::runParallelLba(const LifeguardFactory& factory,
                           const ParallelLbaConfig& config,
                           const replay::ContainmentConfig& containment)
{
    threading::assumeCoordinatorRole();
    const PlatformResult& base = unmonitored();

    sim::Process process = makeProcess();
    mem::HierarchyConfig hc = config_.hierarchy;
    unsigned needed = config.dispatch.core + config.shards;
    if (needed < config.app_core + 1) needed = config.app_core + 1;
    if (hc.num_cores < needed) hc.num_cores = needed;
    mem::CacheHierarchy hierarchy(hc);

    ParallelLbaSystem system(factory, hierarchy, config);
    PlatformResult result;
    sim::RunResult run;
    if (containment.enabled) {
        // Watch every shard: a finding on any lane triggers the same
        // coordinated drain-rewind-repair (the producer drain clock
        // spans all lanes, so the rewind point is consistent).
        run = runWithContainment(process, system.timer(), system,
                                 system.shardLifeguards(), containment,
                                 &result);
    } else {
        run = process.run(&system);
    }
    system.finish();

    result.platform = "lba-parallel";
    result.instructions = run.instructions;
    result.cycles = system.stats().total_cycles;
    result.slowdown = base.cycles
                          ? static_cast<double>(result.cycles) /
                                static_cast<double>(base.cycles)
                          : 0.0;
    result.findings = system.allFindings();
    result.parallel = system.stats();
    result.run = run;
    return result;
}

} // namespace lba::core
