/**
 * @file
 * Multi-tenant lifeguard pool implementation.
 */

#include "sched/pool.h"

#include <algorithm>

#include "common/assert.h"
#include "core/parallel.h"
#include "log/capture.h"

namespace lba::sched {

using log::EventRecord;
using log::EventType;

/** One tenant's full runtime state. */
struct LifeguardPool::Tenant
{
    TenantConfig config;
    unsigned index;
    /** Admission-control demand (bytes/cycle). */
    double demand = 0.0;
    bool admitted = false;
    bool was_queued = false;
    bool rejected = false;
    bool finished = false;
    Cycles unmonitored_cycles = 0;

    /** Retired instructions observed by the pool (detach clock). */
    std::uint64_t observed_instructions = 0;
    /** The detach threshold fired; the current slice is the last. */
    bool detach_requested = false;
    /** Tenant was removed by its detach threshold. */
    bool detached = false;

    std::unique_ptr<sim::Process> process;
    /** One lifeguard shard context per pool lane (fixed functional
     *  sharding; the scheduler only moves contexts between lanes). */
    std::vector<std::unique_ptr<lifeguard::Lifeguard>> shards;
    std::vector<std::unique_ptr<lifeguard::DispatchEngine>> engines;
    /** Round-robin cursor for non-memory instruction records. */
    std::uint64_t round_robin = 0;

    /** Rewind-and-repair driver (set when containment is enabled). */
    std::unique_ptr<replay::ContainmentManager> manager;
    /** The abort repair policy terminated this tenant. */
    bool aborted = false;

    stats::Histogram lag_hist;
    /** Lag accumulated during the tenant's current execution slice. */
    double window_lag_sum = 0.0;
    std::uint64_t window_lag_count = 0;
    /** Mean consume lag over the tenant's most recent slice. */
    double recent_lag = 0.0;
    /** recent_lag holds a real measurement (>= 1 slice with records). */
    bool lag_valid = false;

    sim::RunResult run_result;

    Tenant(TenantConfig cfg, unsigned idx, const PoolConfig& pool)
        : config(std::move(cfg)),
          index(idx),
          lag_hist(pool.lag_hist_buckets, pool.lag_hist_bucket_width)
    {
    }
};

LifeguardPool::LifeguardPool(const PoolConfig& config,
                             core::LifeguardFactory factory)
    : config_(config), factory_(std::move(factory))
{
    LBA_ASSERT(config_.lanes >= 1, "pool needs at least one lane");
    LBA_ASSERT(config_.max_load > 0.0, "max_load must be positive");
    LBA_ASSERT(factory_ != nullptr, "pool needs a lifeguard factory");
    scheduler_ = makeScheduler(config_.policy, config_.lanes);

    // Pool drain bandwidth: the sum of the lanes' transport links. Any
    // unlimited lane makes the pool bandwidth unlimited (capacity 0).
    bool unlimited = false;
    double capacity = 0.0;
    for (unsigned lane = 0; lane < config_.lanes; ++lane) {
        double bw = config_.lba.transport_bytes_per_cycle;
        if (lane < config_.lane_limits.size() &&
            config_.lane_limits[lane].transport_bytes_per_cycle >= 0.0) {
            bw = config_.lane_limits[lane].transport_bytes_per_cycle;
        }
        if (bw <= 0.0) {
            unlimited = true;
            break;
        }
        capacity += bw;
    }
    capacity_ = unlimited ? 0.0 : capacity;
}

LifeguardPool::~LifeguardPool() = default;

unsigned
LifeguardPool::addTenant(TenantConfig tenant)
{
    LBA_ASSERT(!ran_, "cannot add tenants after run()");
    LBA_ASSERT(!tenant.program.empty(), "tenant needs a program");
    unsigned index = static_cast<unsigned>(tenants_.size());
    auto state =
        std::make_unique<Tenant>(std::move(tenant), index, config_);
    state->demand = state->config.demand_bytes_per_cycle;
    if (state->demand <= 0.0) {
        // LBA logs about one record per retired instruction at IPC <= 1:
        // a conservative demand estimate is the record's transport cost
        // per cycle (~2 B compressed, full width uncompressed).
        state->demand = config_.lba.compress
                            ? 2.0
                            : static_cast<double>(
                                  config_.lba.raw_record_bytes);
    }
    tenants_.push_back(std::move(state));
    return index;
}

bool
LifeguardPool::fits(const Tenant& tenant) const
{
    // An idle pool always accepts (a tenant too big for the transport
    // alone degrades through back-pressure rather than starving).
    if (active_.empty()) return true;
    if (capacity_ <= 0.0) return true;
    return load_ + tenant.demand <= capacity_ * config_.max_load;
}

void
LifeguardPool::activate(unsigned tenant)
{
    Tenant& t = *tenants_[tenant];
    t.admitted = true;
    active_.push_back(tenant);
    load_ += t.demand;
}

unsigned
LifeguardPool::routeShard(Tenant& tenant, const EventRecord& record)
{
    // Mirrors ParallelLbaSystem::route over the pool's lane count so a
    // lone tenant's functional sharding (and therefore its timing) is
    // identical to the parallel system's.
    switch (record.type) {
      case EventType::kLoad:
      case EventType::kStore:
        return static_cast<unsigned>((record.addr >> 6) % config_.lanes);
      case EventType::kAlloc:
      case EventType::kFree:
      case EventType::kInput:
      case EventType::kOutput:
      case EventType::kLock:
      case EventType::kUnlock:
      case EventType::kThreadSpawn:
      case EventType::kThreadExit:
        return core::PipelineTimer::kBroadcast;
      default:
        return static_cast<unsigned>(tenant.round_robin++ %
                                     config_.lanes);
    }
}

void
LifeguardPool::deliver(Tenant& tenant, const EventRecord& record)
{
    unsigned shard = routeShard(tenant, record);
    targets_.clear();
    if (shard == core::PipelineTimer::kBroadcast) {
        for (unsigned s = 0; s < config_.lanes; ++s) {
            targets_.push_back({scheduler_->laneFor(tenant.index, s),
                                tenant.engines[s].get()});
        }
    } else {
        targets_.push_back({scheduler_->laneFor(tenant.index, shard),
                            tenant.engines[shard].get()});
    }
    timer_->log(tenant.index, record, targets_);
}

void
LifeguardPool::onRetire(const sim::Retired& retired)
{
    Tenant& tenant = *tenants_[current_];
    timer_->retire(current_, retired);
    deliver(tenant, log::CaptureUnit::makeRecord(retired));
    if (retired.is_syscall) {
        // Same containment ordering as the serial system: the drain is
        // armed after the syscall record itself is logged and applied
        // before the next retirement, so the annotation records emitted
        // by this syscall's onOsEvent are drained too.
        timer_->noteSyscall(current_);
    }
    // Detach clock: mirror the instruction-limit completion exactly —
    // the threshold retirement is the last one the platform observes.
    ++tenant.observed_instructions;
    if (tenant.config.detach_after_instructions > 0 &&
        !tenant.detach_requested &&
        tenant.observed_instructions >=
            tenant.config.detach_after_instructions) {
        tenant.detach_requested = true;
        tenant.process->requestStop();
    }
    if (sliced_ && --slice_remaining_ == 0) {
        tenant.process->requestStop();
    }
}

void
LifeguardPool::onOsEvent(const sim::OsEvent& event)
{
    deliver(*tenants_[current_], log::CaptureUnit::makeRecord(event));
}

void
LifeguardPool::epoch()
{
    // Each tenant's backlog signal is the mean lag over its own most
    // recent slice — NOT the lag since the last epoch, because only one
    // tenant executes per slice and everyone else's window would read
    // as a phantom zero. Rebalance only once every active tenant has a
    // real measurement, so nobody is robbed for having not run yet.
    for (unsigned index : active_) {
        Tenant& t = *tenants_[index];
        if (!t.lag_valid) return;
    }
    std::vector<double> recent;
    recent.reserve(active_.size());
    for (unsigned index : active_) {
        recent.push_back(tenants_[index]->recent_lag);
    }
    scheduler_->onEpoch(active_, recent);
}

PoolResult
LifeguardPool::run()
{
    LBA_ASSERT(!ran_, "run() called twice");
    LBA_ASSERT(!tenants_.empty(), "pool needs at least one tenant");
    // The thread driving the pool is the coordinator by construction:
    // it builds the timer below (which records it as such for the
    // runtime checks) and drives every slice from here.
    threading::assumeCoordinatorRole();
    ran_ = true;
    unsigned ntenants = static_cast<unsigned>(tenants_.size());

    // Unmonitored baselines (per-tenant slowdown denominators), each on
    // its own private hierarchy via the experiment runner.
    for (auto& tenant : tenants_) {
        core::ExperimentConfig base_config;
        base_config.process = tenant->config.process;
        base_config.hierarchy = config_.hierarchy;
        core::Experiment experiment(tenant->config.program, base_config);
        tenant->unmonitored_cycles = experiment.unmonitored().cycles;
    }

    // The monitored platform: tenant t's application runs on core t,
    // lane L consumes on core dispatch.core + L. With one tenant this
    // is exactly the layout Experiment::runParallelLba builds.
    core::LbaConfig lba = config_.lba;
    lba.app_core = 0;
    lba.dispatch.core = std::max(lba.dispatch.core, ntenants);
    mem::HierarchyConfig hc = config_.hierarchy;
    unsigned needed = lba.dispatch.core + config_.lanes;
    if (hc.num_cores < needed) hc.num_cores = needed;
    hierarchy_ = std::make_unique<mem::CacheHierarchy>(hc);
    timer_ = std::make_unique<core::PipelineTimer>(
        *hierarchy_, lba, config_.lanes, config_.lane_limits);
    for (unsigned t = 1; t < ntenants; ++t) {
        unsigned producer = timer_->addProducer(t);
        LBA_ASSERT(producer == t, "producer/tenant index drift");
    }
    timer_->setConsumeObserver(
        [this](unsigned producer, unsigned lane, const EventRecord&,
               Cycles lag, Cycles cost, double bytes) {
            (void)lane;
            (void)cost;
            (void)bytes;
            Tenant& t = *tenants_[producer];
            t.lag_hist.record(lag);
            t.window_lag_sum += static_cast<double>(lag);
            ++t.window_lag_count;
        });

    // Admission, in arrival order. Tenants with a later arrival round
    // go to the pending list and face admission when their round comes
    // up mid-drive.
    std::vector<unsigned> pending;
    for (unsigned t = 0; t < ntenants; ++t) {
        if (tenants_[t]->config.arrival_round > 0) {
            pending.push_back(t);
            continue;
        }
        if (fits(*tenants_[t])) {
            activate(t);
        } else if (config_.admission == AdmissionMode::kQueue) {
            tenants_[t]->was_queued = true;
            queued_.push_back(t);
        } else {
            tenants_[t]->rejected = true;
        }
    }
    std::stable_sort(pending.begin(), pending.end(),
                     [this](unsigned a, unsigned b) {
                         return tenants_[a]->config.arrival_round <
                                tenants_[b]->config.arrival_round;
                     });
    scheduler_->rebalance(active_);

    // Tenant runtime state — only for tenants that will actually run
    // (a rejected tenant never needs its process, shard contexts, or
    // their shadow memory).
    for (auto& tenant : tenants_) {
        if (tenant->rejected) continue;
        tenant->process =
            std::make_unique<sim::Process>(tenant->config.process);
        tenant->process->load(tenant->config.program);
        for (unsigned s = 0; s < config_.lanes; ++s) {
            tenant->shards.push_back(factory_());
            LBA_ASSERT(tenant->shards.back() != nullptr,
                       "lifeguard factory returned null");
            lifeguard::DispatchConfig dc = lba.dispatch;
            dc.core = lba.dispatch.core + s;
            tenant->engines.push_back(
                std::make_unique<lifeguard::DispatchEngine>(
                    *tenant->shards.back(), *hierarchy_, dc));
        }
        if (config_.containment.enabled) {
            // Per-tenant containment: the manager watches this tenant's
            // shard contexts and rewinds only this tenant's producer;
            // the store interceptor feeds its private undo log.
            std::vector<const lifeguard::Lifeguard*> watched;
            watched.reserve(tenant->shards.size());
            for (const auto& shard : tenant->shards) {
                watched.push_back(shard.get());
            }
            tenant->manager =
                std::make_unique<replay::ContainmentManager>(
                    *tenant->process, *timer_, tenant->index, *this,
                    std::move(watched), config_.containment);
            tenant->process->setStoreInterceptor(tenant->manager.get());
        }
    }

    // Drive: round-robin slices over the active tenants. A lone tenant
    // with an empty queue and no pending arrivals runs to completion
    // unsliced (no one to yield to), which preserves its solo thread
    // interleaving. The round counter advances once per executed slice
    // and gates pending arrivals, so attach timing is deterministic.
    std::size_t cursor = 0;
    std::uint64_t round = 0;
    while (!active_.empty() || !pending.empty() || !queued_.empty()) {
        // Arrivals due this round face admission now.
        bool membership_changed = false;
        while (!pending.empty() &&
               tenants_[pending.front()]->config.arrival_round <= round) {
            unsigned arriving = pending.front();
            pending.erase(pending.begin());
            if (fits(*tenants_[arriving])) {
                activate(arriving);
                membership_changed = true;
            } else if (config_.admission == AdmissionMode::kQueue) {
                tenants_[arriving]->was_queued = true;
                queued_.push_back(arriving);
            } else {
                tenants_[arriving]->rejected = true;
            }
        }
        // An idle pool always fits the queue head.
        while (active_.empty() && !queued_.empty()) {
            activate(queued_.front());
            queued_.erase(queued_.begin());
            membership_changed = true;
        }
        if (membership_changed) scheduler_->rebalance(active_);
        if (active_.empty()) {
            if (pending.empty()) break;
            // Nothing runnable: fast-forward to the next arrival.
            round = tenants_[pending.front()]->config.arrival_round;
            continue;
        }

        cursor %= active_.size();
        unsigned index = active_[cursor];
        Tenant& tenant = *tenants_[index];

        sliced_ = active_.size() > 1 || !queued_.empty() ||
                  !pending.empty();
        slice_remaining_ = config_.slice_instructions;
        current_ = index;
        sim::RetireObserver* observer =
            tenant.manager ? static_cast<sim::RetireObserver*>(
                                 tenant.manager.get())
                           : this;
        tenant.run_result = tenant.process->run(observer);
        // Catch up any batch-deferred consumption so this slice's lag
        // window (fed by the consume observer) is complete before the
        // scheduler reads it — the per-record path had consumed these
        // records by now, and steal decisions must not depend on the
        // dispatch mode.
        timer_->sync();

        // Fold this slice into the tenant's recent-lag measurement (a
        // slice may log no records, e.g. all-filtered; keep the last
        // real measurement then).
        if (tenant.window_lag_count > 0) {
            tenant.recent_lag =
                tenant.window_lag_sum /
                static_cast<double>(tenant.window_lag_count);
            tenant.lag_valid = true;
            tenant.window_lag_sum = 0.0;
            tenant.window_lag_count = 0;
        }

        // A stop can mean "slice exhausted" or "finding detected".
        // Containment handles the finding inline: drain this tenant's
        // lanes, rewind its process, repair — other tenants' clocks and
        // lane assignments are untouched. Abort falls through to the
        // completion path below.
        ++round;
        bool abort_tenant = false;
        if (tenant.run_result.stopped && tenant.manager &&
            tenant.manager->pendingFinding()) {
            abort_tenant = !tenant.manager->containAndRepair();
            tenant.aborted = abort_tenant;
        }
        if (tenant.run_result.stopped && !abort_tenant &&
            !tenant.detach_requested) {
            epoch();
            ++cursor;
            continue;
        }

        // Tenant complete (exit, deadlock, instruction limit or
        // detach): release its bandwidth share and let queued tenants
        // in.
        if (tenant.detach_requested && !abort_tenant) {
            tenant.detached = true;
        }
        tenant.finished = true;
        load_ -= tenant.demand;
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(cursor));
        while (!queued_.empty() && fits(*tenants_[queued_.front()])) {
            activate(queued_.front());
            queued_.erase(queued_.begin());
        }
        if (!active_.empty()) scheduler_->rebalance(active_);
    }

    // End-of-program lifeguard passes: every admitted tenant's every
    // shard context finishes on the lane currently hosting it.
    for (auto& tenant : tenants_) {
        if (!tenant->admitted) continue;
        for (unsigned s = 0; s < config_.lanes; ++s) {
            timer_->finishShard(tenant->index,
                                scheduler_->laneFor(tenant->index, s),
                                *tenant->engines[s]);
        }
    }
    timer_->seal();

    PoolResult result;
    result.policy = scheduler_->name();
    result.lane_steals = scheduler_->steals();
    result.aggregate = timer_->stats();
    result.total_cycles = result.aggregate.total_cycles;
    result.capacity_bytes_per_cycle = capacity_;
    for (unsigned lane = 0; lane < config_.lanes; ++lane) {
        result.lane_busy_cycles.push_back(timer_->laneBusyCycles(lane));
        result.lane_records.push_back(timer_->laneRecords(lane));
    }
    for (auto& tenant : tenants_) {
        TenantStats stats;
        stats.name = tenant->config.name;
        stats.admitted = tenant->admitted;
        stats.was_queued = tenant->was_queued;
        stats.rejected = tenant->rejected;
        stats.detached = tenant->detached;
        stats.demand_bytes_per_cycle = tenant->demand;
        stats.unmonitored_cycles = tenant->unmonitored_cycles;
        if (tenant->admitted) {
            stats.lba = timer_->producerStats(tenant->index);
            stats.instructions = stats.lba.app_instructions;
            stats.total_cycles = stats.lba.total_cycles;
            stats.slowdown =
                tenant->unmonitored_cycles
                    ? static_cast<double>(stats.total_cycles) /
                          static_cast<double>(tenant->unmonitored_cycles)
                    : 0.0;
            stats.lag_p50 = tenant->lag_hist.p50();
            stats.lag_p95 = tenant->lag_hist.p95();
            stats.lag_p99 = tenant->lag_hist.p99();
            stats.findings = core::mergeShardFindings(tenant->shards);
            if (tenant->manager) {
                tenant->manager->finalize();
                stats.containment_enabled = true;
                stats.aborted = tenant->aborted;
                stats.containment = tenant->manager->stats();
            }
        }
        result.tenants.push_back(std::move(stats));
    }
    return result;
}

} // namespace lba::sched
