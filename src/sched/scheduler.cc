/**
 * @file
 * Tenant scheduling policy implementations.
 */

#include "sched/scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::sched {

const char*
toString(Policy policy)
{
    switch (policy) {
      case Policy::kStatic:
        return "static";
      case Policy::kRoundRobin:
        return "rr";
      case Policy::kLagAware:
        return "lag";
    }
    return "?";
}

bool
parsePolicy(const std::string& name, Policy* policy)
{
    if (name == "static") {
        *policy = Policy::kStatic;
    } else if (name == "rr" || name == "round-robin") {
        *policy = Policy::kRoundRobin;
    } else if (name == "lag" || name == "lag-aware") {
        *policy = Policy::kLagAware;
    } else {
        return false;
    }
    return true;
}

TenantScheduler::TenantScheduler(unsigned lanes) : lanes_(lanes)
{
    LBA_ASSERT(lanes >= 1, "scheduler needs at least one lane");
}

unsigned
TenantScheduler::laneFor(unsigned tenant, unsigned shard) const
{
    LBA_ASSERT(tenant < sets_.size(), "unknown tenant");
    const std::vector<unsigned>& set = sets_[tenant];
    LBA_ASSERT(!set.empty(), "tenant has no lanes assigned");
    return set[shard % set.size()];
}

const std::vector<unsigned>&
TenantScheduler::laneSet(unsigned tenant) const
{
    LBA_ASSERT(tenant < sets_.size(), "unknown tenant");
    return sets_[tenant];
}

void
TenantScheduler::ensureTenant(unsigned tenant)
{
    if (tenant >= sets_.size()) sets_.resize(tenant + 1);
}

void
TenantScheduler::assignPartition(const std::vector<unsigned>& active)
{
    unsigned k = static_cast<unsigned>(active.size());
    for (unsigned i = 0; i < k; ++i) {
        ensureTenant(active[i]);
        std::vector<unsigned>& set = sets_[active[i]];
        set.clear();
        unsigned lo = i * lanes_ / k;
        unsigned hi = (i + 1) * lanes_ / k;
        if (lo == hi) {
            // More tenants than lanes: fall back to a shared lane.
            set.push_back(i % lanes_);
            continue;
        }
        for (unsigned lane = lo; lane < hi; ++lane) set.push_back(lane);
    }
}

void
StaticPartitionScheduler::rebalance(const std::vector<unsigned>& active)
{
    assignPartition(active);
}

void
RoundRobinScheduler::rebalance(const std::vector<unsigned>& active)
{
    // Every tenant uses every lane; tenant i's shard->lane map is the
    // identity rotated by i, so co-resident tenants' equally-numbered
    // (and typically equally-hot) shards land on different lanes.
    for (unsigned i = 0; i < active.size(); ++i) {
        ensureTenant(active[i]);
        std::vector<unsigned>& set = sets_[active[i]];
        set.clear();
        for (unsigned j = 0; j < lanes_; ++j) {
            set.push_back((i + j) % lanes_);
        }
    }
}

void
LagAwareScheduler::rebalance(const std::vector<unsigned>& active)
{
    assignPartition(active);
}

void
LagAwareScheduler::onEpoch(const std::vector<unsigned>& active,
                           const std::vector<double>& recent_lag)
{
    LBA_ASSERT(active.size() == recent_lag.size(),
               "one lag sample per active tenant");
    if (active.size() < 2) return;
    std::size_t taker = 0;
    std::size_t donor = 0;
    for (std::size_t i = 1; i < active.size(); ++i) {
        if (recent_lag[i] > recent_lag[taker]) taker = i;
        if (recent_lag[i] < recent_lag[donor]) donor = i;
    }
    // Steal only on a clear imbalance, and never the donor's last lane.
    if (taker == donor) return;
    if (recent_lag[taker] < 2.0 * recent_lag[donor] + 1.0) return;
    std::vector<unsigned>& from = sets_[active[donor]];
    std::vector<unsigned>& to = sets_[active[taker]];
    if (from.size() < 2) return;
    unsigned lane = from.back();
    if (std::find(to.begin(), to.end(), lane) != to.end()) return;
    from.pop_back();
    to.push_back(lane);
    ++steals_;
}

std::unique_ptr<TenantScheduler>
makeScheduler(Policy policy, unsigned lanes)
{
    switch (policy) {
      case Policy::kStatic:
        return std::make_unique<StaticPartitionScheduler>(lanes);
      case Policy::kRoundRobin:
        return std::make_unique<RoundRobinScheduler>(lanes);
      case Policy::kLagAware:
        return std::make_unique<LagAwareScheduler>(lanes);
    }
    return nullptr;
}

} // namespace lba::sched
