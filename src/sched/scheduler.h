#pragma once
/**
 * @file
 * Tenant scheduling policies for the shared lifeguard pool.
 *
 * A TenantScheduler owns the map from (tenant, lifeguard shard) to the
 * physical pool lane that consumes that shard's records. Functional
 * sharding is fixed (every tenant's log is address-hashed over
 * `lanes` lifeguard shard contexts, exactly like ParallelLbaSystem);
 * the scheduler only decides *where* each shard context runs, so lane
 * reassignment never migrates shadow state — a lane context-switches
 * between the shard contexts folded onto it.
 *
 * Policies:
 *  - static  — lanes are partitioned once per active-tenant set; a
 *              tenant's shards fold onto its private lane range
 *              (isolation, no cross-tenant interference).
 *  - rr      — every tenant uses every lane, with per-tenant rotated
 *              shard->lane maps so hot shards spread (full sharing).
 *  - lag     — starts from the static partition; at every scheduling
 *              epoch the tenant with the largest recent consume lag
 *              steals a lane from the tenant with the smallest backlog.
 *
 * Every policy maps a lone tenant to the identity shard->lane map over
 * the whole pool, which is what makes one tenant on an M-lane pool
 * cycle-identical to ParallelLbaSystem with M shards (asserted by
 * tests/sched_test.cpp).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lba::sched {

/** Lane-assignment policy of a lifeguard pool. */
enum class Policy
{
    kStatic,
    kRoundRobin,
    kLagAware,
};

/** Policy name for reports ("static", "rr", "lag"). */
const char* toString(Policy policy);

/**
 * Parse a policy name ("static", "rr"/"round-robin", "lag").
 * @return False when the name is unknown (@p policy untouched).
 */
bool parsePolicy(const std::string& name, Policy* policy);

/**
 * Base class: owns the per-tenant lane sets. Tenants are dense indices;
 * a tenant keeps its last assignment after it finishes (the final
 * lifeguard passes still need a lane), but only active tenants take
 * part in rebalancing.
 */
class TenantScheduler
{
  public:
    explicit TenantScheduler(unsigned lanes);
    virtual ~TenantScheduler() = default;

    virtual const char* name() const = 0;

    /**
     * Recompute lane sets for @p active (tenant indices, admission
     * order). Called whenever the active set changes.
     */
    virtual void rebalance(const std::vector<unsigned>& active) = 0;

    /**
     * Scheduling-epoch hook: @p recent_lag[i] is the mean consume lag
     * of @p active[i]'s records since the previous epoch. Default no-op.
     */
    virtual void
    onEpoch(const std::vector<unsigned>& active,
            const std::vector<double>& recent_lag)
    {
        (void)active;
        (void)recent_lag;
    }

    /** Physical lane consuming @p tenant's lifeguard shard @p shard. */
    unsigned laneFor(unsigned tenant, unsigned shard) const;

    /** The lanes currently assigned to @p tenant. */
    const std::vector<unsigned>& laneSet(unsigned tenant) const;

    /** Number of lane-steal reassignments performed (lag policy). */
    std::uint64_t steals() const { return steals_; }

    unsigned lanes() const { return lanes_; }

  protected:
    /** Grow the per-tenant table to cover @p tenant. */
    void ensureTenant(unsigned tenant);

    /** Partition the pool across @p active (shared helper). */
    void assignPartition(const std::vector<unsigned>& active);

    unsigned lanes_;
    std::vector<std::vector<unsigned>> sets_;
    std::uint64_t steals_ = 0;
};

/** Fixed partition: each active tenant owns a private lane range. */
class StaticPartitionScheduler : public TenantScheduler
{
  public:
    using TenantScheduler::TenantScheduler;
    const char* name() const override { return "static"; }
    void rebalance(const std::vector<unsigned>& active) override;
};

/** Full sharing: every tenant on every lane, rotated per tenant. */
class RoundRobinScheduler : public TenantScheduler
{
  public:
    using TenantScheduler::TenantScheduler;
    const char* name() const override { return "rr"; }
    void rebalance(const std::vector<unsigned>& active) override;
};

/**
 * Lag-aware work stealing: static partition plus epoch rebalancing —
 * the tenant with the largest recent consume lag steals one lane from
 * the tenant with the smallest, when the imbalance is at least 2x and
 * the donor keeps at least one lane.
 */
class LagAwareScheduler : public TenantScheduler
{
  public:
    using TenantScheduler::TenantScheduler;
    const char* name() const override { return "lag"; }
    void rebalance(const std::vector<unsigned>& active) override;
    void onEpoch(const std::vector<unsigned>& active,
                 const std::vector<double>& recent_lag) override;
};

/** Instantiate the scheduler for @p policy over @p lanes lanes. */
std::unique_ptr<TenantScheduler> makeScheduler(Policy policy,
                                               unsigned lanes);

} // namespace lba::sched
