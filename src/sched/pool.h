#pragma once
/**
 * @file
 * The multi-tenant lifeguard pool: N independent monitored applications
 * (tenants) time-multiplexed onto M shared lifeguard lanes.
 *
 * A deployed LBA chip monitors many applications at once, so lifeguard
 * capacity must be a shared, scheduled resource rather than one
 * statically-bound lane per application. The pool builds on the shared
 * timing engine (core::PipelineTimer) in its multi-producer form:
 *
 *  - Each tenant is a sim::Process plus its own log stream (producer):
 *    its own application-core clock, compressor, back-pressure and
 *    syscall-containment state.
 *  - Each tenant's log is address-hash sharded over `lanes` lifeguard
 *    shard contexts exactly like ParallelLbaSystem (annotations
 *    broadcast, instruction records round-robin), so per-address
 *    lifeguards keep their semantics.
 *  - A TenantScheduler maps shard contexts to physical lanes. Lanes
 *    serialize whatever is folded onto them, which is how one tenant's
 *    burst degrades (only) whoever shares its lanes.
 *  - Admission control compares the aggregate declared log-production
 *    demand against the pool's drain bandwidth and queues (or rejects)
 *    tenants that would oversubscribe it.
 *
 * Execution is deterministic: tenants are driven round-robin in slices
 * of `slice_instructions` retired instructions; a lone tenant runs to
 * completion unsliced, which (together with identity lane maps) makes a
 * one-tenant pool cycle-identical to ParallelLbaSystem with M shards —
 * the invariant asserted by tests/sched_test.cpp.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline_timer.h"
#include "core/runner.h"
#include "replay/containment.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"

namespace lba::sched {

/** One monitored application admitted to the pool. */
struct TenantConfig
{
    std::string name;
    std::vector<isa::Instruction> program;
    sim::ProcessConfig process;
    /**
     * Declared log-production demand in transport bytes/cycle, used by
     * admission control. 0 = estimate from the platform configuration
     * (LBA logs about one record per instruction at IPC <= 1, so the
     * estimate is ~2 bytes/cycle compressed, or the raw record width
     * uncompressed — deliberately conservative).
     */
    double demand_bytes_per_cycle = 0.0;

    /**
     * Driver round (slice count since run() started) at which this
     * tenant arrives. 0 = present from the start. A late arrival goes
     * through the same admission decision (activate / queue / reject)
     * when its round comes up; while the pool is idle the driver
     * fast-forwards to the next arrival. Deterministic: the round
     * counter advances once per executed slice, never with wall time.
     */
    std::uint64_t arrival_round = 0;

    /**
     * Detach the tenant after this many observed retired instructions
     * (0 = run to completion). Detachment is treated exactly like
     * completion: mid-slice the process stops, the tenant's bandwidth
     * share is released, queued tenants are admitted and the lane map
     * rebalances — surviving tenants' clocks are untouched. Under
     * containment the count includes replayed (post-rewind)
     * retirements.
     */
    std::uint64_t detach_after_instructions = 0;
};

/** What admission control does with a tenant that does not fit. */
enum class AdmissionMode
{
    /** Hold it in a FIFO queue until running tenants finish. */
    kQueue,
    /** Refuse it outright (it never runs). */
    kReject,
};

/** Pool-wide configuration. */
struct PoolConfig
{
    /** Platform knobs shared by every lane/tenant (buffer size,
     *  transport bandwidth, compression, containment, filtering).
     *  `lba.execution = kThreaded` runs the pool's lanes on one host
     *  worker thread each: tenant shard engines pin to the worker of
     *  the lane they first deliver on, and the scheduler itself stays
     *  on the coordinating thread, so every slice decision — and every
     *  simulated cycle — is identical to serial execution
     *  (tests/threaded_test.cpp asserts the pool differential). */
    core::LbaConfig lba;
    /** Optional per-lane overrides (empty = uniform lanes). */
    std::vector<core::LaneLimits> lane_limits;
    mem::HierarchyConfig hierarchy;
    /** Number of shared lifeguard lanes (cores). */
    unsigned lanes = 2;
    Policy policy = Policy::kStatic;
    /** Tenant execution slice, in retired instructions. A lone tenant
     *  runs unsliced. */
    std::uint64_t slice_instructions = 20'000;
    AdmissionMode admission = AdmissionMode::kQueue;
    /** Admissible fraction of the pool drain bandwidth. */
    double max_load = 1.0;
    /** Consume-lag histogram geometry (per tenant): 512 x 256 covers
     *  lags up to 128k cycles; beyond that the percentile estimates
     *  saturate at the last edge (an oversubscribed pool's backlog —
     *  and therefore its lag — grows without bound, so *some* ceiling
     *  always exists; widen these for long contended runs). */
    std::size_t lag_hist_buckets = 512;
    std::uint64_t lag_hist_bucket_width = 256;
    /**
     * Per-tenant rewind-and-repair containment. A finding raised by one
     * tenant's lifeguard shards drains, rewinds and repairs only that
     * tenant; the other tenants' clocks and lane assignments are
     * untouched (their records simply keep flowing on the shared
     * lanes).
     */
    replay::ContainmentConfig containment;
};

/** Per-tenant outcome and statistics. */
struct TenantStats
{
    std::string name;
    bool admitted = false;
    /** Spent time in the admission queue before starting. */
    bool was_queued = false;
    /** Refused by admission control; never ran. */
    bool rejected = false;
    /** Stopped by TenantConfig::detach_after_instructions. */
    bool detached = false;
    /** Demand used by admission control (bytes/cycle). */
    double demand_bytes_per_cycle = 0.0;

    std::uint64_t instructions = 0;
    /** This tenant's completion time (app exit + its log drained +
     *  its final lifeguard passes). */
    Cycles total_cycles = 0;
    Cycles unmonitored_cycles = 0;
    /** total_cycles / unmonitored_cycles (0 when not run). */
    double slowdown = 0.0;

    /** The tenant's slice of the engine stats (its own app/stall
     *  cycles, records, busy cycles, transport bytes, lag mean). */
    core::LbaRunStats lba;

    /** Consume-lag distribution percentiles (cycles). */
    double lag_p50 = 0.0;
    double lag_p95 = 0.0;
    double lag_p99 = 0.0;

    std::vector<lifeguard::Finding> findings;

    /** True when this tenant ran under containment. */
    bool containment_enabled = false;
    /** True when the abort repair policy terminated this tenant. */
    bool aborted = false;
    /** Valid when containment_enabled. */
    replay::ContainmentStats containment;
};

/** Outcome of one pool run. */
struct PoolResult
{
    std::vector<TenantStats> tenants;
    /** Pool make-span: the latest tenant completion. */
    Cycles total_cycles = 0;
    /** Aggregate engine stats summed over tenants and lanes. */
    core::LbaRunStats aggregate;
    /** Pool drain bandwidth (bytes/cycle; 0 = unlimited). */
    double capacity_bytes_per_cycle = 0.0;
    /** Lane-steal reassignments performed (lag policy). */
    std::uint64_t lane_steals = 0;
    /** Per-lane busy cycles (shared-resource utilisation view). */
    std::vector<Cycles> lane_busy_cycles;
    /** Per-lane consumed records. */
    std::vector<std::uint64_t> lane_records;
    std::string policy;
};

/**
 * The pool itself. Add tenants, then run() exactly once.
 *
 * @code
 *   sched::PoolConfig config;
 *   config.lanes = 4;
 *   config.policy = sched::Policy::kLagAware;
 *   sched::LifeguardPool pool(config, bench::makeAddrCheck());
 *   pool.addTenant({"gzip", gzip_program, {}, 0.0});
 *   pool.addTenant({"mcf", mcf_program, {}, 0.0});
 *   sched::PoolResult result = pool.run();
 * @endcode
 */
class LifeguardPool : public sim::RetireObserver
{
  public:
    /**
     * @param config  Pool configuration.
     * @param factory Creates one lifeguard instance per (tenant, shard
     *                context); each tenant gets `lanes` instances.
     */
    LifeguardPool(const PoolConfig& config,
                  core::LifeguardFactory factory);
    ~LifeguardPool() override;

    /** Register a tenant. @return Its index. */
    unsigned addTenant(TenantConfig tenant);

    /**
     * Admit, schedule and run every tenant to completion, then finish
     * all lifeguards and collect statistics. Call exactly once.
     */
    PoolResult run();

    // sim::RetireObserver (driver internals; the pool observes the
    // currently-scheduled tenant's process). Coordinator-confined:
    // run() is the coordinator by construction (it builds the timer)
    // and assumes the role once at its top.
    void onRetire(const sim::Retired& retired) override
        LBA_COORDINATOR_ONLY;
    void onOsEvent(const sim::OsEvent& event) override
        LBA_COORDINATOR_ONLY;

  private:
    struct Tenant;

    /** Admission decision for @p tenant against the current load. */
    bool fits(const Tenant& tenant) const;

    /** Admit @p tenant: activate it and rebalance the lane map. */
    void activate(unsigned tenant);

    /** Functional shard for a record (mirrors ParallelLbaSystem). */
    unsigned routeShard(Tenant& tenant, const log::EventRecord& record);

    /** Deliver one record of the current tenant through the engine. */
    void deliver(Tenant& tenant, const log::EventRecord& record)
        LBA_COORDINATOR_ONLY;

    /** Scheduling epoch: feed recent lag to the policy, reset windows. */
    void epoch();

    PoolConfig config_;
    core::LifeguardFactory factory_;
    std::vector<std::unique_ptr<Tenant>> tenants_;

    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::unique_ptr<core::PipelineTimer> timer_;
    std::unique_ptr<TenantScheduler> scheduler_;

    /** Indices of running tenants, admission order. */
    std::vector<unsigned> active_;
    /** FIFO of admitted-later tenants (kQueue admission). */
    std::vector<unsigned> queued_;
    double capacity_ = 0.0;
    double load_ = 0.0;

    /** Driver state while a slice is executing. */
    unsigned current_ = 0;
    std::uint64_t slice_remaining_ = 0;
    bool sliced_ = false;
    bool ran_ = false;

    /** Reused target scratch buffer (routing hot path). */
    std::vector<core::PipelineTimer::Target> targets_;
};

} // namespace lba::sched
