#pragma once
/**
 * @file
 * Definition of the simulated instruction set (the "LRISC" ISA).
 *
 * The paper's machine is x86 running on Simics; for this reproduction we
 * define a compact 64-bit RISC-style ISA whose instruction classes map 1:1
 * onto the event-record types the LBA capture hardware produces (load,
 * store, branch, indirect jump, call, return, syscall, plain ALU). The
 * precise instruction semantics are irrelevant to the paper's claims; the
 * event mix is what drives lifeguard cost, and the workload generator
 * calibrates that mix per benchmark.
 *
 * Encoding: every instruction is exactly 8 bytes, little-endian:
 *   byte 0      opcode
 *   byte 1      rd   (destination register)
 *   byte 2      rs1  (first source register)
 *   byte 3      rs2  (second source register)
 *   bytes 4..7  imm  (signed 32-bit immediate)
 *
 * Register conventions:
 *   r0        hardwired zero (writes are discarded)
 *   r1..r8    syscall/function arguments and return values, caller-saved
 *   r9..r28   general purpose
 *   r29 (SP)  stack pointer
 *   r30 (LR)  link register (written by CALL/CALLR, read by RET)
 *   r31       assembler temporary
 */

#include <cstdint>

#include "common/types.h"

namespace lba::isa {

/** Number of architectural general-purpose registers. */
inline constexpr unsigned kNumRegs = 32;

/** Size in bytes of every encoded instruction. */
inline constexpr unsigned kInstrBytes = 8;

/** Well-known register indices. */
inline constexpr RegIndex kRegZero = 0;
inline constexpr RegIndex kRegSp = 29;
inline constexpr RegIndex kRegLr = 30;
inline constexpr RegIndex kRegAt = 31;

/**
 * Operation codes. The numeric values are part of the binary encoding and
 * must stay stable (tests pin them).
 */
enum class Opcode : std::uint8_t {
    kNop = 0,
    kHalt = 1,

    // Immediate / move
    kLi = 2,    ///< rd = sign_extend(imm)
    kLih = 3,   ///< rd = (rd & 0xffffffff) | (uint64(imm) << 32)
    kMov = 4,   ///< rd = rs1

    // Register-register ALU
    kAdd = 5,
    kSub = 6,
    kMul = 7,
    kDivu = 8,  ///< unsigned divide; division by zero yields all-ones
    kRemu = 9,  ///< unsigned remainder; mod zero yields the dividend
    kAnd = 10,
    kOr = 11,
    kXor = 12,
    kShl = 13,  ///< shift amount taken mod 64
    kShr = 14,  ///< logical right shift, amount mod 64
    kSra = 15,  ///< arithmetic right shift, amount mod 64
    kSlt = 16,  ///< rd = (int64)rs1 < (int64)rs2
    kSltu = 17, ///< rd = rs1 < rs2 (unsigned)

    // Register-immediate ALU
    kAddi = 18,
    kMuli = 19,
    kAndi = 20,
    kOri = 21,
    kXori = 22,
    kShli = 23,
    kShri = 24,

    // Memory: effective address = regs[rs1] + imm
    kLb = 25,   ///< rd = zero_extend(mem8[ea])
    kLw = 26,   ///< rd = zero_extend(mem32[ea])
    kLd = 27,   ///< rd = mem64[ea]
    kSb = 28,   ///< mem8[ea] = rs2 & 0xff
    kSw = 29,   ///< mem32[ea] = rs2 & 0xffffffff
    kSd = 30,   ///< mem64[ea] = rs2

    // Control: branch target = pc + imm (byte offset)
    kBeq = 31,
    kBne = 32,
    kBlt = 33,  ///< signed
    kBge = 34,  ///< signed
    kBltu = 35,
    kBgeu = 36,
    kJmp = 37,  ///< pc += imm
    kJr = 38,   ///< pc = regs[rs1] (indirect jump)
    kCall = 39, ///< LR = pc + 8; pc += imm
    kCallr = 40,///< LR = pc + 8; pc = regs[rs1] (indirect call)
    kRet = 41,  ///< pc = LR

    kSyscall = 42, ///< invoke OS service number imm; args in r1..r4

    kNumOpcodes
};

/**
 * Instruction classes: the event taxonomy that the LBA capture hardware
 * records and that lifeguard dispatch tables key on.
 */
enum class InstrClass : std::uint8_t {
    kNop = 0,
    kHalt,
    kLoadImm,
    kMove,
    kIntAlu,
    kLoad,
    kStore,
    kBranch,
    kJump,
    kIndirectJump,
    kCall,
    kIndirectCall,
    kReturn,
    kSyscall,

    kNumClasses
};

/** Number of distinct instruction classes. */
inline constexpr unsigned kNumInstrClasses =
    static_cast<unsigned>(InstrClass::kNumClasses);

/** Classify an opcode. */
InstrClass classOf(Opcode op);

/** True if @p op reads memory. */
bool isLoad(Opcode op);

/** True if @p op writes memory. */
bool isStore(Opcode op);

/** True if @p op reads or writes memory. */
inline bool isMemRef(Opcode op) { return isLoad(op) || isStore(op); }

/** True for any control transfer (branch, jump, call, return). */
bool isControl(Opcode op);

/** True if the instruction architecturally reads rs1. */
bool readsRs1(Opcode op);

/** True if the instruction architecturally reads rs2. */
bool readsRs2(Opcode op);

/** True if the instruction architecturally writes rd. */
bool writesRd(Opcode op);

/** Access size in bytes for memory opcodes (0 for non-memory). */
unsigned memAccessBytes(Opcode op);

/** Canonical lower-case mnemonic ("add", "ld", ...). */
const char* mnemonic(Opcode op);

/** Printable name of an instruction class ("Load", "IndirectJump", ...). */
const char* className(InstrClass cls);

/**
 * A decoded instruction. This is the unit the functional core executes and
 * the unit the capture hardware sees retire.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    std::int32_t imm = 0;

    bool operator==(const Instruction&) const = default;
};

} // namespace lba::isa
