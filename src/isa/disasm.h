#pragma once
/**
 * @file
 * Disassembler: render decoded instructions back into assembly text that
 * the lba::assembler front end accepts (round-trippable).
 */

#include <string>

#include "isa/isa.h"

namespace lba::isa {

/** Render one instruction as assembly text, e.g. "add r3, r1, r2". */
std::string disassemble(const Instruction& instr);

/**
 * Render one instruction at a known address; control transfers with
 * pc-relative immediates are annotated with their absolute target, e.g.
 * "beq r1, r2, -16   ; -> 0x1010".
 */
std::string disassembleAt(const Instruction& instr, Addr pc);

} // namespace lba::isa
