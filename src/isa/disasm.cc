/**
 * @file
 * Disassembler implementation.
 */

#include "isa/disasm.h"

#include <cstdio>

namespace lba::isa {

namespace {

std::string
reg(RegIndex r)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "r%u", static_cast<unsigned>(r));
    return buf;
}

std::string
immStr(std::int32_t imm)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", imm);
    return buf;
}

} // namespace

std::string
disassemble(const Instruction& instr)
{
    const std::string m = mnemonic(instr.op);
    switch (instr.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kRet:
        return m;
      case Opcode::kLi:
      case Opcode::kLih:
        return m + " " + reg(instr.rd) + ", " + immStr(instr.imm);
      case Opcode::kMov:
        return m + " " + reg(instr.rd) + ", " + reg(instr.rs1);
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivu:
      case Opcode::kRemu:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSra:
      case Opcode::kSlt:
      case Opcode::kSltu:
        return m + " " + reg(instr.rd) + ", " + reg(instr.rs1) + ", " +
               reg(instr.rs2);
      case Opcode::kAddi:
      case Opcode::kMuli:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kShli:
      case Opcode::kShri:
        return m + " " + reg(instr.rd) + ", " + reg(instr.rs1) + ", " +
               immStr(instr.imm);
      case Opcode::kLb:
      case Opcode::kLw:
      case Opcode::kLd:
        return m + " " + reg(instr.rd) + ", " + immStr(instr.imm) + "(" +
               reg(instr.rs1) + ")";
      case Opcode::kSb:
      case Opcode::kSw:
      case Opcode::kSd:
        return m + " " + reg(instr.rs2) + ", " + immStr(instr.imm) + "(" +
               reg(instr.rs1) + ")";
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        return m + " " + reg(instr.rs1) + ", " + reg(instr.rs2) + ", " +
               immStr(instr.imm);
      case Opcode::kJmp:
      case Opcode::kCall:
        return m + " " + immStr(instr.imm);
      case Opcode::kJr:
      case Opcode::kCallr:
        return m + " " + reg(instr.rs1);
      case Opcode::kSyscall:
        return m + " " + immStr(instr.imm);
      case Opcode::kNumOpcodes:
        break;
    }
    return "<invalid>";
}

std::string
disassembleAt(const Instruction& instr, Addr pc)
{
    std::string text = disassemble(instr);
    if (isControl(instr.op) && instr.op != Opcode::kJr &&
        instr.op != Opcode::kCallr && instr.op != Opcode::kRet) {
        char buf[32];
        Addr target = pc + static_cast<std::int64_t>(instr.imm);
        std::snprintf(buf, sizeof(buf), "   ; -> 0x%llx",
                      static_cast<unsigned long long>(target));
        text += buf;
    }
    return text;
}

} // namespace lba::isa
