/**
 * @file
 * Opcode property tables for the LRISC ISA.
 */

#include "isa/isa.h"

#include "common/assert.h"

namespace lba::isa {

namespace {

/** Per-opcode static properties, indexed by opcode value. */
struct OpInfo
{
    const char* mnemonic;
    InstrClass cls;
    bool reads_rs1;
    bool reads_rs2;
    bool writes_rd;
    unsigned mem_bytes; // 0 for non-memory opcodes
};

constexpr OpInfo kOpTable[] = {
    // mnemonic   class                      rs1    rs2    rd     bytes
    {"nop",     InstrClass::kNop,          false, false, false, 0},
    {"halt",    InstrClass::kHalt,         false, false, false, 0},
    {"li",      InstrClass::kLoadImm,      false, false, true,  0},
    {"lih",     InstrClass::kLoadImm,      false, false, true,  0},
    {"mov",     InstrClass::kMove,         true,  false, true,  0},
    {"add",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"sub",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"mul",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"divu",    InstrClass::kIntAlu,       true,  true,  true,  0},
    {"remu",    InstrClass::kIntAlu,       true,  true,  true,  0},
    {"and",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"or",      InstrClass::kIntAlu,       true,  true,  true,  0},
    {"xor",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"shl",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"shr",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"sra",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"slt",     InstrClass::kIntAlu,       true,  true,  true,  0},
    {"sltu",    InstrClass::kIntAlu,       true,  true,  true,  0},
    {"addi",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"muli",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"andi",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"ori",     InstrClass::kIntAlu,       true,  false, true,  0},
    {"xori",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"shli",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"shri",    InstrClass::kIntAlu,       true,  false, true,  0},
    {"lb",      InstrClass::kLoad,         true,  false, true,  1},
    {"lw",      InstrClass::kLoad,         true,  false, true,  4},
    {"ld",      InstrClass::kLoad,         true,  false, true,  8},
    {"sb",      InstrClass::kStore,        true,  true,  false, 1},
    {"sw",      InstrClass::kStore,        true,  true,  false, 4},
    {"sd",      InstrClass::kStore,        true,  true,  false, 8},
    {"beq",     InstrClass::kBranch,       true,  true,  false, 0},
    {"bne",     InstrClass::kBranch,       true,  true,  false, 0},
    {"blt",     InstrClass::kBranch,       true,  true,  false, 0},
    {"bge",     InstrClass::kBranch,       true,  true,  false, 0},
    {"bltu",    InstrClass::kBranch,       true,  true,  false, 0},
    {"bgeu",    InstrClass::kBranch,       true,  true,  false, 0},
    {"jmp",     InstrClass::kJump,         false, false, false, 0},
    {"jr",      InstrClass::kIndirectJump, true,  false, false, 0},
    {"call",    InstrClass::kCall,         false, false, false, 0},
    {"callr",   InstrClass::kIndirectCall, true,  false, false, 0},
    {"ret",     InstrClass::kReturn,       false, false, false, 0},
    {"syscall", InstrClass::kSyscall,      false, false, false, 0},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<std::size_t>(Opcode::kNumOpcodes),
              "opcode table must cover every opcode");

const OpInfo&
info(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    LBA_ASSERT(idx < static_cast<std::size_t>(Opcode::kNumOpcodes),
               "invalid opcode");
    return kOpTable[idx];
}

constexpr const char* kClassNames[] = {
    "Nop", "Halt", "LoadImm", "Move", "IntAlu", "Load", "Store",
    "Branch", "Jump", "IndirectJump", "Call", "IndirectCall", "Return",
    "Syscall",
};

static_assert(sizeof(kClassNames) / sizeof(kClassNames[0]) ==
                  kNumInstrClasses,
              "class name table must cover every class");

} // namespace

InstrClass
classOf(Opcode op)
{
    return info(op).cls;
}

bool
isLoad(Opcode op)
{
    return classOf(op) == InstrClass::kLoad;
}

bool
isStore(Opcode op)
{
    return classOf(op) == InstrClass::kStore;
}

bool
isControl(Opcode op)
{
    switch (classOf(op)) {
      case InstrClass::kBranch:
      case InstrClass::kJump:
      case InstrClass::kIndirectJump:
      case InstrClass::kCall:
      case InstrClass::kIndirectCall:
      case InstrClass::kReturn:
        return true;
      default:
        return false;
    }
}

bool
readsRs1(Opcode op)
{
    return info(op).reads_rs1;
}

bool
readsRs2(Opcode op)
{
    return info(op).reads_rs2;
}

bool
writesRd(Opcode op)
{
    return info(op).writes_rd;
}

unsigned
memAccessBytes(Opcode op)
{
    return info(op).mem_bytes;
}

const char*
mnemonic(Opcode op)
{
    return info(op).mnemonic;
}

const char*
className(InstrClass cls)
{
    auto idx = static_cast<std::size_t>(cls);
    LBA_ASSERT(idx < kNumInstrClasses, "invalid instruction class");
    return kClassNames[idx];
}

} // namespace lba::isa
