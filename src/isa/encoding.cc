/**
 * @file
 * Instruction encode/decode implementation.
 */

#include "isa/encoding.h"

namespace lba::isa {

std::uint64_t
encode(const Instruction& instr)
{
    std::uint64_t word = 0;
    word |= static_cast<std::uint64_t>(instr.op);
    word |= static_cast<std::uint64_t>(instr.rd) << 8;
    word |= static_cast<std::uint64_t>(instr.rs1) << 16;
    word |= static_cast<std::uint64_t>(instr.rs2) << 24;
    word |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(instr.imm))
            << 32;
    return word;
}

std::optional<Instruction>
decode(std::uint64_t word)
{
    std::uint8_t op_byte = static_cast<std::uint8_t>(word & 0xff);
    if (op_byte >= static_cast<std::uint8_t>(Opcode::kNumOpcodes)) {
        return std::nullopt;
    }
    Instruction instr;
    instr.op = static_cast<Opcode>(op_byte);
    instr.rd = static_cast<RegIndex>((word >> 8) & 0xff);
    instr.rs1 = static_cast<RegIndex>((word >> 16) & 0xff);
    instr.rs2 = static_cast<RegIndex>((word >> 24) & 0xff);
    instr.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(word >> 32));
    if (instr.rd >= kNumRegs || instr.rs1 >= kNumRegs ||
        instr.rs2 >= kNumRegs) {
        return std::nullopt;
    }
    return instr;
}

std::vector<std::uint8_t>
encodeProgram(const std::vector<Instruction>& program)
{
    std::vector<std::uint8_t> image;
    image.reserve(program.size() * kInstrBytes);
    for (const Instruction& instr : program) {
        std::uint64_t word = encode(instr);
        for (unsigned b = 0; b < kInstrBytes; ++b) {
            image.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
        }
    }
    return image;
}

std::optional<std::vector<Instruction>>
decodeProgram(const std::vector<std::uint8_t>& image)
{
    if (image.size() % kInstrBytes != 0) return std::nullopt;
    std::vector<Instruction> program;
    program.reserve(image.size() / kInstrBytes);
    for (std::size_t i = 0; i < image.size(); i += kInstrBytes) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < kInstrBytes; ++b) {
            word |= static_cast<std::uint64_t>(image[i + b]) << (8 * b);
        }
        auto instr = decode(word);
        if (!instr) return std::nullopt;
        program.push_back(*instr);
    }
    return program;
}

} // namespace lba::isa
