#pragma once
/**
 * @file
 * Binary encoding and decoding of LRISC instructions.
 *
 * Every instruction occupies exactly 8 bytes (isa::kInstrBytes); the fixed
 * width keeps program-counter prediction trivial for the log compressor and
 * matches the paper's single-CPI in-order fetch model.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/isa.h"

namespace lba::isa {

/** Encode @p instr into its 8-byte little-endian form. */
std::uint64_t encode(const Instruction& instr);

/**
 * Decode an 8-byte word into an instruction.
 *
 * @return std::nullopt when the opcode byte is not a valid opcode or a
 *         register field is out of range.
 */
std::optional<Instruction> decode(std::uint64_t word);

/** Encode a whole program into a flat byte image. */
std::vector<std::uint8_t> encodeProgram(
    const std::vector<Instruction>& program);

/**
 * Decode a flat byte image into instructions.
 *
 * @return std::nullopt when the image size is not a multiple of the
 *         instruction width or any instruction fails to decode.
 */
std::optional<std::vector<Instruction>> decodeProgram(
    const std::vector<std::uint8_t>& image);

} // namespace lba::isa
